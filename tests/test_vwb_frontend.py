"""The VWB front-end: the paper's Section IV load/store policy."""

import pytest

from repro.core.vwb import VWBConfig
from repro.core.vwb_frontend import VWBFrontend
from repro.mem.cache import Cache, CacheConfig
from repro.mem.mainmem import MainMemory


def make_frontend(banks=4, mem_latency=100.0, fill_buffers=6):
    backing = Cache(
        CacheConfig(
            name="dl1",
            capacity_bytes=4096,
            associativity=2,
            line_bytes=64,
            read_hit_cycles=4,
            write_hit_cycles=2,
            banks=banks,
        ),
        MainMemory(latency_cycles=mem_latency, transfer_cycles=0.0),
    )
    return VWBFrontend(backing, VWBConfig(), fill_buffers=fill_buffers)


class TestLoadPolicy:
    def test_vwb_checked_first(self):
        """'The VWB is always checked for the data first during a normal
        read' — a resident window serves in one cycle."""
        fe = make_frontend()
        fe.read(0, 4, 0.0)  # miss: promotes window 0
        latency = fe.read(8, 4, 1000.0)
        assert latency == 1.0
        assert fe.stats.buffer_read_hits == 1

    def test_miss_promotes_whole_window(self):
        """'the cache line containing the data block is then transferred
        into the processor and the VWB' — the adjacent DL1 line of the
        window becomes a VWB hit."""
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        latency = fe.read(64, 4, 1000.0)  # second line of the same window
        assert latency == 1.0

    def test_dl1_hit_promotion_costs_array_read(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)  # window 0 resident in VWB, lines in DL1
        fe.read(128, 4, 1000.0)  # window 128 promoted
        fe.read(256, 4, 2000.0)  # window 0 evicted (LRU)
        latency = fe.read(0, 4, 3000.0)  # re-promotion: NVM hit, wide read
        assert latency == 4.0
        assert fe.backing.stats.read_hits >= 2

    def test_dl1_miss_served_from_next_level(self):
        fe = make_frontend(mem_latency=100.0)
        latency = fe.read(0, 4, 0.0)
        assert latency >= 100.0
        assert fe.backing.contains(0)

    def test_promotion_counted(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        assert fe.stats.promotions == 1

    def test_evicted_dirty_window_written_back_to_dl1(self):
        """'The evicted data from the VWB is stored in the NVM DL1.'"""
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        fe.write(0, 4, 1000.0)  # dirty in VWB
        fe.read(128, 4, 2000.0)
        fe.read(256, 4, 3000.0)  # evicts window 0 (dirty)
        assert fe.stats.buffer_writebacks == 1
        assert fe.backing.is_dirty(0)


class TestStorePolicy:
    def test_store_hit_updates_vwb_only(self):
        """'The data block in the DL1 is only updated via the VWB if it's
        already present in it.'"""
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        dl1_writes_before = fe.backing.stats.writes
        latency = fe.write(8, 4, 1000.0)
        assert latency == 1.0
        assert fe.backing.stats.writes == dl1_writes_before
        assert fe.vwb.is_dirty(0)

    def test_store_miss_goes_directly_to_dl1(self):
        """'Otherwise, it's directly updated via the processor' with
        write-allocate in the array, non-allocate in the VWB."""
        fe = make_frontend()
        fe.write(0, 4, 0.0)
        assert not fe.vwb.contains(0)  # non-allocate
        assert fe.backing.contains(0)  # write-allocate
        assert fe.backing.is_dirty(0)
        assert fe.stats.buffer_write_misses == 1


class TestPrefetch:
    def test_prefetch_stages_without_evicting(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        fe.read(128, 4, 1000.0)  # VWB now holds windows 0 and 128
        fe.prefetch(256, 2000.0)
        assert fe.vwb.contains(0) and fe.vwb.contains(128)
        assert fe.pending_windows == 1

    def test_prefetched_window_served_after_ready(self):
        fe = make_frontend()
        fe.prefetch(0, 0.0)
        latency = fe.read(0, 4, 5000.0)
        assert latency == 1.0

    def test_early_read_waits_remaining_fill(self):
        fe = make_frontend(mem_latency=100.0)
        fe.prefetch(0, 0.0)  # ready past cycle 100
        latency = fe.read(0, 4, 50.0)
        assert 1.0 < latency < 120.0

    def test_duplicate_prefetch_is_useless(self):
        fe = make_frontend()
        fe.prefetch(0, 0.0)
        fe.prefetch(0, 1.0)
        assert fe.stats.prefetches_useless == 1

    def test_prefetch_of_resident_window_is_useless(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        fe.prefetch(64, 1000.0)  # same window
        assert fe.stats.prefetches_useless == 1

    def test_full_fill_buffers_drop_hint_when_unready(self):
        fe = make_frontend(fill_buffers=2, mem_latency=1000.0)
        fe.prefetch(0, 0.0)
        fe.prefetch(128, 0.0)
        fe.prefetch(256, 1.0)  # both slots mid-flight: dropped
        assert fe.pending_windows == 2
        assert fe.stats.prefetches_useless == 1

    def test_completed_staged_window_displaced_into_vwb(self):
        fe = make_frontend(fill_buffers=1, mem_latency=10.0)
        fe.prefetch(0, 0.0)  # ready quickly
        fe.prefetch(128, 5000.0)  # displaces window 0 into a VWB line
        assert fe.vwb.contains(0)
        assert fe.pending_windows == 1

    def test_store_to_staged_window_merges(self):
        fe = make_frontend()
        fe.prefetch(0, 0.0)
        latency = fe.write(0, 4, 5000.0)
        assert latency == 1.0
        assert fe.stats.buffer_write_hits == 1


class TestTimingDetails:
    def test_bank_conflict_with_promotion(self):
        """'the processor may try to fetch new data while the promotion
        ... is taking place ... Otherwise, the processor must be
        stalled' — an access to the same bank as an in-flight promotion
        waits."""
        fe = make_frontend(banks=2)
        # Warm both windows into the DL1, then displace them from the VWB.
        fe.read(0, 4, 0.0)
        fe.read(128, 4, 1000.0)
        fe.read(256, 4, 2000.0)
        fe.read(384, 4, 3000.0)
        # A background promotion (prefetch) occupies both banks of the
        # 2-bank array; a demand promotion issued mid-flight must wait.
        t = 10000.0
        fe.prefetch(0, t)
        lat = fe.read(128, 4, t + 1.0)
        assert lat > 4.0  # bank wait on top of the wide read
        assert fe.backing.stats.bank_wait_cycles > 0

    def test_read_spanning_two_windows(self):
        fe = make_frontend()
        latency = fe.read(120, 16, 0.0)  # crosses windows 0 and 128
        assert fe.vwb.contains(0) and fe.vwb.contains(128)
        assert latency > 4.0

    def test_reset(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        fe.prefetch(128, 1.0)
        fe.reset()
        assert fe.pending_windows == 0
        assert fe.stats.buffer_accesses == 0
        assert not fe.backing.contains(0)

    def test_fill_buffer_validation(self):
        with pytest.raises(Exception):
            make_frontend(fill_buffers=0)
