"""Benches: extension experiments (hybrid, NVM I-cache, latency
sensitivity, headline-claim validation)."""

from repro.experiments import ablations, validate

from conftest import run_once


def test_ablation_hybrid(benchmark, runner, save):
    """The hybrid SRAM partition shields reads like the VWB but spends
    ~32x the fast-storage bits."""
    result = run_once(benchmark, ablations.run_hybrid_comparison, runner=runner)
    save(result)
    avg = result.averages()
    assert avg["vwb"] < avg["dropin"]
    assert avg["hybrid_8kb"] < avg["dropin"]


def test_ablation_icache(benchmark, save):
    """A drop-in NVM IL1 pays the array read on every fetch group."""
    result = run_once(benchmark, ablations.run_nvm_icache)
    save(result)
    assert all(v > 0.0 for v in result.series["nvm_il1"])


def test_ablation_latency(benchmark, runner, save):
    """Section II: write-oriented mitigation cannot fix the penalty."""
    result = run_once(benchmark, ablations.run_latency_sensitivity, runner=runner)
    save(result)
    avg = result.averages()
    assert abs(avg["write_x1"] - avg["write_x0.25"]) < 3.0
    assert avg["read_x0.25"] < 0.25 * avg["read_x1"]


def test_ablation_hwprefetch(benchmark, runner, save):
    """HW stride prefetching cannot remove the NVM read-hit latency."""
    result = run_once(benchmark, ablations.run_hw_prefetch_comparison, runner=runner)
    save(result)
    avg = result.averages()
    # HW prefetch helps a little; SW prefetch into the VWB dominates.
    assert avg["dropin_hw_prefetch"] <= avg["dropin"] + 0.5
    assert avg["vwb_sw_prefetch"] < 0.4 * avg["dropin_hw_prefetch"]


def test_ablation_aware(benchmark, runner, save):
    """AWARE write acceleration (actual mechanism) recovers ~nothing."""
    result = run_once(benchmark, ablations.run_aware_writes, runner=runner)
    save(result)
    avg = result.averages()
    assert abs(avg["dropin"] - avg["dropin_aware"]) < 2.0
    assert avg["vwb"] < 0.6 * avg["dropin_aware"]


def test_ablation_interchange(benchmark, save):
    """Interchange adds nothing on the stride-friendly paper kernels."""
    result = run_once(benchmark, ablations.run_interchange_study)
    save(result)
    avg = result.averages()
    assert abs(avg["full"] - avg["full_plus_interchange"]) < 2.0


def test_ablation_dram(benchmark, save):
    """The figures' flat-DRAM choice is validated by the banked model."""
    result = run_once(benchmark, ablations.run_dram_model_study)
    save(result)
    avg = result.averages()
    assert abs(avg["dropin_flat"] - avg["dropin_banked"]) < 3.0
    assert avg["vwb_banked"] < avg["dropin_banked"]


def test_validate_all_claims(benchmark, runner, save):
    """Every headline claim of the paper must reproduce on the full
    12-kernel suite."""
    result = run_once(benchmark, validate.run, runner=runner)
    save(result)
    assert all(v == 1.0 for v in result.series["passed"]), "\n".join(result.notes)
