"""Shadow capture of architectural simulator state, for differential audit.

The sanitizer's second weapon (next to the live invariant checks in
:mod:`repro.check.invariants`) is *state diffing*: run the same trace
through two replay paths — or through a cold run and a warm re-run — and
compare not just the :class:`~repro.cpu.model.RunResult` but the entire
end state of the machine: every tag, dirty bit and LRU stack of every
cache, the bank busy times, write-buffer and MSHR occupancy, the
front-end buffer contents and the CPU's store queue.

:func:`capture_system` walks a live :class:`~repro.cpu.system.System`
and snapshots all of that into plain, hashable Python data (nested dicts
of tuples), so two captures compare with ``==`` and
:func:`diff_states` can name the exact structure that diverged —
``dl1.tags[17]``, ``frontend.pending[0]`` — instead of reporting a bare
cycle-count mismatch.

The capture reads private attributes of the memory structures on
purpose: the whole point of a sanitizer is to look *under* the public
interface, at representation invariants the normal API cannot express.
Each structure's layout is documented where it is read; a capture is a
read-only walk and never mutates the system.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..core.emshr import EMSHRFrontend
from ..core.hybrid import HybridFrontend
from ..core.l0 import L0Frontend
from ..core.vwb import VeryWideBuffer
from ..core.vwb_frontend import VWBFrontend
from ..mem.cache import Cache
from ..mem.replacement import _FIFOSet, _LRUSet, _RandomSet, _TreePLRUSet

#: A shadow state: nested plain data, comparable with ``==``.
ShadowState = Dict[str, Any]


def _capture_repl_set(state) -> Tuple:
    """Snapshot one per-set replacement-policy state object.

    Each policy keeps different bookkeeping; the capture is tagged with
    the policy kind so states of different policies never compare equal
    by accident.
    """
    if isinstance(state, _LRUSet):
        return ("lru", tuple(state._order))
    if isinstance(state, _FIFOSet):
        return ("fifo", state._next)
    if isinstance(state, _TreePLRUSet):
        return ("plru", tuple(state._bits))
    if isinstance(state, _RandomSet):
        # The generator is shared across sets; its position is captured
        # once per cache under the "rng" key instead.
        return ("random",)
    return (type(state).__name__,)


def capture_cache(cache: Cache) -> ShadowState:
    """Snapshot one :class:`~repro.mem.cache.Cache` completely."""
    state: ShadowState = {
        "tags": tuple(tuple(ways) for ways in cache._tags),
        "dirty": tuple(tuple(ways) for ways in cache._dirty),
        "repl": tuple(_capture_repl_set(s) for s in cache._repl),
        "bank_busy": tuple(cache._banks._busy_until),
        "write_buffer": tuple(cache._write_buffer._completions),
        "mshr": tuple(
            sorted(
                (e.line_addr, e.ready_at, e.issued_at, e.is_prefetch)
                for e in cache._mshrs._entries.values()
            )
        ),
        "line_writes": tuple(sorted(cache._line_writes.items())),
        "fast_write_credit": cache._fast_write_credit,
        "stats": cache.stats.as_dict(),
    }
    if cache._repl and isinstance(cache._repl[0], _RandomSet):
        state["rng"] = cache._repl[0]._rng.getstate()
    if cache._retirement is not None:
        state["retirement"] = {
            "retries": tuple(sorted(cache._retirement._retries.items())),
            "disabled": tuple(
                sorted((i, tuple(w)) for i, w in cache._retirement._disabled.items())
            ),
        }
    return state


def _capture_wide_buffer(buffer: VeryWideBuffer) -> ShadowState:
    """Snapshot a :class:`~repro.core.vwb.VeryWideBuffer` (VWB or L0 store)."""
    return {
        "lines": tuple(
            (line.window_addr, line.dirty, line.last_touch) for line in buffer._lines
        ),
        "clock": buffer._clock,
    }


def capture_frontend(frontend) -> ShadowState:
    """Snapshot the front-end buffer structure (VWB/L0/EMSHR/hybrid)."""
    state: ShadowState = {
        "name": frontend.name,
        "stats": frontend.stats.as_dict(),
    }
    if isinstance(frontend, VWBFrontend):
        state["vwb"] = _capture_wide_buffer(frontend.vwb)
        # Staged promotions in FIFO order: commit order is part of the
        # architectural state (it decides which window lands in a VWB
        # line next), so the capture preserves it.
        state["pending"] = tuple(
            (
                window,
                staged.dirty,
                staged.result.issued_at,
                tuple(sorted(staged.result.line_ready.items())),
            )
            for window, staged in frontend._pending.items()
        )
    elif isinstance(frontend, L0Frontend):
        state["store"] = _capture_wide_buffer(frontend._store)
        state["fill_ready"] = tuple(sorted(frontend._fill_ready.items()))
    elif isinstance(frontend, EMSHRFrontend):
        # Insertion order is the FIFO reclaim order: architectural.
        state["entries"] = tuple(
            (line, entry.ready_at, entry.dirty)
            for line, entry in frontend._entries.items()
        )
    elif isinstance(frontend, HybridFrontend):
        state["sram"] = capture_cache(frontend.sram)
    return state


def capture_system(system) -> ShadowState:
    """Snapshot the complete architectural state of a ``System``.

    Covers the DL1 (tags, dirty bits, replacement state, banks, write
    buffer, MSHRs, reliability wear), the front-end buffer structure,
    the shared IL1/L2, main-memory counters and the CPU's store queue.
    Two systems that executed the same events through correct replay
    paths must produce equal captures.
    """
    cpu = system.cpu
    return {
        "dl1": capture_cache(system.dl1),
        "l2": capture_cache(system.hierarchy.l2),
        "il1": capture_cache(system.hierarchy.il1),
        "frontend": capture_frontend(system.frontend),
        "store_queue": tuple(cpu.store_queue) if cpu.store_queue is not None else (),
        "mainmem": dict(system.hierarchy.memory.stats_dict()),
    }


def diff_states(a: Any, b: Any, path: str = "") -> List[Tuple[str, Any, Any]]:
    """Structural diff of two shadow states.

    Returns:
        ``(path, a_value, b_value)`` triples naming every leaf where the
        two states disagree (empty when they are equal).  Dict keys and
        equal-length tuples recurse; everything else is a leaf compared
        with ``!=``.
    """
    diffs: List[Tuple[str, Any, Any]] = []
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b), key=str):
            sub = f"{path}.{key}" if path else str(key)
            if key not in a:
                diffs.append((sub, "<absent>", b[key]))
            elif key not in b:
                diffs.append((sub, a[key], "<absent>"))
            else:
                diffs.extend(diff_states(a[key], b[key], sub))
    elif isinstance(a, tuple) and isinstance(b, tuple) and len(a) == len(b):
        if a != b:
            for i, (x, y) in enumerate(zip(a, b)):
                diffs.extend(diff_states(x, y, f"{path}[{i}]"))
    elif a != b:
        diffs.append((path, a, b))
    return diffs
