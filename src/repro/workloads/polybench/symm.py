"""PolyBench ``symm`` (simplified rectangular form): C = alpha*A*B + beta*C
with A symmetric.

Extra kernel: exploits the symmetry ``A[i][j] == A[j][i]`` by reading the
stored lower triangle both row-wise (unit stride) and column-wise
(stride N) *in the same inner loop* — a half-friendly, half-hostile
stream mix no other kernel exhibits.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"m": 24, "n": 24}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the symm program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    m, n = dims["m"], dims["n"]
    i, j, k = Var("i"), Var("j"), Var("k")
    a = Array("A", (m, m))
    b = Array("B", (m, n))
    c = Array("C", (m, n))
    body = [
        loop(
            i,
            m,
            [
                loop(
                    j,
                    n,
                    [
                        stmt(reads=[c[i, j]], writes=[c[i, j]], flops=1, label="beta_scale"),
                        # Lower-triangle contribution: row walk of A.
                        loop(
                            k,
                            i,
                            [
                                stmt(
                                    reads=[c[i, j], a[i, k], b[k, j]],
                                    writes=[c[i, j]],
                                    flops=2,
                                    label="row_mac",
                                )
                            ],
                        ),
                        # Upper-triangle contribution via symmetry: the
                        # same elements read column-wise (A[k][i]).
                        loop(
                            k,
                            m,
                            [
                                stmt(
                                    reads=[c[i, j], a[k, i], b[k, j]],
                                    writes=[c[i, j]],
                                    flops=2,
                                    label="col_mac",
                                )
                            ],
                            lower=i,
                        ),
                    ],
                )
            ],
        )
    ]
    return Program("symm", body)
