"""SECDED ECC model: decode outcomes and storage overhead.

The DL1 protects each line with a single-error-correct,
double-error-detect (SECDED) Hamming code.  The simulator does not store
real data, so the code is modelled at the level that matters for timing
and statistics: given the number of faulty bits in a line read, what
does the decoder report?

- 0 faulty bits -> :attr:`EccOutcome.CLEAN`;
- 1 faulty bit -> :attr:`EccOutcome.CORRECTED` (fixed silently, at the
  cost of the decode latency every read already pays);
- 2+ faulty bits -> :attr:`EccOutcome.DETECTED` (uncorrectable; the
  cache re-reads the line and, if that fails too, refills it from the
  next level).

Treating any multi-bit error as *detected* is slightly optimistic — a
real SECDED code miscorrects some 3+-bit patterns — but at L1 raw error
rates (single-digit ppm per bit) triple errors in one line are rare
enough that the approximation does not move any reported number.

The code is applied per line rather than per 64-bit word; this is the
conservative direction for timing (a whole-line double error is more
likely than a per-word one), and it keeps the decode a single fixed
latency adder as in the banked-array designs the paper builds on.
"""

from __future__ import annotations

import enum

from ..errors import ConfigurationError


class EccOutcome(enum.Enum):
    """Result of one SECDED decode."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED = "detected"

    @property
    def usable(self) -> bool:
        """True when the decoded data can be forwarded to the requester."""
        return self is not EccOutcome.DETECTED


def secded_check_bits(data_bits: int) -> int:
    """Check bits a SECDED code needs to protect ``data_bits``.

    Hamming bound: the smallest ``r`` with ``2**r >= data_bits + r + 1``,
    plus one overall parity bit for the double-error-detect extension
    (e.g. 8 check bits for a 64-bit word, 11 for a 512-bit line).

    Raises:
        ConfigurationError: If ``data_bits`` is not positive.
    """
    if data_bits <= 0:
        raise ConfigurationError(f"data width must be positive: {data_bits}")
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r + 1


class SECDEDCode:
    """A SECDED code over one protection granule (a cache line here).

    Args:
        data_bits: Protected data width in bits.

    Attributes:
        data_bits: Protected data width.
        check_bits: Check bits the code adds.
    """

    def __init__(self, data_bits: int) -> None:
        self.data_bits = data_bits
        self.check_bits = secded_check_bits(data_bits)

    @property
    def overhead(self) -> float:
        """Storage overhead: check bits over data bits."""
        return self.check_bits / self.data_bits

    def decode(self, faulty_bits: int) -> EccOutcome:
        """Decode outcome for a granule read with ``faulty_bits`` errors.

        Raises:
            ConfigurationError: If ``faulty_bits`` is negative.
        """
        if faulty_bits < 0:
            raise ConfigurationError(f"fault count must be non-negative: {faulty_bits}")
        if faulty_bits == 0:
            return EccOutcome.CLEAN
        if faulty_bits == 1:
            return EccOutcome.CORRECTED
        return EccOutcome.DETECTED
