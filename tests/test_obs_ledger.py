"""The cycle ledger: exact attribution of every exposed CPU cycle.

The headline invariant of the observability layer: for every front-end
and kernel, the sum of the ledger's category totals equals the run's
cycle count *bit-exactly* (all simulator timing is in multiples of 0.5
cycles, and the ledger only ever adds, subtracts and mins those values).
"""

import pytest

from repro.errors import SimulationError
from repro.experiments.runner import CONFIGURATIONS, ExperimentRunner
from repro.obs import LEDGER_CATEGORIES, CycleLedger

KERNELS = ("gemm", "atax", "mvt")


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    return ExperimentRunner(kernels=list(KERNELS))


class TestLedgerExactness:
    @pytest.mark.parametrize("config", sorted(CONFIGURATIONS))
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_ledger_sums_to_total_cycles(self, runner, config, kernel):
        profile = runner.profile(kernel, config=config)
        assert profile.ledger.total == profile.result.cycles
        assert profile.ledger.residual(profile.result.cycles) == 0.0

    def test_loop_totals_partition_the_totals(self, runner):
        profile = runner.profile("gemm", config="vwb")
        for category in LEDGER_CATEGORIES:
            per_region = sum(
                sub.get(category, 0.0) for sub in profile.ledger.loop_totals.values()
            )
            assert per_region == profile.ledger.totals[category]

    def test_gemm_regions_are_the_ir_loops(self, runner):
        profile = runner.profile("gemm", config="vwb")
        regions = set(profile.ledger.loop_totals)
        # gemm is the classic i/j + i/k/j loop nest.
        assert "i.j" in regions and "i.k.j" in regions

    def test_frontend_hit_cycles_only_with_a_buffer(self, runner):
        plain = runner.profile("gemm", config="dropin")
        vwb = runner.profile("gemm", config="vwb")
        assert plain.ledger.totals["frontend_hit"] == 0.0
        assert vwb.ledger.totals["frontend_hit"] > 0.0


class TestCycleLedgerUnit:
    def test_unknown_category_raises(self):
        with pytest.raises(SimulationError):
            CycleLedger().charge("warp_drive", 1.0)

    def test_verify_raises_on_mismatch(self):
        ledger = CycleLedger()
        ledger.charge("compute", 10.0)
        with pytest.raises(SimulationError):
            ledger.verify(11.0)
        ledger.verify(10.0)  # exact match passes

    def test_load_attribution_priority_deepest_first(self):
        ledger = CycleLedger()
        # A 10-cycle load with 6 cycles reported by DRAM and 3 by L2:
        # DRAM is charged first, then L2, remainder to the DL1 read.
        ledger.attribute_op("load", 10.0, 0.0, [("l2", 3.0), ("dram", 6.0)], "")
        assert ledger.totals["dram"] == 6.0
        assert ledger.totals["l2"] == 3.0
        assert ledger.totals["dl1_read"] == 1.0
        assert ledger.total == 10.0

    def test_load_attribution_never_overcharges(self):
        ledger = CycleLedger()
        # Components report more than the exposed cost (overlap with the
        # load-use window): charges are clamped to the cost.
        ledger.attribute_op("load", 2.0, 0.0, [("dram", 100.0)], "")
        assert ledger.totals["dram"] == 2.0
        assert ledger.total == 2.0

    def test_store_attribution_splits_wait(self):
        ledger = CycleLedger()
        ledger.attribute_op("store", 5.0, 3.0, [], "loop")
        assert ledger.totals["store_buffer_full"] == 3.0
        assert ledger.totals["dl1_write"] == 2.0
        assert ledger.loop_totals["loop"]["store_buffer_full"] == 3.0

    def test_categories_are_stable(self):
        # The exporter/CSV schema depends on these names.
        assert set(LEDGER_CATEGORIES) >= {
            "compute",
            "branch",
            "frontend_hit",
            "dl1_read",
            "dl1_write",
            "bank_conflict",
            "writeback_stall",
            "l2",
            "dram",
            "store_buffer_full",
        }
