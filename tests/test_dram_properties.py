"""Property tests over both main-memory models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.dram import BankedMemory, DRAMConfig
from repro.mem.mainmem import MainMemory

_requests = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 20),
        st.booleans(),
        st.floats(min_value=0.0, max_value=10.0),
    ),
    min_size=1,
    max_size=100,
)


def _drive(memory, stream):
    latencies = []
    t = 0.0
    for addr, is_write, gap in stream:
        latency = memory.access(addr, is_write, t)
        latencies.append(latency)
        t += latency + gap
    return latencies


class TestMemoryModelContract:
    @given(_requests)
    @settings(max_examples=50, deadline=None)
    def test_banked_latencies_bounded(self, stream):
        cfg = DRAMConfig()
        memory = BankedMemory(cfg)
        worst_array = cfg.t_rp + cfg.t_rcd + cfg.t_cas
        for (addr, is_write, _), latency in zip(stream, _drive(memory, stream)):
            assert latency >= cfg.transfer_cycles - 1e-9
            if not is_write:
                assert latency >= cfg.t_cas
            # With serialised calls, a request waits at most for one
            # in-flight *posted write*'s array work plus its own full
            # activate sequence and the channel slots.
            assert latency <= 2 * worst_array + 2 * cfg.transfer_cycles + 1e-9

    @given(_requests)
    @settings(max_examples=50, deadline=None)
    def test_banked_deterministic(self, stream):
        a = _drive(BankedMemory(), stream)
        b = _drive(BankedMemory(), stream)
        assert a == b

    @given(_requests)
    @settings(max_examples=50, deadline=None)
    def test_counters_match_stream(self, stream):
        memory = BankedMemory()
        _drive(memory, stream)
        assert memory.reads == sum(1 for _, w, _ in stream if not w)
        assert memory.writes == sum(1 for _, w, _ in stream if w)
        assert memory.row_hits + memory.row_misses == len(stream)

    @given(_requests)
    @settings(max_examples=50, deadline=None)
    def test_flat_model_reads_constant(self, stream):
        memory = MainMemory(latency_cycles=100.0, transfer_cycles=0.0)
        for (_, is_write, _), latency in zip(stream, _drive(memory, stream)):
            if not is_write:
                assert latency == 100.0

    @given(_requests)
    @settings(max_examples=30, deadline=None)
    def test_row_hits_never_slower_than_misses_within_bank(self, stream):
        """For back-to-back accesses to the same bank with idle channel,
        a row hit is never slower than the preceding row miss."""
        memory = BankedMemory(DRAMConfig(banks=1))
        t = 0.0
        prev_latency = None
        prev_row = None
        for addr, _, _ in stream:
            row = addr // memory.config.row_bytes
            latency = memory.access(addr, False, t)
            if prev_row is not None and row == prev_row and prev_latency is not None:
                assert latency <= prev_latency + 1e-9
            prev_latency, prev_row = latency, row
            t += latency + 50.0  # idle gap: channel and bank free
