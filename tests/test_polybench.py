"""The PolyBench kernel builders."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import build_kernel, kernel_names, materialize_trace
from repro.workloads.datasets import DatasetSize, scale_for
from repro.workloads.polybench import KERNELS, gemm
from repro.workloads.trace import trace_summary

ALL = kernel_names()


class TestRegistry:
    def test_twelve_kernels(self):
        assert len(ALL) == 12

    def test_expected_names(self):
        assert set(ALL) == {
            "gemm", "atax", "bicg", "mvt", "gesummv", "gemver",
            "syrk", "syr2k", "trmm", "2mm", "3mm", "doitgen",
        }

    def test_unknown_kernel_rejected(self):
        with pytest.raises(WorkloadError, match="gemm"):
            build_kernel("linpack")


class TestAllKernelsBuild:
    @pytest.mark.parametrize("name", ALL)
    def test_builds_and_traces(self, name):
        prog = build_kernel(name)
        trace = materialize_trace(prog)
        s = trace_summary(trace)
        assert s["loads"] > 100
        assert s["branches"] > 10
        assert s["compute_ops"] > 100

    @pytest.mark.parametrize("name", ALL)
    def test_fresh_arrays_per_build(self, name):
        a = build_kernel(name)
        b = build_kernel(name)
        assert a.arrays[0] is not b.arrays[0]

    @pytest.mark.parametrize("name", ALL)
    def test_program_name(self, name):
        assert build_kernel(name).name == name


class TestDatasetScaling:
    def test_scale_for(self):
        assert scale_for({"n": 10}, DatasetSize.SMALL) == {"n": 20}
        assert scale_for({"n": 10}, DatasetSize.LARGE) == {"n": 30}

    def test_scale_rejects_empty(self):
        with pytest.raises(WorkloadError):
            scale_for({}, DatasetSize.MINI)

    def test_small_is_bigger_than_mini(self):
        mini = build_kernel("gemm", DatasetSize.MINI)
        small = build_kernel("gemm", DatasetSize.SMALL)
        assert small.footprint_bytes > mini.footprint_bytes

    def test_small_trace_longer(self):
        mini = trace_summary(materialize_trace(build_kernel("syrk", DatasetSize.MINI)))
        small = trace_summary(materialize_trace(build_kernel("syrk", DatasetSize.SMALL)))
        assert small["loads"] > 4 * mini["loads"]


class TestGemmStructure:
    def test_load_count_formula(self):
        """gemm's MAC loop loads C and B per iteration (A is hoisted),
        plus one C load per scale iteration and one A load per k-loop."""
        n = gemm.BASE_DIMS["ni"]
        prog = build_kernel("gemm")
        s = trace_summary(materialize_trace(prog))
        expected = n * n + n * n * n * 2 + n * n  # scale + mac + hoisted A
        assert s["loads"] == expected

    def test_store_count_formula(self):
        n = gemm.BASE_DIMS["ni"]
        s = trace_summary(materialize_trace(build_kernel("gemm")))
        # One C store per scale iteration and per MAC iteration.
        assert s["stores"] == n * n + n * n * n

    def test_footprint(self):
        prog = build_kernel("gemm")
        n = gemm.BASE_DIMS["ni"]
        assert prog.footprint_bytes == 3 * n * n * 4


class TestAccessVariety:
    def test_mvt_has_strided_phase(self):
        """mvt's second phase must walk columns (stride N)."""
        prog = build_kernel("mvt")
        loops = [lp for lp in prog.loops() if lp.is_innermost]
        strides = set()
        for lp in loops:
            for statement in lp.statements():
                for ref in statement.reads:
                    strides.add(ref.stride_elements(lp.var))
        assert 1 in strides
        assert any(s > 1 for s in strides)

    def test_trmm_triangular_bounds(self):
        prog = build_kernel("trmm")
        inner = [lp for lp in prog.loops() if lp.is_innermost][0]
        assert not inner.lower.is_constant  # k starts at i+1

    def test_doitgen_three_dimensional(self):
        prog = build_kernel("doitgen")
        assert any(len(a.shape) == 3 for a in prog.arrays)
