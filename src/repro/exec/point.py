"""Simulation points: the unit of work the execution engine schedules.

A :class:`RunPoint` is one fully-specified, independent simulation —
``(kernel, system configuration, optimization level, dataset size)``,
with any fault-injection seed carried inside the configuration's
:class:`~repro.reliability.faults.ReliabilityConfig`.  Points are plain
frozen dataclasses so they pickle cheaply across worker-process
boundaries, and :func:`execute_point` is a module-level function so the
:mod:`concurrent.futures` machinery can address it by name.

:func:`execute_point` reproduces *exactly* the recipe
:meth:`repro.experiments.runner.ExperimentRunner.run` uses — build the
kernel at the requested size, optimize, encode the trace, warm the
L2 with the program's arrays, simulate — so a point executed in a worker
process is bit-identical to the same point executed inline (pinned by
``tests/test_exec.py``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..cpu.model import RunResult
from ..cpu.system import System, SystemConfig, warm_regions_of
from ..transforms.pipeline import OptLevel, optimize
from ..workloads import build_kernel
from ..workloads.datasets import DatasetSize
from ..workloads.encode import EncodedTrace, encode_trace

#: Per-process memo of built programs and encoded traces, keyed by
#: ``(kernel, size, level)``.  A worker that executes several points of
#: the same kernel (one per configuration, the common batch shape)
#: encodes the trace once; sharing is safe because ``System.run`` never
#: mutates events and ``optimize`` clones before annotating — exactly
#: the sharing ``ExperimentRunner`` does on the serial path.  The
#: columnar form keeps the per-process footprint small under large
#: ``--jobs`` fan-outs (every worker holds its own memo).
_PROGRAMS: Dict[Tuple[str, DatasetSize, OptLevel], object] = {}
_TRACES: Dict[Tuple[str, DatasetSize, OptLevel], EncodedTrace] = {}


@dataclass(frozen=True)
class RunPoint:
    """One independent simulation of the evaluation grid.

    Parameters
    ----------
    kernel : str
        Kernel name from the PolyBench registry.
    config : SystemConfig
        The complete platform configuration.  Reliability seeds live in
        ``config.reliability``; the DL1 replacement seed in
        ``config.dl1_replacement_seed``.
    level : OptLevel
        Code optimization level applied before tracing.
    size : DatasetSize
        Dataset size class of the kernel.
    label : str
        Display name for progress reporting and probe events (defaults
        to ``kernel/frontend/level``).
    """

    kernel: str
    config: SystemConfig
    level: OptLevel = OptLevel.NONE
    size: DatasetSize = DatasetSize.MINI
    label: str = field(default="", compare=False)

    def display(self) -> str:
        """Progress label — ``label`` or ``kernel/frontend/level``.

        Returns
        -------
        str
            The human-readable identity of this point.
        """
        if self.label:
            return self.label
        return f"{self.kernel}/{self.config.frontend}/{self.level.name}"


def build_point_program(point: RunPoint):
    """Build (and optimize) the IR program a point simulates.

    Parameters
    ----------
    point : RunPoint
        The simulation point.

    Returns
    -------
    repro.workloads.ir.Program
        The kernel at ``point.size`` with ``point.level`` transforms
        applied — the exact program :func:`execute_point` traces, and
        the IR the cache key fingerprints.
    """
    key = (point.kernel, point.size, point.level)
    if key not in _PROGRAMS:
        program = build_kernel(point.kernel, point.size)
        if point.level is not OptLevel.NONE:
            program = optimize(program, point.level)
        _PROGRAMS[key] = program
    return _PROGRAMS[key]


def _point_trace(point: RunPoint) -> EncodedTrace:
    """The encoded trace for a point, memoised per process."""
    key = (point.kernel, point.size, point.level)
    if key not in _TRACES:
        _TRACES[key] = encode_trace(build_point_program(point))
    return _TRACES[key]


def execute_point(point: RunPoint) -> RunResult:
    """Simulate one point from scratch (worker-process entry point).

    Mirrors ``ExperimentRunner.run`` step for step: the L2 is pre-warmed
    with the program's arrays (PolyBench initialisation) and the DL1
    starts cold.  The function rebuilds all state locally, so it is safe
    to call concurrently from any number of processes.

    Parameters
    ----------
    point : RunPoint
        The simulation point.

    Returns
    -------
    RunResult
        The timing result, bit-identical to an inline
        ``ExperimentRunner.run`` of the same point.
    """
    program = build_point_program(point)
    trace = _point_trace(point)
    system = System(point.config)
    return system.run(trace, warm_regions=warm_regions_of(program))


def execute_point_batch(points: Sequence[RunPoint]) -> List[RunResult]:
    """Simulate a group of same-trace points in one batched pass.

    All points must share ``(kernel, size, level)`` — they replay the
    same encoded trace, so the group runs through
    :func:`repro.cpu.batched.run_batch`: one pass over the opcode
    columns drives every configuration lane simultaneously.  Lanes that
    cannot batch fall back to solo ``System.run`` inside ``run_batch``;
    either way each result is bit-identical to :func:`execute_point` of
    the same point (pinned by ``tests/test_batched.py``).

    Parameters
    ----------
    points : sequence of RunPoint
        The group, sharing one ``(kernel, size, level)``.

    Returns
    -------
    list of RunResult
        One result per point, in input order.

    Raises
    ------
    ValueError
        When the points do not share a single trace identity.
    """
    if not points:
        return []
    first = points[0]
    group_key = (first.kernel, first.size, first.level)
    for point in points:
        if (point.kernel, point.size, point.level) != group_key:
            raise ValueError(
                f"batched group mixes traces: {point.display()} vs {first.display()}"
            )
    from ..cpu.batched import run_batch

    program = build_point_program(first)
    trace = _point_trace(first)
    systems = [System(point.config) for point in points]
    return run_batch(trace, systems, warm_regions=warm_regions_of(program))


def execute_point_timed(point: RunPoint) -> Tuple[RunResult, int, float]:
    """Simulate one point, reporting the executing pid and wall time.

    A thin telemetry wrapper around :func:`execute_point` — the result
    passes through untouched, so timed execution stays bit-identical to
    the plain path.  Module-level so :mod:`concurrent.futures` can
    pickle it by name, like :func:`execute_point` itself.

    Parameters
    ----------
    point : RunPoint
        The simulation point.

    Returns
    -------
    tuple of (RunResult, int, float)
        The result, the pid of the process that executed it, and the
        execution wall time in seconds (monotonic clock).
    """
    t0 = time.monotonic()
    result = execute_point(point)
    return result, os.getpid(), time.monotonic() - t0
