"""Figure 1: performance penalty of the drop-in STT-MRAM D-cache.

Paper: "may suffer up to 55% performance penalty if the NVM D-cache is
introduced instead of the regular SRAM one" — penalties in the 40-55%
band per kernel, relative to the SRAM D-cache baseline (= 100%).
"""

from __future__ import annotations

from typing import Optional

from ..transforms.pipeline import OptLevel
from .report import FigureResult
from .runner import ExperimentRunner

#: The paper's headline numbers for this figure.
PAPER_MAX_PENALTY = 55.0
PAPER_AVG_PENALTY = 54.0


def run(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Drop-in NVM DL1 penalty per kernel, unoptimized code."""
    runner = runner or ExperimentRunner()
    penalties = runner.penalties("dropin", OptLevel.NONE)
    avg = sum(penalties) / len(penalties)
    return FigureResult(
        name="fig1",
        title="Drop-in STT-MRAM D-cache penalty vs SRAM baseline",
        labels=list(runner.kernels),
        series={"dropin": penalties},
        notes=[
            f"paper: up to ~{PAPER_MAX_PENALTY:.0f}% per kernel, ~{PAPER_AVG_PENALTY:.0f}% average",
            f"measured: max {max(penalties):.1f}%, average {avg:.1f}%",
        ],
    )
