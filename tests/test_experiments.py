"""Experiment runner and figure modules on a fast kernel subset."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, ExperimentRunner
from repro.experiments import fig1, fig3, fig4, fig5, fig6, fig7, fig8, fig9, table1
from repro.experiments.report import FigureResult, render_figure
from repro.experiments.runner import CONFIGURATIONS, make_system
from repro.transforms.pipeline import OptLevel

#: Small subset keeps the experiment tests fast while covering both a
#: VWB-friendly kernel and a strided one.
FAST = ["gemm", "trmm"]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(kernels=FAST)


class TestRunner:
    def test_configurations_complete(self):
        assert set(CONFIGURATIONS) == {"sram", "dropin", "vwb", "l0", "emshr", "hybrid"}

    def test_make_system_by_name(self):
        assert make_system("vwb").frontend.name == "vwb"

    def test_make_system_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            make_system("victim")

    def test_trace_cached(self, runner):
        assert runner.trace("gemm") is runner.trace("gemm")

    def test_traces_differ_by_level(self, runner):
        assert runner.trace("gemm") is not runner.trace("gemm", OptLevel.FULL)

    def test_result_cached_for_named_configs(self, runner):
        a = runner.run("sram", "gemm")
        b = runner.run("sram", "gemm")
        assert a is b

    def test_penalty_positive_for_dropin(self, runner):
        assert runner.penalty("dropin", "gemm") > 0

    def test_penalties_cover_all_kernels(self, runner):
        assert len(runner.penalties("dropin")) == len(FAST)


class TestFigureModules:
    def test_table1_contains_paper_values(self, runner):
        result = table1.run(runner)
        text = render_figure(result)
        assert "3.37ns" in text and "0.787ns" in text

    def test_fig1_penalties_in_band(self, runner):
        result = fig1.run(runner)
        for value in result.series_for("dropin"):
            assert 30.0 < value < 80.0

    def test_fig3_vwb_reduces_average(self, runner):
        result = fig3.run(runner)
        avg = result.averages()
        assert avg["vwb"] < avg["dropin"]

    def test_fig4_read_dominates(self, runner):
        result = fig4.run(runner)
        avg = result.averages()
        assert avg["read_share"] > 80.0
        for r, w in zip(result.series_for("read_share"), result.series_for("write_share")):
            assert r + w == pytest.approx(100.0) or (r == 0.0 and w == 0.0)

    def test_fig5_optimized_below_unoptimized_average(self, runner):
        result = fig5.run(runner)
        avg = result.averages()
        assert avg["vwb_with_opt"] < avg["vwb_no_opt"]
        assert avg["vwb_with_opt"] < 15.0

    def test_fig6_shares_sum_to_100(self, runner):
        result = fig6.run(runner)
        for i in range(len(result.labels)):
            total = sum(result.series[k][i] for k in result.series)
            assert total == pytest.approx(100.0, abs=0.1) or total == 0.0

    def test_fig6_prefetching_largest(self, runner):
        result = fig6.run(runner)
        avg = result.averages()
        assert avg["prefetching"] >= max(avg["vectorization"], avg["others"])

    def test_fig7_bigger_vwb_no_worse_on_average(self, runner):
        # On the 2-kernel fast subset the sweep is near-flat; the strict
        # monotonicity check runs on the wider suite in the paper-claims
        # tests.  Here we only require "bigger is not clearly worse".
        result = fig7.run(runner)
        avg = result.averages()
        assert avg["vwb_1kbit"] >= avg["vwb_4kbit"] - 1.0

    def test_fig8_vwb_beats_rivals(self, runner):
        result = fig8.run(runner)
        avg = result.averages()
        assert avg["vwb"] < avg["l0"]
        assert avg["vwb"] < avg["emshr"]

    def test_fig9_nvm_gains_more(self, runner):
        result = fig9.run(runner)
        avg = result.averages()
        assert avg["nvm_proposal_gain"] > avg["baseline_gain"] - 1.0

    def test_registry_has_all_paper_artefacts(self):
        for name in ("table1", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"):
            assert name in EXPERIMENTS


class TestReportRendering:
    def test_render_includes_average_row(self):
        result = FigureResult(
            name="x",
            title="t",
            labels=["a", "b"],
            series={"s": [10.0, 20.0]},
        )
        text = render_figure(result)
        assert "AVERAGE" in text
        assert "15.0" in text

    def test_render_without_bars(self):
        result = FigureResult(name="x", title="t", labels=["a"], series={"s": [10.0]})
        assert "#" not in render_figure(result, bars=False)

    def test_series_for_unknown_raises(self):
        result = FigureResult(name="x", title="t", labels=["a"], series={"s": [1.0]})
        with pytest.raises(KeyError):
            result.series_for("nope")

    def test_notes_rendered(self):
        result = FigureResult(
            name="x", title="t", labels=["a"], series={"s": [1.0]}, notes=["hello"]
        )
        assert "note: hello" in render_figure(result)
