"""Set-associative, write-back, write-allocate cache with banked timing.

This is the building block for every cache level in the reproduced
platform: the SRAM IL1, the SRAM or STT-MRAM DL1, and the unified L2.
Read and write hit latencies are configured independently because the
whole point of the paper is their asymmetry in STT-MRAM (4 vs 2 cycles at
1 GHz against SRAM's 1 cycle).

Timing model
------------

Every demand access returns the number of cycles the requester must wait.
A read hit costs the read-hit latency plus any wait for the line's bank; a
read miss adds the next level's latency (critical-word-first: the fill
write happens in the background and occupies the bank, but the requester
does not wait for it).  Dirty victims go through the write buffer and only
stall the requester when the buffer is full.  Software prefetches allocate
an MSHR entry and complete in the background; a later demand access to an
in-flight line waits only for the remaining fill time.

The cache can also serve as the *next level* of another cache through
:meth:`line_access`, which is how DL1 misses reach L2 and L2 misses reach
main memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol

from ..errors import ConfigurationError, SimulationError
from ..obs.probe import NULL_PROBE, Probe
from ..reliability.degrade import LineRetirementMap
from ..reliability.faults import FaultInjector
from ..units import is_power_of_two, log2_exact
from .banks import BankTimer
from .mshr import MSHRFile
from .replacement import make_policy
from .request import Access, AccessType
from .stats import CacheStats
from .writebuffer import WriteBuffer


class NextLevel(Protocol):
    """Anything that can serve line-sized requests from a cache."""

    def access(self, addr: int, is_write: bool, now: float) -> float:
        """Serve one line at ``addr``; return latency in cycles."""


@dataclass(frozen=True)
class WideReadResult:
    """Timing of one wide-interface read (a VWB promotion).

    Attributes:
        issued_at: Cycle the wide read started.
        line_ready: Absolute cycle each line becomes available.
    """

    issued_at: float
    line_ready: Dict[int, float]

    @property
    def ready_at(self) -> float:
        """Cycle the whole wide word is available."""
        return max(self.line_ready.values()) if self.line_ready else self.issued_at

    @property
    def latency(self) -> float:
        """Cycles until the whole wide word is available."""
        return self.ready_at - self.issued_at

    def wait_for(self, line_addr: int, now: float) -> float:
        """Remaining cycles until ``line_addr`` is available at ``now``."""
        ready = self.line_ready.get(line_addr)
        if ready is None:
            ready = self.ready_at
        return max(0.0, ready - now)


@dataclass(frozen=True)
class CacheConfig:
    """Static configuration of one cache.

    Attributes:
        name: Label used in statistics and reports (e.g. ``"dl1"``).
        capacity_bytes: Total data capacity.
        associativity: Ways per set.
        line_bytes: Line size in bytes (the paper's NVM DL1 uses 64 B).
        read_hit_cycles: Cycles for a read hit (array read time).
        write_hit_cycles: Cycles for a write hit (array write time).
        banks: Number of line-interleaved banks.
        replacement: Replacement policy name (``lru``/``fifo``/``plru``/``random``).
        mshr_entries: Outstanding-miss/prefetch capacity.
        write_buffer_entries: Slots in the write-back buffer.
        write_buffer_drain_cycles: Cycles to retire one write-back to the
            next level (0 chooses the next level's write cost implicitly
            by draining instantly; the default 6 approximates an L2 write).
        track_line_writes: Record per-line-slot write counts (endurance).
        replacement_seed: Seed for the random policy.
        fast_write_cycles: AWARE-style asymmetric-write acceleration
            (Kwon et al., ref [1] of the paper): when set, this fraction
            of array writes completes in this many cycles instead of
            ``write_hit_cycles`` (0 -> 1 transitions resolved through the
            redundant block).  ``None`` (default) disables the model.
        fast_write_fraction: Fraction of writes taking the fast path
            when AWARE is enabled.
    """

    name: str
    capacity_bytes: int
    associativity: int
    line_bytes: int
    read_hit_cycles: int
    write_hit_cycles: int
    banks: int = 1
    replacement: str = "lru"
    mshr_entries: int = 8
    write_buffer_entries: int = 4
    write_buffer_drain_cycles: float = 6.0
    track_line_writes: bool = False
    replacement_seed: int = 0
    fast_write_cycles: Optional[int] = None
    fast_write_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0:
            raise ConfigurationError(f"{self.name}: capacity and line size must be positive")
        if not is_power_of_two(self.line_bytes):
            raise ConfigurationError(f"{self.name}: line size must be a power of two")
        if self.associativity <= 0:
            raise ConfigurationError(f"{self.name}: associativity must be positive")
        if self.capacity_bytes % (self.line_bytes * self.associativity) != 0:
            raise ConfigurationError(
                f"{self.name}: capacity {self.capacity_bytes} is not divisible by "
                f"line_bytes*associativity = {self.line_bytes * self.associativity}"
            )
        sets = self.capacity_bytes // (self.line_bytes * self.associativity)
        if not is_power_of_two(sets):
            raise ConfigurationError(f"{self.name}: set count {sets} must be a power of two")
        if self.read_hit_cycles < 1 or self.write_hit_cycles < 1:
            raise ConfigurationError(f"{self.name}: hit latencies must be at least 1 cycle")
        if not is_power_of_two(self.banks):
            raise ConfigurationError(f"{self.name}: bank count must be a power of two")
        if self.fast_write_cycles is not None and self.fast_write_cycles < 1:
            raise ConfigurationError(f"{self.name}: fast writes need at least 1 cycle")
        if not 0.0 <= self.fast_write_fraction <= 1.0:
            raise ConfigurationError(f"{self.name}: fast-write fraction must be in [0, 1]")

    @property
    def sets(self) -> int:
        """Number of sets."""
        return self.capacity_bytes // (self.line_bytes * self.associativity)


class Cache:
    """One level of the cache hierarchy.

    Args:
        config: Static geometry and latency parameters.
        next_level: Where misses and write-backs go (another
            :class:`Cache` via :class:`_LineAccessAdapter`, or a
            :class:`~repro.mem.mainmem.MainMemory`).
        reliability: Optional fault injector
            (:class:`~repro.reliability.faults.FaultInjector`) enabling
            stochastic write failures with write-verify-retry, a SECDED
            decode stage on array reads, and retirement of worn line
            slots.  ``None`` (and any injector whose config has every
            rate at zero) leaves the timing bit-exact with the
            fault-free model.
    """

    def __init__(
        self,
        config: CacheConfig,
        next_level: NextLevel,
        reliability: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config
        self.next_level = next_level
        self.stats = CacheStats()
        self.reliability = reliability
        self._injector: Optional[FaultInjector] = (
            reliability if reliability is not None and reliability.config.enabled else None
        )
        self._retirement: Optional[LineRetirementMap] = None
        if self._injector is not None and self._injector.config.retire_after_retries > 0:
            self._retirement = LineRetirementMap(
                config.sets,
                config.associativity,
                self._injector.config.retire_after_retries,
            )
        self._offset_bits = log2_exact(config.line_bytes)
        self._index_bits = log2_exact(config.sets)
        self._tags: List[List[Optional[int]]] = [
            [None] * config.associativity for _ in range(config.sets)
        ]
        self._dirty: List[List[bool]] = [
            [False] * config.associativity for _ in range(config.sets)
        ]
        policy = make_policy(config.replacement, config.replacement_seed)
        self._repl = [policy.make_set(config.associativity) for _ in range(config.sets)]
        self._banks = BankTimer(config.banks, config.line_bytes)
        self._mshrs = MSHRFile(config.mshr_entries)
        self._write_buffer = WriteBuffer(
            config.write_buffer_entries, config.write_buffer_drain_cycles
        )
        self._line_writes: Dict[int, int] = {}
        self._fast_write_credit = 0.0
        self.probe: Probe = NULL_PROBE
        self._probing = False

    def set_probe(self, probe: Probe) -> None:
        """Attach an observability probe to this cache and its sub-structures."""
        self.probe = probe
        self._probing = probe.enabled
        self._banks.set_probe(probe, self.config.name)
        self._write_buffer.set_probe(probe, self.config.name)
        self._mshrs.set_probe(probe, self.config.name)

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def line_addr(self, addr: int) -> int:
        """Line-aligned base address containing ``addr``."""
        return (addr >> self._offset_bits) << self._offset_bits

    def _index_tag(self, addr: int) -> tuple:
        index = (addr >> self._offset_bits) & (self.config.sets - 1)
        tag = addr >> (self._offset_bits + self._index_bits)
        return index, tag

    def _find_way(self, index: int, tag: int) -> Optional[int]:
        # list.index scans at C speed; invalid ways hold None and never
        # match an integer tag.
        try:
            return self._tags[index].index(tag)
        except ValueError:
            return None

    def contains(self, addr: int) -> bool:
        """True if the line holding ``addr`` is resident."""
        index, tag = self._index_tag(addr)
        return self._find_way(index, tag) is not None

    def is_dirty(self, addr: int) -> bool:
        """True if the line holding ``addr`` is resident and dirty."""
        index, tag = self._index_tag(addr)
        way = self._find_way(index, tag)
        return way is not None and self._dirty[index][way]

    @property
    def resident_lines(self) -> int:
        """Number of valid lines currently stored."""
        return sum(1 for ways in self._tags for t in ways if t is not None)

    @property
    def retired_lines(self) -> int:
        """Line slots retired by the reliability mechanism (0 without one)."""
        return 0 if self._retirement is None else self._retirement.retired_lines

    @property
    def line_write_counts(self) -> Dict[int, int]:
        """Per-line-slot write counts (empty unless ``track_line_writes``)."""
        return dict(self._line_writes)

    @property
    def write_buffer(self) -> WriteBuffer:
        """The cache's write-back buffer (exposed for statistics)."""
        return self._write_buffer

    @property
    def mshrs(self) -> MSHRFile:
        """The cache's MSHR file (exposed for statistics)."""
        return self._mshrs

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def access(self, acc: Access, now: float) -> float:
        """Serve a demand access of arbitrary size.

        Accesses spanning multiple lines are served line-by-line and
        serialise (the datapath issues one cache access per line).

        Returns:
            Total latency in cycles.
        """
        if acc.type is AccessType.PREFETCH:
            return self.prefetch(acc.addr, now)
        total = 0.0
        t = now
        for line in acc.lines(self.config.line_bytes):
            latency = self._access_line(line, acc.type.is_write, t)
            total += latency
            t += latency
        return total

    def line_access(self, addr: int, is_write: bool, now: float) -> float:
        """Next-level interface: serve exactly one line at ``addr``."""
        return self._access_line(self.line_addr(addr), is_write, now)

    # Alias so a Cache satisfies the NextLevel protocol directly.
    def access_line_as_next_level(self, addr: int, is_write: bool, now: float) -> float:
        """Deprecated alias of :meth:`line_access`."""
        return self.line_access(addr, is_write, now)

    def prefetch(self, addr: int, now: float) -> float:
        """Issue a non-binding software prefetch for the line of ``addr``.

        Returns:
            Cycles the issuing core spends on the prefetch (0: the tag
            probe overlaps with the issue slot already charged by the CPU
            model).  The fill proceeds in the background and is installed
            lazily by the next demand access.
        """
        line = self.line_addr(addr)
        if self.contains(line):
            self.stats.prefetch_hits += 1
            return 0.0
        if self._mshrs.lookup(line) is not None:
            self.stats.prefetch_hits += 1
            return 0.0
        self.stats.prefetch_misses += 1
        entry = self._mshrs.allocate(line, now, ready_at=now, is_prefetch=True)
        if entry is None:
            # No MSHR free: the hint is dropped before consuming any
            # next-level bandwidth.
            return 0.0
        next_latency = self.next_level.access(line, False, now + self.config.read_hit_cycles)
        entry.ready_at = now + self.config.read_hit_cycles + next_latency
        return 0.0

    # ------------------------------------------------------------------
    # Wide-interface path (used by the VWB front-end)
    # ------------------------------------------------------------------

    def read_lines_wide(
        self, addr: int, n_lines: int, now: float, critical_addr: Optional[int] = None
    ) -> "WideReadResult":
        """Read ``n_lines`` consecutive lines through the wide interface.

        This models the VWB promotion: the NVM array reads a full wide
        word.  Lines in distinct banks are read in parallel, each
        occupying its bank for one read time; lines colliding in a bank
        serialise.  Any line not resident is fetched from the next level
        over the narrow port, one line at a time, *critical line first*
        when ``critical_addr`` is given — so a demand access waiting on
        the promotion can proceed as soon as its own line lands.

        Args:
            addr: Base address, line-aligned.
            n_lines: Number of consecutive lines (the VWB line width).
            critical_addr: Address the requester actually needs, if any.

        Returns:
            A :class:`WideReadResult` with per-line absolute ready times.
        """
        if n_lines <= 0:
            raise ConfigurationError(f"wide read needs at least one line: {n_lines}")
        base = self.line_addr(addr)
        lines = [base + i * self.config.line_bytes for i in range(n_lines)]
        if critical_addr is not None:
            critical_line = self.line_addr(critical_addr)
            if critical_line in lines:
                lines.remove(critical_line)
                lines.insert(0, critical_line)
        line_ready: Dict[int, float] = {}
        fetch_at = now
        resident: List[int] = []
        tags = self._tags
        off = self._offset_bits
        set_mask = self.config.sets - 1
        idx_shift = off + self._index_bits
        for line in lines:
            if (line >> idx_shift) in tags[(line >> off) & set_mask] or self._mshr_ready_fill(
                line, now
            ):
                resident.append(line)
            else:
                # Missing lines arrive serially over the narrow L2 port.
                latency = self._access_line(line, False, fetch_at)
                fetch_at += latency
                line_ready[line] = fetch_at
        # Resident lines are read through the wide port: one array read
        # per bank, in parallel across banks, serialised within a bank
        # (successive reservations accumulate on its busy time).  The
        # critical line was ordered first, so its ready time is exact.
        stats = self.stats
        repl = self._repl
        reserve = self._banks.reserve
        injector = self._injector
        read_cycles = float(self.config.read_hit_cycles)
        for line in resident:
            wait, finish = reserve(line, now, read_cycles)
            stats.bank_wait_cycles += int(wait)
            index = (line >> off) & set_mask
            try:
                way = tags[index].index(line >> idx_shift)
            except ValueError:
                way = None
            if way is not None:
                repl[index].touch(way)
                stats.read_hits += 1
                if injector is not None:
                    finish += self._verified_read(line, index, way, finish)
            line_ready[line] = finish
        return WideReadResult(issued_at=now, line_ready=line_ready)

    def install_line(self, addr: int, dirty: bool, now: float) -> float:
        """Accept a line written back from an upper buffer (VWB eviction).

        If the line is still resident it is updated in place (an NVM array
        write occupying its bank); if it has since been evicted, a dirty
        line is forwarded to the next level through the write buffer and a
        clean one is dropped.

        Returns:
            Stall cycles visible to the requester (only nonzero when the
            write buffer is full).
        """
        line = self.line_addr(addr)
        index, tag = self._index_tag(line)
        way = self._find_way(index, tag)
        if way is not None:
            if dirty:
                cycles = float(self._array_write_cycles())
                wait, finish = self._banks.reserve(line, now, cycles)
                self.stats.bank_wait_cycles += int(wait)
                self._dirty[index][way] = True
                self._count_line_write(index, way)
                self.stats.write_hits += 1
                if self._injector is not None:
                    # Retries run in the background (the VWB eviction
                    # already left the critical path) but still occupy
                    # the bank and wear the slot.
                    self._verify_write(line, index, way, finish, cycles)
            return 0.0
        if dirty:
            stall = self._write_buffer.push(now)
            self.stats.writebacks += 1
            self.stats.writeback_stall_cycles += int(stall)
            self.next_level.access(line, True, now + stall)
            return stall
        return 0.0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def clear_stats(self) -> None:
        """Zero the statistics and timing state but keep cache contents.

        Used between a warm-up phase (PolyBench's array initialisation,
        which the paper's gem5 runs execute before the kernel) and the
        measured kernel run.  Consistently with :meth:`reset`, the AWARE
        fast-write credit and the retirement map's per-slot retry
        counters are cleared too (they are measurement state, not
        contents), so the reliability statistics of a warm run never
        include the previous run's retries; already-retired slots stay
        retired (architectural state, like resident lines).
        """
        self.stats = CacheStats()
        self._banks.reset()
        self._mshrs.reset()
        self._write_buffer.reset()
        self._line_writes.clear()
        self._fast_write_credit = 0.0
        if self.reliability is not None:
            self.reliability.clear_stats()
        if self._retirement is not None:
            self._retirement.clear_retries()

    def reset(self) -> None:
        """Invalidate all lines and clear all timing/statistics state."""
        cfg = self.config
        self._tags = [[None] * cfg.associativity for _ in range(cfg.sets)]
        self._dirty = [[False] * cfg.associativity for _ in range(cfg.sets)]
        policy = make_policy(cfg.replacement, cfg.replacement_seed)
        self._repl = [policy.make_set(cfg.associativity) for _ in range(cfg.sets)]
        self._banks.reset()
        self._mshrs.reset()
        self._write_buffer.reset()
        self._line_writes.clear()
        self._fast_write_credit = 0.0
        self.stats = CacheStats()
        if self.reliability is not None:
            self.reliability.reset()
        if self._retirement is not None:
            self._retirement.reset()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _array_write_cycles(self) -> int:
        """Cycles of the next array write, honouring the AWARE model.

        The fast/slow decision is a deterministic credit accumulator so
        runs stay reproducible: with fraction f, every 1/f-th write (on
        average, exactly) takes the fast path.
        """
        cfg = self.config
        if cfg.fast_write_cycles is None:
            return cfg.write_hit_cycles
        self._fast_write_credit += cfg.fast_write_fraction
        if self._fast_write_credit >= 1.0:
            self._fast_write_credit -= 1.0
            return cfg.fast_write_cycles
        return cfg.write_hit_cycles

    # ------------------------------------------------------------------
    # Reliability internals (no-ops unless a fault injector is attached)
    # ------------------------------------------------------------------

    def _verify_write(
        self, line: int, index: int, way: int, start: float, write_cycles: float
    ) -> float:
        """Write-verify-retry for one array line write completing at ``start``.

        Each failed verification re-issues the write, re-occupying the
        line's bank for a full array write — that extra occupancy (and
        the longer drain time returned to the store path) is what
        back-pressures the store and write buffers.  A write that
        exhausts its retry budget falls back to write-through: the
        update is posted to the next level so no architectural data is
        lost, and the local dirty bit is dropped because the next level
        now holds the authoritative copy.  Slots whose cumulative retry
        count crosses the retirement threshold are retired.

        Returns:
            Extra cycles beyond the first write attempt.
        """
        inj = self._injector
        if inj is None or inj.config.write_error_rate == 0.0:
            return 0.0
        attempts = inj.write_attempts()
        extra = 0.0
        finish = start
        if attempts > 1:
            retry_cycles = 0.0
            for _ in range(attempts - 1):
                wait, finish = self._banks.reserve(line, finish, write_cycles)
                self.stats.bank_wait_cycles += int(wait)
                retry_cycles += wait + write_cycles
            inj.stats.write_retry_cycles += retry_cycles
            extra += retry_cycles
            if self._probing:
                self.probe.fault(self.config.name, "write_retry", line, retry_cycles, start)
        if inj.last_write_failed() and self._dirty[index][way]:
            stall = self._write_buffer.push(finish)
            self.stats.writebacks += 1
            self.stats.writeback_stall_cycles += int(stall)
            self.next_level.access(line, True, finish + stall)
            self._dirty[index][way] = False
            extra += stall
        if self._retirement is not None and self._retirement.record_retries(
            index, way, attempts - 1
        ):
            self._retire_slot(line, index, way, finish)
        return extra

    def _retire_slot(self, line: int, index: int, way: int, now: float) -> None:
        """Retire line slot ``(index, way)``: flush it, then disable it.

        A dirty resident line is forwarded to the next level first; the
        slot is invalidated and marked unusable in the retirement map,
        shrinking the set's effective associativity by one (the map
        never retires the last usable way of a set).
        """
        if self._tags[index][way] is not None:
            if self._dirty[index][way]:
                stall = self._write_buffer.push(now)
                self.stats.writebacks += 1
                self.stats.writeback_stall_cycles += int(stall)
                self.next_level.access(self._victim_addr(index, way), True, now + stall)
            self._tags[index][way] = None
            self._dirty[index][way] = False
        self._retirement.retire(index, way)
        self._injector.stats.retired_lines += 1
        if self._probing:
            self.probe.fault(self.config.name, "line_retired", line, 0.0, now)

    def _verified_read(self, line: int, index: int, way: int, finish: float) -> float:
        """SECDED stage (and fault handling) for one array read hit.

        Every protected read pays the fixed decode adder.  When the
        decode reports an uncorrectable pattern the line is re-read once
        (transient read disturb need not repeat) at the cost of a second
        bank occupancy and decode; if the re-read still fails, the line
        is refilled from the next level and the array copy rewritten in
        the background — graceful degradation: the requester waits out
        the refill instead of the machine stopping.  A dirty line's
        local update is lost in that last case (the refill restores the
        next level's copy); running past SECDED's strength is not free.

        Returns:
            Extra cycles the requester waits beyond the plain array read.
        """
        inj = self._injector
        if inj is None:
            return 0.0
        decode = float(inj.config.ecc_decode_cycles)
        extra = decode
        inj.stats.ecc_decode_cycles += decode
        if self._probing and decode > 0.0:
            self.probe.fault(self.config.name, "ecc_decode", line, decode, finish)
        if not inj.config.read_fault_possible:
            return extra
        if inj.decode(inj.read_faulty_bits()).usable:
            return extra
        # Detected-uncorrectable: re-read the array once.
        inj.stats.ecc_rereads += 1
        read_cycles = float(self.config.read_hit_cycles)
        wait, refinish = self._banks.reserve(line, finish + decode, read_cycles)
        self.stats.bank_wait_cycles += int(wait)
        inj.stats.fault_refill_cycles += wait + read_cycles
        inj.stats.ecc_decode_cycles += decode
        extra += wait + read_cycles + decode
        if self._probing:
            self.probe.fault(
                self.config.name, "fault_refill", line, wait + read_cycles, finish + decode
            )
            if decode > 0.0:
                self.probe.fault(self.config.name, "ecc_decode", line, decode, refinish)
        if inj.decode(inj.read_faulty_bits()).usable:
            return extra
        # Still uncorrectable: refill from the next level (which reports
        # its own share to the ledger during the nested access) and
        # rewrite the array in the background.
        inj.stats.fault_refills += 1
        t = refinish + decode
        next_latency = self.next_level.access(line, False, t)
        inj.stats.fault_refill_cycles += next_latency
        extra += next_latency
        self._dirty[index][way] = False
        self._count_line_write(index, way)
        wait, _ = self._banks.reserve(line, t + next_latency, float(self._array_write_cycles()))
        self.stats.bank_wait_cycles += int(wait)
        return extra

    def _choose_victim(self, index: int) -> int:
        """Pick the fill victim for set ``index``, avoiding retired slots.

        Retired slots are presented to the policy as *occupied* (their
        tag is ``None``, so they would otherwise look attractively free)
        and the policy is nudged off them with ``touch`` when it still
        names one; FIFO and random rotate on the repeated ``victim``
        call itself.  A deterministic scan backstops policies that
        cannot be steered.
        """
        valid = [t is not None for t in self._tags[index]]
        retirement = self._retirement
        if retirement is None or retirement.enabled_ways(index) == self.config.associativity:
            return self._repl[index].victim(valid)
        masked = [v or retirement.is_disabled(index, w) for w, v in enumerate(valid)]
        repl = self._repl[index]
        for _ in range(4 * self.config.associativity):
            way = repl.victim(masked)
            if not retirement.is_disabled(index, way):
                return way
            repl.touch(way)
        for way, is_valid in enumerate(valid):
            if not is_valid and not retirement.is_disabled(index, way):
                return way
        for way in range(self.config.associativity):
            if not retirement.is_disabled(index, way):
                return way
        raise SimulationError(
            f"{self.config.name}: set {index} has no usable way left"
        )

    def _access_line(self, line: int, is_write: bool, now: float) -> float:
        index, tag = self._index_tag(line)
        way = self._find_way(index, tag)
        hit_cycles = self._array_write_cycles() if is_write else self.config.read_hit_cycles

        if way is not None:
            wait, finish = self._banks.reserve(line, now, float(hit_cycles))
            self.stats.bank_wait_cycles += int(wait)
            self._repl[index].touch(way)
            extra = 0.0
            if is_write:
                self._dirty[index][way] = True
                self._count_line_write(index, way)
                self.stats.write_hits += 1
                if self._injector is not None:
                    extra = self._verify_write(line, index, way, finish, float(hit_cycles))
            else:
                self.stats.read_hits += 1
                if self._injector is not None:
                    extra = self._verified_read(line, index, way, finish)
            latency = wait + hit_cycles + extra
            if self._probing:
                self.probe.cache_access(
                    self.config.name, is_write, True, line,
                    latency, float(hit_cycles), now,
                )
            return latency

        # Miss: first check for an in-flight fill (software prefetch).
        entry = self._mshrs.lookup(line)
        if entry is not None:
            remaining = max(0.0, entry.ready_at - now)
            self._mshrs.release(line)
            self._fill(line, now + remaining)
            index, tag = self._index_tag(line)
            way = self._find_way(index, tag)
            if is_write:
                self.stats.write_misses += 1
                if way is not None:
                    self._dirty[index][way] = True
                    self._count_line_write(index, way)
                else:
                    # The slot was retired while filling: post the write
                    # straight to the next level instead.
                    self.next_level.access(line, True, now + remaining)
                latency = remaining + self._array_write_cycles()
            else:
                self.stats.read_misses += 1
                latency = max(float(self.config.read_hit_cycles), remaining)
            if self._probing:
                # The in-flight fill time is this level's to account for
                # (its prefetch issued the next-level request earlier).
                self.probe.cache_access(
                    self.config.name, is_write, False, line, latency, latency, now
                )
            return latency

        # True miss: fetch from the next level (write-allocate for writes).
        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        tag_check = float(self.config.read_hit_cycles)
        next_latency = self.next_level.access(line, False, now + tag_check)
        data_ready = now + tag_check + next_latency
        self._fill(line, data_ready)
        if is_write:
            index, tag = self._index_tag(line)
            way = self._find_way(index, tag)
            if way is not None:
                self._dirty[index][way] = True
                self._count_line_write(index, way)
            else:
                # The slot was retired while filling: post the write
                # straight to the next level instead.
                self.next_level.access(line, True, data_ready)
            latency = data_ready - now + self._array_write_cycles()
        else:
            latency = data_ready - now
        if self._probing:
            # Only the tag check is this level's own time; the next level
            # reported its share itself during the nested access call.
            self.probe.cache_access(
                self.config.name, is_write, False, line, latency, tag_check, now
            )
        return latency

    def _mshr_ready_fill(self, line: int, now: float) -> bool:
        """Install a completed prefetch for ``line`` if one is lingering."""
        entry = self._mshrs.lookup(line)
        if entry is None or entry.ready_at > now:
            return False
        self._mshrs.release(line)
        self._fill(line, now)
        return True

    def _fill(self, line: int, when: float) -> None:
        """Install ``line``, evicting a victim if needed.

        The fill write occupies the line's bank starting at ``when`` (data
        arrival); the requester does not wait for it (critical word
        first).
        """
        index, tag = self._index_tag(line)
        if self._find_way(index, tag) is not None:
            raise SimulationError(
                f"{self.config.name}: fill for already-resident line {line:#x}"
            )
        victim = self._choose_victim(index)
        if self._tags[index][victim] is not None:
            self.stats.evictions += 1
            if self._dirty[index][victim]:
                victim_line = self._victim_addr(index, victim)
                stall = self._write_buffer.push(when)
                self.stats.writebacks += 1
                self.stats.writeback_stall_cycles += int(stall)
                self.next_level.access(victim_line, True, when + stall)
        self._tags[index][victim] = tag
        self._dirty[index][victim] = False
        self._repl[index].touch(victim)
        self.stats.fills += 1
        self._count_line_write(index, victim)
        wait, finish = self._banks.reserve(line, when, float(self.config.write_hit_cycles))
        self.stats.bank_wait_cycles += int(wait)
        if self._injector is not None:
            # The fill write is verified too; it happens off the critical
            # path, so its retries cost bank occupancy, not latency.
            self._verify_write(line, index, victim, finish, float(self.config.write_hit_cycles))

    def _victim_addr(self, index: int, way: int) -> int:
        tag = self._tags[index][way]
        if tag is None:
            raise SimulationError(f"{self.config.name}: victim address of empty way")
        return (tag << (self._offset_bits + self._index_bits)) | (index << self._offset_bits)

    def _count_line_write(self, index: int, way: int) -> None:
        if not self.config.track_line_writes:
            return
        slot = index * self.config.associativity + way
        self._line_writes[slot] = self._line_writes.get(slot, 0) + 1
