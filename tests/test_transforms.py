"""Transformation passes."""

import pytest

from repro.errors import TransformError
from repro.transforms import (
    BranchOptimize,
    InsertPrefetch,
    Interchange,
    OptLevel,
    Vectorize,
    apply_all,
    optimize,
    transforms_for_level,
)
from repro.workloads import build_kernel, materialize_trace
from repro.workloads.affine import Var
from repro.workloads.ir import Array, Program, loop, stmt
from repro.workloads.trace import trace_summary

i, j, k = Var("i"), Var("j"), Var("k")


def unit_stride_prog(n=16):
    x, y = Array("x", (n,)), Array("y", (n,))
    return Program("u", [loop(i, n, [stmt(reads=[x[i]], writes=[y[i]], flops=1)])])


def strided_prog(n=8):
    a = Array("A", (n, n))
    return Program("s", [loop(i, n, [stmt(reads=[a[i, 0]], flops=1)])])


class TestVectorize:
    def test_marks_unit_stride_loop(self):
        out = Vectorize(width=4).apply(unit_stride_prog())
        assert out.loops()[0].vector_width == 4

    def test_skips_strided_loop(self):
        out = Vectorize(width=4).apply(strided_prog())
        assert out.loops()[0].vector_width == 1

    def test_allow_gather_vectorizes_strided(self):
        out = Vectorize(width=4, allow_gather=True).apply(strided_prog())
        assert out.loops()[0].vector_width == 4

    def test_invariant_refs_allowed(self):
        x, c = Array("x", (8,)), Array("c", (1,))
        prog = Program("p", [loop(i, 8, [stmt(reads=[x[i], c[0]], flops=1)])])
        out = Vectorize().apply(prog)
        assert out.loops()[0].vector_width == 4

    def test_pure(self):
        prog = unit_stride_prog()
        Vectorize().apply(prog)
        assert prog.loops()[0].vector_width == 1

    def test_rejects_width_one(self):
        with pytest.raises(TransformError):
            Vectorize(width=1)

    def test_eligible_loops_count(self):
        assert Vectorize().eligible_loops(unit_stride_prog()) == 1
        assert Vectorize().eligible_loops(strided_prog()) == 0

    def test_gemm_mac_loop_vectorizes(self):
        out = Vectorize().apply(build_kernel("gemm"))
        inner = [lp for lp in out.loops() if lp.is_innermost]
        assert all(lp.vector_width == 4 for lp in inner)

    def test_trmm_does_not_vectorize(self):
        out = Vectorize().apply(build_kernel("trmm"))
        inner = [lp for lp in out.loops() if lp.is_innermost]
        assert all(lp.vector_width == 1 for lp in inner)


class TestInsertPrefetch:
    def test_directives_for_varying_reads(self):
        out = InsertPrefetch().apply(unit_stride_prog())
        directives = out.loops()[0].prefetch
        assert len(directives) == 1  # x only; y is write-only

    def test_distance_scales_inversely_with_stride(self):
        a = Array("A", (64, 64))
        x = Array("x", (64,))
        prog = Program(
            "p",
            [
                loop(i, 64, [loop(j, 64, [stmt(reads=[a[j, i], x[j]], flops=1)])]),
            ],
        )
        out = InsertPrefetch(ahead_bytes=128).apply(prog)
        directives = dict()
        for ref, dist in out.loops()[1].prefetch:
            directives[ref.array.name] = dist
        assert directives["A"] == 1  # 256-byte stride: next iteration
        assert directives["x"] == 32  # 4-byte stride: 128/4 iterations

    def test_stream_budget(self):
        arrays = [Array(f"a{n}", (32,)) for n in range(8)]
        prog = Program(
            "many", [loop(i, 32, [stmt(reads=[a[i] for a in arrays], flops=1)])]
        )
        out = InsertPrefetch(max_streams=3).apply(prog)
        assert len(out.loops()[0].prefetch) == 3

    def test_duplicate_refs_single_directive(self):
        x = Array("x", (16,))
        prog = Program(
            "dup",
            [loop(i, 16, [stmt(reads=[x[i]], flops=1), stmt(reads=[x[i]], flops=1)])],
        )
        out = InsertPrefetch().apply(prog)
        assert len(out.loops()[0].prefetch) == 1

    def test_rejects_bad_params(self):
        with pytest.raises(TransformError):
            InsertPrefetch(ahead_bytes=0)
        with pytest.raises(TransformError):
            InsertPrefetch(max_streams=0)

    def test_trace_gains_prefetches(self):
        out = InsertPrefetch().apply(build_kernel("gemm"))
        s = trace_summary(materialize_trace(out))
        assert s["prefetches"] > 0


class TestBranchOptimize:
    def test_unrolls_innermost(self):
        out = BranchOptimize(unroll=4).apply(unit_stride_prog())
        assert out.loops()[0].unroll == 4

    def test_deep_unrolls_everything(self):
        prog = build_kernel("gemm")
        out = BranchOptimize(unroll=4, deep=True).apply(prog)
        assert all(lp.unroll == 4 for lp in out.loops())

    def test_shallow_leaves_outer_loops(self):
        prog = build_kernel("gemm")
        out = BranchOptimize(unroll=4).apply(prog)
        outer = [lp for lp in out.loops() if not lp.is_innermost]
        assert all(lp.unroll == 1 for lp in outer)

    def test_reduces_branch_events(self):
        base = trace_summary(materialize_trace(unit_stride_prog()))
        out = BranchOptimize(unroll=4).apply(unit_stride_prog())
        opt = trace_summary(materialize_trace(out))
        assert opt["branches"] < base["branches"]

    def test_rejects_unroll_one(self):
        with pytest.raises(TransformError):
            BranchOptimize(unroll=1)


class TestInterchange:
    def _column_major_nest(self, n=8):
        a = Array("A", (n, n))
        inner = loop(j, n, [stmt(reads=[a[j, i]], flops=1)])
        outer = loop(i, n, [inner], permutable=True)
        return Program("cm", [outer])

    def test_swaps_to_unit_stride(self):
        out = Interchange().apply(self._column_major_nest())
        inner = [lp for lp in out.loops() if lp.is_innermost][0]
        ref = inner.statements()[0].reads[0]
        assert ref.stride_elements(inner.var) == 1

    def test_respects_permutable_flag(self):
        prog = self._column_major_nest()
        prog.loops()[0].permutable = False
        out = Interchange().apply(prog)
        inner = [lp for lp in out.loops() if lp.is_innermost][0]
        assert inner.statements()[0].reads[0].stride_elements(inner.var) != 1

    def test_leaves_good_nests_alone(self):
        a = Array("A", (8, 8))
        inner = loop(j, 8, [stmt(reads=[a[i, j]], flops=1)])
        outer = loop(i, 8, [inner], permutable=True)
        out = Interchange().apply(Program("rm", [outer]))
        assert [lp.var.name for lp in out.loops()] == ["i", "j"]

    def test_skips_triangular_bounds(self):
        a = Array("A", (8, 8))
        from repro.workloads.ir import Loop

        inner = Loop(j, i + 1, 8, [stmt(reads=[a[j, i]], flops=1)])
        outer = loop(i, 8, [inner], permutable=True)
        out = Interchange().apply(Program("tri", [outer]))
        assert [lp.var.name for lp in out.loops()] == ["i", "j"]


class TestPipeline:
    def test_levels(self):
        assert transforms_for_level(OptLevel.NONE) == []
        assert len(transforms_for_level(OptLevel.FULL)) == 3
        assert len(transforms_for_level(OptLevel.PREFETCH)) == 1

    def test_optimize_none_clones(self):
        prog = unit_stride_prog()
        out = optimize(prog, OptLevel.NONE)
        assert out is not prog

    def test_optimize_full_combines(self):
        out = optimize(build_kernel("gemm"), OptLevel.FULL)
        inner = [lp for lp in out.loops() if lp.is_innermost]
        assert any(lp.vector_width > 1 for lp in inner)
        assert any(lp.prefetch for lp in inner)
        assert all(lp.unroll > 1 for lp in inner)

    def test_apply_all_order(self):
        out = apply_all(unit_stride_prog(), [InsertPrefetch(), Vectorize()])
        lp = out.loops()[0]
        assert lp.prefetch and lp.vector_width == 4
