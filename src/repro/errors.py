"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so downstream users can catch library failures with a
single ``except`` clause while letting genuine programming errors
(``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A simulator, cache, or experiment was configured inconsistently.

    Examples: a cache whose size is not divisible by its line size, a VWB
    narrower than one cache line, or a bank count that is not a power of
    two.
    """


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state.

    This indicates a bug in a model (for example, a cache fill for a line
    that is already resident) rather than bad user input.
    """


class WorkloadError(ReproError):
    """A workload/IR program is malformed.

    Examples: an array reference with the wrong number of subscripts, a
    loop bound that is negative, or a reference to an undeclared array.
    """


class TransformError(ReproError):
    """A code transformation cannot be applied to the given program.

    Transformations are expected to *skip* constructs they cannot handle;
    this error signals misuse of the transformation API itself (for
    example, a vector width of zero).
    """
