"""JSON/CSV export of experiment results."""

import csv
import json

from repro.experiments.export import figure_to_dict, write_csv, write_json
from repro.experiments.report import FigureResult


def _result():
    return FigureResult(
        name="demo",
        title="Demo figure",
        labels=["gemm", "atax"],
        series={"a": [1.0, 3.0], "b": [2.0, 4.0]},
        notes=["a note"],
    )


class TestDict:
    def test_fields(self):
        d = figure_to_dict(_result())
        assert d["name"] == "demo"
        assert d["labels"] == ["gemm", "atax"]
        assert d["series"]["a"] == [1.0, 3.0]
        assert d["averages"]["b"] == 3.0
        assert d["notes"] == ["a note"]

    def test_json_serialisable(self):
        json.dumps(figure_to_dict(_result()))


class TestWriters:
    def test_write_json(self, tmp_path):
        path = write_json(_result(), tmp_path / "out")
        assert path.name == "demo.json"
        loaded = json.loads(path.read_text())
        assert loaded["series"]["b"] == [2.0, 4.0]

    def test_write_csv(self, tmp_path):
        path = write_csv(_result(), tmp_path)
        with open(path) as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["benchmark", "a", "b"]
        assert rows[1] == ["gemm", "1.0", "2.0"]
        assert rows[-1][0] == "AVERAGE"
        assert float(rows[-1][1]) == 2.0

    def test_creates_directories(self, tmp_path):
        path = write_json(_result(), tmp_path / "deep" / "dir")
        assert path.exists()


class TestCLIExport:
    def test_json_flag(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["fig1", "--kernels", "syrk", "--json", str(tmp_path)]) == 0
        data = json.loads((tmp_path / "fig1.json").read_text())
        assert data["labels"] == ["syrk"]

    def test_csv_flag(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["fig1", "--kernels", "syrk", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig1.csv").exists()
