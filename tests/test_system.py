"""System assembly and configuration resolution."""

import pytest

from repro.core.dropin import PlainFrontend
from repro.core.emshr import EMSHRFrontend
from repro.core.l0 import L0Frontend
from repro.core.vwb_frontend import VWBFrontend
from repro.cpu.system import System, SystemConfig, warm_regions_of
from repro.errors import ConfigurationError
from repro.tech.params import STT_MRAM_32NM
from repro.units import kib
from repro.workloads import build_kernel, materialize_trace
from repro.workloads.trace import Compute, Load


class TestConfigResolution:
    def test_default_is_sram_plain(self):
        config = SystemConfig()
        assert config.resolved_technology().name.startswith("SRAM")
        cache = config.dl1_cache_config()
        assert cache.read_hit_cycles == 1
        assert cache.write_hit_cycles == 1

    def test_stt_latencies(self):
        cache = SystemConfig(technology="stt-mram").dl1_cache_config()
        assert cache.read_hit_cycles == 4
        assert cache.write_hit_cycles == 2

    def test_dl1_geometry_matches_paper(self):
        cache = SystemConfig().dl1_cache_config()
        assert cache.capacity_bytes == kib(64)
        assert cache.associativity == 2
        assert cache.line_bytes == 64

    def test_line_override(self):
        cache = SystemConfig(dl1_line_bytes=32).dl1_cache_config()
        assert cache.line_bytes == 32

    def test_technology_object_accepted(self):
        config = SystemConfig(technology=STT_MRAM_32NM)
        assert config.resolved_technology() is STT_MRAM_32NM

    def test_with_technology(self):
        config = SystemConfig().with_technology("stt-mram")
        assert config.resolved_technology().non_volatile


class TestFrontendFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("plain", PlainFrontend),
            ("vwb", VWBFrontend),
            ("l0", L0Frontend),
            ("emshr", EMSHRFrontend),
        ],
    )
    def test_builds_frontends(self, name, cls):
        system = System(SystemConfig(technology="stt-mram", frontend=name))
        assert isinstance(system.frontend, cls)

    def test_unknown_frontend_rejected(self):
        with pytest.raises(ConfigurationError):
            System(SystemConfig(frontend="victim-cache"))

    def test_vwb_bits_honoured(self):
        system = System(SystemConfig(technology="stt-mram", frontend="vwb", vwb_bits=4096))
        assert system.frontend.vwb.config.total_bits == 4096


class TestRun:
    def test_run_produces_result(self, gemm_trace):
        system = System(SystemConfig())
        result = system.run(gemm_trace)
        assert result.cycles > 0
        assert result.instructions > 0
        assert result.l2_stats["read_misses"] >= 0

    def test_run_resets_by_default(self, gemm_trace):
        system = System(SystemConfig())
        first = system.run(gemm_trace)
        second = system.run(gemm_trace)
        assert first.cycles == second.cycles

    def test_run_without_reset_is_warm(self, gemm_trace):
        system = System(SystemConfig())
        first = system.run(gemm_trace)
        warm = system.run(gemm_trace, reset=False)
        assert warm.cycles < first.cycles

    def test_deterministic(self, gemm_trace):
        a = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(gemm_trace)
        b = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(gemm_trace)
        assert a.cycles == b.cycles
        assert a.dl1_stats == b.dl1_stats


class TestWarmL2:
    def test_warm_regions_of(self):
        prog = build_kernel("gemm")
        materialize_trace(prog)  # forces layout
        regions = warm_regions_of(prog)
        assert len(regions) == 3  # A, B, C
        assert all(size > 0 for _, size in regions)

    def test_warming_reduces_cycles(self):
        prog = build_kernel("atax")
        trace = materialize_trace(prog)
        system = System(SystemConfig())
        cold = system.run(trace)
        warm = system.run(trace, warm_regions=warm_regions_of(prog))
        assert warm.cycles < cold.cycles

    def test_warming_fills_l2_not_dl1(self):
        prog = build_kernel("gemm")
        materialize_trace(prog)
        system = System(SystemConfig())
        system.reset()
        system.warm_l2(warm_regions_of(prog))
        base = prog.arrays[0].base_addr
        assert system.hierarchy.l2.contains(base)
        assert not system.dl1.contains(base)

    def test_warming_clears_stats(self):
        prog = build_kernel("gemm")
        materialize_trace(prog)
        system = System(SystemConfig())
        system.reset()
        system.warm_l2(warm_regions_of(prog))
        assert system.hierarchy.l2.stats.accesses == 0
        assert system.hierarchy.memory.accesses == 0


class TestPenaltySanity:
    def test_nvm_dropin_slower_than_sram(self):
        events = [Load(addr, 4) for addr in range(0, 4096, 4)] * 3
        sram = System(SystemConfig(technology="sram")).run(events)
        nvm = System(SystemConfig(technology="stt-mram")).run(events)
        assert nvm.cycles > sram.cycles

    def test_vwb_faster_than_dropin_on_streaming(self):
        events = []
        for rep in range(3):
            events.extend(Load(addr, 4) for addr in range(0, 8192, 4))
            events.append(Compute(64))
        dropin = System(SystemConfig(technology="stt-mram")).run(events)
        vwb = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(events)
        assert vwb.cycles < dropin.cycles
