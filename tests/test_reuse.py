"""Reuse-distance profiler, cross-checked against the cache simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.mem.cache import Cache, CacheConfig
from repro.mem.mainmem import MainMemory
from repro.mem.request import Access, AccessType
from repro.workloads import build_kernel, materialize_trace
from repro.workloads.reuse import COLD, ReuseProfile, profile_reuse
from repro.workloads.trace import Compute, Load, Store


class TestBasics:
    def test_cold_accesses(self):
        profile = profile_reuse([Load(0, 4), Load(64, 4), Load(128, 4)])
        assert profile.cold_accesses == 3
        assert profile.unique_lines == 3

    def test_immediate_reuse_distance_zero(self):
        profile = profile_reuse([Load(0, 4), Load(8, 4)])
        assert profile.histogram[0] == 1

    def test_distance_counts_distinct_lines(self):
        # 0, 64, 128, 0: the re-access to 0 has seen 2 distinct lines.
        profile = profile_reuse([Load(0, 4), Load(64, 4), Load(128, 4), Load(0, 4)])
        assert profile.histogram[2] == 1

    def test_repeats_do_not_inflate_distance(self):
        # 0, 64, 64, 64, 0: still only one distinct line in between.
        events = [Load(0, 4), Load(64, 4), Load(64, 4), Load(64, 4), Load(0, 4)]
        profile = profile_reuse(events)
        assert profile.histogram[1] == 1

    def test_crossing_access_profiles_both_lines(self):
        profile = profile_reuse([Load(60, 8)])
        assert profile.total_accesses == 2
        assert profile.cold_accesses == 2

    def test_stores_profiled_too(self):
        profile = profile_reuse([Store(0, 4), Load(0, 4)])
        assert profile.histogram[0] == 1

    def test_compute_ignored(self):
        profile = profile_reuse([Compute(5)])
        assert profile.total_accesses == 0

    def test_empty_trace(self):
        profile = profile_reuse([])
        assert profile.miss_rate_for(64) == 0.0

    def test_invalid_args(self):
        with pytest.raises(WorkloadError):
            profile_reuse([], line_bytes=0)
        with pytest.raises(WorkloadError):
            ReuseProfile(line_bytes=64).miss_rate_for(0)


class TestMissRatePrediction:
    def test_monotone_in_capacity(self):
        trace = materialize_trace(build_kernel("syrk"))
        profile = profile_reuse(trace)
        curve = profile.miss_curve([4, 16, 64, 256, 1024])
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_infinite_cache_only_cold_misses(self):
        trace = materialize_trace(build_kernel("syrk"))
        profile = profile_reuse(trace)
        assert profile.miss_rate_for(10**9) == pytest.approx(
            profile.cold_accesses / profile.total_accesses
        )

    @given(
        st.lists(
            st.tuples(st.integers(0, 31), st.booleans()), min_size=1, max_size=150
        ),
        st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_fully_associative_lru_cache(self, stream, capacity_lines):
        """Mattson's result: the profile predicts a fully associative LRU
        cache's miss count exactly."""
        events = [
            (Store(line * 64, 4) if is_write else Load(line * 64, 4))
            for line, is_write in stream
        ]
        profile = profile_reuse(events)
        cache = Cache(
            CacheConfig(
                name="fa",
                capacity_bytes=capacity_lines * 64,
                associativity=capacity_lines,
                line_bytes=64,
                read_hit_cycles=1,
                write_hit_cycles=1,
            ),
            MainMemory(latency_cycles=10.0, transfer_cycles=0.0),
        )
        t = 0.0
        for ev in events:
            kind = AccessType.WRITE if isinstance(ev, Store) else AccessType.READ
            t += cache.access(Access(ev.addr, ev.size, kind), t) + 5.0
        predicted = round(profile.miss_rate_for(capacity_lines) * profile.total_accesses)
        assert cache.stats.misses == predicted


class TestOnKernels:
    def test_gemm_fits_dl1(self):
        trace = materialize_trace(build_kernel("gemm"))
        profile = profile_reuse(trace)
        # 64 KB DL1 = 1024 lines: gemm's 6.8 KB working set fits; only
        # compulsory misses remain.
        assert profile.miss_rate_for(1024) == pytest.approx(
            profile.cold_accesses / profile.total_accesses
        )

    def test_atax_capacity_sensitivity(self):
        trace = materialize_trace(build_kernel("atax"))
        profile = profile_reuse(trace)
        # atax re-reads each A row once immediately: even small caches
        # capture it, so the knee sits at the row size (~128 lines).
        small = profile.miss_rate_for(8)
        large = profile.miss_rate_for(1024)
        assert small > large
