"""Design-choice ablations extending the paper's exploration.

Each ablation probes one modelling/design decision DESIGN.md calls out:

- bank count of the NVM array (the paper's conflict-stall argument);
- promotion width (wide lines per VWB window);
- software-prefetch look-ahead distance;
- DL1 replacement policy;
- dataset scaling (the paper's extrapolation claim);
- Table I's 256-bit SRAM line vs the matched 512-bit line.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..transforms.branchopt import BranchOptimize
from ..transforms.base import apply_all
from ..transforms.prefetch import InsertPrefetch
from ..transforms.vectorize import Vectorize
from ..cpu.system import System, warm_regions_of
from ..transforms.pipeline import OptLevel
from ..workloads import materialize_trace
from ..workloads.datasets import DatasetSize
from .report import FigureResult
from .runner import CONFIGURATIONS, ExperimentRunner

__all__ = [
    "run_bank_sweep",
    "run_promotion_width_sweep",
    "run_prefetch_distance_sweep",
    "run_replacement_sweep",
    "run_dataset_sweep",
    "run_hybrid_comparison",
    "run_nvm_icache",
    "run_hw_prefetch_comparison",
    "run_latency_sensitivity",
    "run_interchange_study",
    "run_aware_writes",
    "run_line_size_study",
]


def run_bank_sweep(
    runner: Optional[ExperimentRunner] = None, banks: Sequence[int] = (1, 2, 4, 8)
) -> FigureResult:
    """How much does banking the NVM array hide promotion conflicts?"""
    runner = runner or ExperimentRunner()
    series = {}
    for n in banks:
        config = replace(CONFIGURATIONS["vwb"], dl1_banks=n)
        series[f"{n}_banks"] = [
            runner.penalty(config, k, OptLevel.FULL, cache_key=f"banks{n}")
            for k in runner.kernels
        ]
    avgs = {k: sum(v) / len(v) for k, v in series.items()}
    return FigureResult(
        name="ablation-banks",
        title="Optimized NVM+VWB penalty vs NVM array bank count",
        labels=list(runner.kernels),
        series=series,
        notes=["averages: " + ", ".join(f"{k}={v:.1f}%" for k, v in avgs.items())],
    )


def run_promotion_width_sweep(
    runner: Optional[ExperimentRunner] = None, lines: Sequence[int] = (2, 4)
) -> FigureResult:
    """Sensitivity to the number of VWB wide lines at fixed capacity."""
    runner = runner or ExperimentRunner()
    series = {}
    for n in lines:
        config = replace(CONFIGURATIONS["vwb"], vwb_lines=n)
        series[f"{n}_lines"] = [
            runner.penalty(config, k, OptLevel.FULL, cache_key=f"vwblines{n}")
            for k in runner.kernels
        ]
    avgs = {k: sum(v) / len(v) for k, v in series.items()}
    return FigureResult(
        name="ablation-promotion",
        title="Optimized NVM+VWB penalty vs wide-line count (2 Kbit total)",
        labels=list(runner.kernels),
        series=series,
        notes=[
            "more, narrower lines trade promotion width for associativity",
            "averages: " + ", ".join(f"{k}={v:.1f}%" for k, v in avgs.items()),
        ],
    )


def run_prefetch_distance_sweep(
    runner: Optional[ExperimentRunner] = None,
    ahead_bytes: Sequence[int] = (32, 64, 128, 256),
) -> FigureResult:
    """How far ahead must software prefetch run?"""
    runner = runner or ExperimentRunner()
    system_template = CONFIGURATIONS["vwb"]
    series = {}
    for ahead in ahead_bytes:
        penalties = []
        for kernel in runner.kernels:
            base_prog = runner.program(kernel, OptLevel.NONE)
            transformed = apply_all(
                base_prog,
                [InsertPrefetch(ahead_bytes=ahead), Vectorize(), BranchOptimize()],
            )
            trace = materialize_trace(transformed)
            regions = warm_regions_of(transformed)
            system = System(system_template)
            result = system.run(trace, warm_regions=regions)
            baseline = runner.run("sram", kernel, OptLevel.FULL)
            penalties.append(result.penalty_vs(baseline))
        series[f"ahead_{ahead}B"] = penalties
    avgs = {k: sum(v) / len(v) for k, v in series.items()}
    return FigureResult(
        name="ablation-prefetch",
        title="Optimized NVM+VWB penalty vs prefetch look-ahead",
        labels=list(runner.kernels),
        series=series,
        notes=["averages: " + ", ".join(f"{k}={v:.1f}%" for k, v in avgs.items())],
    )


def run_replacement_sweep(
    runner: Optional[ExperimentRunner] = None,
    policies: Sequence[str] = ("lru", "plru", "fifo", "random"),
    seed: int = 0,
) -> FigureResult:
    """DL1 replacement policy sensitivity for the NVM+VWB system.

    ``seed`` feeds the ``random`` policy's generator (through
    :func:`repro.reliability.rng.make_rng`); the deterministic policies
    ignore it.
    """
    runner = runner or ExperimentRunner()
    series = {}
    for policy in policies:
        config = replace(
            CONFIGURATIONS["vwb"], dl1_replacement=policy, dl1_replacement_seed=seed
        )
        series[policy] = [
            runner.penalty(config, k, OptLevel.FULL, cache_key=f"repl-{policy}-{seed}")
            for k in runner.kernels
        ]
    avgs = {k: sum(v) / len(v) for k, v in series.items()}
    return FigureResult(
        name="ablation-replacement",
        title="Optimized NVM+VWB penalty vs DL1 replacement policy",
        labels=list(runner.kernels),
        series=series,
        notes=["averages: " + ", ".join(f"{k}={v:.1f}%" for k, v in avgs.items())],
    )


def run_dataset_sweep(
    runner: Optional[ExperimentRunner] = None,
    sizes: Sequence[DatasetSize] = (DatasetSize.MINI, DatasetSize.SMALL),
    kernels: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Does the conclusion extrapolate to larger kernels (paper Sec. VI)?

    Uses a kernel subset by default: the SMALL datasets multiply trip
    counts by up to 8x and this ablation exists to check the *trend*.
    """
    base_kernels = list(kernels) if kernels else ["gemm", "atax", "mvt", "2mm"]
    series = {}
    labels = base_kernels
    for size in sizes:
        sized_runner = ExperimentRunner(size=size, kernels=base_kernels)
        series[size.name.lower()] = sized_runner.penalties("vwb", OptLevel.FULL)
    avgs = {k: sum(v) / len(v) for k, v in series.items()}
    return FigureResult(
        name="ablation-datasets",
        title="Optimized NVM+VWB penalty vs dataset size",
        labels=labels,
        series=series,
        notes=[
            "paper claims the penalty reduction extrapolates to larger kernels",
            "averages: " + ", ".join(f"{k}={v:.1f}%" for k, v in avgs.items()),
        ],
    )


def run_latency_sensitivity(
    runner: Optional[ExperimentRunner] = None,
    factors: Sequence[float] = (1.0, 0.5, 0.25),
) -> FigureResult:
    """Read- vs write-latency sensitivity of the drop-in NVM DL1.

    Section II: "the write latency oriented techniques do not lead to
    good results and they do not really mitigate the real latency
    penalty".  This ablation makes the claim quantitative: halving or
    quartering the STT-MRAM *write* latency (what an AWARE-style
    asymmetric-write scheme, ref [1], buys) barely moves the drop-in
    penalty, while the same scaling of the *read* latency removes most
    of it.
    """
    from ..tech.params import STT_MRAM_32NM

    runner = runner or ExperimentRunner()
    series = {}
    for factor in factors:
        write_tech = STT_MRAM_32NM.with_latencies(
            STT_MRAM_32NM.read_latency_ns, STT_MRAM_32NM.write_latency_ns * factor
        )
        read_tech = STT_MRAM_32NM.with_latencies(
            max(0.787, STT_MRAM_32NM.read_latency_ns * factor), STT_MRAM_32NM.write_latency_ns
        )
        write_cfg = replace(CONFIGURATIONS["dropin"], technology=write_tech)
        read_cfg = replace(CONFIGURATIONS["dropin"], technology=read_tech)
        series[f"write_x{factor:g}"] = [
            runner.penalty(write_cfg, k, OptLevel.NONE, cache_key=f"wr{factor}")
            for k in runner.kernels
        ]
        series[f"read_x{factor:g}"] = [
            runner.penalty(read_cfg, k, OptLevel.NONE, cache_key=f"rd{factor}")
            for k in runner.kernels
        ]
    avgs = {k: sum(v) / len(v) for k, v in series.items()}
    return FigureResult(
        name="ablation-latency",
        title="Drop-in penalty under read- vs write-latency scaling",
        labels=list(runner.kernels),
        series=series,
        notes=[
            "write-oriented mitigation (AWARE-style) barely moves the "
            "penalty; read scaling removes most of it — Section II's claim",
            "averages: " + ", ".join(f"{k}={v:.1f}%" for k, v in avgs.items()),
        ],
    )


def run_aware_writes(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """AWARE asymmetric-write acceleration on the drop-in NVM cache.

    Implements the actual mechanism of reference [1] (half the array
    writes complete in one cycle through the redundant block) rather
    than just scaling latencies: even with it enabled, the drop-in
    penalty barely moves, because the paper's workloads are
    read-latency-bound — the VWB row is shown for scale.
    """
    runner = runner or ExperimentRunner()
    dropin = runner.penalties("dropin", OptLevel.NONE)
    vwb = runner.penalties("vwb", OptLevel.NONE)
    aware_cfg = replace(
        CONFIGURATIONS["dropin"], dl1_fast_write_cycles=1, dl1_fast_write_fraction=0.5
    )
    aware = [
        runner.penalty(aware_cfg, k, OptLevel.NONE, cache_key="dropin-aware")
        for k in runner.kernels
    ]
    avg = lambda xs: sum(xs) / len(xs)  # noqa: E731 - local reducer
    return FigureResult(
        name="ablation-aware",
        title="AWARE asymmetric-write acceleration on the drop-in NVM DL1",
        labels=list(runner.kernels),
        series={"dropin": dropin, "dropin_aware": aware, "vwb": vwb},
        notes=[
            "write acceleration recovers almost nothing: the workloads are "
            "read-latency-bound (Section II's argument, by mechanism)",
            f"averages: dropin {avg(dropin):.1f}%, +AWARE {avg(aware):.1f}%, "
            f"vwb {avg(vwb):.1f}%",
        ],
    )


def run_hybrid_comparison(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """The VWB vs a classic hybrid SRAM/NVM organisation (Section II).

    The hybrid's 8 KB SRAM partition is 32x the VWB's 2 Kbit: the
    comparison shows what the VWB's wide, software-managed organisation
    buys per bit of fast storage.
    """
    runner = runner or ExperimentRunner()
    vwb = runner.penalties("vwb", OptLevel.FULL)
    hybrid = runner.penalties("hybrid", OptLevel.FULL)
    dropin = runner.penalties("dropin", OptLevel.FULL)
    avg = lambda xs: sum(xs) / len(xs)  # noqa: E731 - local reducer
    return FigureResult(
        name="ablation-hybrid",
        title="VWB (2 Kbit) vs hybrid SRAM partition (8 KB) over the NVM DL1",
        labels=list(runner.kernels),
        series={"vwb": vwb, "hybrid_8kb": hybrid, "dropin": dropin},
        notes=[
            "the hybrid buys a similar shield with ~32x the fast-storage bits",
            f"averages: vwb {avg(vwb):.1f}%, hybrid {avg(hybrid):.1f}%, "
            f"dropin {avg(dropin):.1f}%",
        ],
    )


def run_nvm_icache(
    runner: Optional[ExperimentRunner] = None, kernels: Optional[Sequence[str]] = None
) -> FigureResult:
    """NVM instruction cache exploration (the DATE'14 companion study).

    Enables instruction-fetch modelling and swaps the IL1 technology;
    the paper keeps the IL1 SRAM in all its experiments, noting that
    I-caches are even more read-critical than D-caches.
    """
    from ..cpu.model import CPUConfig

    base_kernels = list(kernels) if kernels else ["gemm", "atax", "trmm"]
    scoped = ExperimentRunner(size=(runner.size if runner else DatasetSize.MINI), kernels=base_kernels)
    cpu = CPUConfig(model_ifetch=True)
    sram_il1 = replace(CONFIGURATIONS["sram"], cpu=cpu)
    nvm_il1 = replace(CONFIGURATIONS["sram"], cpu=cpu, il1_technology="stt-mram")
    penalties = []
    for kernel in base_kernels:
        base = scoped.run(sram_il1, kernel, OptLevel.NONE, cache_key="ifetch-sram")
        nvm = scoped.run(nvm_il1, kernel, OptLevel.NONE, cache_key="ifetch-nvm")
        penalties.append(nvm.penalty_vs(base))
    return FigureResult(
        name="ablation-icache",
        title="Drop-in NVM instruction cache penalty (i-fetch modelled)",
        labels=base_kernels,
        series={"nvm_il1": penalties},
        notes=[
            "every fetch group pays the NVM array read even though the loops "
            "are IL1-resident — the read-latency problem the DATE'14 EMSHR "
            "companion paper attacks on the I-cache side",
        ],
    )


def run_hw_prefetch_comparison(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Hardware stride prefetching vs the paper's software approach.

    A stride prefetcher on the drop-in NVM cache hides L2/DRAM miss
    latency but fills through the *same* NVM array — every demand read
    still pays the 4-cycle array access, so the drop-in penalty barely
    moves.  The software-prefetched VWB stages data in 1-cycle buffer
    cells, which is why the paper's combination wins.
    """
    runner = runner or ExperimentRunner()
    dropin = runner.penalties("dropin", OptLevel.NONE)
    hwpf_cfg = replace(CONFIGURATIONS["dropin"], hw_prefetcher=True)
    dropin_hwpf = [
        runner.penalty(hwpf_cfg, k, OptLevel.NONE, cache_key="dropin-hwpf")
        for k in runner.kernels
    ]
    vwb_swpf = runner.penalties("vwb", OptLevel.PREFETCH)
    avg = lambda xs: sum(xs) / len(xs)  # noqa: E731 - local reducer
    return FigureResult(
        name="ablation-hwprefetch",
        title="Drop-in + HW stride prefetcher vs VWB + SW prefetch",
        labels=list(runner.kernels),
        series={
            "dropin": dropin,
            "dropin_hw_prefetch": dropin_hwpf,
            "vwb_sw_prefetch": vwb_swpf,
        },
        notes=[
            "HW prefetching cannot remove the NVM read-hit latency; "
            "SW prefetch into the VWB can",
            f"averages: dropin {avg(dropin):.1f}%, +hwpf {avg(dropin_hwpf):.1f}%, "
            f"vwb+swpf {avg(vwb_swpf):.1f}%",
        ],
    )


def run_interchange_study(
    runner: Optional[ExperimentRunner] = None, kernels: Optional[Sequence[str]] = None
) -> FigureResult:
    """Loop interchange as a fourth transformation (extension).

    Applies :class:`~repro.transforms.interchange.Interchange` before the
    full pipeline on kernels whose author-marked permutable nests allow
    it, and measures what it adds over the paper's three transformations.
    """
    from ..transforms.interchange import Interchange

    base_kernels = list(kernels) if kernels else ["gemm", "syrk", "syr2k"]
    scoped = ExperimentRunner(
        size=(runner.size if runner else DatasetSize.MINI), kernels=base_kernels
    )
    without = []
    with_ic = []
    for kernel in base_kernels:
        baseline = scoped.run("sram", kernel, OptLevel.FULL)
        without.append(scoped.run("vwb", kernel, OptLevel.FULL).penalty_vs(baseline))
        program = Interchange().apply(scoped.program(kernel, OptLevel.FULL))
        trace = materialize_trace(program)
        system = System(CONFIGURATIONS["vwb"])
        result = system.run(trace, warm_regions=warm_regions_of(program))
        with_ic.append(result.penalty_vs(baseline))
    return FigureResult(
        name="ablation-interchange",
        title="Adding loop interchange to the transformation pipeline",
        labels=base_kernels,
        series={"full": without, "full_plus_interchange": with_ic},
        notes=[
            "the paper's kernels are already written stride-friendly, so "
            "interchange is mostly a no-op here; it matters for "
            "column-major-authored code",
        ],
    )


def run_dram_model_study(
    runner: Optional[ExperimentRunner] = None, kernels: Optional[Sequence[str]] = None
) -> FigureResult:
    """Flat-latency vs banked row-buffer DRAM (modelling-fidelity probe).

    The reproduced figures use the flat model (the kernels are L2-warm,
    so DRAM detail is irrelevant there); this ablation re-runs the main
    comparison on open-page banked DRAM and checks the conclusions are
    insensitive to the choice.
    """
    from ..mem.hierarchy import HierarchyConfig

    base_kernels = list(kernels) if kernels else ["gemm", "atax", "2mm"]
    scoped = ExperimentRunner(
        size=(runner.size if runner else DatasetSize.MINI), kernels=base_kernels
    )
    banked = HierarchyConfig(memory_model="banked")
    banked_sram = replace(CONFIGURATIONS["sram"], hierarchy=banked)

    def _banked_penalties(config_name: str, cache_key: str):
        values = []
        for k in base_kernels:
            run = scoped.run(
                replace(CONFIGURATIONS[config_name], hierarchy=banked),
                k,
                OptLevel.NONE,
                cache_key=cache_key,
            )
            # The baseline must use the same DRAM model.
            baseline = scoped.run(banked_sram, k, OptLevel.NONE, cache_key="sram-bankeddram")
            values.append(run.penalty_vs(baseline))
        return values

    series = {
        "dropin_flat": scoped.penalties("dropin", OptLevel.NONE),
        "dropin_banked": _banked_penalties("dropin", "dropin-bankeddram"),
        "vwb_flat": scoped.penalties("vwb", OptLevel.NONE),
        "vwb_banked": _banked_penalties("vwb", "vwb-bankeddram"),
    }
    avgs = {k: sum(v) / len(v) for k, v in series.items()}
    return FigureResult(
        name="ablation-dram",
        title="Flat vs banked row-buffer DRAM under the main comparison",
        labels=base_kernels,
        series=series,
        notes=[
            "with the paper's L2-warm setup the kernels never reach DRAM, "
            "so the penalties are insensitive to the DRAM model — the "
            "figures' flat-latency choice is validated",
            "averages: " + ", ".join(f"{k}={v:.1f}%" for k, v in avgs.items()),
        ],
    )


def run_line_size_study(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Table I's 256-bit SRAM line vs the matched 512-bit baseline."""
    runner = runner or ExperimentRunner()
    sram32 = replace(CONFIGURATIONS["sram"], dl1_line_bytes=32)
    penalties_matched = runner.penalties("dropin", OptLevel.NONE)
    penalties_t1 = []
    for kernel in runner.kernels:
        base = runner.run(sram32, kernel, OptLevel.NONE, cache_key="sram32")
        penalties_t1.append(runner.run("dropin", kernel, OptLevel.NONE).penalty_vs(base))
    return FigureResult(
        name="ablation-linesize",
        title="Drop-in penalty vs 512-bit-line and Table-I 256-bit-line SRAM baselines",
        labels=list(runner.kernels),
        series={
            "vs_512bit_sram": penalties_matched,
            "vs_256bit_sram": penalties_t1,
        },
        notes=[
            "the 256-bit SRAM baseline fetches half as much per miss, so the "
            "NVM's wide line wins back part of the penalty",
        ],
    )
