"""System-level properties over randomized synthetic workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.system import System, SystemConfig
from repro.workloads import synthetic


def _run(config: SystemConfig, events) -> float:
    return System(config).run(events).cycles


@st.composite
def workloads(draw):
    kind = draw(st.sampled_from(["streaming", "strided", "random", "hot_cold"]))
    seed = draw(st.integers(0, 1000))
    if kind == "streaming":
        return synthetic.streaming(
            bytes_total=draw(st.sampled_from([4096, 16384])),
            rounds=draw(st.integers(1, 2)),
        )
    if kind == "strided":
        return synthetic.strided(
            stride_bytes=draw(st.sampled_from([8, 64, 256, 1024])),
            accesses=512,
        )
    if kind == "random":
        return synthetic.random_access(
            working_set_bytes=draw(st.sampled_from([8192, 65536])),
            accesses=512,
            seed=seed,
        )
    return synthetic.hot_cold(accesses=512, seed=seed)


class TestCrossConfigurationInvariants:
    @given(workloads())
    @settings(max_examples=20, deadline=None)
    def test_sram_never_slower_than_nvm_dropin(self, events):
        """With identical structure, the only difference is array latency:
        the SRAM platform can never lose to the drop-in NVM one."""
        sram = _run(SystemConfig(technology="sram"), events)
        nvm = _run(SystemConfig(technology="stt-mram"), events)
        assert sram <= nvm + 1e-6

    @given(workloads())
    @settings(max_examples=15, deadline=None)
    def test_vwb_degradation_bounded(self, events):
        """The VWB may lose to drop-in on hostile patterns, but only by a
        bounded factor (a promotion costs one wide read, not a blow-up)."""
        dropin = _run(SystemConfig(technology="stt-mram"), events)
        vwb = _run(SystemConfig(technology="stt-mram", frontend="vwb"), events)
        assert vwb <= 1.6 * dropin

    @given(workloads())
    @settings(max_examples=15, deadline=None)
    def test_every_frontend_deterministic(self, events):
        for frontend in ("plain", "vwb", "l0", "emshr", "hybrid"):
            config = SystemConfig(technology="stt-mram", frontend=frontend)
            assert _run(config, events) == _run(config, events)

    @given(workloads())
    @settings(max_examples=15, deadline=None)
    def test_faster_technology_never_hurts(self, events):
        """Scaling the NVM read latency down can only help the drop-in."""
        from repro.tech.params import STT_MRAM_32NM

        slow = _run(SystemConfig(technology="stt-mram"), events)
        faster_tech = STT_MRAM_32NM.with_latencies(1.5, STT_MRAM_32NM.write_latency_ns)
        fast = _run(SystemConfig(technology=faster_tech), events)
        assert fast <= slow + 1e-6
