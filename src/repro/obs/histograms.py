"""Per-component latency histograms.

Generalises :attr:`repro.cpu.model.RunResult.load_latency_histogram`
(which only sees loads, from the CPU's point of view) to every probed
component of the hierarchy: DL1 reads and writes, L2, DRAM, the
front-end buffers, bank-conflict waits and write-buffer stalls each get
their own histogram, keyed by component name.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Latencies at or above the cap share one overflow bucket, matching the
#: CPU-side ``LOAD_HISTOGRAM_CAP`` convention.
HISTOGRAM_CAP = 256


class LatencyHistograms:
    """A family of integer-bucketed latency histograms.

    Latencies are bucketed by ``int(latency)`` clamped to
    :data:`HISTOGRAM_CAP`, so half-cycle values land in the bucket of
    their integer floor and pathological latencies cannot blow up the
    bucket count.
    """

    __slots__ = ("cap", "data")

    def __init__(self, cap: int = HISTOGRAM_CAP) -> None:
        self.cap = cap
        self.data: Dict[str, Dict[int, int]] = {}

    def add(self, component: str, latency: float) -> None:
        """Record one observation of ``latency`` for ``component``."""
        bucket = int(latency)
        if bucket > self.cap:
            bucket = self.cap
        hist = self.data.get(component)
        if hist is None:
            hist = self.data[component] = {}
        hist[bucket] = hist.get(bucket, 0) + 1

    def components(self) -> List[str]:
        """Component names with at least one observation, sorted."""
        return sorted(self.data)

    def count(self, component: str) -> int:
        """Total observations recorded for ``component``."""
        return sum(self.data.get(component, {}).values())

    def quantile(self, component: str, q: float) -> float:
        """The ``q``-quantile latency bucket for ``component``.

        Like :meth:`repro.cpu.model.RunResult.load_latency_quantile`,
        the answer is the *bucket* (latencies are floored into integer
        buckets and capped at :attr:`cap`), so the true p100 may exceed
        the returned value when observations overflowed the cap.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        hist = self.data.get(component, {})
        total = sum(hist.values())
        if total == 0:
            return 0.0
        target = q * total
        seen = 0
        for bucket in sorted(hist):
            seen += hist[bucket]
            if seen >= target:
                return float(min(bucket, self.cap))
        return float(min(max(hist), self.cap))

    def summary(self, component: str) -> Tuple[int, float, float, float]:
        """``(count, p50, p95, p100-bucket)`` for ``component``."""
        return (
            self.count(component),
            self.quantile(component, 0.5),
            self.quantile(component, 0.95),
            self.quantile(component, 1.0),
        )

    def as_dict(self) -> Dict[str, Dict[int, int]]:
        """Plain-dict copy (component -> bucket -> count) for export."""
        return {name: dict(hist) for name, hist in self.data.items()}

    def render(self) -> str:
        """Aligned text table of per-component count/p50/p95/p100."""
        header = f"{'component':<24}{'count':>10}{'p50':>8}{'p95':>8}{'p100':>8}"
        lines = [header, "-" * len(header)]
        for name in self.components():
            count, p50, p95, p100 = self.summary(name)
            cap_mark = "+" if self.data[name].get(self.cap) else " "
            lines.append(
                f"{name:<24}{count:>10}{p50:>8.0f}{p95:>8.0f}{p100:>7.0f}{cap_mark}"
            )
        return "\n".join(lines)
