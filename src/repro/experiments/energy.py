"""Energy and endurance extensions (the paper's deferred power models).

The paper argues qualitatively that the STT-MRAM DL1 wins on leakage and
total energy ("power models have yet to be fully developed though").
These experiments quantify the claim with the analytic array model:

- :func:`run` — per-kernel DL1 energy (dynamic + leakage) for the SRAM
  baseline vs the NVM+VWB proposal;
- :func:`run_endurance` — lifetime of the STT-MRAM array under the
  kernel's write traffic, reproducing the Section II endurance argument
  against ReRAM/PRAM.
"""

from __future__ import annotations

from typing import Optional

from ..mem.cache import CacheConfig
from ..tech.array_model import ArrayGeometry, estimate_array
from ..tech.endurance import EnduranceModel
from ..tech.energy import EnergyLedger
from ..tech.params import RERAM_32NM, PRAM_32NM, SRAM_32NM_HP, STT_MRAM_32NM
from ..cpu.model import RunResult
from ..cpu.system import System, SystemConfig, warm_regions_of
from ..transforms.pipeline import OptLevel
from ..workloads import materialize_trace
from .report import FigureResult
from .runner import CONFIGURATIONS, ExperimentRunner


def _dl1_energy_nj(result: RunResult, config: SystemConfig) -> float:
    """Price a run's DL1 activity under its technology."""
    tech = config.resolved_technology()
    cache_config: CacheConfig = config.dl1_cache_config()
    geometry = ArrayGeometry(
        capacity_bytes=cache_config.capacity_bytes,
        associativity=cache_config.associativity,
        line_bytes=cache_config.line_bytes,
        banks=cache_config.banks,
    )
    estimate = estimate_array(tech, geometry)
    ledger = EnergyLedger()
    ledger.register("dl1", estimate)
    stats = result.dl1_stats
    reads = stats["read_hits"] + stats["read_misses"]
    writes = stats["write_hits"] + stats["write_misses"] + stats["fills"]
    ledger.count_read("dl1", reads)
    ledger.count_write("dl1", writes)
    return ledger.report(elapsed_ns=result.cycles).total_nj


def run(runner: Optional[ExperimentRunner] = None, level: OptLevel = OptLevel.FULL) -> FigureResult:
    """DL1 energy (nJ) per kernel: SRAM baseline vs NVM+VWB proposal."""
    runner = runner or ExperimentRunner()
    sram_nj = []
    nvm_nj = []
    for kernel in runner.kernels:
        sram_result = runner.run("sram", kernel, level)
        nvm_result = runner.run("vwb", kernel, level)
        sram_nj.append(_dl1_energy_nj(sram_result, CONFIGURATIONS["sram"]))
        nvm_nj.append(_dl1_energy_nj(nvm_result, CONFIGURATIONS["vwb"]))
    ratio = sum(sram_nj) / max(1e-9, sum(nvm_nj))
    return FigureResult(
        name="energy",
        title="DL1 energy per kernel run (dynamic + leakage)",
        labels=list(runner.kernels),
        series={"sram_nj": sram_nj, "nvm_vwb_nj": nvm_nj},
        unit="nJ",
        notes=[
            "paper (qualitative): NVM DL1 gains in energy, dominated by leakage",
            f"measured: SRAM consumes {ratio:.2f}x the NVM+VWB DL1 energy overall",
        ],
    )


def run_endurance(
    runner: Optional[ExperimentRunner] = None, level: OptLevel = OptLevel.NONE
) -> FigureResult:
    """Worst-line lifetime (years) of candidate NVM DL1 technologies.

    Reproduces the Section II argument: STT-MRAM's ~1e15 write endurance
    survives L1 write traffic for decades; ReRAM/PRAM do not.
    """
    runner = runner or ExperimentRunner()
    technologies = (STT_MRAM_32NM, RERAM_32NM, PRAM_32NM)
    series = {tech.name: [] for tech in technologies}
    config = SystemConfig(technology="stt-mram", frontend="vwb", track_line_writes=True)
    for kernel in runner.kernels:
        program = runner.program(kernel, level)
        trace = materialize_trace(program)
        system = System(config)
        result = system.run(trace, warm_regions=warm_regions_of(program))
        writes = system.dl1.line_write_counts
        elapsed_s = result.cycles * 1e-9  # 1 GHz
        for tech in technologies:
            estimate = EnduranceModel(tech).estimate(writes, elapsed_s)
            years = estimate.lifetime_years_worst
            series[tech.name].append(min(years, 1e6))
    return FigureResult(
        name="endurance",
        title="Worst-line DL1 lifetime under kernel write traffic (capped at 1e6)",
        labels=list(runner.kernels),
        series=series,
        unit="years",
        notes=[
            "paper (Section II): STT-MRAM endurance ~1e15 writes vs 1e9-1e11 "
            "for PRAM/ReRAM rules the latter out at L1",
        ],
    )
