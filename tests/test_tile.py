"""Strip-mining / tiling transformations."""

import pytest

from repro.errors import TransformError
from repro.transforms.tile import StripMine, TileNest, tiled_variables
from repro.workloads import build_kernel, materialize_trace
from repro.workloads.affine import Var
from repro.workloads.ir import Array, Loop, Program, loop, stmt
from repro.workloads.trace import Load, trace_summary

i, j = Var("i"), Var("j")


def stream_prog(n=16):
    x = Array("x", (n,))
    return Program("s", [loop(i, n, [stmt(reads=[x[i]], flops=1)])])


class TestStripMine:
    def test_splits_into_controller_and_strip(self):
        out = StripMine("i", 4).apply(stream_prog(16))
        loops = out.loops()
        assert len(loops) == 2
        assert loops[0].var.name == "i__tile"
        assert loops[1].var.name == "i"
        assert loops[0].trip_count({}) == 4

    def test_address_stream_preserved(self):
        prog = stream_prog(16)
        base = [ev.addr for ev in materialize_trace(prog) if isinstance(ev, Load)]
        out = StripMine("i", 4).apply(stream_prog(16))
        tiled = [ev.addr for ev in materialize_trace(out) if isinstance(ev, Load)]
        assert base == tiled

    def test_skips_indivisible_trip_counts(self):
        out = StripMine("i", 5).apply(stream_prog(16))
        assert len(out.loops()) == 1  # untouched

    def test_skips_affine_bounds(self):
        a = Array("A", (8, 8))
        inner = Loop(j, 0, i, [stmt(reads=[a[i, j]], flops=1)])
        prog = Program("t", [loop(i, 8, [inner])])
        out = StripMine("j", 2).apply(prog)
        assert tiled_variables(out) == []

    def test_skips_tile_larger_than_trip(self):
        out = StripMine("i", 32).apply(stream_prog(16))
        assert len(out.loops()) == 1

    def test_annotations_carried_to_strip(self):
        prog = stream_prog(16)
        lp = prog.loops()[0]
        lp.vector_width = 4
        lp.unroll = 2
        out = StripMine("i", 8).apply(prog)
        strip = out.loops()[1]
        assert strip.vector_width == 4
        assert strip.unroll == 2

    def test_pure(self):
        prog = stream_prog(16)
        StripMine("i", 4).apply(prog)
        assert len(prog.loops()) == 1

    def test_validation(self):
        with pytest.raises(TransformError):
            StripMine("i", 1)
        with pytest.raises(TransformError):
            StripMine("", 4)


class TestTileNest:
    def test_tiles_gemm_reduction(self):
        out = TileNest({"k": 8, "j": 8}).apply(build_kernel("gemm"))
        names = tiled_variables(out)
        assert "k__tile" in names and "j__tile" in names

    def test_gemm_data_stream_preserved(self):
        base = trace_summary(materialize_trace(build_kernel("gemm")))
        out = TileNest({"k": 8}).apply(build_kernel("gemm"))
        tiled = trace_summary(materialize_trace(out))
        assert tiled["load_bytes"] == base["load_bytes"]
        assert tiled["store_bytes"] == base["store_bytes"]

    def test_rejects_empty(self):
        with pytest.raises(TransformError):
            TileNest({})

    def test_tiling_improves_l2_locality_on_large_gemm(self):
        """Blocking the reduction keeps tiles DL1-resident: a tiled large
        gemm must produce fewer DL1 misses than the untiled one."""
        from repro.cpu.system import System, SystemConfig, warm_regions_of
        from repro.workloads.datasets import DatasetSize

        base_prog = build_kernel("gemm", DatasetSize.SMALL)  # 48^3
        tiled_prog = TileNest({"i": 12}).apply(build_kernel("gemm", DatasetSize.SMALL))
        system = System(SystemConfig(technology="stt-mram", frontend="vwb",
                                     dl1_capacity_bytes=8192))
        base_run = system.run(
            materialize_trace(base_prog), warm_regions=warm_regions_of(base_prog)
        )
        tiled_run = system.run(
            materialize_trace(tiled_prog), warm_regions=warm_regions_of(tiled_prog)
        )
        base_misses = base_run.dl1_stats["read_misses"]
        tiled_misses = tiled_run.dl1_stats["read_misses"]
        assert tiled_misses <= base_misses


class TestAwareModel:
    def test_fast_writes_alternate_deterministically(self):
        from repro.mem.cache import Cache, CacheConfig
        from repro.mem.mainmem import MainMemory
        from repro.mem.request import Access, AccessType

        cache = Cache(
            CacheConfig(
                name="aware",
                capacity_bytes=1024,
                associativity=2,
                line_bytes=64,
                read_hit_cycles=4,
                write_hit_cycles=2,
                fast_write_cycles=1,
                fast_write_fraction=0.5,
            ),
            MainMemory(latency_cycles=10.0, transfer_cycles=0.0),
        )
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        latencies = [
            cache.access(Access(0, 4, AccessType.WRITE), 1000.0 + 100 * n)
            for n in range(4)
        ]
        assert sorted(set(latencies)) == [1.0, 2.0]
        assert latencies == [1.0, 2.0, 1.0, 2.0] or latencies == [2.0, 1.0, 2.0, 1.0]

    def test_fraction_one_always_fast(self):
        from repro.mem.cache import Cache, CacheConfig
        from repro.mem.mainmem import MainMemory
        from repro.mem.request import Access, AccessType

        cache = Cache(
            CacheConfig(
                name="aware",
                capacity_bytes=1024,
                associativity=2,
                line_bytes=64,
                read_hit_cycles=4,
                write_hit_cycles=2,
                fast_write_cycles=1,
                fast_write_fraction=1.0,
            ),
            MainMemory(latency_cycles=10.0, transfer_cycles=0.0),
        )
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        for n in range(3):
            assert cache.access(Access(0, 4, AccessType.WRITE), 1000.0 + 100 * n) == 1.0

    def test_system_passthrough(self):
        from repro.cpu.system import SystemConfig

        config = SystemConfig(technology="stt-mram", dl1_fast_write_cycles=1)
        assert config.dl1_cache_config().fast_write_cycles == 1

    def test_validation(self):
        from repro.mem.cache import CacheConfig

        with pytest.raises(Exception):
            CacheConfig(
                name="x",
                capacity_bytes=1024,
                associativity=2,
                line_bytes=64,
                read_hit_cycles=1,
                write_hit_cycles=1,
                fast_write_fraction=1.5,
            )

    def test_aware_barely_moves_penalty(self):
        """The headline of the ablation, as a fast test."""
        from repro.experiments import ExperimentRunner
        from repro.experiments.ablations import run_aware_writes

        result = run_aware_writes(ExperimentRunner(kernels=["gemm"]))
        avg = result.averages()
        assert abs(avg["dropin"] - avg["dropin_aware"]) < 2.0
