"""Problem-size presets for the kernel suite.

The paper notes its benchmarks "are not particularly large or heavily
data intensive" (PolyBench's small inputs); :data:`DatasetSize.MINI` is
the default used for every reproduced figure.  ``SMALL`` and ``LARGE``
scale each linear dimension and back the dataset-scaling ablation, which
probes the paper's extrapolation claim ("a fair extrapolation of these
conditions even for larger benchmarks would produce significant reduction
in the performance penalty").
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping

from ..errors import WorkloadError


class DatasetSize(enum.Enum):
    """Named problem-size classes, scaling each linear dimension."""

    MINI = 1
    SMALL = 2
    LARGE = 3

    @property
    def factor(self) -> int:
        """Multiplier applied to every base dimension."""
        return self.value


def scale_for(base_dims: Mapping[str, int], size: DatasetSize) -> Dict[str, int]:
    """Scale a kernel's base dimensions for a dataset class.

    Args:
        base_dims: The kernel's MINI dimensions (name -> extent).
        size: Requested dataset class.

    Returns:
        A new dict with every extent multiplied by ``size.factor``.
    """
    if not base_dims:
        raise WorkloadError("kernel declared no dimensions")
    return {name: extent * size.factor for name, extent in base_dims.items()}
