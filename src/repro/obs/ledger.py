"""The cycle ledger: exact attribution of every exposed CPU cycle.

Every cycle the :class:`~repro.cpu.model.InOrderCPU` adds to the run
clock is charged to exactly one category, so the category totals sum to
``RunResult.cycles`` *exactly* — not approximately — which is what lets
the ledger arbitrate claims like "the drop-in penalty is dominated by
NVM read latency" (Figure 1) or "the VWB removes the long NVM read from
the critical path" (Figure 3).

Attribution scheme
------------------

Simple costs (compute ops, branches, i-fetch stalls) are charged
directly.  A demand access's *exposed* cost (latency minus whatever the
pipeline overlapped) is split over the latency components the memory
substrate reported while serving it, deepest component first: DRAM time
is charged before L2 time before bank-conflict waits before the local
array read, and whatever the overlap hid comes out of the shallow end —
matching how an in-order pipeline actually hides latency (the load-use
slot overlaps the front of the access, never the DRAM tail).  All
arithmetic is subtraction and ``min`` over cycle counts that are exact
binary fractions (the timing model deals in halves), so no rounding
residue can accumulate.

Stores and prefetches retire in the background; their exposed cost is
the issue slot plus any structural stall (full store buffer, full write
buffer), and the background components the access touched are excluded
so they are never double-charged.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import SimulationError

#: Every ledger category, in report order.  ``compute``/``branch`` are
#: the datapath floor; ``frontend_hit`` is a VWB/L0/EMSHR/hybrid-SRAM
#: buffer hit; ``dl1_read``/``dl1_write`` are NVM (or SRAM) array time;
#: ``bank_conflict``/``writeback_stall``/``store_buffer_full`` are the
#: structural stalls; ``ecc_decode``/``write_retry``/``fault_refill``
#: are the reliability mechanisms (SECDED decode adders, write-verify
#: retries, uncorrectable-error refills — all zero unless fault
#: injection is enabled); ``l2``/``dram`` are below-DL1 time;
#: ``prefetch`` is prefetch issue slots and ``ifetch`` the optional IL1
#: stalls.
LEDGER_CATEGORIES: Tuple[str, ...] = (
    "compute",
    "branch",
    "frontend_hit",
    "dl1_read",
    "dl1_write",
    "bank_conflict",
    "writeback_stall",
    "ecc_decode",
    "write_retry",
    "fault_refill",
    "l2",
    "dram",
    "store_buffer_full",
    "prefetch",
    "ifetch",
)

#: Component charge order for demand loads: deepest (least hideable)
#: first.  Anything left after all reported components goes to the
#: DL1 read array time (the default home of a load's cycles).
#: ``fault_refill`` sits above ``l2`` because a refill's own L2/DRAM
#: time is reported separately by those levels; the refill category
#: carries only the DL1-side re-read/re-write overhead, which is as
#: unhideable as a bank conflict.
_LOAD_PRIORITY: Tuple[str, ...] = (
    "dram",
    "l2",
    "fault_refill",
    "bank_conflict",
    "writeback_stall",
    "write_retry",
    "ecc_decode",
    "frontend_hit",
    "dl1_read",
    "dl1_write",
)


class CycleLedger:
    """Per-category (and per-IR-loop) totals of exposed CPU cycles.

    Attributes:
        totals: Cycles charged per :data:`LEDGER_CATEGORIES` entry.
        loop_totals: Per-IR-region subtotals (region label -> category
            -> cycles).  Populated only when the trace carries
            :class:`~repro.workloads.trace.IRMark` annotations.
    """

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {c: 0.0 for c in LEDGER_CATEGORIES}
        self.loop_totals: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------

    def charge(self, category: str, cycles: float, region: str = "") -> None:
        """Charge ``cycles`` to ``category`` (and the region subtotal)."""
        if category not in self.totals:
            raise SimulationError(f"unknown ledger category {category!r}")
        self.totals[category] += cycles
        if region:
            bucket = self.loop_totals.setdefault(region, {})
            bucket[category] = bucket.get(category, 0.0) + cycles

    def attribute_op(
        self,
        kind: str,
        cost: float,
        wait: float,
        components: Sequence[Tuple[str, float]],
        region: str = "",
    ) -> None:
        """Attribute one demand op's exposed ``cost``.

        Args:
            kind: ``"load"``, ``"store"`` or ``"prefetch"``.
            cost: Exposed cycles the CPU was charged for the op.
            wait: Structural-stall portion of ``cost`` (store-buffer-full
                wait for stores, commit write-back stall for prefetches;
                0 for loads, whose components carry the detail).
            components: ``(category, cycles)`` latency contributions the
                memory substrate reported while serving the op.
            region: Current IR region label, if any.
        """
        remaining = cost
        if kind == "store":
            # Background retirement: only the structural wait and the
            # issue slot are exposed; array/L2/DRAM contributions the
            # write touched happen off the critical path.  When the
            # substrate reported write-verify retries for this store,
            # up to that many of the stalled cycles are attributed to
            # them — retries hold store-buffer entries longer, which is
            # exactly how the back-pressure arises.
            take = min(remaining, wait)
            if take > 0.0:
                retry = min(
                    take, sum(c for cat, c in components if cat == "write_retry")
                )
                if retry > 0.0:
                    self.charge("write_retry", retry, region)
                if take - retry > 0.0:
                    self.charge("store_buffer_full", take - retry, region)
                remaining -= take
            self.charge("dl1_write", remaining, region)
            return
        if kind == "prefetch":
            take = min(remaining, wait)
            if take > 0.0:
                self.charge("writeback_stall", take, region)
                remaining -= take
            self.charge("prefetch", remaining, region)
            return
        # Demand load: split over reported components, deepest first.
        sums: Dict[str, float] = {}
        for category, cycles in components:
            sums[category] = sums.get(category, 0.0) + cycles
        for category in _LOAD_PRIORITY:
            reported = sums.get(category, 0.0)
            if reported <= 0.0 or remaining <= 0.0:
                continue
            take = min(remaining, reported)
            self.charge(category, take, region)
            remaining -= take
        if remaining > 0.0:
            self.charge("dl1_read", remaining, region)

    # ------------------------------------------------------------------
    # Totals and verification
    # ------------------------------------------------------------------

    @property
    def total(self) -> float:
        """Sum of all category totals."""
        return sum(self.totals.values())

    def residual(self, expected_cycles: float) -> float:
        """``expected_cycles - total`` (0.0 when the ledger is exact)."""
        return expected_cycles - self.total

    def verify(self, expected_cycles: float) -> None:
        """Assert the ledger accounts for every cycle of a run.

        Raises:
            SimulationError: If the category totals do not equal
                ``expected_cycles`` exactly.
        """
        if self.total != expected_cycles:
            raise SimulationError(
                f"cycle ledger does not balance: categories sum to "
                f"{self.total!r} but the run took {expected_cycles!r} "
                f"cycles (residual {self.residual(expected_cycles)!r})"
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def nonzero(self) -> List[Tuple[str, float]]:
        """``(category, cycles)`` pairs with nonzero totals, largest first."""
        pairs = [(c, v) for c, v in self.totals.items() if v != 0.0]
        pairs.sort(key=lambda cv: -cv[1])
        return pairs

    def render(self) -> str:
        """Aligned text table of the category totals."""
        total = self.total
        lines = [f"{'category':<20}{'cycles':>14}{'share':>9}"]
        lines.append("-" * len(lines[0]))
        for category, cycles in self.nonzero():
            share = cycles / total if total else 0.0
            lines.append(f"{category:<20}{cycles:>14.1f}{share:>8.1%}")
        lines.append("-" * len(lines[0]))
        lines.append(f"{'total':<20}{total:>14.1f}{1.0:>8.1%}" if total else "total 0")
        return "\n".join(lines)
