"""The probe interface threaded through the CPU and memory substrate.

Two implementations matter:

- :class:`NullProbe` (the module-level :data:`NULL_PROBE` singleton) is
  the default everywhere.  Every instrumented component keeps a local
  ``_probing`` boolean derived from :attr:`Probe.enabled`, so on the
  non-profiled path the probe costs one attribute load and a branch per
  instrumentation site — measured at well under the 5% budget by
  ``benchmarks/bench_profile.py``.
- :class:`RecordingProbe` feeds a :class:`~repro.obs.ledger.CycleLedger`,
  per-component :class:`~repro.obs.histograms.LatencyHistograms` and an
  optional bounded list of :class:`ProbeEvent` records used by the
  Perfetto/CSV exporters in :mod:`repro.experiments.export`.

Attribution protocol
--------------------

The CPU brackets every memory op with :meth:`Probe.begin_op` /
:meth:`Probe.end_op`.  In between, components that serve the access
report their latency contributions through :meth:`Probe.attr` (directly
or via the convenience reporters below); ``end_op`` hands the op's
exposed cost plus the collected contributions to the ledger, which
splits the cost over them deepest-component-first.  Contributions
reported outside an op bracket (background fills, i-fetch) are recorded
as events/histograms but never charged to the ledger, so background work
cannot unbalance the cycle accounting.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .histograms import LatencyHistograms
from .ledger import CycleLedger

#: Ledger category a level's *read* array time is attributed to while a
#: demand-load bracket is open.  ``None`` means record-only (the IL1 is
#: never on a data op's critical path).
_READ_ATTR: Dict[str, Optional[str]] = {
    "dl1": "dl1_read",
    "l2": "l2",
    "dl1-sram-partition": "frontend_hit",
    "il1": None,
}


class Probe:
    """Base observability interface: every method is a no-op.

    Components call these hooks only behind an ``if self._probing:``
    guard (refreshed from :attr:`enabled` when a probe is attached), so
    subclasses may assume they only run on instrumented runs.
    """

    #: Components gate their hook calls on this flag.
    enabled: bool = False

    # -- CPU-side op bracketing ----------------------------------------

    def begin_op(self, kind: str, addr: int, now: float) -> None:
        """Open an op bracket (``kind`` in load/store/prefetch)."""

    def end_op(self, cost: float, latency: float, wait: float = 0.0) -> None:
        """Close the bracket: attribute ``cost`` exposed cycles."""

    def op(self, category: str, cost: float, now: float) -> None:
        """Charge a flat non-memory cost (compute/branch/ifetch/...)."""

    def mark(self, label: str, now: float) -> None:
        """Enter the IR region ``label`` (from an ``IRMark`` event)."""

    def finish(self, result: Any) -> None:
        """End of run: verify the ledger against ``result.cycles``."""

    # -- substrate reporters -------------------------------------------

    def attr(self, category: str, cycles: float) -> None:
        """Report a raw latency contribution to the open op, if any."""

    def cache_access(
        self,
        level: str,
        is_write: bool,
        hit: bool,
        addr: int,
        latency: float,
        array_cycles: float,
        now: float,
    ) -> None:
        """One line access served by cache ``level``."""

    def buffer_access(
        self,
        frontend: str,
        is_write: bool,
        hit: bool,
        addr: int,
        latency: float,
        array_cycles: float,
        now: float,
    ) -> None:
        """One access served by a front-end buffer (VWB/L0/EMSHR)."""

    def promotion(self, frontend: str, addr: int, latency: float, now: float) -> None:
        """A wide promotion/fill issued by a front-end."""

    def bank_conflict(self, level: str, addr: int, wait: float, now: float) -> None:
        """An access waited ``wait`` cycles for a busy bank."""

    def wb_stall(self, level: str, stall: float, now: float) -> None:
        """A producer stalled ``stall`` cycles on a full write buffer."""

    def mshr_event(self, level: str, event: str, addr: int, now: float) -> None:
        """MSHR activity (``allocate``/``merge``/``full``)."""

    def mem_access(self, level: str, is_write: bool, latency: float, now: float) -> None:
        """One line served by main memory."""

    def fault(self, level: str, kind: str, addr: int, cycles: float, now: float) -> None:
        """A reliability mechanism inserted ``cycles`` into the timing.

        ``kind`` is a ledger category (``ecc_decode``/``write_retry``/
        ``fault_refill``) or the record-only ``line_retired``.
        """

    # -- experiment-engine reporters -----------------------------------

    def exec_point(self, label: str, status: str, index: int, total: int, elapsed: float) -> None:
        """One sweep point completed in the execution engine.

        ``status`` is ``"hit"`` (replayed from the run cache) or
        ``"run"`` (freshly simulated); ``index``/``total`` locate the
        point in its batch and ``elapsed`` is its wall-clock seconds.
        This is batch-level progress, not simulated time, so it is
        record-only and never charged to the cycle ledger.
        """


class NullProbe(Probe):
    """The zero-overhead default probe (see :data:`NULL_PROBE`)."""

    __slots__ = ()


#: Shared do-nothing probe instance attached to every component by default.
NULL_PROBE = NullProbe()


class ProbeEvent:
    """One structured trace record (maps 1:1 to a Chrome trace event)."""

    __slots__ = ("ts", "dur", "source", "kind", "addr", "region", "args")

    def __init__(
        self,
        ts: float,
        dur: float,
        source: str,
        kind: str,
        addr: Optional[int] = None,
        region: str = "",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.ts = ts
        self.dur = dur
        self.source = source
        self.kind = kind
        self.addr = addr
        self.region = region
        self.args = args

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the CSV exporter."""
        out: Dict[str, Any] = {
            "ts": self.ts,
            "dur": self.dur,
            "source": self.source,
            "kind": self.kind,
            "region": self.region,
        }
        if self.addr is not None:
            out["addr"] = self.addr
        if self.args:
            out.update(self.args)
        return out


class RecordingProbe(Probe):
    """Collects ledger charges, histograms and (optionally) raw events.

    Args:
        record_events: Keep per-access :class:`ProbeEvent` records for
            trace export.  Ledger and histograms are always collected.
        max_events: Bound on retained events; further events are counted
            in :attr:`dropped_events` instead of stored, so profiling a
            large kernel cannot exhaust memory.
    """

    enabled = True

    def __init__(self, record_events: bool = True, max_events: int = 200_000) -> None:
        self.ledger = CycleLedger()
        self.histograms = LatencyHistograms()
        self.events: List[ProbeEvent] = []
        #: Execution-engine counters: points seen per status (hit/run).
        self.exec_counters: Dict[str, int] = {}
        self.dropped_events = 0
        self.record_events = record_events
        self.max_events = max_events
        self.verified = False
        self._region = ""
        # Open-op scratch: (kind, addr, start) and collected attrs.
        self._op: Optional[Tuple[str, int, float]] = None
        self._attrs: List[Tuple[str, float]] = []

    # -- event plumbing ------------------------------------------------

    def _emit(
        self,
        ts: float,
        dur: float,
        source: str,
        kind: str,
        addr: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not self.record_events:
            return
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(ProbeEvent(ts, dur, source, kind, addr, self._region, args))

    # -- CPU-side op bracketing ----------------------------------------

    def begin_op(self, kind: str, addr: int, now: float) -> None:
        self._op = (kind, addr, now)
        self._attrs.clear()

    def end_op(self, cost: float, latency: float, wait: float = 0.0) -> None:
        if self._op is None:
            return
        kind, addr, start = self._op
        self._op = None
        self.ledger.attribute_op(kind, cost, wait, self._attrs, self._region)
        self._attrs.clear()
        if kind == "load":
            self.histograms.add("cpu.load_exposed", cost)
        self._emit(start, cost, "cpu", kind, addr, {"latency": latency})

    def op(self, category: str, cost: float, now: float) -> None:
        self.ledger.charge(category, cost, self._region)
        if category not in ("compute", "branch"):
            # Compute/branch events are too dense to be useful in a
            # trace; stalls and drains are rare enough to keep.
            self._emit(now, cost, "cpu", category)

    def mark(self, label: str, now: float) -> None:
        self._region = label
        self._emit(now, 0.0, "cpu", "ir_mark", None, {"label": label})

    def finish(self, result: Any) -> None:
        self._op = None
        self._attrs.clear()
        self.ledger.verify(result.cycles)
        self.verified = True

    # -- substrate reporters -------------------------------------------

    def attr(self, category: str, cycles: float) -> None:
        if self._op is not None and cycles > 0.0:
            self._attrs.append((category, cycles))

    def cache_access(
        self,
        level: str,
        is_write: bool,
        hit: bool,
        addr: int,
        latency: float,
        array_cycles: float,
        now: float,
    ) -> None:
        if self._op is not None and not is_write:
            # Writes below the CPU are background (posted write-backs /
            # write-allocate fills); only read time is on a load's
            # critical path.  Unknown levels are record-only.
            category = _READ_ATTR.get(level, None)
            if category is not None and array_cycles > 0.0:
                self._attrs.append((category, array_cycles))
        self.histograms.add(f"{level}.{'write' if is_write else 'read'}", latency)
        self._emit(
            now,
            latency,
            level,
            "write" if is_write else "read",
            addr,
            {"hit": hit},
        )

    def buffer_access(
        self,
        frontend: str,
        is_write: bool,
        hit: bool,
        addr: int,
        latency: float,
        array_cycles: float,
        now: float,
    ) -> None:
        if self._op is not None and hit and not is_write and array_cycles > 0.0:
            self._attrs.append(("frontend_hit", array_cycles))
        self.histograms.add(f"{frontend}.{'write' if is_write else 'read'}", latency)
        self._emit(
            now,
            latency,
            frontend,
            "write" if is_write else "read",
            addr,
            {"hit": hit},
        )

    def promotion(self, frontend: str, addr: int, latency: float, now: float) -> None:
        self.histograms.add(f"{frontend}.promotion", latency)
        self._emit(now, latency, frontend, "promotion", addr)

    def bank_conflict(self, level: str, addr: int, wait: float, now: float) -> None:
        if self._op is not None:
            self._attrs.append(("bank_conflict", wait))
        self.histograms.add(f"{level}.bank_wait", wait)
        self._emit(now, wait, level, "bank_conflict", addr)

    def wb_stall(self, level: str, stall: float, now: float) -> None:
        if self._op is not None:
            self._attrs.append(("writeback_stall", stall))
        self.histograms.add(f"{level}.wb_stall", stall)
        self._emit(now, stall, level, "wb_stall")

    def mshr_event(self, level: str, event: str, addr: int, now: float) -> None:
        self._emit(now, 0.0, level, f"mshr_{event}", addr)

    def mem_access(self, level: str, is_write: bool, latency: float, now: float) -> None:
        if self._op is not None and not is_write:
            self._attrs.append(("dram", latency))
        self.histograms.add(f"{level}.{'write' if is_write else 'read'}", latency)
        self._emit(now, latency, level, "write" if is_write else "read")

    def fault(self, level: str, kind: str, addr: int, cycles: float, now: float) -> None:
        if self._op is not None and cycles > 0.0 and kind != "line_retired":
            self._attrs.append((kind, cycles))
        self.histograms.add(f"{level}.{kind}", cycles)
        self._emit(now, cycles, level, kind, addr)

    def exec_point(self, label: str, status: str, index: int, total: int, elapsed: float) -> None:
        self.exec_counters[status] = self.exec_counters.get(status, 0) + 1
        self._emit(
            float(index),
            0.0,
            "exec",
            f"point_{status}",
            None,
            {"label": label, "total": total, "elapsed_s": elapsed},
        )
