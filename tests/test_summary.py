"""The automated paper-vs-measured summary."""

import pytest

from repro.experiments import ExperimentRunner
from repro.experiments.summary import SummaryRow, build_summary, render_summary, run


@pytest.fixture(scope="module")
def rows():
    return build_summary(ExperimentRunner(kernels=["gemm", "atax", "mvt", "2mm"]))


class TestSummary:
    def test_covers_the_headline_figures(self, rows):
        experiments = {r.experiment for r in rows}
        assert {"fig1", "fig4", "fig5", "fig7", "fig8", "fig9"} <= experiments

    def test_measured_values_plausible(self, rows):
        by = {(r.experiment, r.quantity): r for r in rows}
        assert 40.0 < by[("fig1", "drop-in penalty, average")].measured < 70.0
        assert by[("fig5", "optimized penalty, average")].measured < 10.0
        assert by[("fig8", "reduction ratio vs rivals' average")].measured > 1.3

    def test_paper_values_present_where_stated(self, rows):
        stated = [r for r in rows if r.paper is not None]
        assert len(stated) >= 5

    def test_render(self, rows):
        text = render_summary(rows)
        assert "paper" in text and "measured" in text
        assert "n/a" in text
        assert "x" in text  # the ratio row's unit

    def test_figure_adapter(self):
        result = run(ExperimentRunner(kernels=["gemm", "atax", "mvt", "2mm"]))
        assert result.name == "summary"
        assert len(result.labels) == len(result.series["measured"])

    def test_row_dataclass(self):
        row = SummaryRow("figX", "q", 1.0, 2.0)
        assert row.unit == "%"
