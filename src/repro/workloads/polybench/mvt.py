"""PolyBench ``mvt``: x1 = x1 + A y1 and x2 = x2 + A^T y2.

The first phase streams rows of ``A`` (unit stride); the second walks
*columns* (``A[j][i]``, stride N), which defeats vectorization and makes
software prefetching the only lever — a deliberately NVM-hostile phase.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"n": 110}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the mvt program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    n = dims["n"]
    i, j = Var("i"), Var("j")
    a = Array("A", (n, n))
    x1 = Array("x1", (n,))
    x2 = Array("x2", (n,))
    y1 = Array("y1", (n,))
    y2 = Array("y2", (n,))
    body = [
        loop(
            i,
            n,
            [
                loop(
                    j,
                    n,
                    [
                        stmt(
                            reads=[x1[i], a[i, j], y1[j]],
                            writes=[x1[i]],
                            flops=2,
                            label="row_mac",
                        )
                    ],
                )
            ],
        ),
        loop(
            i,
            n,
            [
                loop(
                    j,
                    n,
                    [
                        stmt(
                            reads=[x2[i], a[j, i], y2[j]],
                            writes=[x2[i]],
                            flops=2,
                            label="col_mac",
                        )
                    ],
                )
            ],
        ),
    ]
    return Program("mvt", body)
