"""Bundle of one instrumented run, consumed by the exporters and CLI."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

from .histograms import LatencyHistograms
from .ledger import CycleLedger
from .probe import ProbeEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cpu imports obs)
    from ..cpu.model import RunResult


@dataclass
class ProfileResult:
    """Everything one ``repro profile`` run produced.

    Attributes:
        kernel: Kernel name profiled.
        config: D-cache configuration name (resolved, e.g. ``"vwb"``).
        level: Optimisation-level name the trace was generated at.
        result: The ordinary :class:`~repro.cpu.model.RunResult`.
        ledger: Exact cycle attribution (verified against ``result``).
        histograms: Per-component latency histograms.
        events: Structured trace events (empty when event recording was
            off or the cap was 0).
        dropped_events: Events discarded once ``max_events`` was hit.
    """

    kernel: str
    config: str
    level: str
    result: "RunResult"
    ledger: CycleLedger
    histograms: LatencyHistograms
    events: List[ProbeEvent] = field(default_factory=list)
    dropped_events: int = 0
