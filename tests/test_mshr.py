"""MSHR file semantics."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.mshr import MSHRFile


class TestAllocation:
    def test_allocate_and_lookup(self):
        mshrs = MSHRFile(entries=2)
        entry = mshrs.allocate(0x100, now=0.0, ready_at=10.0, is_prefetch=True)
        assert entry is not None
        assert mshrs.lookup(0x100) is entry
        assert entry.ready_at == 10.0

    def test_merge_returns_existing(self):
        mshrs = MSHRFile(entries=2)
        first = mshrs.allocate(0x100, 0.0, 10.0, False)
        second = mshrs.allocate(0x100, 5.0, 99.0, False)
        assert second is first
        assert mshrs.merges == 1
        assert second.ready_at == 10.0  # original fill is authoritative

    def test_full_rejects(self):
        mshrs = MSHRFile(entries=1)
        mshrs.allocate(0x100, 0.0, 10.0, False)
        assert mshrs.allocate(0x200, 1.0, 11.0, False) is None
        assert mshrs.full_rejections == 1

    def test_full_reclaims_completed_first(self):
        mshrs = MSHRFile(entries=1)
        mshrs.allocate(0x100, 0.0, 10.0, False)
        entry = mshrs.allocate(0x200, now=20.0, ready_at=30.0, is_prefetch=False)
        assert entry is not None
        assert mshrs.lookup(0x100) is None

    def test_release(self):
        mshrs = MSHRFile(entries=1)
        mshrs.allocate(0x100, 0.0, 10.0, False)
        mshrs.release(0x100)
        assert mshrs.lookup(0x100) is None

    def test_release_absent_is_noop(self):
        MSHRFile(entries=1).release(0x123)


class TestReclaim:
    def test_reclaim_completed(self):
        mshrs = MSHRFile(entries=4)
        mshrs.allocate(0x0, 0.0, 10.0, False)
        mshrs.allocate(0x40, 0.0, 20.0, False)
        assert mshrs.reclaim_completed(now=15.0) == 1
        assert mshrs.lookup(0x0) is None
        assert mshrs.lookup(0x40) is not None

    def test_earliest_completion(self):
        mshrs = MSHRFile(entries=4)
        assert mshrs.earliest_completion() is None
        mshrs.allocate(0x0, 0.0, 30.0, False)
        mshrs.allocate(0x40, 0.0, 20.0, False)
        assert mshrs.earliest_completion() == 20.0

    def test_occupancy(self):
        mshrs = MSHRFile(entries=4)
        mshrs.allocate(0x0, 0.0, 10.0, False)
        assert mshrs.occupancy() == 1

    def test_reset(self):
        mshrs = MSHRFile(entries=4)
        mshrs.allocate(0x0, 0.0, 10.0, False)
        mshrs.reset()
        assert mshrs.occupancy() == 0
        assert mshrs.allocations == 0

    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigurationError):
            MSHRFile(entries=0)

    def test_capacity(self):
        assert MSHRFile(entries=8).capacity == 8
