"""Interpreter vs a reference interpreter, on random affine programs.

The reference interpreter is a direct textbook evaluation of the IR —
no scalar replacement, no chunking, no annotations.  With all
optimizations disabled, the real interpreter must produce the *exact*
event sequence of the reference; with them enabled, it must still touch
the same data.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.affine import Var
from repro.workloads.interp import TraceConfig, materialize_trace
from repro.workloads.ir import Array, Loop, Program, Statement
from repro.workloads.trace import Load, Store

I, J = Var("i"), Var("j")


def reference_addresses(program):
    """(kind, addr) stream from naive recursive evaluation."""
    out = []

    def run(node, env):
        if isinstance(node, Statement):
            for ref in node.reads:
                out.append(("L", ref.addr(env)))
            for ref in node.writes:
                out.append(("S", ref.addr(env)))
            return
        lo = node.lower.evaluate(env)
        hi = node.upper.evaluate(env)
        for v in range(lo, hi):
            env[node.var.name] = v
            for child in node.body:
                run(child, env)
        env.pop(node.var.name, None)

    for node in program.body:
        run(node, {})
    return out


def interpreter_addresses(program, config):
    out = []
    for ev in materialize_trace(program, config):
        if isinstance(ev, Load):
            for a in range(ev.addr, ev.addr + ev.size, 4):
                out.append(("L", a))
        elif isinstance(ev, Store):
            for a in range(ev.addr, ev.addr + ev.size, 4):
                out.append(("S", a))
    return out


@st.composite
def programs(draw):
    """Random two-deep affine loop nests over a 16x16 array."""
    a = Array("A", (16, 16))
    n = draw(st.integers(1, 6))
    m = draw(st.integers(1, 6))

    def subscript():
        ci = draw(st.integers(0, 2))
        cj = draw(st.integers(0, 2))
        const = draw(st.integers(0, 3))
        return ci * I + cj * J + const

    n_reads = draw(st.integers(1, 3))
    n_writes = draw(st.integers(0, 1))
    statement = Statement(
        reads=[a[subscript(), subscript()] for _ in range(n_reads)],
        writes=[a[subscript(), subscript()] for _ in range(n_writes)],
        flops=1,
    )
    inner = Loop(J, 0, m, [statement])
    outer = Loop(I, 0, n, [inner])
    prog = Program("rand", [outer])
    prog.layout(base_addr=0x1000)
    return prog


class TestAgainstReference:
    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_plain_lowering_matches_reference_exactly(self, prog):
        config = TraceConfig(scalar_replacement=False)
        assert interpreter_addresses(prog, config) == reference_addresses(prog)

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_scalar_replacement_preserves_coverage(self, prog):
        config = TraceConfig(scalar_replacement=True)
        ref = reference_addresses(prog)
        opt = interpreter_addresses(prog, config)
        # Hoisting may drop repeats but never invents or loses data.
        assert set(opt) <= set(ref)
        assert {a for k, a in opt if k == "L"} == {a for k, a in ref if k == "L"}
        assert {a for k, a in opt if k == "S"} == {a for k, a in ref if k == "S"}
        assert len(opt) <= len(ref)

    @given(programs(), st.integers(2, 5))
    @settings(max_examples=60, deadline=None)
    def test_vectorization_preserves_data_coverage(self, prog, width):
        plain = interpreter_addresses(prog, TraceConfig(scalar_replacement=False))
        vec_prog = prog.clone()
        inner = vec_prog.loops()[-1]
        inner.vector_width = width
        vec = interpreter_addresses(vec_prog, TraceConfig(scalar_replacement=False))
        # Same data touched; SIMD never does *more* element accesses.
        assert set(vec) == set(plain)
        assert len(vec) <= len(plain)
        # Loop-varying references keep their exact access multiset (only
        # invariant refs collapse into one splat access per chunk).
        has_invariant = any(
            ref.stride_elements(inner.var) == 0
            for statement in inner.statements()
            for ref in statement.refs
        )
        if not has_invariant:
            assert sorted(vec) == sorted(plain)

    @given(programs(), st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_unroll_is_invisible_to_data(self, prog, unroll):
        plain = interpreter_addresses(prog, TraceConfig())
        unrolled = prog.clone()
        for lp in unrolled.loops():
            lp.unroll = unroll
        assert interpreter_addresses(unrolled, TraceConfig()) == plain
