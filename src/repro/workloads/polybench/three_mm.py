"""PolyBench ``3mm``: G = (A*B) * (C*D).

Three chained matrix products in the natural ``k``-innermost form (column
walks on the right operands), stressing the same strided pattern as
``2mm`` over a larger phase count.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Loop, Program, loop, stmt


def _matmul(i, j, k, out, lhs, rhs, ni: int, nj: int, nk: int, label: str) -> Loop:
    """One ``out = lhs * rhs`` nest with the reduction loop innermost."""
    return loop(
        i,
        ni,
        [
            loop(
                j,
                nj,
                [
                    stmt(writes=[out[i, j]], flops=0, label=f"{label}_init"),
                    loop(
                        k,
                        nk,
                        [
                            stmt(
                                reads=[out[i, j], lhs[i, k], rhs[k, j]],
                                writes=[out[i, j]],
                                flops=2,
                                label=f"{label}_mac",
                            )
                        ],
                    ),
                ],
            )
        ],
    )


#: MINI dimensions.
BASE_DIMS = {"ni": 16, "nj": 16, "nk": 16, "nl": 16, "nm": 16}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the 3mm program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    ni, nj, nk, nl, nm = dims["ni"], dims["nj"], dims["nk"], dims["nl"], dims["nm"]
    i, j, k = Var("i"), Var("j"), Var("k")
    a = Array("A", (ni, nk))
    b = Array("B", (nk, nj))
    c = Array("C", (nj, nm))
    d = Array("D", (nm, nl))
    e = Array("E", (ni, nj))
    f = Array("F", (nj, nl))
    g = Array("G", (ni, nl))
    body = [
        _matmul(i, j, k, e, a, b, ni, nj, nk, "e"),
        _matmul(i, j, k, f, c, d, nj, nl, nm, "f"),
        _matmul(i, j, k, g, e, f, ni, nl, nj, "g"),
    ]
    return Program("3mm", body)
