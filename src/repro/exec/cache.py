"""Content-addressed on-disk cache of simulation results.

Every completed :class:`~repro.exec.point.RunPoint` is stored under a
key that is a SHA-256 over *everything the result depends on*:

- the kernel's optimized IR (loops, bounds, transformation annotations,
  statements, array shapes — see :func:`ir_fingerprint`),
- the full :class:`~repro.cpu.system.SystemConfig` (canonicalized
  field-by-field, nested dataclasses and enums included),
- the resolved DL1 :class:`~repro.tech.params.MemoryTechnology` (and
  the IL1's, when overridden) — so editing a latency in
  ``tech/params.py`` invalidates exactly the affected entries,
- the optimization level, dataset size and fault-injection seed,
- a fingerprint of the simulator's own source code
  (:func:`code_fingerprint`) plus :data:`CACHE_FORMAT_VERSION`.

Unchanged points replay instantly from disk; any change to an input
changes the key, so stale entries are never *read* — they are simply
orphaned (``repro``'s cache needs no invalidation logic beyond the key).
Entries are written atomically (temp file + ``os.replace``), so a sweep
killed mid-write never leaves a readable half-entry and simply resumes
from the completed points on the next run.

The entry format and versioning policy are documented in
``docs/ARCHITECTURE.md`` §2.8.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from ..cpu.model import RunResult
from ..workloads.ir import Loop, Program, Statement
from .point import RunPoint, build_point_program

#: Version of the on-disk entry schema.  Bumped whenever the entry
#: layout or the key material changes incompatibly; the version is part
#: of the hashed material, so old entries are orphaned, never misread.
CACHE_FORMAT_VERSION = 2

#: Default cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory stale/corrupt entries are moved into (never read back).
QUARANTINE_DIR = ".quarantine"

_code_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``.py`` source file of the ``repro`` package.

    Any edit to the simulator changes this value and therefore every
    cache key — the conservative interpretation of "code version" that
    guarantees a cache hit is always a faithful replay.  Computed once
    per process (~250 files, a few milliseconds) and memoised.

    Returns
    -------
    str
        Hex digest covering relative path + content of each source file,
        in sorted path order.
    """
    global _code_fingerprint_cache
    if _code_fingerprint_cache is not None:
        return _code_fingerprint_cache
    root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _code_fingerprint_cache = digest.hexdigest()
    return _code_fingerprint_cache


def canonicalize(obj: Any) -> Any:
    """JSON-ready canonical form of configuration values.

    Dataclasses become ``{"__type__": name, fields...}`` mappings, enums
    their ``ClassName.MEMBER`` string, tuples become lists; mapping keys
    are stringified.  The result is deterministic, so hashing its sorted
    JSON dump is stable across processes and sessions.

    Parameters
    ----------
    obj : Any
        A configuration object (possibly nested).

    Returns
    -------
    Any
        A structure of dicts/lists/strings/numbers/None only.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: Dict[str, Any] = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonicalize(getattr(obj, f.name))
        return out
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, float):
        # repr round-trips exactly and renders inf/nan portably.
        return repr(obj) if obj != obj or obj in (float("inf"), float("-inf")) else obj
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    return repr(obj)


def ir_fingerprint(program: Program) -> List[Any]:
    """Canonical structure of a kernel's (optimized) IR.

    Captures everything the interpreter consults: loop variables and
    bounds, transformation annotations (vector width, unroll factor,
    prefetch directives), statement reads/writes/flops, and the arrays'
    shapes and element sizes.  Two programs with the same fingerprint
    materialize the same trace.

    Parameters
    ----------
    program : Program
        The kernel IR, after optimization.

    Returns
    -------
    list
        A nested JSON-ready structure; changing any kernel definition or
        transformation output changes it.
    """

    def node(n: Union[Loop, Statement]) -> List[Any]:
        if isinstance(n, Loop):
            return [
                "loop",
                n.var.name,
                repr(n.lower),
                repr(n.upper),
                n.vector_width,
                n.unroll,
                [[repr(ref), int(dist)] for ref, dist in n.prefetch],
                bool(n.permutable),
                [node(child) for child in n.body],
            ]
        return [
            "stmt",
            [repr(r) for r in n.reads],
            [repr(w) for w in n.writes],
            n.flops,
            n.overhead_ops,
            n.label,
        ]

    arrays = [[a.name, list(a.shape), a.elem_bytes] for a in program.arrays]
    return [program.name, arrays, [node(n) for n in program.body]]


def key_material_of(point: RunPoint) -> Dict[str, Any]:
    """The exact fields hashed into a point's cache key.

    Parameters
    ----------
    point : RunPoint
        The simulation point.

    Returns
    -------
    dict
        Mapping with keys ``format``, ``code``, ``kernel``, ``size``,
        ``level``, ``seed``, ``ir``, ``config``, ``tech`` and
        ``il1_tech`` (see ``docs/ARCHITECTURE.md`` §2.8 for the policy).
    """
    config = point.config
    il1_tech = None
    if config.il1_technology is not None:
        hierarchy = config.resolved_hierarchy()
        il1_tech = canonicalize(hierarchy.il1)
    return {
        "format": CACHE_FORMAT_VERSION,
        "code": code_fingerprint(),
        "kernel": point.kernel,
        "size": point.size.name,
        "level": point.level.name,
        "seed": config.reliability.seed if config.reliability is not None else None,
        "ir": ir_fingerprint(build_point_program(point)),
        "config": canonicalize(config),
        "tech": canonicalize(config.resolved_technology()),
        "il1_tech": il1_tech,
    }


def cache_key_of(point: RunPoint) -> str:
    """Content-addressed cache key of a point.

    Parameters
    ----------
    point : RunPoint
        The simulation point.

    Returns
    -------
    str
        SHA-256 hex digest of the sorted-JSON dump of
        :func:`key_material_of`.
    """
    blob = json.dumps(key_material_of(point), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def encode_result(result: RunResult) -> Dict[str, Any]:
    """JSON-ready dict of a :class:`RunResult` (exact float round-trip).

    Parameters
    ----------
    result : RunResult
        A completed run.

    Returns
    -------
    dict
        All ``RunResult`` fields; the integer-keyed load-latency
        histogram is stored as a sorted ``[bucket, count]`` pair list.
    """
    out = dataclasses.asdict(result)
    out["load_latency_histogram"] = sorted(
        [int(k), int(v)] for k, v in result.load_latency_histogram.items()
    )
    return out


def decode_result(data: Dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`encode_result` output.

    Parameters
    ----------
    data : dict
        The stored ``result`` mapping of a cache entry.

    Returns
    -------
    RunResult
        Equal (``==``) to the instance that was encoded: Python's JSON
        float serialisation round-trips exactly, so cached replays are
        bit-identical to fresh runs.
    """
    data = dict(data)
    data["load_latency_histogram"] = {
        int(bucket): int(count) for bucket, count in data["load_latency_histogram"]
    }
    return RunResult(**data)


@dataclasses.dataclass
class CacheLookup:
    """Outcome of one :meth:`RunCache.lookup`.

    Attributes
    ----------
    status : str
        ``"hit"`` (result replayed), ``"miss"`` (no entry on disk),
        ``"stale"`` (entry of a different format version) or
        ``"corrupt"`` (unreadable or undecodable entry).  Everything
        except ``"hit"`` recomputes — but stale and corrupt entries are
        anomalies worth surfacing, not ordinary misses.
    result : RunResult or None
        The replayed result on a hit, else ``None``.
    """

    status: str
    result: Optional[RunResult] = None


class RunCache:
    """Content-addressed store of completed runs under one directory.

    Entries live at ``<root>/<key[:2]>/<key>.json`` — two-level fan-out
    keeps directories small on big sweeps.  Reads tolerate missing,
    truncated or corrupt files (they count as misses, with the miss
    *kind* reported through :meth:`lookup` so the engine can count and
    log stale/corrupt entries instead of hiding them); writes are
    atomic, so an interrupted sweep resumes from its completed points.

    Reads never *heal* silently: stale and corrupt entries are moved to
    a ``.quarantine/`` subdirectory by :meth:`quarantine` (the engine
    calls it when a lookup classifies one) together with a
    ``<key>.reason.txt`` note, so the damaged bytes survive for
    diagnosis while the live tree stays clean.  Opening a cache sweeps
    ``*.tmp`` droppings a previous writer leaked between ``mkstemp``
    and ``os.replace`` (an interrupt or a Windows-style sharing
    failure); only files older than the open are touched, so concurrent
    writers are never raced.

    Parameters
    ----------
    root : str or pathlib.Path
        Cache directory (created lazily on first store).
    """

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self._opened_at = time.time()
        self._sweep_orphans()

    def _sweep_orphans(self) -> None:
        """Remove ``*.tmp`` files leaked by interrupted earlier writers."""
        if not self.root.exists():
            return
        for tmp in self.root.glob("*/*.tmp"):
            try:
                if tmp.stat().st_mtime < self._opened_at:
                    tmp.unlink()
            except OSError:
                continue  # vanished underneath us, or unreadable: leave it

    def path_for(self, key: str) -> pathlib.Path:
        """Entry path for a cache key.

        Parameters
        ----------
        key : str
            A :func:`cache_key_of` digest.

        Returns
        -------
        pathlib.Path
            ``<root>/<key[:2]>/<key>.json``.
        """
        return self.root / key[:2] / f"{key}.json"

    def lookup(self, key: str) -> CacheLookup:
        """Load the entry under ``key``, classifying the outcome.

        Parameters
        ----------
        key : str
            A :func:`cache_key_of` digest.

        Returns
        -------
        CacheLookup
            ``"hit"`` with the replayed result; ``"miss"`` when no entry
            file exists; ``"stale"`` when an entry exists but carries a
            different :data:`CACHE_FORMAT_VERSION`; ``"corrupt"`` when
            the file is unreadable, not valid JSON, or its ``result``
            payload fails to decode.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            return CacheLookup("miss")
        try:
            entry = json.loads(text)
        except ValueError:
            return CacheLookup("corrupt")
        if not isinstance(entry, dict):
            return CacheLookup("corrupt")
        if entry.get("format") != CACHE_FORMAT_VERSION:
            return CacheLookup("stale")
        try:
            return CacheLookup("hit", decode_result(entry["result"]))
        except (KeyError, TypeError, ValueError):
            return CacheLookup("corrupt")

    def get(self, key: str) -> Optional[RunResult]:
        """Load the result stored under ``key``, if any.

        Parameters
        ----------
        key : str
            A :func:`cache_key_of` digest.

        Returns
        -------
        RunResult or None
            The replayed result, or ``None`` on a miss (including
            unreadable/corrupt entries and format-version mismatches —
            use :meth:`lookup` to distinguish the miss kinds).
        """
        return self.lookup(key).result

    def put(self, key: str, result: RunResult, material: Optional[Dict[str, Any]] = None) -> None:
        """Store ``result`` under ``key`` atomically.

        Parameters
        ----------
        key : str
            A :func:`cache_key_of` digest.
        result : RunResult
            The completed run to persist.
        material : dict, optional
            The key material, stored alongside the result for
            debuggability (``repro``'s code never reads it back).

        Raises
        ------
        OSError
            When the entry cannot be written (disk full, permissions).
            The engine treats the first such error as a signal to
            degrade the sweep to cache-off mode.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "material": material,
            "result": encode_result(result),
        }
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(entry, f, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException as exc:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            # A failed replace with a readable entry already in place
            # means a concurrent writer of the same key won the race —
            # the keys are content-addressed, so their entry is ours.
            if isinstance(exc, OSError) and self.lookup(key).status == "hit":
                return
            raise

    def quarantine(self, key: str, reason: str) -> Optional[pathlib.Path]:
        """Move a damaged entry into ``.quarantine/`` with a reason file.

        Parameters
        ----------
        key : str
            A :func:`cache_key_of` digest whose entry classified stale
            or corrupt.
        reason : str
            One-line explanation written to ``<key>.reason.txt`` next to
            the moved entry.

        Returns
        -------
        pathlib.Path or None
            The quarantined entry's new path, or ``None`` when the
            entry could not be moved (already gone, or the quarantine
            directory is unwritable) — never an exception: quarantine
            is best-effort healing, the recompute happens regardless.
        """
        source = self.path_for(key)
        target_dir = self.root / QUARANTINE_DIR
        target = target_dir / f"{key}.json"
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(source, target)
            (target_dir / f"{key}.reason.txt").write_text(reason + "\n")
        except OSError:
            return None
        return target

    def quarantined(self) -> List[pathlib.Path]:
        """All entry files currently held in ``.quarantine/``.

        Returns
        -------
        list of pathlib.Path
            Paths of every quarantined ``*.json`` entry.
        """
        return sorted((self.root / QUARANTINE_DIR).glob("*.json"))

    def entries(self) -> List[pathlib.Path]:
        """All live entry files currently in the cache.

        Returns
        -------
        list of pathlib.Path
            Paths of every ``*.json`` entry under the root, quarantined
            entries excluded (``Path.glob`` *does* descend into
            dot-directories, so the exclusion is explicit).
        """
        if not self.root.exists():
            return []
        return sorted(
            p for p in self.root.glob("*/*.json") if p.parent.name != QUARANTINE_DIR
        )
