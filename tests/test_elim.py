"""Hit-run elimination: oracle soundness, bit-identity, stats plumbing.

Four contracts are pinned here:

- the per-set LRU stack **oracle** (`repro.workloads.elim`) classifies
  every load/store exactly like an independently written brute-force
  set-associative LRU simulation, across fuzzed shapes and synthetic
  traces (hypothesis);
- every event inside an annotated **run** is a pure hit under that
  brute force — no fill, no eviction, no clean-to-dirty transition —
  and the run records' counts are internally consistent;
- replay with elimination forced **on** is bit-identical (whole
  ``RunResult``) to replay with it forced **off**, serial and batched,
  over a kernel/configuration grid (set ``REPRO_ELIM_GRID=full`` for
  the full kernel x config x opt-level sweep CI runs);
- the elimination counters flow into :class:`~repro.exec.engine
  .ExecStats` and telemetry manifests.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.batched import run_batch
from repro.cpu.fastpath import make_run_applier
from repro.cpu.system import System, SystemConfig, warm_regions_of
from repro.exec import ExecutionEngine, RunPoint
from repro.transforms.pipeline import OptLevel, optimize
from repro.workloads import build_kernel, kernel_names
from repro.workloads.elim import (
    DIRTY_TRANSITION,
    MISS,
    PURE_HIT,
    SPANNING,
    annotate_trace,
    counters,
    eliminable_fraction,
    forced,
    oracle_outcomes,
    runs_for,
)
from repro.workloads.encode import (
    OP_LOAD,
    OP_STORE,
    encode_events,
    encode_trace,
)
from repro.workloads.trace import Load, Store

CONFIGS = {
    "sram": lambda: SystemConfig(technology="sram", frontend="plain"),
    "dropin": lambda: SystemConfig(technology="stt-mram", frontend="plain"),
    "vwb": lambda: SystemConfig(technology="stt-mram", frontend="vwb"),
    "l0": lambda: SystemConfig(technology="stt-mram", frontend="l0"),
    "emshr": lambda: SystemConfig(technology="stt-mram", frontend="emshr"),
    "hybrid": lambda: SystemConfig(technology="stt-mram", frontend="hybrid"),
}

#: ``REPRO_ELIM_GRID=full`` (the CI trace-fastpath job) widens the
#: identity sweep to the full kernel x config x opt-level grid.
FULL_GRID = os.environ.get("REPRO_ELIM_GRID") == "full"
GRID_KERNELS = kernel_names() if FULL_GRID else ["atax", "gemm", "mvt"]
GRID_LEVELS = list(OptLevel) if FULL_GRID else [OptLevel.NONE]

_MATERIAL = {}


def _material(kernel, level=OptLevel.NONE):
    key = (kernel, level)
    if key not in _MATERIAL:
        program = build_kernel(kernel)
        if level is not OptLevel.NONE:
            program = optimize(program, level)
        _MATERIAL[key] = (encode_trace(program), warm_regions_of(program))
    return _MATERIAL[key]


# ----------------------------------------------------------------------
# Brute-force reference: an independently structured set-associative
# LRU cache (way arrays + timestamps, not recency stacks).
# ----------------------------------------------------------------------


class _BruteLRU:
    """Set-associative LRU cache, timestamps and way slots."""

    def __init__(self, line_bytes, sets, ways):
        self.line_bytes = line_bytes
        self.sets = sets
        self.ways = ways
        self.lines = [[None] * ways for _ in range(sets)]
        self.stamps = [[0] * ways for _ in range(sets)]
        self.dirty = [[False] * ways for _ in range(sets)]
        self.clock = 0

    def access(self, addr, size, store):
        """Classify then apply one access; returns the outcome code."""
        first = addr // self.line_bytes
        last = (addr + size - 1) // self.line_bytes
        if first != last:
            code = SPANNING
        else:
            way = self._find(first)
            if way is None:
                code = MISS
            elif store and not self.dirty[first % self.sets][way]:
                code = DIRTY_TRANSITION
            else:
                code = PURE_HIT
        for line in range(first, last + 1):
            self._touch(line, store)
        return code

    def _find(self, line):
        slots = self.lines[line % self.sets]
        for way in range(self.ways):
            if slots[way] == line:
                return way
        return None

    def _touch(self, line, store):
        index = line % self.sets
        self.clock += 1
        way = self._find(line)
        if way is None:
            stamps = self.stamps[index]
            way = min(range(self.ways), key=lambda w: stamps[w])
            self.lines[index][way] = line
            self.dirty[index][way] = False
        if store:
            self.dirty[index][way] = True
        self.stamps[index][way] = self.clock


def _brute_outcomes(trace, shape):
    line_bytes, sets, ways, _banks = shape
    cache = _BruteLRU(line_bytes, sets, ways)
    la, ls = trace.load_addrs, trace.load_sizes
    sa, ss = trace.store_addrs, trace.store_sizes
    li = si = 0
    out = bytearray()
    for op in trace.opcodes:
        if op == OP_LOAD:
            out.append(cache.access(la[li], ls[li], False))
            li += 1
        elif op == OP_STORE:
            out.append(cache.access(sa[si], ss[si], True))
            si += 1
    return bytes(out)


_accesses = st.lists(
    st.tuples(
        st.booleans(),  # store?
        st.integers(min_value=0, max_value=1023),  # address
        st.sampled_from([1, 2, 4, 8, 32]),  # size (32 can span)
    ),
    min_size=0,
    max_size=200,
)


class TestOracleProperty:
    """The stack oracle equals brute-force set-associative LRU."""

    @settings(max_examples=200, deadline=None)
    @given(
        accesses=_accesses,
        line_bytes=st.sampled_from([16, 32, 64]),
        sets=st.sampled_from([1, 2, 4, 8]),
        ways=st.sampled_from([1, 2, 4]),
    )
    def test_oracle_matches_brute_force(self, accesses, line_bytes, sets, ways):
        events = [
            Store(addr, size) if store else Load(addr, size)
            for store, addr, size in accesses
        ]
        trace = encode_events(events)
        shape = (line_bytes, sets, ways, 1)
        assert oracle_outcomes(trace, shape) == _brute_outcomes(trace, shape)

    @settings(max_examples=100, deadline=None)
    @given(
        accesses=_accesses,
        sets=st.sampled_from([2, 4, 8]),
        ways=st.sampled_from([1, 2]),
    )
    def test_annotated_runs_cover_only_pure_hits(self, accesses, sets, ways):
        events = [
            Store(addr, size) if store else Load(addr, size)
            for store, addr, size in accesses
        ]
        trace = encode_events(events)
        shape = (32, sets, ways, 2)
        runs = annotate_trace(trace, shape)
        brute = _brute_outcomes(trace, shape)
        # Map trace index -> load/store ordinal.
        ordinal = {}
        n = 0
        for i, op in enumerate(trace.opcodes):
            if op in (OP_LOAD, OP_STORE):
                ordinal[i] = n
                n += 1
        for run in runs:
            assert run.end > run.start
            for i in range(run.start, run.end):
                if i in ordinal:
                    assert brute[ordinal[i]] == PURE_HIT, (i, run)
            n_loads, n_stores, n_computes, _ops, n_taken, n_exit = run.counts
            assert len(run.packed) == (
                n_loads + n_stores + n_computes + n_taken + n_exit
            )
            assert len(run.segs) == n_stores + 1


class TestRealTraces:
    """Annotation facts on real kernel traces."""

    def test_kernel_runs_are_pure_hits_under_brute_force(self):
        trace, _ = _material("gemm")
        shape = (64, 64, 2, 1)  # the hybrid SRAM partition
        runs = annotate_trace(trace, shape)
        assert runs, "gemm should produce hit runs"
        brute = _brute_outcomes(trace, shape)
        ordinal = {}
        n = 0
        for i, op in enumerate(trace.opcodes):
            if op in (OP_LOAD, OP_STORE):
                ordinal[i] = n
                n += 1
        for run in runs:
            for i in range(run.start, run.end):
                if i in ordinal:
                    assert brute[ordinal[i]] == PURE_HIT

    def test_high_locality_kernels_are_mostly_eliminable(self):
        for kernel in ("gemm", "doitgen"):
            trace, _ = _material(kernel)
            assert eliminable_fraction(trace, (64, 512, 2, 4)) > 0.9, kernel

    def test_annotation_is_memoized_per_shape(self):
        trace, _ = _material("atax")
        a = annotate_trace(trace, (64, 512, 2, 4))
        b = annotate_trace(trace, (64, 512, 2, 4))
        assert a is b
        assert annotate_trace(trace, (64, 64, 2, 1)) is not a

    def test_applier_shapes(self):
        dl1 = System(CONFIGS["sram"]())
        applier = make_run_applier(dl1.frontend, dl1.config.cpu)
        assert applier is not None and applier.shape == (64, 512, 2, 4)
        hybrid = System(CONFIGS["hybrid"]())
        applier = make_run_applier(hybrid.frontend, hybrid.config.cpu)
        assert applier is not None and applier.shape == (64, 64, 2, 1)
        vwb = System(CONFIGS["vwb"]())
        assert make_run_applier(vwb.frontend, vwb.config.cpu) is None

    def test_first_pass_defers_annotation(self):
        # The replay paths only annotate from the second pass over a
        # (trace, shape): a one-shot replay must not pay the profiling
        # pass.  forced(True) overrides the deferral.
        program = build_kernel("atax")
        trace = encode_trace(program)
        shape = (64, 512, 2, 4)
        assert runs_for(trace, shape) == ()
        assert ("elim",) + shape not in trace._analysis
        assert len(runs_for(trace, shape)) > 0
        forced_trace = encode_trace(program)
        with forced(True):
            assert len(runs_for(forced_trace, shape)) > 0


class TestBitIdentity:
    """Eliminated replay equals per-event replay, whole ``RunResult``."""

    @pytest.mark.parametrize("level", GRID_LEVELS, ids=lambda l: l.name)
    @pytest.mark.parametrize("kernel", GRID_KERNELS)
    def test_serial_grid(self, kernel, level):
        trace, regions = _material(kernel, level)
        for name, make in CONFIGS.items():
            with forced(True):
                on = System(make()).run(trace, warm_regions=regions)
            with forced(False):
                off = System(make()).run(trace, warm_regions=regions)
            assert on == off, f"{kernel}/{name}/{level.name}"

    def test_batched_grid(self):
        for kernel in GRID_KERNELS:
            trace, regions = _material(kernel)
            configs = [make() for make in CONFIGS.values()]
            with forced(True):
                on = run_batch(
                    trace, [System(c) for c in configs], warm_regions=regions
                )
            with forced(False):
                off = run_batch(
                    trace, [System(c) for c in configs], warm_regions=regions
                )
            assert on == off, kernel

    def test_warm_reruns_stay_identical(self):
        trace, regions = _material("atax")
        for name in ("sram", "hybrid"):
            make = CONFIGS[name]
            with forced(True):
                system = System(make())
                system.run(trace, warm_regions=regions)
                on = system.run(trace, reset=False)
            with forced(False):
                system = System(make())
                system.run(trace, warm_regions=regions)
                off = system.run(trace, reset=False)
            assert on == off, name

    def test_elimination_actually_fires(self):
        trace, regions = _material("gemm")
        before = counters()
        with forced(True):
            System(CONFIGS["sram"]()).run(trace, warm_regions=regions)
        after = counters()
        assert after["events_eliminated"] > before["events_eliminated"]
        assert after["runs_applied"] > before["runs_applied"]


class TestStatsPlumbing:
    """Counters surface in ``ExecStats`` and telemetry manifests."""

    def test_engine_stats_and_manifest(self, tmp_path):
        from repro.telemetry import TelemetryRecorder
        from repro.telemetry.manifest import build_manifest, validate_manifest

        rec = TelemetryRecorder(tmp_path / "tele")
        engine = ExecutionEngine(
            jobs=1, cache_dir=str(tmp_path / "c"), telemetry=rec
        )
        with forced(True):
            engine.run_points(
                [RunPoint(kernel="atax", config=CONFIGS["sram"]())]
            )
        rec.close()
        assert engine.stats.events_eliminated > 0
        assert engine.stats.runs_applied > 0
        doc = build_manifest("penalties", engine)
        validate_manifest(doc)
        stats = doc["engine"]["stats"]
        assert stats["events_eliminated"] == engine.stats.events_eliminated
        assert stats["runs_applied"] == engine.stats.runs_applied

    def test_cache_hits_eliminate_nothing(self, tmp_path):
        point = RunPoint(kernel="atax", config=CONFIGS["sram"]())
        cache_dir = str(tmp_path / "c")
        with forced(True):
            ExecutionEngine(jobs=1, cache_dir=cache_dir).run_points([point])
            warm = ExecutionEngine(jobs=1, cache_dir=cache_dir)
            warm.run_points([point])
        assert warm.stats.hits == 1
        assert warm.stats.events_eliminated == 0
        assert warm.stats.runs_applied == 0
