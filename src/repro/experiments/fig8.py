"""Figure 8: VWB vs equal-capacity L0 cache and Enhanced MSHR.

Paper: "Our proposal offers almost twice the penalty reduction as
compared to the other previous proposals.  This is due to the uniqueness
of the structure and the software optimizations included to exploit it."

All three structures are fully associative and 2 Kbit; all three systems
run the same optimized code (the transformations target the memory
system generically — only the VWB's wide, software-managed organisation
can fully exploit them).
"""

from __future__ import annotations

from typing import Optional

from ..transforms.pipeline import OptLevel
from .report import FigureResult
from .runner import ExperimentRunner


def run(runner: Optional[ExperimentRunner] = None, level: OptLevel = OptLevel.FULL) -> FigureResult:
    """Penalties of the three structures on optimized code."""
    runner = runner or ExperimentRunner()
    vwb = runner.penalties("vwb", level)
    l0 = runner.penalties("l0", level)
    emshr = runner.penalties("emshr", level)
    dropin = runner.penalties("dropin", level)

    def _avg(vals):
        return sum(vals) / len(vals)

    # Penalty *reduction* relative to the drop-in NVM cache, the metric
    # behind the paper's "almost twice" claim.
    vwb_red = _avg(dropin) - _avg(vwb)
    l0_red = _avg(dropin) - _avg(l0)
    emshr_red = _avg(dropin) - _avg(emshr)
    rivals_avg = max(1e-9, (l0_red + emshr_red) / 2.0)
    return FigureResult(
        name="fig8",
        title="Our proposal vs L0 cache and EMSHR (2 Kbit each, optimized code)",
        labels=list(runner.kernels),
        series={"vwb": vwb, "emshr": emshr, "l0": l0},
        notes=[
            "paper: VWB gives almost twice the penalty reduction of the "
            "L0/EMSHR write-mitigation structures",
            f"measured reductions vs drop-in: vwb {vwb_red:.1f}, l0 {l0_red:.1f}, "
            f"emshr {emshr_red:.1f} points -> {vwb_red / rivals_avg:.2f}x the "
            "rivals' average reduction",
        ],
    )
