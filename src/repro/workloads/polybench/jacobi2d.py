"""PolyBench ``jacobi-2d``: five-point stencil over time steps.

Extra kernel: mixes a unit-stride row walk with +/- one-row neighbours,
so each inner iteration touches three cache-line streams at row-stride
distance — a pattern between the suite's pure-streaming and
column-walking extremes.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"n": 40, "tsteps": 6}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the jacobi-2d program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    n, tsteps = dims["n"], dims["tsteps"]
    t, i, j = Var("t"), Var("i"), Var("j")
    a = Array("A", (n, n))
    b = Array("B", (n, n))

    def sweep(src, dst, label):
        return loop(
            i,
            n - 1,
            [
                loop(
                    j,
                    n - 1,
                    [
                        stmt(
                            reads=[src[i, j], src[i, j - 1], src[i, j + 1], src[i - 1, j], src[i + 1, j]],
                            writes=[dst[i, j]],
                            flops=5,
                            label=label,
                        )
                    ],
                    lower=1,
                )
            ],
            lower=1,
        )

    body = [loop(t, tsteps, [sweep(a, b, "fwd"), sweep(b, a, "bwd")])]
    return Program("jacobi-2d", body)
