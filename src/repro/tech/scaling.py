"""First-order technology-node scaling of memory parameters.

The paper obtains its STT-MRAM numbers "by means of appropriate technology
scaling and other optimizations" applied to published cell data.  This
module implements the textbook constant-field scaling rules so users can
derive presets for other nodes (e.g. 22 nm or 45 nm) and check how the
SRAM-vs-NVM trade-off moves with scaling — the paper's motivating argument
is precisely that SRAM leakage worsens with scaling while NVM does not.

Scaling rules for a linear shrink factor ``s = new_F / old_F`` (< 1 when
shrinking):

- cell area in F^2 is unchanged by definition (absolute area scales s^2);
- wire-dominated latency scales roughly with s (shorter wires) but sensing
  does not improve as fast; we apply ``s ** latency_exponent`` with a
  default exponent of 0.6;
- dynamic energy per bit scales with s^2 (capacitance x voltage^2, with
  voltage scaling slowing down — folded into the exponent);
- SRAM leakage per bit *worsens* when shrinking (sub-threshold leakage
  grows as V_th drops); NVM cell leakage stays negligible and only its
  CMOS periphery follows the SRAM trend at reduced weight.
"""

from __future__ import annotations

from dataclasses import replace

from ..errors import ConfigurationError
from .params import MemoryTechnology

#: Exponent applied to the linear shrink for access latency.
_LATENCY_EXPONENT = 0.6
#: Exponent applied to the linear shrink for dynamic energy.
_ENERGY_EXPONENT = 1.7
#: Leakage growth per linear shrink for SRAM (leakage ~ s^-1.5).
_SRAM_LEAKAGE_EXPONENT = -1.5
#: NVM arrays only leak in their CMOS periphery: weaker dependence.
_NVM_LEAKAGE_EXPONENT = -0.7


def scale_technology(tech: MemoryTechnology, target_feature_nm: float) -> MemoryTechnology:
    """Scale a technology preset to a different feature size.

    Args:
        tech: Source technology (typically one of the 32 nm presets).
        target_feature_nm: Desired node, e.g. 22.0 or 45.0.

    Returns:
        A new :class:`MemoryTechnology` with scaled latency, energy and
        leakage, renamed to mention the target node.  Cell area in F^2 and
        endurance are carried over unchanged.

    Raises:
        ConfigurationError: If the target node is not positive.
    """
    if target_feature_nm <= 0:
        raise ConfigurationError(f"target feature size must be positive: {target_feature_nm}")
    if target_feature_nm == tech.feature_nm:
        return tech

    s = target_feature_nm / tech.feature_nm
    leak_exp = _SRAM_LEAKAGE_EXPONENT if not tech.non_volatile else _NVM_LEAKAGE_EXPONENT

    base_name = tech.name.split(" ")[0]
    return replace(
        tech,
        name=f"{base_name} {target_feature_nm:g}nm (scaled)",
        feature_nm=target_feature_nm,
        read_latency_ns=tech.read_latency_ns * s**_LATENCY_EXPONENT,
        write_latency_ns=tech.write_latency_ns * s**_LATENCY_EXPONENT,
        read_energy_pj_per_bit=tech.read_energy_pj_per_bit * s**_ENERGY_EXPONENT,
        write_energy_pj_per_bit=tech.write_energy_pj_per_bit * s**_ENERGY_EXPONENT,
        leakage_mw=tech.leakage_mw * s**leak_exp,
    )
