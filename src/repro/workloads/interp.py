"""The workload interpreter: affine IR -> architectural event trace.

This is the stand-in for the compiler+ISA layer of the paper's gem5
setup.  Walking a :class:`~repro.workloads.ir.Program` produces the event
stream an ARM compiler would emit for the kernel at ``-O2``:

- one :class:`~repro.workloads.trace.Load`/``Store`` per array reference
  execution, with exact byte addresses from the row-major layout;
- *scalar replacement* of loop-invariant references in innermost loops
  (an accumulator like ``C[i][j]`` in a ``k``-loop is loaded once before
  the loop and stored once after, like a register-allocated temporary);
- one :class:`~repro.workloads.trace.Compute` per statement execution
  covering its arithmetic and addressing work;
- one taken :class:`~repro.workloads.trace.Branch` per loop back-edge.

Transformation annotations change the emission:

- ``vector_width = W`` processes the loop in chunks of W iterations:
  stride-1 references become single W-element vector accesses, arithmetic
  and back-edges are charged once per chunk (SIMD), and references with
  other strides fall back to per-lane accesses (a gather/scatter);
- ``unroll = U`` charges one back-edge per U iterations/chunks;
- ``prefetch = [(ref, distance)]`` emits a software
  :class:`~repro.workloads.trace.Prefetch` for the reference's address
  ``distance`` iterations ahead, de-duplicated at
  :attr:`TraceConfig.prefetch_block_bytes` granularity so one hint is
  issued per new buffer window, like hand-placed prefetch intrinsics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import WorkloadError
from .ir import Loop, Node, Program, Ref, Statement
from .trace import (
    IRMark,
    Load,
    Prefetch,
    Store,
    TraceEvent,
    branch_event,
    compute_event,
)


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the IR-to-trace lowering.

    Attributes:
        prefetch_block_bytes: De-duplication granularity for emitted
            prefetches — one hint per new block a stream enters.  The
            default (64 B, one cache line) serves every front-end: the
            VWB de-duplicates redundant hints internally at window
            granularity, while plain caches need one hint per line.
        scalar_replacement: Hoist loop-invariant references out of
            innermost loops (on, like any optimising compiler).
        layout_base: Base address for array layout when the program has
            not been laid out yet.
        annotate_ir: Emit a zero-cost :class:`~repro.workloads.trace.IRMark`
            each time a loop (level) is entered, labelled with the dotted
            loop-variable path (e.g. ``"i.k.j"``).  Off by default so the
            figures' traces are byte-identical to the seed; the profiler
            turns it on to get per-IR-loop cycle subtotals.
    """

    prefetch_block_bytes: int = 64
    scalar_replacement: bool = True
    layout_base: int = 0x10_0000
    annotate_ir: bool = False


def generate_trace(program: Program, config: TraceConfig = TraceConfig()) -> Iterator[TraceEvent]:
    """Yield the architectural events of one execution of ``program``."""
    if any(a.base_addr is None for a in program.arrays):
        program.layout(base_addr=config.layout_base)
    env: Dict[str, int] = {}
    # Per-generation memo for _split_refs: the partition depends only on
    # the loop body and the config (constant for this walk), yet an
    # innermost loop is *entered* once per surrounding iteration — i*j
    # times for gemm — so the split is computed once per loop node here
    # instead of once per entry.  Keyed by node identity; the memo's
    # lifetime is one generator run, during which the tree is immutable.
    split_memo: Dict[int, tuple] = {}
    for node in program.body:
        yield from _run_node(node, env, config, "", split_memo)


def materialize_trace(program: Program, config: TraceConfig = TraceConfig()) -> List[TraceEvent]:
    """Generate the whole trace as a list (reused across configurations)."""
    return list(generate_trace(program, config))


# ----------------------------------------------------------------------
# Tree walk
# ----------------------------------------------------------------------


def _run_node(
    node: Node,
    env: Dict[str, int],
    cfg: TraceConfig,
    path: str = "",
    split_memo: Optional[Dict[int, tuple]] = None,
) -> Iterator[TraceEvent]:
    if isinstance(node, Statement):
        yield from _run_statement(node, env)
        return
    if node.is_innermost:
        yield from _run_innermost(node, env, cfg, path, split_memo)
        return
    lo = node.lower.evaluate(env)
    hi = node.upper.evaluate(env)
    branch_every = max(1, node.unroll)
    label = f"{path}.{node.var.name}" if path else node.var.name
    for i, v in enumerate(range(lo, hi)):
        env[node.var.name] = v
        if cfg.annotate_ir:
            # Re-marked each iteration so the region pops back correctly
            # after a nested loop overrode it.
            yield IRMark(label)
        for child in node.body:
            yield from _run_node(child, env, cfg, label, split_memo)
        if (i + 1) % branch_every == 0 or v == hi - 1:
            yield branch_event(v != hi - 1)
    env.pop(node.var.name, None)


def _run_statement(node: Statement, env: Dict[str, int]) -> Iterator[TraceEvent]:
    """Execute one statement outside any innermost-loop specialisation."""
    for ref in node.reads:
        yield Load(ref.addr(env), ref.array.elem_bytes)
    yield compute_event(node.flops + node.overhead_ops)
    for ref in node.writes:
        yield Store(ref.addr(env), ref.array.elem_bytes)


# ----------------------------------------------------------------------
# Innermost-loop specialisation
# ----------------------------------------------------------------------


def _split_refs(
    node: Loop, cfg: TraceConfig
) -> Tuple[List[Ref], List[Ref], List[Tuple[Statement, List[Ref], List[Ref]]]]:
    """Partition references into hoisted (loop-invariant) and per-iteration.

    Returns:
        ``(preloads, poststores, per_stmt)`` where ``per_stmt`` holds, for
        each statement, the read and write refs that remain inside the
        loop.  Hoisted refs are de-duplicated across statements by
        (array, subscripts).
    """
    preloads: List[Ref] = []
    poststores: List[Ref] = []
    seen_loads: set = set()
    seen_stores: set = set()
    per_stmt: List[Tuple[Statement, List[Ref], List[Ref]]] = []
    for statement in node.statements():
        inner_reads: List[Ref] = []
        inner_writes: List[Ref] = []
        for ref in statement.reads:
            if cfg.scalar_replacement and ref.stride_elements(node.var) == 0:
                key = (id(ref.array), ref.indices)
                if key not in seen_loads:
                    seen_loads.add(key)
                    preloads.append(ref)
            else:
                inner_reads.append(ref)
        for ref in statement.writes:
            if cfg.scalar_replacement and ref.stride_elements(node.var) == 0:
                key = (id(ref.array), ref.indices)
                if key not in seen_stores:
                    seen_stores.add(key)
                    poststores.append(ref)
            else:
                inner_writes.append(ref)
        per_stmt.append((statement, inner_reads, inner_writes))
    return preloads, poststores, per_stmt


def _run_innermost(
    node: Loop,
    env: Dict[str, int],
    cfg: TraceConfig,
    path: str = "",
    split_memo: Optional[Dict[int, tuple]] = None,
) -> Iterator[TraceEvent]:
    lo = node.lower.evaluate(env)
    hi = node.upper.evaluate(env)
    if hi <= lo:
        return
    if cfg.annotate_ir:
        yield IRMark(f"{path}.{node.var.name}" if path else node.var.name)
    if split_memo is None:
        preloads, poststores, per_stmt = _split_refs(node, cfg)
    else:
        split = split_memo.get(id(node))
        if split is None:
            split = split_memo[id(node)] = _split_refs(node, cfg)
        preloads, poststores, per_stmt = split

    # Hoisted loads execute once, before the loop (scalar replacement).
    env[node.var.name] = lo
    for ref in preloads:
        yield Load(ref.addr(env), ref.array.elem_bytes)

    width = max(1, node.vector_width)
    branch_every = max(1, node.unroll)

    if width == 1 and not node.prefetch:
        # Scalar fast path.  Every subscript is affine in the loop
        # variable, so each reference advances by a fixed byte stride
        # per iteration: addr(v) = addr(lo) + stride * (v - lo), exact
        # integer arithmetic.  Precomputing (base, stride) per reference
        # replaces the per-iteration env writes and affine evaluation of
        # the generic loop with one multiply-add per access.
        var, trips = node.var, hi - lo
        plans = [
            (
                [(ref.addr(env), ref.stride_bytes(var), ref.array.elem_bytes) for ref in reads],
                statement.flops + statement.overhead_ops,
                [(ref.addr(env), ref.stride_bytes(var), ref.array.elem_bytes) for ref in writes],
            )
            for statement, reads, writes in per_stmt
        ]
        for off in range(trips):
            for read_plan, ops_count, write_plan in plans:
                for base, step, elem in read_plan:
                    yield Load(base + step * off, elem)
                yield compute_event(ops_count)
                for base, step, elem in write_plan:
                    yield Store(base + step * off, elem)
            done = off + 1
            if done % branch_every == 0 or done == trips:
                yield branch_event(done != trips)
        # Hoisted stores execute once, after the loop.
        env[node.var.name] = lo
        for ref in poststores:
            yield Store(ref.addr(env), ref.array.elem_bytes)
        env.pop(node.var.name, None)
        return

    last_prefetch_block: Dict[int, int] = {}

    chunk_index = 0
    v = lo
    while v < hi:
        chunk = min(width, hi - v)
        env[node.var.name] = v

        # Software prefetches run ahead of the demand stream.  The first
        # iteration also prefetches its *own* data — the paper's "cutting
        # initial delay time to fetch critical data to the VWB" — which
        # keeps the fill-buffer pipeline in phase from the start.
        for pf_index, (ref, distance) in enumerate(node.prefetch):
            saved = env[node.var.name]
            targets = (v, min(v + distance, hi - 1)) if v == lo else (min(v + distance, hi - 1),)
            for target in targets:
                env[node.var.name] = target
                addr = ref.addr(env)
                block = addr // cfg.prefetch_block_bytes
                if last_prefetch_block.get(pf_index) != block:
                    last_prefetch_block[pf_index] = block
                    yield Prefetch(addr)
            env[node.var.name] = saved

        for statement, reads, writes in per_stmt:
            for ref in reads:
                yield from _emit_access(ref, node, env, v, chunk, Load)
            yield compute_event(statement.flops + statement.overhead_ops)
            for ref in writes:
                yield from _emit_access(ref, node, env, v, chunk, Store)

        chunk_index += 1
        last = v + chunk >= hi
        if chunk_index % branch_every == 0 or last:
            yield branch_event(not last)
        v += chunk

    # Hoisted stores execute once, after the loop.
    env[node.var.name] = lo
    for ref in poststores:
        yield Store(ref.addr(env), ref.array.elem_bytes)
    env.pop(node.var.name, None)


def _emit_access(
    ref: Ref, node: Loop, env: Dict[str, int], v: int, chunk: int, factory
) -> Iterator[TraceEvent]:
    """Emit the access(es) for one reference over one chunk of iterations.

    A chunk of one iteration is the scalar case; wider chunks model SIMD:
    stride-1 refs become a single wide access, other strides become
    per-lane accesses (gather/scatter).
    """
    elem = ref.array.elem_bytes
    if chunk == 1:
        yield factory(ref.addr(env), elem)
        return
    stride = ref.stride_elements(node.var)
    if stride == 0:
        yield factory(ref.addr(env), elem)
        return
    if stride == 1:
        yield factory(ref.addr(env), chunk * elem)
        return
    saved = env[node.var.name]
    for lane in range(chunk):
        env[node.var.name] = v + lane
        yield factory(ref.addr(env), elem)
    env[node.var.name] = saved
