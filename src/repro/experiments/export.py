"""Machine-readable export of experiment results (JSON / CSV).

``python -m repro fig5 --json out/`` writes ``out/fig5.json`` alongside
the text rendering; downstream plotting (matplotlib, gnuplot, a
spreadsheet) consumes these instead of scraping the text tables.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Union

from .report import FigureResult


def figure_to_dict(result: FigureResult) -> dict:
    """A JSON-ready dict of one figure: labels, series, averages, notes."""
    return {
        "name": result.name,
        "title": result.title,
        "unit": result.unit,
        "labels": list(result.labels),
        "series": {key: list(values) for key, values in result.series.items()},
        "averages": result.averages(),
        "notes": list(result.notes),
    }


def write_json(result: FigureResult, directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write ``<directory>/<name>.json``; returns the path."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{result.name}.json"
    path.write_text(json.dumps(figure_to_dict(result), indent=2, sort_keys=True) + "\n")
    return path


def write_csv(result: FigureResult, directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write ``<directory>/<name>.csv`` (one row per label); returns the path."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{result.name}.csv"
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["benchmark"] + list(result.series))
        for i, label in enumerate(result.labels):
            writer.writerow([label] + [result.series[key][i] for key in result.series])
        if result.labels:
            avg = result.averages()
            writer.writerow(["AVERAGE"] + [avg[key] for key in result.series])
    return path
