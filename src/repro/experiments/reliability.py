"""Reliability sweep: performance cost of tolerating STT-MRAM write errors.

STT-MRAM writes are stochastic — a pulse fails to switch the cell with a
probability set by the thermal stability factor and the write current
(see :meth:`repro.tech.params.MemoryTechnology.write_error_rate`).  A
deployable NVM DL1 therefore pairs the paper's latency story with a
fault-tolerance stack: write-verify-retry, SECDED on reads, and
retirement of worn line slots.  None of that is free, and the cost lands
exactly where the paper's architectures differ — retries lengthen the
array-write occupancy that the VWB was designed to hide.

This experiment sweeps the raw bit error rate and reports, per
configuration, the penalty against the fault-free SRAM baseline (the
Figure 5 metric with reliability overhead stacked on the technology
penalty).  At realistic rber (~1e-5, the thermal model's prediction for
the Table I cell) the overhead is the fixed SECDED decode adder plus a
negligible retry tail; the curve bends once multi-retry writes become
common enough to back-pressure the store buffer.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .report import FigureResult
from .runner import ExperimentRunner, resolve_config_name

#: Swept raw bit error rates: from the thermal model's nominal
#: prediction up to a deliberately pathological tail.
DEFAULT_RATES: Sequence[float] = (1e-5, 1e-4, 1e-3, 1e-2)


def run(
    runner: Optional[ExperimentRunner] = None,
    kernel: str = "gemm",
    rates: Sequence[float] = DEFAULT_RATES,
    configs: Sequence[str] = ("dropin", "vwb"),
    seed: int = 0,
) -> FigureResult:
    """Reliability penalty curves for one kernel, drop-in vs VWB.

    Parameters
    ----------
    runner : ExperimentRunner, optional
        Shared experiment runner (a fresh one by default); an attached
        execution engine fans the whole rber grid out in parallel.
    kernel : str
        Kernel to sweep.
    rates : sequence of float
        Raw per-bit write error rates.
    configs : sequence of str
        Configuration names/aliases to compare.
    seed : int
        Fault-injection seed.

    Returns
    -------
    FigureResult
        One penalty curve per configuration, in ``rates`` order.
    """
    runner = runner if runner is not None else ExperimentRunner()
    names = [resolve_config_name(c) for c in configs]
    curves = runner.reliability_sweep(kernel, rates, names, seed=seed)
    return FigureResult(
        name="reliability",
        title=f"{kernel}: penalty vs SRAM across write raw bit error rate",
        labels=[f"rber={rate:g}" for rate in rates],
        series={name: curves[name] for name in names},
        unit="%",
        notes=[
            "fault model: stochastic write failures + write-verify-retry, "
            "SECDED decode on reads, line retirement at defaults",
            "penalties vs the fault-free SRAM baseline (Figure 5 metric); "
            f"fault seed {seed}",
        ],
        average_row=False,
    )
