"""Bench: robustness of the conclusions on synthetic access extremes.

The paper evaluates regular affine kernels; this bench probes the
organisations at the pattern extremes the generators in
:mod:`repro.workloads.synthetic` produce, checking the VWB's behaviour
degrades gracefully where it structurally cannot help.
"""

from repro.cpu.system import System, SystemConfig
from repro.experiments.report import FigureResult
from repro.workloads import synthetic

from conftest import run_once

PATTERNS = {
    "streaming": lambda: synthetic.streaming(bytes_total=32768, rounds=2),
    "strided_256B": lambda: synthetic.strided(stride_bytes=256, accesses=4096),
    "pointer_chase": lambda: synthetic.pointer_chase(working_set_bytes=16384, rounds=3),
    "hot_cold_90_10": lambda: synthetic.hot_cold(accesses=8192, seed=11),
    "random_256KB": lambda: synthetic.random_access(accesses=8192, seed=11),
}


def _measure():
    labels = []
    dropin_pen = []
    vwb_pen = []
    for name, make in PATTERNS.items():
        events = make()
        sram = System(SystemConfig(technology="sram")).run(events)
        dropin = System(SystemConfig(technology="stt-mram")).run(events)
        vwb = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(events)
        labels.append(name)
        dropin_pen.append(dropin.penalty_vs(sram))
        vwb_pen.append(vwb.penalty_vs(sram))
    return FigureResult(
        name="synthetic",
        title="Drop-in vs VWB on synthetic access extremes",
        labels=labels,
        series={"dropin": dropin_pen, "vwb": vwb_pen},
        notes=[
            "the VWB exploits *spatial* locality (sequential windows); "
            "random-order temporal locality (hot_cold) defeats the 2-line "
            "always-promote policy — a structural limit the paper's "
            "stride-regular kernels never hit",
        ],
    )


def test_synthetic_extremes(benchmark, save):
    result = run_once(benchmark, _measure)
    save(result)
    by = dict(zip(result.labels, zip(result.series["dropin"], result.series["vwb"])))
    # Spatial-locality patterns: the VWB removes most of the penalty.
    dropin, vwb = by["streaming"]
    assert vwb < 0.6 * dropin
    # Locality-free or random-order patterns: degradation stays bounded
    # (promotions cost one wide read, never a blow-up).
    for pattern in ("pointer_chase", "random_256KB", "hot_cold_90_10"):
        dropin, vwb = by[pattern]
        assert vwb < dropin + 40.0
