"""Full-system assembly: CPU + D-cache front-end + shared hierarchy.

:class:`SystemConfig` captures one experimental configuration of the
paper's platform (which DL1 technology, which front-end organisation,
what VWB geometry); :class:`System` builds and runs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Union

from ..core.dropin import PlainFrontend
from ..core.emshr import EMSHRFrontend
from ..core.frontend import DCacheFrontend
from ..core.hybrid import HybridFrontend
from ..core.l0 import L0Frontend
from ..core.vwb import VWBConfig
from ..core.vwb_frontend import VWBFrontend
from ..errors import ConfigurationError
from ..mem.cache import Cache, CacheConfig
from ..mem.hierarchy import HierarchyConfig, MemoryHierarchy
from ..mem.prefetcher import StridePrefetcher
from ..obs.probe import NULL_PROBE, Probe
from ..reliability.faults import FaultInjector, ReliabilityConfig
from ..tech.params import MemoryTechnology, get_technology
from ..units import kib, ns_to_cycles
from ..workloads.trace import TraceEvent
from .model import CPUConfig, InOrderCPU, RunResult

#: Default DL1 line size.  Figure 1's drop-in comparison replaces the
#: SRAM D-cache "by a NVM counterpart with similar characteristics (size,
#: associativity...)", so both technologies default to the NVM's 512-bit
#: line; Table I's 256-bit SRAM line is available by passing
#: ``dl1_line_bytes=32`` (exercised by the line-size ablation).
_DEFAULT_LINE_BYTES = 64


@dataclass(frozen=True)
class SystemConfig:
    """One platform configuration of the paper's evaluation.

    Attributes
    ----------
    technology : str or MemoryTechnology
        DL1 array technology — a preset name (``"sram"``,
        ``"stt-mram"``, ...) or a :class:`MemoryTechnology`.
    frontend : str
        D-cache organisation: ``"plain"`` (baseline/drop-in), ``"vwb"``
        (the proposal), ``"l0"`` or ``"emshr"``.
    dl1_capacity_bytes : int
        DL1 size (64 KB in the paper).
    dl1_associativity : int
        DL1 ways (2 in the paper).
    dl1_line_bytes : int, optional
        DL1 line size; ``None`` selects the 64 B (512-bit) line the
        paper's NVM DL1 uses, for both technologies — Figure 1 replaces
        the SRAM cache by an NVM one "with similar characteristics".
        Pass 32 for Table I's 256-bit SRAM line.
    dl1_banks : int
        Banks in the DL1 array (the paper simulates a banked NVM
        array).
    dl1_replacement : str
        DL1 replacement policy name.
    vwb_bits : int
        VWB capacity for the ``"vwb"`` front-end (Figure 7 sweeps
        1024/2048/4096).
    vwb_lines : int
        VWB wide-line count (2 in the paper).
    buffer_bits : int
        Capacity of the L0/EMSHR structure (2 Kbit in Figure 8).
    hybrid_sram_bytes : int
        SRAM partition size of the ``"hybrid"`` front-end (related-work
        extension).
    il1_technology : str or MemoryTechnology, optional
        Override the instruction-cache technology (default SRAM, as in
        every experiment of the paper); used by the NVM-I-cache
        exploration together with ``cpu.model_ifetch``.
    hw_prefetcher : bool
        Attach a hardware stride prefetcher to the ``"plain"``
        front-end (extension; off in every reproduced figure).
    dl1_fast_write_cycles : int, optional
        Enable the AWARE asymmetric-write model in the DL1 array
        (extension; see :class:`~repro.mem.cache.CacheConfig`).
    dl1_fast_write_fraction : float
        Fraction of fast writes under AWARE.
    track_line_writes : bool
        Record per-line DL1 write counts (endurance).
    dl1_replacement_seed : int
        Seed for the DL1's ``random`` replacement policy (ignored by
        the deterministic policies).
    reliability : ReliabilityConfig, optional
        Optional DL1 fault-injection parameters.  ``None`` — and any
        config whose fault rates are all zero — leaves the timing
        bit-exact with the fault-free model.
    cpu : CPUConfig
        Core timing parameters.
    hierarchy : HierarchyConfig
        IL1/L2/DRAM parameters.
    """

    technology: Union[str, MemoryTechnology] = "sram"
    frontend: str = "plain"
    dl1_capacity_bytes: int = kib(64)
    dl1_associativity: int = 2
    dl1_line_bytes: Optional[int] = None
    dl1_banks: int = 4
    dl1_replacement: str = "lru"
    vwb_bits: int = 2048
    vwb_lines: int = 2
    buffer_bits: int = 2048
    hybrid_sram_bytes: int = 8192
    il1_technology: Optional[Union[str, MemoryTechnology]] = None
    hw_prefetcher: bool = False
    dl1_fast_write_cycles: Optional[int] = None
    dl1_fast_write_fraction: float = 0.5
    track_line_writes: bool = False
    dl1_replacement_seed: int = 0
    reliability: Optional[ReliabilityConfig] = None
    cpu: CPUConfig = field(default_factory=CPUConfig)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)

    def resolved_technology(self) -> MemoryTechnology:
        """The DL1 technology as a :class:`MemoryTechnology`."""
        if isinstance(self.technology, MemoryTechnology):
            return self.technology
        return get_technology(self.technology)

    def resolved_line_bytes(self) -> int:
        """The DL1 line size (512-bit unless overridden)."""
        if self.dl1_line_bytes is not None:
            return self.dl1_line_bytes
        return _DEFAULT_LINE_BYTES

    def dl1_cache_config(self) -> CacheConfig:
        """Derive the DL1 :class:`CacheConfig` (latencies from the tech)."""
        tech = self.resolved_technology()
        return CacheConfig(
            name="dl1",
            capacity_bytes=self.dl1_capacity_bytes,
            associativity=self.dl1_associativity,
            line_bytes=self.resolved_line_bytes(),
            read_hit_cycles=ns_to_cycles(tech.read_latency_ns),
            write_hit_cycles=ns_to_cycles(tech.write_latency_ns),
            banks=self.dl1_banks,
            replacement=self.dl1_replacement,
            replacement_seed=self.dl1_replacement_seed,
            track_line_writes=self.track_line_writes,
            fast_write_cycles=self.dl1_fast_write_cycles,
            fast_write_fraction=self.dl1_fast_write_fraction,
        )

    def with_technology(self, technology: Union[str, MemoryTechnology]) -> "SystemConfig":
        """Copy of this config with a different DL1 technology."""
        return replace(self, technology=technology)

    def resolved_hierarchy(self) -> HierarchyConfig:
        """The hierarchy config, with the IL1 re-timed if overridden."""
        if self.il1_technology is None:
            return self.hierarchy
        tech = (
            self.il1_technology
            if isinstance(self.il1_technology, MemoryTechnology)
            else get_technology(self.il1_technology)
        )
        il1 = replace(
            self.hierarchy.il1,
            read_hit_cycles=ns_to_cycles(tech.read_latency_ns),
            write_hit_cycles=ns_to_cycles(tech.write_latency_ns),
        )
        return replace(self.hierarchy, il1=il1)


def build_frontend(config: SystemConfig, backing: Cache) -> DCacheFrontend:
    """Construct the configured D-cache front-end over ``backing``."""
    kind = config.frontend.strip().lower()
    if kind == "plain":
        prefetcher = StridePrefetcher(backing) if config.hw_prefetcher else None
        return PlainFrontend(backing, hw_prefetcher=prefetcher)
    if kind == "vwb":
        vwb_config = VWBConfig(
            total_bits=config.vwb_bits,
            n_lines=config.vwb_lines,
            cache_line_bytes=backing.config.line_bytes,
        )
        return VWBFrontend(backing, vwb_config)
    if kind == "l0":
        return L0Frontend(backing, total_bits=config.buffer_bits)
    if kind == "emshr":
        return EMSHRFrontend(backing, total_bits=config.buffer_bits)
    if kind == "hybrid":
        return HybridFrontend(backing, sram_bytes=config.hybrid_sram_bytes)
    raise ConfigurationError(
        f"unknown front-end {config.frontend!r}; expected plain, vwb, l0, emshr or hybrid"
    )


class System:
    """A complete simulated platform ready to execute traces."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.hierarchy = MemoryHierarchy(config.resolved_hierarchy())
        injector: Optional[FaultInjector] = None
        if config.reliability is not None:
            injector = FaultInjector(
                config.reliability, config.resolved_line_bytes() * 8
            )
        self.dl1 = Cache(config.dl1_cache_config(), self.hierarchy.l2_port, injector)
        self.frontend = build_frontend(config, self.dl1)
        self.cpu = InOrderCPU(config.cpu, self.frontend, self.hierarchy)

    def attach_probe(self, probe: Probe) -> None:
        """Thread ``probe`` through the CPU, front-end and hierarchy."""
        self.cpu.probe = probe
        self.frontend.set_probe(probe)
        self.hierarchy.set_probe(probe)

    def run(
        self,
        events: Iterable[TraceEvent],
        reset: bool = True,
        warm_regions: Optional[Iterable] = None,
        probe: Optional[Probe] = None,
    ) -> RunResult:
        """Execute a trace.

        Parameters
        ----------
        events : iterable of TraceEvent
            The architectural event stream.
        reset : bool
            Reset all state first; pass ``False`` to keep cache
            contents from a previous run (warm caches).  The run's
            clock always restarts at zero, so timing state and
            statistics are cleared either way.
        warm_regions : iterable of (int, int), optional
            ``(base_addr, size_bytes)`` regions to stream into the L2
            before the measured run — modelling PolyBench's
            array-initialisation loops, which the paper's gem5 SE runs
            execute ahead of the kernel.  The L1 D-cache itself starts
            cold (initialisation touches far more data than it holds).
        probe : Probe, optional
            Observability probe for this run only.  It is attached
            *after* the warm-up phase (warm-up cycles are not part of
            the measured run), its ``finish`` hook runs with the result
            (verifying the cycle ledger), and the system is returned to
            the null probe before the call returns.
        """
        if reset:
            self.reset()
        else:
            # Keep contents, but stale absolute timestamps (bank busy
            # times, in-flight fills) must not leak into the new clock.
            self.hierarchy.clear_stats()
            self.frontend.clear_stats()
        if warm_regions is not None:
            self.warm_l2(warm_regions)
        if probe is not None:
            self.attach_probe(probe)
        try:
            result = self.cpu.run(events)
        finally:
            if probe is not None:
                self.attach_probe(NULL_PROBE)
        result.l2_stats = self.hierarchy.l2.stats.as_dict()
        result.il1_stats = self.hierarchy.il1.stats.as_dict()
        result.mainmem_stats = self.hierarchy.memory.stats_dict()
        result.memory_accesses = self.hierarchy.memory.accesses
        if self.dl1.reliability is not None:
            result.reliability_stats = self.dl1.reliability.stats.as_dict()
            # Per-run count (the injector's stats are cleared with the
            # rest of the run statistics), not the cumulative
            # `dl1.retired_lines` — on a warm re-run the two differ and
            # the docstring promises "during the run".
            result.retired_lines = int(self.dl1.reliability.stats.retired_lines)
        if probe is not None:
            probe.finish(result)
        return result

    def warm_l2(self, regions: Iterable) -> None:
        """Stream ``(base, size)`` regions into the L2, then zero stats."""
        line = self.hierarchy.l2.config.line_bytes
        t = 0.0
        for base, size in regions:
            addr = (base // line) * line
            while addr < base + size:
                t += self.hierarchy.l2.line_access(addr, True, t)
                addr += line
        self.hierarchy.clear_stats()
        self.frontend.clear_stats()

    def reset(self) -> None:
        """Return every component to its power-on state."""
        self.hierarchy.reset()
        self.frontend.reset()

    def describe(self) -> str:
        """Human-readable one-paragraph summary of the platform."""
        tech = self.config.resolved_technology()
        dl1 = self.dl1.config
        il1 = self.hierarchy.il1.config
        l2 = self.hierarchy.l2.config
        lines = [
            f"CPU: in-order @1GHz, load-use overlap {self.config.cpu.load_use_overlap}, "
            f"store buffer {self.config.cpu.store_buffer_entries}",
            f"DL1: {dl1.capacity_bytes // 1024}KB {dl1.associativity}-way, "
            f"{dl1.line_bytes}B lines, {dl1.banks} banks, {tech.name} "
            f"(rd {dl1.read_hit_cycles} / wr {dl1.write_hit_cycles} cycles), "
            f"front-end '{self.frontend.name}'",
            f"IL1: {il1.capacity_bytes // 1024}KB {il1.associativity}-way "
            f"(rd {il1.read_hit_cycles} cycles)",
            f"L2: {l2.capacity_bytes // (1024 * 1024)}MB {l2.associativity}-way "
            f"(rd {l2.read_hit_cycles} cycles), DRAM "
            f"{self.config.hierarchy.memory_latency_cycles:.0f} cycles",
        ]
        if self.frontend.name == "vwb":
            vwb = self.frontend.vwb.config
            lines.insert(
                2,
                f"VWB: {vwb.total_bits} bits, {vwb.n_lines} lines x "
                f"{vwb.window_bytes}B windows ({vwb.lines_per_window} DL1 lines each)",
            )
        return "\n".join(lines)


def warm_regions_of(program) -> list:
    """The ``(base, size)`` regions covering a program's arrays.

    Convenience for :meth:`System.run`'s ``warm_regions`` argument; the
    program must have been laid out (done automatically by trace
    generation).
    """
    return [(a.base_addr, a.size_bytes) for a in program.arrays if a.base_addr is not None]
