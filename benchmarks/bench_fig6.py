"""Bench: Figure 6 — per-transformation share of the penalty reduction.

Paper shape: "pre-fetching and vectorization have the largest positive
impacts", with prefetching most impactful on these small kernels.
"""

from repro.experiments import fig6

from conftest import run_once


def test_fig6(benchmark, runner, save):
    result = run_once(benchmark, fig6.run, runner=runner)
    save(result)
    avg = result.averages()
    assert avg["prefetching"] >= avg["vectorization"]
    assert avg["prefetching"] >= avg["others"]
    # Shares normalised per kernel.
    for i in range(len(result.labels)):
        total = sum(result.series[k][i] for k in result.series)
        assert abs(total - 100.0) < 0.1 or total == 0.0
