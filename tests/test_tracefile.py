"""Trace serialisation, including a hypothesis round-trip property."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import build_kernel, load_trace, materialize_trace, save_trace
from repro.workloads.trace import Branch, Compute, Load, Prefetch, Store
from repro.workloads.tracefile import HEADER, dump_trace, parse_trace


def _events_equal(a, b) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, (Load, Store)):
        return a.addr == b.addr and a.size == b.size
    if isinstance(a, Compute):
        return a.ops == b.ops
    if isinstance(a, Branch):
        return a.taken == b.taken
    if isinstance(a, Prefetch):
        return a.addr == b.addr
    return False


class TestRoundTrip:
    def test_kernel_trace_roundtrip(self, tmp_path):
        trace = materialize_trace(build_kernel("syrk"))
        path = tmp_path / "syrk.trace"
        written = save_trace(trace, path)
        loaded = load_trace(path)
        assert written == len(trace) == len(loaded)
        assert all(_events_equal(a, b) for a, b in zip(trace, loaded))

    def test_header_written(self, tmp_path):
        path = tmp_path / "t.trace"
        save_trace([Compute(1)], path)
        assert path.read_text().splitlines()[0] == HEADER

    def test_loaded_trace_runs_identically(self, tmp_path):
        from repro.cpu.system import System, SystemConfig

        trace = materialize_trace(build_kernel("syrk"))
        path = tmp_path / "syrk.trace"
        save_trace(trace, path)
        loaded = load_trace(path)
        a = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(trace)
        b = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(loaded)
        assert a.cycles == b.cycles


_event_strategy = st.one_of(
    st.builds(Load, st.integers(0, 1 << 30), st.integers(1, 64)),
    st.builds(Store, st.integers(0, 1 << 30), st.integers(1, 64)),
    st.builds(Compute, st.integers(0, 1000)),
    st.builds(Branch, st.booleans()),
    st.builds(Prefetch, st.integers(0, 1 << 30)),
)


class TestProperties:
    @given(st.lists(_event_strategy, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_roundtrip(self, events):
        buffer = io.StringIO()
        dump_trace(events, buffer)
        buffer.seek(0)
        loaded = list(parse_trace(buffer))
        assert len(loaded) == len(events)
        assert all(_events_equal(a, b) for a, b in zip(events, loaded))


class TestParsing:
    def test_comments_and_blanks_skipped(self):
        text = "# a comment\n\nC 5  # trailing comment\n"
        events = list(parse_trace(io.StringIO(text)))
        assert len(events) == 1
        assert events[0].ops == 5

    def test_case_insensitive_kind(self):
        events = list(parse_trace(io.StringIO("l 64 4\n")))
        assert isinstance(events[0], Load)

    def test_malformed_line_raises_with_lineno(self):
        with pytest.raises(WorkloadError, match="line 2"):
            list(parse_trace(io.StringIO("C 1\nL nonsense\n")))

    def test_bad_field_count_raises(self):
        with pytest.raises(WorkloadError):
            list(parse_trace(io.StringIO("L 1 2 3 4\n")))

    def test_unknown_kind_raises(self):
        with pytest.raises(WorkloadError):
            list(parse_trace(io.StringIO("X 1\n")))

    def test_branch_flag(self):
        events = list(parse_trace(io.StringIO("B 1\nB 0\n")))
        assert events[0].taken and not events[1].taken
