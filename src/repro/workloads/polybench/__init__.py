"""The PolyBench kernel subset used in the paper's evaluation.

Each module exposes ``build(size: DatasetSize = DatasetSize.MINI) ->
Program`` (and ``BASE_DIMS``).  The registry maps the paper-style kernel
names to those builders.

The subset mixes access behaviours deliberately:

- unit-stride innermost loops (``gemm``, ``atax``, ``bicg``, ``gesummv``,
  ``syrk``, ``syr2k``) that the VWB's wide windows and vectorization love;
- column-major/strided innermost references (``mvt``, ``gemver``,
  ``trmm``, ``2mm``, ``3mm``, ``doitgen``) where promotions buy less and
  software prefetch matters more — the spread behind the per-benchmark
  variation in Figures 1/3/5.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ...errors import WorkloadError
from ..datasets import DatasetSize
from ..ir import Program
from . import (
    atax,
    bicg,
    cholesky,
    conv2d,
    doitgen,
    durbin,
    gemm,
    gemver,
    gesummv,
    jacobi1d,
    jacobi2d,
    lu,
    mvt,
    seidel2d,
    symm,
    syr2k,
    syrk,
    three_mm,
    trisolv,
    trmm,
    two_mm,
)

#: Registry: paper-style kernel name -> builder (the evaluated subset).
KERNELS: Dict[str, Callable[..., Program]] = {
    "gemm": gemm.build,
    "atax": atax.build,
    "bicg": bicg.build,
    "mvt": mvt.build,
    "gesummv": gesummv.build,
    "gemver": gemver.build,
    "syrk": syrk.build,
    "syr2k": syr2k.build,
    "trmm": trmm.build,
    "2mm": two_mm.build,
    "3mm": three_mm.build,
    "doitgen": doitgen.build,
}

#: Additional kernels beyond the paper's figures (stencils, solvers);
#: available to ``build_kernel`` and ``--kernels`` but excluded from the
#: default figure suite so the reproduced artefacts match the paper's.
EXTRA_KERNELS: Dict[str, Callable[..., Program]] = {
    "jacobi-1d": jacobi1d.build,
    "jacobi-2d": jacobi2d.build,
    "trisolv": trisolv.build,
    "cholesky": cholesky.build,
    "symm": symm.build,
    "seidel-2d": seidel2d.build,
    "conv2d": conv2d.build,
    "lu": lu.build,
    "durbin": durbin.build,
}


def kernel_names(include_extras: bool = False) -> List[str]:
    """Registered kernel names, in registry (figure) order.

    Args:
        include_extras: Also list the non-paper extra kernels.
    """
    names = list(KERNELS)
    if include_extras:
        names.extend(EXTRA_KERNELS)
    return names


def build_kernel(name: str, size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build a kernel by name (paper subset or extras).

    Raises:
        WorkloadError: For unknown names, listing the valid ones.
    """
    builder = KERNELS.get(name) or EXTRA_KERNELS.get(name)
    if builder is None:
        valid = ", ".join(kernel_names(include_extras=True))
        raise WorkloadError(f"unknown kernel {name!r}; expected one of: {valid}")
    return builder(size)
