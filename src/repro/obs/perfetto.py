"""Shared Chrome trace-event (Perfetto) JSON serialization.

Both trace exporters of the repository — the per-run profile timeline
of ``repro profile`` (:mod:`repro.experiments.export`) and the sweep
timeline of ``repro <experiment> --telemetry``
(:mod:`repro.telemetry.timeline`) — build their documents through one
:class:`TraceBuilder`, so the trace-event serialization (metadata
records, ``"X"`` complete slices, timestamp ordering) lives in exactly
one place.

The builder emits the subset of the Chrome trace-event format Perfetto
and ``chrome://tracing`` both load: ``process_name``/``thread_name``
metadata records first, then the body slices sorted by timestamp.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple, Union


class TraceBuilder:
    """Accumulates processes, threads and slices of one trace document."""

    def __init__(self) -> None:
        self._processes: "Dict[int, str]" = {}
        self._threads: "Dict[Tuple[int, int], str]" = {}
        self._body: List[Dict[str, Any]] = []

    def process(self, pid: int, name: str) -> None:
        """Name the track group ``pid`` (a ``process_name`` metadata record).

        Parameters
        ----------
        pid : int
            Process id of the track group.
        name : str
            Display name in the Perfetto sidebar.
        """
        self._processes[pid] = name

    def thread(self, pid: int, tid: int, name: str) -> None:
        """Name one track (a ``thread_name`` metadata record).

        Parameters
        ----------
        pid : int
            Owning process id.
        tid : int
            Thread id of the track.
        name : str
            Display name of the track.
        """
        self._threads[(pid, tid)] = name

    def complete(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        pid: int,
        tid: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Add one ``"X"`` (complete) slice.

        Parameters
        ----------
        name : str
            Slice label.
        cat : str
            Category string (filterable in the UI).
        ts : float
            Start timestamp in microseconds.
        dur : float
            Duration in microseconds.
        pid : int
            Track-group (process) id.
        tid : int
            Track (thread) id.
        args : dict, optional
            Extra fields shown in the slice detail pane.
        """
        self._body.append(
            {
                "ph": "X",
                "name": name,
                "cat": cat,
                "ts": ts,
                "dur": dur,
                "pid": pid,
                "tid": tid,
                "args": args if args is not None else {},
            }
        )

    def build(
        self,
        other_data: Optional[Dict[str, Any]] = None,
        display_time_unit: str = "ms",
    ) -> Dict[str, Any]:
        """Assemble the final trace document.

        Metadata records come first (processes in registration order,
        then threads), followed by the body slices sorted by ``ts`` —
        the layout the profile exporter has always produced.

        Parameters
        ----------
        other_data : dict, optional
            Free-form document metadata (``otherData`` in the format).
        display_time_unit : str
            Perfetto display unit (default ``"ms"``).

        Returns
        -------
        dict
            The JSON-ready trace document.
        """
        trace_events: List[Dict[str, Any]] = []
        for pid, name in self._processes.items():
            trace_events.append(
                {"ph": "M", "pid": pid, "name": "process_name", "args": {"name": name}}
            )
        for (pid, tid), name in self._threads.items():
            trace_events.append(
                {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name", "args": {"name": name}}
            )
        trace_events.extend(sorted(self._body, key=lambda e: e["ts"]))
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": display_time_unit,
            "otherData": other_data if other_data is not None else {},
        }


def write_trace(doc: Dict[str, Any], path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write a trace document as one JSON file.

    Parameters
    ----------
    doc : dict
        A document from :meth:`TraceBuilder.build`.
    path : str or pathlib.Path
        Output file; parent directories are created.

    Returns
    -------
    pathlib.Path
        The written file.
    """
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc) + "\n")
    return out
