"""Bench: Figure 1 — drop-in STT-MRAM DL1 penalty per kernel.

Paper shape: penalties up to ~55% per kernel, ~54% on average, relative
to the SRAM D-cache baseline (= 100%).
"""

from repro.experiments import fig1

from conftest import run_once


def test_fig1(benchmark, runner, save):
    result = run_once(benchmark, fig1.run, runner=runner)
    save(result)
    penalties = result.series_for("dropin")
    average = sum(penalties) / len(penalties)
    # Shape assertions: band and average (generous tolerances).
    assert all(30.0 < p < 80.0 for p in penalties)
    assert 45.0 < average < 65.0
