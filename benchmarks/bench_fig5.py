"""Bench: Figure 5 — transformations cut the VWB system's penalty.

Paper shape: the initial ~54% drop-in penalty falls "to extremely
tolerable levels (8%) even in the worst cases" once the architecture and
the code transformations combine.
"""

from repro.experiments import fig5

from conftest import run_once


def test_fig5(benchmark, runner, save):
    result = run_once(benchmark, fig5.run, runner=runner)
    save(result)
    avg = result.averages()
    assert avg["vwb_with_opt"] < avg["vwb_no_opt"] < avg["dropin"]
    assert avg["vwb_with_opt"] < 10.0
    assert max(result.series_for("vwb_with_opt")) < 12.0
