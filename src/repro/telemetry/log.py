"""Levelled stderr logging for the CLI — one formatter for every command.

The CLI used to scatter ad-hoc ``print(..., file=sys.stderr)`` calls;
they all funnel through here now, so ``--quiet``/``--verbose`` and the
``REPRO_LOG`` environment variable work uniformly:

- ``quiet``  — errors only (``--quiet``);
- ``warn``   — errors and warnings;
- ``info``   — the default: progress and one-line notices;
- ``debug``  — everything (``--verbose``).

``REPRO_LOG`` sets the default level by name; the command-line flags
override it.  Result tables keep going to stdout — this module is for
the *commentary* stream only, so piping stdout stays clean.
"""

from __future__ import annotations

import os
import sys
from typing import Optional, TextIO

#: Recognised level names, least to most chatty.
LEVELS = ("quiet", "warn", "info", "debug")

#: Environment variable consulted for the default level.
ENV_VAR = "REPRO_LOG"

_RANK = {name: rank for rank, name in enumerate(LEVELS)}

_level: Optional[str] = None


def _default_level() -> str:
    """Level from :data:`ENV_VAR`, falling back to ``info``."""
    name = os.environ.get(ENV_VAR, "").strip().lower()
    return name if name in _RANK else "info"


def configure(quiet: bool = False, verbose: bool = False) -> str:
    """Set the process log level from CLI flags (flags beat the env var).

    Parameters
    ----------
    quiet : bool
        ``--quiet``: errors only.
    verbose : bool
        ``--verbose``: debug chatter included.  ``quiet`` wins when both
        are set (explicit silence beats explicit chatter).

    Returns
    -------
    str
        The resolved level name.
    """
    global _level
    if quiet:
        _level = "quiet"
    elif verbose:
        _level = "debug"
    else:
        _level = _default_level()
    return _level


def level() -> str:
    """The current level name (resolving the env default lazily)."""
    global _level
    if _level is None:
        _level = _default_level()
    return _level


def _enabled(threshold: str) -> bool:
    return _RANK[level()] >= _RANK[threshold]


def error(message: str) -> None:
    """Print ``error: <message>`` to stderr (shown at every level).

    Parameters
    ----------
    message : str
        The error text.
    """
    print(f"error: {message}", file=sys.stderr)


def warn(message: str) -> None:
    """Print ``warning: <message>`` to stderr unless quiet.

    Parameters
    ----------
    message : str
        The warning text.
    """
    if _enabled("warn"):
        print(f"warning: {message}", file=sys.stderr)


def info(message: str) -> None:
    """Print a plain notice to stderr at ``info`` and above.

    Parameters
    ----------
    message : str
        The notice text.
    """
    if _enabled("info"):
        print(message, file=sys.stderr)


def debug(message: str) -> None:
    """Print ``debug: <message>`` to stderr at ``debug`` only.

    Parameters
    ----------
    message : str
        The debug text.
    """
    if _enabled("debug"):
        print(f"debug: {message}", file=sys.stderr)


def progress_stream() -> Optional[TextIO]:
    """Stream for per-point engine progress lines, or ``None``.

    The execution engine prints one line per completed point to this
    stream; at ``quiet``/``warn`` it returns ``None`` so sweeps run
    silently.

    Returns
    -------
    TextIO or None
        ``sys.stderr`` at ``info``/``debug``, else ``None``.
    """
    return sys.stderr if _enabled("info") else None
