"""Inlined per-front-end hit kernels for the encoded replay loop.

Replaying a trace through the object path costs ~6 Python call hops per
memory event (``frontend.read`` → ``Access.__init__``/``__post_init__``
→ ``Cache.access`` → ``Access.lines`` → ``_access_line`` →
``BankTimer.reserve``), and that per-access overhead — not the
simulation arithmetic — dominates wall-clock time.  This module builds,
per run, a pair of closures ``(fast_read, fast_write)`` that serve the
*single-line hit* case of one front-end in a single call frame, binding
every piece of mutable state (tag lists, dirty bits, bank busy times,
LRU orders, stat counters) as closure locals.

The contract, pinned by ``tests/test_encode.py``:

- A kernel either completes an access with **exactly** the state
  mutations and the bit-identical float latency of the generic path, or
  it returns ``None`` having touched **nothing**, and the caller falls
  back to the ordinary ``frontend.read``/``write`` call.  Misses,
  multi-line/multi-window accesses, in-flight fills and every rare case
  take the fallback, so there is exactly one implementation of the
  complicated paths.
- :func:`make_fast_ops` returns ``None`` (no fast path at all) whenever
  any feature that hooks the hit path is active: an attached probe, a
  fault injector, AWARE asymmetric writes, per-line write tracking, or
  a hardware prefetcher.  Exact ``type()`` checks keep subclassed
  front-ends on the generic path too.

The kernels are rebuilt for every encoded run because ``reset()``/
``clear_stats()`` replace the captured containers.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..core.dropin import PlainFrontend
from ..core.emshr import EMSHRFrontend
from ..core.frontend import DCacheFrontend
from ..core.hybrid import HybridFrontend
from ..core.l0 import L0Frontend
from ..core.vwb_frontend import VWBFrontend
from ..mem.cache import Cache
from ..workloads.elim import PK_BRANCH, PK_COMPUTE, PK_STORE, book_run

#: A fast kernel: ``(addr, size, now) -> latency`` or ``None`` to fall
#: back to the generic front-end call (with no state touched).
FastOp = Callable[[int, int, float], Optional[float]]


def _array_eligible(cache: Cache) -> bool:
    """True when the cache's hit path has no hooks the kernels skip."""
    return (
        cache._injector is None
        and not cache._probing
        and cache.config.fast_write_cycles is None
        and not cache.config.track_line_writes
    )


def _passthrough_ops(cache: Cache, fstats, count_hits: bool) -> Tuple[FastOp, FastOp]:
    """Kernels for the single-line hit path of a plain :class:`Cache`.

    Mirrors ``Cache._access_line``'s hit branch exactly: tag lookup,
    bank reservation, replacement touch, stat counters, and the
    ``wait + hit_cycles`` latency.  ``count_hits`` selects which
    front-end buffer counter the access books under — ``PlainFrontend``
    counts every access as a buffer *miss* (there is no buffer), the
    hybrid's SRAM partition counts a partition *hit*.
    """
    cfg = cache.config
    cstats = cache.stats
    tags = cache._tags
    dirty = cache._dirty
    repl = cache._repl
    busy = cache._banks._busy_until
    off = cache._offset_bits
    set_mask = cfg.sets - 1
    idx_shift = off + cache._index_bits
    read_cycles = float(cfg.read_hit_cycles)
    write_cycles = float(cfg.write_hit_cycles)
    bank_mask = len(busy) - 1  # bank counts are powers of two
    # Exact-LRU sets are inlined (their per-set state is one list);
    # other policies keep the single `touch` method call.
    lru_orders = [s._order for s in repl] if cfg.replacement == "lru" else None

    def fast_read(addr: int, size: int, now: float) -> Optional[float]:
        line_no = addr >> off
        if (addr + size - 1) >> off != line_no:
            return None  # spans lines: generic per-line loop
        index = line_no & set_mask
        try:
            way = tags[index].index(addr >> idx_shift)
        except ValueError:
            return None  # miss: generic fill path
        if count_hits:
            fstats.buffer_read_hits += 1
        else:
            fstats.buffer_read_misses += 1
        bank = line_no & bank_mask
        busy_until = busy[bank]
        if busy_until > now:
            wait = busy_until - now
            busy[bank] = busy_until + read_cycles
            cstats.bank_wait_cycles += int(wait)
        else:
            wait = 0.0
            busy[bank] = now + read_cycles
        if lru_orders is None:
            repl[index].touch(way)
        else:
            order = lru_orders[index]
            if order[0] != way:
                order.remove(way)
                order.insert(0, way)
        cstats.read_hits += 1
        return wait + read_cycles

    def fast_write(addr: int, size: int, now: float) -> Optional[float]:
        line_no = addr >> off
        if (addr + size - 1) >> off != line_no:
            return None
        index = line_no & set_mask
        try:
            way = tags[index].index(addr >> idx_shift)
        except ValueError:
            return None
        if count_hits:
            fstats.buffer_write_hits += 1
        else:
            fstats.buffer_write_misses += 1
        bank = line_no & bank_mask
        busy_until = busy[bank]
        if busy_until > now:
            wait = busy_until - now
            busy[bank] = busy_until + write_cycles
            cstats.bank_wait_cycles += int(wait)
        else:
            wait = 0.0
            busy[bank] = now + write_cycles
        if lru_orders is None:
            repl[index].touch(way)
        else:
            order = lru_orders[index]
            if order[0] != way:
                order.remove(way)
                order.insert(0, way)
        dirty[index][way] = True
        cstats.write_hits += 1
        return wait + write_cycles

    return fast_read, fast_write


def _vwb_ops(frontend: VWBFrontend) -> Tuple[FastOp, FastOp]:
    """Kernels for the VWB front-end.

    Serves wide-line hits, array store misses, and — the expensive
    common case of unprefetched streaming code — the *demand promotion*:
    a VWB read miss whose victim wide line is clean and whose whole
    window is resident in the NVM array.  Dirty evictions, staged
    windows and array misses stay on the generic path.
    """
    vwb = frontend.vwb
    wb = vwb._window_bytes
    hit_cycles = frontend._hit_cycles
    wide_lines = vwb._lines
    pending = frontend._pending
    pending_get = pending.get
    fstats = frontend.stats
    _, array_write = _passthrough_ops(frontend.backing, fstats, False)

    # Backing-array internals for the inlined wide read (promotion).
    cache = frontend.backing
    cfg = cache.config
    cstats = cache.stats
    tags = cache._tags
    dirty_bits = cache._dirty
    repl = cache._repl
    busy = cache._banks._busy_until
    off = cache._offset_bits
    set_mask = cfg.sets - 1
    idx_shift = off + cache._index_bits
    read_cycles = float(cfg.read_hit_cycles)
    write_cycles = float(cfg.write_hit_cycles)
    bank_mask = len(busy) - 1
    line_bytes = cfg.line_bytes
    lru_orders = [s._order for s in repl] if cfg.replacement == "lru" else None
    n_window_lines = frontend._lines_per_window

    def fast_read(addr: int, size: int, now: float) -> Optional[float]:
        w = addr // wb
        if (addr + size - 1) // wb != w:
            return None  # spans windows
        window = w * wb
        for line in wide_lines:
            if line.window_addr == window:
                vwb._clock += 1
                line.last_touch = vwb._clock
                fstats.buffer_read_hits += 1
                return hit_cycles
        staged = pending_get(window)
        if staged is not None:
            # Served straight out of the fill buffer; `wait_for` does
            # the exact critical-line bookkeeping and mutates nothing.
            stage_wait = staged.result.wait_for((addr >> off) << off, now)
            if stage_wait > 0:
                fstats.buffer_read_misses += 1
            else:
                fstats.buffer_read_hits += 1
            return stage_wait + hit_cycles
        # Demand promotion.  Pre-check everything before mutating any
        # state so a bail-out is free: every window line must be
        # array-resident (so the wide read touches no MSHR/fill logic)
        # and a dirty victim's window lines must all still be resident
        # (so each write-back is an in-place array write, zero stall).
        critical = (addr >> off) << off
        ordered = [critical]
        for i in range(n_window_lines):
            wline = window + i * line_bytes
            if (wline >> idx_shift) not in tags[(wline >> off) & set_mask]:
                return None  # array miss inside the window: generic
            if wline != critical:
                ordered.append(wline)
        victim = None
        best_key = None
        for wl in wide_lines:
            key = (1, wl.last_touch) if wl.window_addr is not None else (0, 0)
            if best_key is None or key < best_key:
                victim = wl
                best_key = key
        old_window = victim.window_addr
        writeback = old_window is not None and victim.dirty
        if writeback:
            for i in range(n_window_lines):
                eline = old_window + i * line_bytes
                if (eline >> idx_shift) not in tags[(eline >> off) & set_mask]:
                    return None  # write-back through the write buffer: generic
        # Commit: allocate the VWB line, write back a dirty victim, then
        # the wide array read with the critical line first (exactly the
        # generic path's order).
        fstats.buffer_read_misses += 1
        victim.window_addr = window
        victim.dirty = False
        vwb._clock += 1
        victim.last_touch = vwb._clock
        if writeback:
            fstats.buffer_writebacks += 1
            for i in range(n_window_lines):
                eline = old_window + i * line_bytes
                line_no = eline >> off
                bank = line_no & bank_mask
                busy_until = busy[bank]
                if busy_until > now:
                    cstats.bank_wait_cycles += int(busy_until - now)
                    busy[bank] = busy_until + write_cycles
                else:
                    busy[bank] = now + write_cycles
                index = line_no & set_mask
                dirty_bits[index][tags[index].index(eline >> idx_shift)] = True
                cstats.write_hits += 1
        ready_max = 0.0
        critical_ready = 0.0
        for wline in ordered:
            line_no = wline >> off
            bank = line_no & bank_mask
            busy_until = busy[bank]
            if busy_until > now:
                wait = busy_until - now
                finish = busy_until + read_cycles
                cstats.bank_wait_cycles += int(wait)
            else:
                finish = now + read_cycles
            busy[bank] = finish
            index = line_no & set_mask
            way = tags[index].index(wline >> idx_shift)
            if lru_orders is None:
                repl[index].touch(way)
            else:
                order = lru_orders[index]
                if order[0] != way:
                    order.remove(way)
                    order.insert(0, way)
            cstats.read_hits += 1
            if wline == critical:
                critical_ready = finish
            if finish > ready_max:
                ready_max = finish
        fstats.promotions += 1
        fstats.promotion_cycles += int(ready_max - now)
        wait = critical_ready - now
        return wait if wait > hit_cycles else hit_cycles

    def fast_write(addr: int, size: int, now: float) -> Optional[float]:
        w = addr // wb
        if (addr + size - 1) // wb != w:
            return None
        window = w * wb
        for line in wide_lines:
            if line.window_addr == window:
                vwb._clock += 1
                line.last_touch = vwb._clock
                line.dirty = True
                fstats.buffer_write_hits += 1
                return hit_cycles
        staged = pending_get(window)
        if staged is not None:
            # Merge the store into the staged wide word on arrival.
            stage_wait = staged.result.wait_for((addr >> off) << off, now)
            staged.dirty = True
            fstats.buffer_write_hits += 1
            return stage_wait + hit_cycles
        # VWB-non-allocate miss: the store goes straight to the NVM
        # array (write-back/write-allocate); within one window the
        # generic path issues Access(addr, size) unchanged.
        return array_write(addr, size, now)

    return fast_read, fast_write


def _l0_ops(frontend: L0Frontend) -> Tuple[FastOp, FastOp]:
    """Kernels for the L0 filter cache.

    Serves L0 hits, array store misses, and the *narrow fill*: an L0
    read miss whose victim L0 line is clean and whose line is resident
    in the NVM array.  In-flight fills, dirty evictions and array
    misses stay on the generic path.
    """
    store = frontend._store
    store_lines = store._lines
    fill_ready = frontend._fill_ready
    hit_cycles = float(store.config.hit_cycles)
    fstats = frontend.stats
    _, array_write = _passthrough_ops(frontend.backing, fstats, False)

    # Backing-array internals for the inlined narrow fill read.
    cache = frontend.backing
    cfg = cache.config
    cstats = cache.stats
    tags = cache._tags
    dirty_bits = cache._dirty
    repl = cache._repl
    busy = cache._banks._busy_until
    off = cache._offset_bits
    set_mask = cfg.sets - 1
    idx_shift = off + cache._index_bits
    read_cycles = float(cfg.read_hit_cycles)
    write_cycles = float(cfg.write_hit_cycles)
    bank_mask = len(busy) - 1
    lru_orders = [s._order for s in repl] if cfg.replacement == "lru" else None

    def fast_read(addr: int, size: int, now: float) -> Optional[float]:
        line_no = addr >> off
        if (addr + size - 1) >> off != line_no:
            return None
        line = line_no << off
        for sl in store_lines:
            if sl.window_addr == line:
                # Mirror `_fill_wait`: expired fill entries are retired
                # on access, in-flight ones expose their remaining time.
                ready = fill_ready.get(line)
                if ready is None:
                    fill_wait = 0.0
                elif ready <= now:
                    del fill_ready[line]
                    fill_wait = 0.0
                else:
                    fill_wait = ready - now
                store._clock += 1
                sl.last_touch = store._clock
                if fill_wait > 0:
                    fstats.buffer_read_misses += 1
                else:
                    fstats.buffer_read_hits += 1
                return fill_wait + hit_cycles
        # Narrow fill.  Pre-check before mutating anything: the filled
        # line must be array-resident (so the one-line read is a pure
        # array hit), and so must a dirty victim's line (so its
        # write-back is an in-place array write with zero stall).
        index = line_no & set_mask
        try:
            way = tags[index].index(addr >> idx_shift)
        except ValueError:
            return None  # array miss: generic next-level fetch
        victim = None
        best_key = None
        for sl in store_lines:
            key = (1, sl.last_touch) if sl.window_addr is not None else (0, 0)
            if best_key is None or key < best_key:
                victim = sl
                best_key = key
        old_line = victim.window_addr
        writeback = old_line is not None and victim.dirty
        if writeback:
            e_index = (old_line >> off) & set_mask
            try:
                e_way = tags[e_index].index(old_line >> idx_shift)
            except ValueError:
                return None  # write-back through the write buffer: generic
        # Commit, replicating the generic sequence exactly: allocate
        # (one recency touch), drop the victim's stale fill entry, write
        # back a dirty victim in place, one array read, then the
        # post-fill lookup's second touch.
        fstats.buffer_read_misses += 1
        if old_line is not None:
            fill_ready.pop(old_line, None)
        victim.window_addr = line
        victim.dirty = False
        store._clock += 2
        victim.last_touch = store._clock
        if writeback:
            fstats.buffer_writebacks += 1
            e_bank = (old_line >> off) & bank_mask
            busy_until = busy[e_bank]
            if busy_until > now:
                cstats.bank_wait_cycles += int(busy_until - now)
                busy[e_bank] = busy_until + write_cycles
            else:
                busy[e_bank] = now + write_cycles
            dirty_bits[e_index][e_way] = True
            cstats.write_hits += 1
        bank = line_no & bank_mask
        busy_until = busy[bank]
        if busy_until > now:
            bank_wait = busy_until - now
            busy[bank] = busy_until + read_cycles
            cstats.bank_wait_cycles += int(bank_wait)
        else:
            bank_wait = 0.0
            busy[bank] = now + read_cycles
        if lru_orders is None:
            repl[index].touch(way)
        else:
            order = lru_orders[index]
            if order[0] != way:
                order.remove(way)
                order.insert(0, way)
        cstats.read_hits += 1
        latency = bank_wait + read_cycles
        fstats.promotions += 1
        fstats.promotion_cycles += int(latency)
        ready = now + latency
        fill_ready[line] = ready
        wait = ready - now  # float-exact: matches `_fill_wait`, not `latency`
        return wait if wait > hit_cycles else hit_cycles

    def fast_write(addr: int, size: int, now: float) -> Optional[float]:
        line_no = addr >> off
        if (addr + size - 1) >> off != line_no:
            return None
        line = line_no << off
        for sl in store_lines:
            if sl.window_addr == line:
                ready = fill_ready.get(line)
                if ready is None:
                    fill_wait = 0.0
                elif ready <= now:
                    del fill_ready[line]
                    fill_wait = 0.0
                else:
                    fill_wait = ready - now
                store._clock += 1
                sl.last_touch = store._clock
                sl.dirty = True
                fstats.buffer_write_hits += 1
                return fill_wait + hit_cycles
        # L0 store miss: the generic path writes the whole aligned line
        # into the NVM array (Access(line, line_bytes)).
        return array_write(line, 1, now)

    return fast_read, fast_write


def _emshr_ops(frontend: EMSHRFrontend) -> Tuple[FastOp, FastOp]:
    """Kernels for the EMSHR front-end: entry hits and NVM array hits."""
    entries = frontend._entries
    entries_get = entries.get
    hit_cycles = frontend._hit_cycles
    off = frontend.backing._offset_bits
    fstats = frontend.stats
    array_read, array_write = _passthrough_ops(frontend.backing, fstats, False)

    def fast_read(addr: int, size: int, now: float) -> Optional[float]:
        line_no = addr >> off
        if (addr + size - 1) >> off != line_no:
            return None
        line = line_no << off
        entry = entries_get(line)
        if entry is not None:
            ready = entry.ready_at
            if ready > now:
                fstats.buffer_read_misses += 1
                return (ready - now) + hit_cycles
            fstats.buffer_read_hits += 1
            return hit_cycles
        # No lingering entry: an NVM read hit pays the full array read
        # ("EMSHR cannot help"); a DL1 miss allocates — generic.
        return array_read(addr, size, now)

    def fast_write(addr: int, size: int, now: float) -> Optional[float]:
        line_no = addr >> off
        if (addr + size - 1) >> off != line_no:
            return None
        line = line_no << off
        entry = entries_get(line)
        if entry is not None:
            ready = entry.ready_at
            entry.dirty = True
            fstats.buffer_write_hits += 1
            if ready > now:
                return (ready - now) + hit_cycles
            return hit_cycles
        # Entry miss: the generic path writes the whole aligned line
        # into the array (write-allocate handles the array miss there).
        return array_write(line, 1, now)

    return fast_read, fast_write


def make_fast_ops(frontend: DCacheFrontend) -> Optional[Tuple[FastOp, FastOp]]:
    """Build the fast hit kernels for ``frontend``, if it is eligible.

    Parameters
    ----------
    frontend : DCacheFrontend
        The front-end to specialise.

    Returns
    -------
    tuple of (FastOp, FastOp) or None
        ``(fast_read, fast_write)`` closures, or ``None`` when the
        front-end type is unknown (or subclassed) or any hit-path hook
        (probe, fault injector, AWARE writes, line-write tracking,
        hardware prefetcher) is active — callers then use the generic
        path for every event.
    """
    if frontend._probing or not _array_eligible(frontend.backing):
        return None
    kind = type(frontend)
    if kind is PlainFrontend:
        if frontend.hw_prefetcher is not None:
            return None
        return _passthrough_ops(frontend.backing, frontend.stats, False)
    if kind is VWBFrontend:
        return _vwb_ops(frontend)
    if kind is L0Frontend:
        return _l0_ops(frontend)
    if kind is EMSHRFrontend:
        return _emshr_ops(frontend)
    if kind is HybridFrontend:
        if not _array_eligible(frontend.sram):
            return None
        return _passthrough_ops(frontend.sram, frontend.stats, True)
    return None


# --------------------------------------------------------------------------
# Run elimination: consuming a guaranteed-hit run in one apply call.
#
# `make_run_applier` builds the per-lane consumer for the hit-run
# annotations of `repro.workloads.elim`.  Two tiers, chosen per run:
#
# - **closed form** — when the lane's hit latencies are both exactly one
#   cycle and its cost parameters are "dyadic" (exact multiples of
#   1/4096, the resolution of every timing parameter in the repo), the
#   whole run reduces to a per-segment clock recurrence: every in-run
#   load exposes exactly 1.0 cycles (wait 0, clamp at 1), so
#   ``cycles += n_loads·1 + ops + taken·tc + exit·ec`` segment-wise with
#   an exact mini-simulation only at each store (the store-buffer drain
#   is a genuine sequential recurrence).  Bank-busy times are
#   reconstructed at run exit from the last access per bank.  Entry
#   gates guarantee bit-exactness: all accumulators and queued store
#   completions must be dyadic and small enough that every partial sum
#   is exactly representable (regrouped addition then cannot round),
#   and each bank's busy time must not reach into the run (a per-bank
#   prefix-weight check, so no in-run access ever waits).
# - **lite** — an exact per-event replay over the run's packed opcode
#   words that evaluates the identical timing arithmetic in the
#   identical order (so it is bit-exact for *any* latencies and floats)
#   but skips tag probes, per-event LRU maintenance and per-event stat
#   traffic.  This is the universal in-lane fallback: any run failing a
#   closed-form gate takes it, so an eligible lane never falls back to
#   the per-event path mid-trace.
#
# Both tiers finish identically: bulk hit counters, and a batch
# LRU-recency replay that rebuilds each touched set's recency order from
# the annotation's MRU tag list (valid because nothing reads the order
# mid-run — there are no victim selections inside an all-hit span).
# --------------------------------------------------------------------------

#: Dyadic grid: every timing parameter in the repo is a multiple of
#: 1/4096 cycles, so sums of gated values never round (see above).
_SCALE = 4096.0
#: Magnitude gate for accumulators/queue entries: multiples of 1/4096
#: below 2**39 are exactly representable with 2**2 headroom for sums.
_LIMIT = float(1 << 39)
#: Scaled-advance bound (= ``_LIMIT`` on the 1/4096 grid).
_LIMIT_SCALED = 1 << 51


def _exact_cost(value: float) -> bool:
    """True for a cost on the dyadic grid with weight >= 1."""
    return 1.0 <= value < 1048576.0 and (value * _SCALE).is_integer()


class RunApplier:
    """Per-lane consumer of guaranteed-hit runs.

    Attributes
    ----------
    shape : tuple of int
        ``(line_bytes, sets, ways, banks)`` of the cache array the
        lane's hits resolve in — the key for
        :func:`repro.workloads.elim.annotate_trace`.
    apply : callable
        ``apply(run, cycles, b_compute, b_branch, b_load, b_store,
        store_queue, hist) -> (cycles, b_compute, b_branch, b_load,
        b_store)`` — consumes one :class:`~repro.workloads.elim.HitRun`,
        mutating the store queue, histogram list, cache arrays and stat
        counters exactly as the per-event path would.
    """

    __slots__ = ("shape", "apply")

    def __init__(self, shape, apply_fn) -> None:
        self.shape = shape
        self.apply = apply_fn


def make_run_applier(frontend: DCacheFrontend, cpu_cfg) -> Optional[RunApplier]:
    """Build the hit-run consumer for ``frontend``, if it is eligible.

    Eligibility is all-or-nothing per lane and strictly narrower than
    :func:`make_fast_ops`: only front-ends whose *hit path* is a plain
    set-associative LRU array lookup qualify — ``PlainFrontend`` without
    a hardware prefetcher (SRAM baseline and drop-in NVM lanes) and
    ``HybridFrontend`` (whose in-run hits live entirely in the SRAM
    partition).  VWB/L0/EMSHR front-ends intercept hits with their own
    state machines, and probes, checkers, fault injectors, AWARE writes
    and line-write tracking all hook the hit path, so those lanes run
    per-event as before.

    Parameters
    ----------
    frontend : DCacheFrontend
        The lane's front-end.
    cpu_cfg : CPUConfig
        Core timing parameters (store buffer, branch and issue costs).

    Returns
    -------
    RunApplier or None
        The applier, or ``None`` when the lane must stay per-event.
    """
    if frontend._probing:
        return None
    kind = type(frontend)
    if kind is PlainFrontend:
        if frontend.hw_prefetcher is not None:
            return None
        if not _array_eligible(frontend.backing):
            return None
        cache = frontend.backing
        count_hits = False
    elif kind is HybridFrontend:
        if not _array_eligible(frontend.backing) or not _array_eligible(frontend.sram):
            return None
        cache = frontend.sram
        count_hits = True
    else:
        return None
    cfg = cache.config
    if cfg.replacement != "lru":
        return None
    banks = len(cache._banks._busy_until)
    for n in (cfg.line_bytes, cfg.sets, banks):
        if n <= 0 or n & (n - 1):
            return None

    fstats = frontend.stats
    cstats = cache.stats
    tags = cache._tags
    busy = cache._banks._busy_until
    lru_orders = [s._order for s in cache._repl]
    rcf = float(cfg.read_hit_cycles)
    wcf = float(cfg.write_hit_cycles)
    overlap = cpu_cfg.load_use_overlap
    sb_entries = cpu_cfg.store_buffer_entries
    store_issue = cpu_cfg.store_issue_cycles
    tc = cpu_cfg.branch_cycles
    ec = cpu_cfg.branch_cycles + cpu_cfg.branch_mispredict_cycles
    cap = 256  # LOAD_HISTOGRAM_CAP (model.py; no import to avoid a cycle)

    closed_ok = (
        rcf == 1.0
        and wcf == 1.0
        and _exact_cost(store_issue)
        and _exact_cost(tc)
        and _exact_cost(ec)
    )
    if closed_ok:
        si_scaled = int(store_issue * _SCALE)
        tc_scaled = int(tc * _SCALE)
        ec_scaled = int(ec * _SCALE)
    else:
        si_scaled = tc_scaled = ec_scaled = 0

    pk_compute, pk_store, pk_branch = PK_COMPUTE, PK_STORE, PK_BRANCH

    def apply(run, c, bc, bb, bl, bs, sq, hist):
        """Consume one hit run; see :class:`RunApplier`."""
        n_loads, n_stores, _n_computes, ops_total, n_taken, n_exit = run.counts

        use_closed = closed_ok
        if use_closed:
            # Entry gates (see the tier comment above): accumulators and
            # queued completions on the dyadic grid and small, the total
            # advance bounded, and no bank busy reaching into the run.
            if not (
                c < _LIMIT
                and (c * _SCALE).is_integer()
                and bc < _LIMIT
                and (bc * _SCALE).is_integer()
                and bb < _LIMIT
                and (bb * _SCALE).is_integer()
                and bl < _LIMIT
                and (bl * _SCALE).is_integer()
            ):
                use_closed = False
            elif (
                int(c * _SCALE)
                + ((n_loads + ops_total) << 12)
                + n_stores * si_scaled
                + n_taken * tc_scaled
                + n_exit * ec_scaled
            ) >= _LIMIT_SCALED:
                use_closed = False
            else:
                for t in sq:
                    if not (t < _LIMIT and (t * _SCALE).is_integer()):
                        use_closed = False
                        break
                if use_closed:
                    for g in run.gate:
                        if busy[g[0]] > c + (g[1] + g[2] + g[3] + g[4]):
                            use_closed = False
                            break

        if use_closed:
            # -- closed form: segment recurrence + per-store mini-sim --
            seg_starts = []
            ss_append = seg_starts.append
            st_times = []
            st_append = st_times.append
            j = 0
            for nl, opsum, ntk, nex in run.segs:
                ss_append(c)
                c = c + (nl * 1.0 + opsum + ntk * tc + nex * ec)
                if j < n_stores:
                    start = c
                    while sq and sq[0] <= c:
                        sq.popleft()
                    if len(sq) >= sb_entries:
                        c = sq.popleft()
                    st_append(c)
                    tail = sq[-1] if sq else c
                    sq.append((tail if tail > c else c) + 1.0)
                    c += store_issue
                    bs += c - start
                    j += 1
            bl += n_loads * 1.0
            bc += ops_total
            bb += n_taken * tc + n_exit * ec
            hist[1] += n_loads  # every in-run load exposes exactly 1.0
            for lb in run.last_banks:
                if lb[1]:
                    t = seg_starts[lb[2]] + (
                        lb[3] * 1.0 + lb[4] + lb[5] * tc + lb[6] * ec
                    )
                else:
                    t = st_times[lb[2]]
                busy[lb[0]] = t + 1.0
        else:
            # -- lite: exact per-event timing over the packed words --
            bwc = 0
            for word in run.packed:
                k = word & 7
                if k == 0:  # load
                    bu = busy[word >> 3]
                    if bu > c:
                        w = bu - c
                        busy[word >> 3] = bu + rcf
                        bwc += int(w)
                        lat = w + rcf
                    else:
                        busy[word >> 3] = c + rcf
                        lat = rcf
                    ex = lat - overlap
                    if ex < 1.0:
                        ex = 1.0
                    c += ex
                    bl += ex
                    b = int(ex)
                    hist[b if b < cap else cap] += 1
                elif k == pk_compute:
                    o = word >> 3
                    c += o
                    bc += o
                elif k == pk_store:
                    start = c
                    while sq and sq[0] <= c:
                        sq.popleft()
                    if len(sq) >= sb_entries:
                        c = sq.popleft()
                    bank = word >> 3
                    bu = busy[bank]
                    if bu > c:
                        w = bu - c
                        busy[bank] = bu + wcf
                        bwc += int(w)
                        lat = w + wcf
                    else:
                        busy[bank] = c + wcf
                        lat = wcf
                    tail = sq[-1] if sq else c
                    sq.append((tail if tail > c else c) + lat)
                    c += store_issue
                    bs += c - start
                else:  # branch
                    cost = tc if word >> 3 else ec
                    c += cost
                    bb += cost
            if bwc:
                cstats.bank_wait_cycles += bwc

        # -- shared epilogue: bulk counters and batch LRU replay --
        cstats.read_hits += n_loads
        cstats.write_hits += n_stores
        if count_hits:
            fstats.buffer_read_hits += n_loads
            fstats.buffer_write_hits += n_stores
        else:
            fstats.buffer_read_misses += n_loads
            fstats.buffer_write_misses += n_stores
        for s, tags_mru in run.lru_sets:
            tl = tags[s]
            order = lru_orders[s]
            front = [tl.index(t) for t in tags_mru]
            if len(front) != len(order):
                for w in order:
                    if w not in front:
                        front.append(w)
            order[:] = front
        book_run(run.end - run.start)
        return (c, bc, bb, bl, bs)

    banks_shape = (cfg.line_bytes, cfg.sets, cfg.associativity, banks)
    return RunApplier(banks_shape, apply)
