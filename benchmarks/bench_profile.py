"""Bench: observability overhead guard — the NullProbe path is free.

Every instrumentation site in the CPU/memory substrate is guarded by a
local ``_probing`` boolean, so an un-probed run pays one attribute load
and a predictable branch per site.  This bench pins that cost: running
the fig1 kernel subset with the default :data:`~repro.obs.NULL_PROBE`
must be within 5% of a run with no probe handling at all (``probe=None``
skips even the attach/detach), best-of-N wall clock.

It also guards the semantics the tier-1 suite relies on: cycle counts
are bit-identical with and without the null probe.

The same contract extends to engine telemetry: running points through an
:class:`~repro.exec.engine.ExecutionEngine` holding the default
:data:`~repro.telemetry.NULL_TELEMETRY` must stay within the 5% budget
of the bare ``execute_point`` loop, with ``RunResult``-equal output.
"""

from __future__ import annotations

import time

from repro.experiments.runner import CONFIGURATIONS, ExperimentRunner, make_system
from repro.cpu.system import warm_regions_of
from repro.obs import NULL_PROBE, NullProbe

#: Kernels of the Figure 1 comparison used for the timing run.
KERNELS = ("gemm", "atax", "mvt")
CONFIGS = ("vwb", "dropin")
REPEATS = 6
MAX_OVERHEAD = 1.05


def _material(runner):
    return [
        (config, runner.trace(kernel), warm_regions_of(runner.program(kernel)))
        for config in CONFIGS
        for kernel in KERNELS
    ]


def _timed_pass(material, probe):
    start = time.perf_counter()
    cycles = []
    for config, trace, regions in material:
        system = make_system(config)
        result = system.run(trace, warm_regions=regions, probe=probe)
        cycles.append(result.cycles)
    return time.perf_counter() - start, cycles


def test_null_probe_overhead_within_budget(bench_metrics):
    runner = ExperimentRunner(kernels=list(KERNELS))
    material = _material(runner)
    _timed_pass(material, None)  # warm caches, imports, allocator

    bare_times, null_times = [], []
    bare_cycles = null_cycles = None
    for _ in range(REPEATS):
        elapsed, bare_cycles = _timed_pass(material, None)
        bare_times.append(elapsed)
        elapsed, null_cycles = _timed_pass(material, NullProbe())
        null_times.append(elapsed)

    # Bit-identical simulation either way.
    assert null_cycles == bare_cycles

    ratio = min(null_times) / min(bare_times)
    from repro.telemetry import metric

    bench_metrics.setdefault("profile", {})["null_probe_overhead"] = metric(
        ratio, unit="x", higher_is_better=False
    )
    print(
        f"\nnull-probe overhead: best bare {min(bare_times):.3f}s, "
        f"best nulled {min(null_times):.3f}s, ratio {ratio:.3f}"
    )
    assert ratio <= MAX_OVERHEAD, (
        f"NullProbe run is {ratio:.3f}x the bare run (budget {MAX_OVERHEAD}x)"
    )


def test_disabled_telemetry_engine_overhead(bench_metrics):
    """An engine holding NULL_TELEMETRY is within budget and bit-identical.

    The execution engine is instrumented for spans, metrics and point
    provenance, all guarded on ``telemetry.enabled`` — so routing points
    through an uncached, untelemetered engine must cost no more than 5%
    over the bare ``execute_point`` loop, and the results must compare
    equal (``RunResult ==``), the same contract the null probe pins for
    the simulation core.
    """
    from repro.exec import ExecutionEngine, RunPoint, execute_point
    from repro.telemetry import NULL_TELEMETRY, metric

    points = [
        RunPoint(kernel=kernel, config=CONFIGURATIONS[config])
        for config in CONFIGS
        for kernel in KERNELS
    ]
    for point in points:  # warm per-process program/trace memos
        execute_point(point)

    def _bare_pass():
        start = time.perf_counter()
        results = [execute_point(point) for point in points]
        return time.perf_counter() - start, results

    def _engine_pass():
        engine = ExecutionEngine(jobs=1, telemetry=NULL_TELEMETRY)
        start = time.perf_counter()
        results = engine.run_points(points)
        return time.perf_counter() - start, results

    bare_times, engine_times = [], []
    bare_results = engine_results = None
    for _ in range(REPEATS):
        elapsed, bare_results = _bare_pass()
        bare_times.append(elapsed)
        elapsed, engine_results = _engine_pass()
        engine_times.append(elapsed)

    # Bit-identical output through the instrumented engine path.
    assert engine_results == bare_results

    ratio = min(engine_times) / min(bare_times)
    bench_metrics.setdefault("profile", {})["telemetry_off_overhead"] = metric(
        ratio, unit="x", higher_is_better=False
    )
    print(
        f"\ndisabled-telemetry engine overhead: best bare {min(bare_times):.3f}s, "
        f"best engine {min(engine_times):.3f}s, ratio {ratio:.3f}"
    )
    assert ratio <= MAX_OVERHEAD, (
        f"NULL_TELEMETRY engine run is {ratio:.3f}x the bare loop (budget {MAX_OVERHEAD}x)"
    )


def test_null_probe_is_inert():
    assert NULL_PROBE.enabled is False
    assert NullProbe().enabled is False
    # Probe hooks are no-ops returning None — nothing to accumulate.
    assert NULL_PROBE.begin_op("load", 0, 0.0) is None
    assert NULL_PROBE.end_op(1.0, 1.0) is None
    assert NULL_PROBE.cache_access("dl1", False, True, 0, 1.0, 1.0, 0.0) is None


def test_detached_sanitizer_is_inert():
    """A sanitizer that was attached and detached leaves zero residue.

    The sanitizer's overhead contract (docs/ARCHITECTURE.md section
    2.10): off by default and free when off.  After ``detach()`` the
    system must produce bit-identical results through the exact same
    code paths as a system that never saw a sanitizer.
    """
    from repro.check import Sanitizer

    runner = ExperimentRunner(kernels=list(KERNELS))
    for config, trace, regions in _material(runner):
        plain = make_system(config).run(trace, warm_regions=regions)
        system = make_system(config)
        sanitizer = Sanitizer(system, stride=1)
        sanitizer.attach()
        sanitizer.detach()
        assert system.cpu.checker is None
        detached = system.run(trace, warm_regions=regions)
        assert detached.cycles == plain.cycles
        assert detached.breakdown == plain.breakdown
        assert detached.counts == plain.counts


def test_disabled_sanitizer_overhead_within_budget():
    """Runs with no sanitizer attached pay nothing for its existence.

    ``InOrderCPU.run`` tests ``self.checker is None`` once per run (not
    per event) and the encoded fast path is untouched, so a
    detached-sanitizer system must match the bare wall clock within the
    same budget as the null probe.
    """
    from repro.check import Sanitizer

    runner = ExperimentRunner(kernels=list(KERNELS))
    material = _material(runner)
    _timed_pass(material, None)  # warm caches, imports, allocator

    def _detached_pass():
        start = time.perf_counter()
        cycles = []
        for config, trace, regions in material:
            system = make_system(config)
            sanitizer = Sanitizer(system, stride=1)
            sanitizer.attach()
            sanitizer.detach()
            result = system.run(trace, warm_regions=regions)
            cycles.append(result.cycles)
        return time.perf_counter() - start, cycles

    bare_times, detached_times = [], []
    bare_cycles = detached_cycles = None
    for _ in range(REPEATS):
        elapsed, bare_cycles = _timed_pass(material, None)
        bare_times.append(elapsed)
        elapsed, detached_cycles = _detached_pass()
        detached_times.append(elapsed)

    assert detached_cycles == bare_cycles

    ratio = min(detached_times) / min(bare_times)
    print(
        f"\ndisabled-sanitizer overhead: best bare {min(bare_times):.3f}s, "
        f"best detached {min(detached_times):.3f}s, ratio {ratio:.3f}"
    )
    assert ratio <= MAX_OVERHEAD, (
        f"detached-sanitizer run is {ratio:.3f}x the bare run (budget {MAX_OVERHEAD}x)"
    )
