"""The IR interpreter: event emission semantics."""

import pytest

from repro.workloads.affine import Var
from repro.workloads.ir import Array, Loop, Program, loop, stmt
from repro.workloads.interp import TraceConfig, generate_trace, materialize_trace
from repro.workloads.trace import Branch, Compute, Load, Prefetch, Store, trace_summary

i, j = Var("i"), Var("j")


def simple_stream(n=8, flops=2):
    """for i in [0,n): y[i] = f(x[i])"""
    x = Array("x", (n,))
    y = Array("y", (n,))
    prog = Program("s", [loop(i, n, [stmt(reads=[x[i]], writes=[y[i]], flops=flops)])])
    prog.layout(base_addr=0)
    return prog, x, y


class TestScalarEmission:
    def test_event_counts(self):
        prog, _, _ = simple_stream(n=8)
        s = trace_summary(materialize_trace(prog))
        assert s["loads"] == 8
        assert s["stores"] == 8
        assert s["branches"] == 8
        assert s["compute_events"] == 8

    def test_load_addresses_are_sequential(self):
        prog, x, _ = simple_stream(n=4)
        loads = [ev for ev in generate_trace(prog) if isinstance(ev, Load)]
        assert [ev.addr for ev in loads] == [x.base_addr + 4 * k for k in range(4)]

    def test_compute_includes_overhead(self):
        prog, _, _ = simple_stream(n=1, flops=2)
        comp = [ev for ev in generate_trace(prog) if isinstance(ev, Compute)]
        assert comp[0].ops == 3  # flops + default overhead 1

    def test_last_branch_not_taken(self):
        prog, _, _ = simple_stream(n=3)
        branches = [ev for ev in generate_trace(prog) if isinstance(ev, Branch)]
        assert [b.taken for b in branches] == [True, True, False]

    def test_empty_loop_emits_nothing(self):
        x = Array("x", (4,))
        prog = Program("e", [Loop(i, 5, 5, [stmt(reads=[x[0]])])])
        assert materialize_trace(prog) == []

    def test_auto_layout(self):
        x = Array("x", (4,))
        prog = Program("a", [loop(i, 4, [stmt(reads=[x[i]])])])
        assert prog.arrays[0].base_addr is None
        materialize_trace(prog)
        assert prog.arrays[0].base_addr is not None


class TestScalarReplacement:
    def test_invariant_read_hoisted(self):
        """An accumulator-style stride-0 read loads once per loop entry."""
        a = Array("A", (4, 8))
        acc = Array("acc", (4,))
        body = loop(i, 4, [loop(j, 8, [stmt(reads=[acc[i], a[i, j]], writes=[acc[i]], flops=2)])])
        prog = Program("dot", [body])
        s = trace_summary(materialize_trace(prog))
        # acc: 1 load + 1 store per i-iteration; A: 8 loads per i-iteration.
        assert s["loads"] == 4 * (8 + 1)
        assert s["stores"] == 4

    def test_hoisting_disabled(self):
        a = Array("A", (4, 8))
        acc = Array("acc", (4,))
        body = loop(i, 4, [loop(j, 8, [stmt(reads=[acc[i], a[i, j]], writes=[acc[i]], flops=2)])])
        prog = Program("dot", [body])
        s = trace_summary(materialize_trace(prog, TraceConfig(scalar_replacement=False)))
        assert s["loads"] == 4 * 16
        assert s["stores"] == 32

    def test_duplicate_invariant_refs_deduplicated(self):
        x = Array("x", (8,))
        c = Array("c", (1,))
        body = loop(
            j,
            8,
            [
                stmt(reads=[c[0], x[j]], writes=[x[j]], flops=1),
                stmt(reads=[c[0], x[j]], writes=[x[j]], flops=1),
            ],
        )
        prog = Program("d", [body])
        s = trace_summary(materialize_trace(prog))
        # c is loaded exactly once for the whole loop; x twice per iteration.
        assert s["loads"] == 1 + 16


class TestVectorEmission:
    def _vec_prog(self, n=8, width=4):
        prog, x, y = simple_stream(n=n)
        prog.loops()[0].vector_width = width
        return prog, x, y

    def test_wide_accesses(self):
        prog, x, _ = self._vec_prog()
        loads = [ev for ev in generate_trace(prog) if isinstance(ev, Load)]
        assert len(loads) == 2
        assert all(ev.size == 16 for ev in loads)

    def test_compute_amortized(self):
        prog, _, _ = self._vec_prog()
        s = trace_summary(materialize_trace(prog))
        assert s["compute_events"] == 2
        assert s["branches"] == 2

    def test_remainder_chunk(self):
        prog, _, _ = self._vec_prog(n=10)
        loads = [ev for ev in generate_trace(prog) if isinstance(ev, Load)]
        assert [ev.size for ev in loads] == [16, 16, 8]

    def test_same_bytes_covered(self):
        scalar, _, _ = simple_stream(n=8)
        vector, _, _ = self._vec_prog(n=8)
        s_scalar = trace_summary(materialize_trace(scalar))
        s_vector = trace_summary(materialize_trace(vector))
        assert s_scalar["load_bytes"] == s_vector["load_bytes"]
        assert s_scalar["store_bytes"] == s_vector["store_bytes"]

    def test_strided_ref_becomes_gather(self):
        a = Array("A", (8, 8))
        prog = Program("g", [loop(i, 8, [stmt(reads=[a[i, 0]], flops=1)])])
        prog.loops()[0].vector_width = 4
        loads = [ev for ev in generate_trace(prog) if isinstance(ev, Load)]
        assert len(loads) == 8  # per-lane accesses
        assert all(ev.size == 4 for ev in loads)

    def test_invariant_ref_once_per_chunk(self):
        x = Array("x", (8,))
        c = Array("c", (2,))
        prog = Program("inv", [loop(i, 8, [stmt(reads=[x[i], c[0]], writes=[x[i]])])])
        prog.loops()[0].vector_width = 4
        s = trace_summary(materialize_trace(prog, TraceConfig(scalar_replacement=False)))
        # x: 2 wide loads; c: 1 narrow load per chunk (not per lane).
        assert s["loads"] == 4


class TestUnroll:
    def test_fewer_branches(self):
        prog, _, _ = simple_stream(n=8)
        prog.loops()[0].unroll = 4
        s = trace_summary(materialize_trace(prog))
        assert s["branches"] == 2
        assert s["loads"] == 8  # data stream unchanged

    def test_non_multiple_trip_count(self):
        prog, _, _ = simple_stream(n=10)
        prog.loops()[0].unroll = 4
        s = trace_summary(materialize_trace(prog))
        assert s["branches"] == 3  # 4 + 4 + 2

    def test_outer_loop_unroll(self):
        a = Array("A", (4, 8))
        inner = loop(j, 8, [stmt(reads=[a[i, j]])])
        outer = loop(i, 4, [inner])
        outer.unroll = 2
        prog = Program("o", [outer])
        s = trace_summary(materialize_trace(prog))
        # Inner back-edges unchanged (4 x 8); outer halved (4 -> 2).
        assert s["branches"] == 32 + 2


class TestPrefetchEmission:
    def _pf_prog(self, n=64, distance=16):
        prog, x, y = simple_stream(n=n)
        lp = prog.loops()[0]
        ref = lp.statements()[0].reads[0]
        lp.prefetch = [(ref, distance)]
        return prog, x

    def test_prefetch_deduplicated_per_block(self):
        prog, x = self._pf_prog(n=64, distance=16)
        prefetches = [ev for ev in generate_trace(prog) if isinstance(ev, Prefetch)]
        # 64 elements x 4 B = 256 B = 4 blocks of 64 B: the preheader hint
        # covers block 0 and the look-ahead stream covers blocks 1-3, each
        # exactly once.
        assert len(prefetches) == 4
        blocks = sorted(ev.addr // 64 for ev in prefetches)
        assert blocks == [0, 1, 2, 3]

    def test_preheader_prefetches_own_window(self):
        prog, x = self._pf_prog(n=64, distance=16)
        first = next(ev for ev in generate_trace(prog) if isinstance(ev, Prefetch))
        assert first.addr == x.base_addr

    def test_target_clamped_to_bounds(self):
        prog, x = self._pf_prog(n=8, distance=100)
        prefetches = [ev for ev in generate_trace(prog) if isinstance(ev, Prefetch)]
        assert all(ev.addr < x.base_addr + x.size_bytes for ev in prefetches)
