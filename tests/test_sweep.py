"""The generic parameter-sweep utility."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentRunner
from repro.experiments.sweep import parse_values, run_sweep
from repro.experiments.runner import CONFIGURATIONS
from repro.transforms.pipeline import OptLevel


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(kernels=["gemm", "trmm"])


class TestRunSweep:
    def test_bank_sweep_shape(self, runner):
        result = run_sweep("dl1_banks", [1, 4], runner=runner)
        assert set(result.series) == {"dl1_banks=1", "dl1_banks=4"}
        avg = result.averages()
        assert avg["dl1_banks=4"] < avg["dl1_banks=1"]

    def test_cpu_param_sweeps_baseline_too(self, runner):
        """A CPU-parameter sweep must compare against an SRAM baseline
        running the *same* core, so the overlap value largely cancels."""
        result = run_sweep(
            "cpu.load_use_overlap", [0.0, 1.5], runner=runner, config="vwb"
        )
        avg = result.averages()
        # With matched baselines the two penalties stay in the same band
        # (the overlap still shifts the residual exposure slightly).
        assert abs(avg["cpu.load_use_overlap=0.0"] - avg["cpu.load_use_overlap=1.5"]) < 20.0

    def test_string_values_coerced(self, runner):
        result = run_sweep("vwb_bits", ["1024", "2048"], runner=runner)
        assert "vwb_bits=1024" in result.series

    def test_bool_coercion(self, runner):
        values = parse_values("hw_prefetcher", ["true", "0"], CONFIGURATIONS["dropin"])
        assert values == [True, False]

    def test_notes_name_best_setting(self, runner):
        result = run_sweep("dl1_banks", [1, 4], runner=runner)
        assert any("best setting" in note for note in result.notes)

    def test_unknown_param_rejected(self, runner):
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            run_sweep("warp_drive", [1], runner=runner)

    def test_unknown_cpu_param_rejected(self, runner):
        with pytest.raises(ConfigurationError, match="unknown CPU parameter"):
            run_sweep("cpu.warp", [1], runner=runner)

    def test_unknown_config_rejected(self, runner):
        with pytest.raises(ConfigurationError, match="configuration"):
            run_sweep("dl1_banks", [1], runner=runner, config="victim")

    def test_empty_values_rejected(self, runner):
        with pytest.raises(ConfigurationError, match="at least one"):
            run_sweep("dl1_banks", [], runner=runner)

    def test_level_parameter(self, runner):
        result = run_sweep("dl1_banks", [4], runner=runner, level=OptLevel.NONE)
        assert "none code" in result.title


class TestSweepCLI:
    def test_cli_sweep(self, capsys):
        from repro.cli import main

        assert main(
            ["sweep", "--param", "dl1_banks", "--values", "4", "--kernels", "gemm", "--no-bars"]
        ) == 0
        out = capsys.readouterr().out
        assert "dl1_banks=4" in out

    def test_cli_sweep_requires_param(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--values", "4"]) == 2

    def test_cli_sweep_bad_param(self, capsys):
        from repro.cli import main

        # Unknown sweep parameter -> ConfigurationError -> usage exit code.
        assert main(["sweep", "--param", "bogus", "--values", "1", "--kernels", "gemm"]) == 2
