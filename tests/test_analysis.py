"""Derived run metrics."""

import pytest

from repro.analysis import compare_runs, metrics_of
from repro.cpu.system import System, SystemConfig
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def runs(gemm_trace):
    return {
        "sram": System(SystemConfig(technology="sram")).run(gemm_trace),
        "dropin": System(SystemConfig(technology="stt-mram")).run(gemm_trace),
        "vwb": System(SystemConfig(technology="stt-mram", frontend="vwb")).run(gemm_trace),
    }


class TestMetrics:
    def test_amat_orders_configurations(self, runs):
        sram = metrics_of(runs["sram"])
        dropin = metrics_of(runs["dropin"])
        vwb = metrics_of(runs["vwb"])
        assert dropin.amat_cycles > vwb.amat_cycles
        assert dropin.amat_cycles > sram.amat_cycles

    def test_ipc_matches_result(self, runs):
        m = metrics_of(runs["sram"])
        assert m.ipc == pytest.approx(runs["sram"].ipc)

    def test_shares_bounded(self, runs):
        for result in runs.values():
            m = metrics_of(result)
            assert 0.0 <= m.load_share <= 1.0
            assert 0.0 <= m.store_share <= 1.0
            assert 0.0 <= m.compute_share <= 1.0
            assert m.load_share + m.store_share + m.compute_share <= 1.01

    def test_vwb_buffer_hit_rate_high(self, runs):
        assert metrics_of(runs["vwb"]).buffer_hit_rate > 0.8

    def test_plain_buffer_hit_rate_zero(self, runs):
        assert metrics_of(runs["sram"]).buffer_hit_rate == 0.0

    def test_mpki_positive(self, runs):
        assert metrics_of(runs["sram"]).load_mpki > 0.0

    def test_rejects_empty_run(self):
        from repro.cpu.model import RunResult

        empty = RunResult(cycles=0.0, instructions=0, breakdown={}, counts={"loads": 0})
        with pytest.raises(ConfigurationError):
            metrics_of(empty)


class TestCompareRuns:
    def test_renders_table(self, runs):
        text = compare_runs(runs)
        assert "AMAT" in text
        assert "sram" in text and "vwb" in text
        assert "IPC" in text

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            compare_runs({})
