"""Ablation experiment functions, on fast kernel subsets."""

import pytest

from repro.experiments import ExperimentRunner, ablations


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(kernels=["gemm", "trmm"])


class TestBankSweep:
    def test_more_banks_never_hurt_much(self, runner):
        result = ablations.run_bank_sweep(runner, banks=(1, 4))
        avg = result.averages()
        assert avg["4_banks"] <= avg["1_banks"]

    def test_series_per_bank_count(self, runner):
        result = ablations.run_bank_sweep(runner, banks=(2, 8))
        assert set(result.series) == {"2_banks", "8_banks"}


class TestPromotionWidth:
    def test_runs_and_stays_bounded(self, runner):
        result = ablations.run_promotion_width_sweep(runner, lines=(2, 4))
        for values in result.series.values():
            assert all(v < 80.0 for v in values)


class TestPrefetchDistance:
    def test_default_lookahead_competitive(self, runner):
        result = ablations.run_prefetch_distance_sweep(runner, ahead_bytes=(32, 128))
        avg = result.averages()
        assert avg["ahead_128B"] <= avg["ahead_32B"] + 2.0


class TestReplacementSweep:
    def test_all_policies_run(self, runner):
        result = ablations.run_replacement_sweep(runner, policies=("lru", "fifo"))
        assert set(result.series) == {"lru", "fifo"}
        for values in result.series.values():
            assert all(v < 60.0 for v in values)


class TestDatasetSweep:
    def test_small_dataset_stays_tolerable(self):
        from repro.workloads.datasets import DatasetSize

        result = ablations.run_dataset_sweep(
            kernels=["gemm"], sizes=(DatasetSize.MINI, DatasetSize.SMALL)
        )
        assert result.averages()["small"] < 25.0


class TestLineSize:
    def test_narrow_sram_baseline_shrinks_penalty(self, runner):
        result = ablations.run_line_size_study(runner)
        avg = result.averages()
        assert avg["vs_256bit_sram"] < avg["vs_512bit_sram"]


class TestHybrid:
    def test_both_structures_beat_dropin(self, runner):
        result = ablations.run_hybrid_comparison(runner)
        avg = result.averages()
        assert avg["vwb"] < avg["dropin"]
        assert avg["hybrid_8kb"] < avg["dropin"]


class TestNVMICache:
    def test_positive_fetch_penalty(self):
        result = ablations.run_nvm_icache(kernels=["gemm"])
        assert all(v > 0.0 for v in result.series["nvm_il1"])


class TestInterchange:
    def test_noop_on_friendly_kernels(self):
        result = ablations.run_interchange_study(kernels=["gemm"])
        avg = result.averages()
        assert abs(avg["full"] - avg["full_plus_interchange"]) < 1.0


class TestDRAMStudy:
    def test_orderings_survive_model_swap(self):
        result = ablations.run_dram_model_study(kernels=["gemm"])
        avg = result.averages()
        assert avg["vwb_banked"] < avg["dropin_banked"]
        assert abs(avg["dropin_flat"] - avg["dropin_banked"]) < 5.0


class TestHWPrefetch:
    def test_sw_into_vwb_beats_hw_into_dropin(self, runner):
        result = ablations.run_hw_prefetch_comparison(runner)
        avg = result.averages()
        assert avg["vwb_sw_prefetch"] < avg["dropin_hw_prefetch"]
