"""PolyBench ``bicg``: s = A^T r and q = A p (BiCG sub-kernel).

One pass over ``A`` updates two vectors: ``s[j]`` (unit stride) and the
accumulator ``q[i]`` (loop-invariant).  ``r[i]`` is also invariant, so
the hot loop carries three unit-stride streams (``s``, ``A``, ``p``).
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"n": 120, "m": 120}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the bicg program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    n, m = dims["n"], dims["m"]
    i, j = Var("i"), Var("j")
    a = Array("A", (n, m))
    s = Array("s", (m,))
    q = Array("q", (n,))
    p = Array("p", (m,))
    r = Array("r", (n,))
    body = [
        loop(i, m, [stmt(writes=[s[i]], flops=0, label="init_s")]),
        loop(
            i,
            n,
            [
                stmt(writes=[q[i]], flops=0, label="init_q"),
                loop(
                    j,
                    m,
                    [
                        stmt(
                            reads=[s[j], r[i], a[i, j]],
                            writes=[s[j]],
                            flops=2,
                            label="s_update",
                        ),
                        stmt(
                            reads=[q[i], a[i, j], p[j]],
                            writes=[q[i]],
                            flops=2,
                            label="q_update",
                        ),
                    ],
                ),
            ],
        ),
    ]
    return Program("bicg", body)
