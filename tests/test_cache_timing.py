"""Set-associative cache: timing semantics."""

import pytest

from repro.mem.cache import Cache, CacheConfig
from repro.mem.mainmem import MainMemory
from repro.mem.request import Access, AccessType


def make_cache(read=4, write=2, banks=1, mem_latency=100.0, **overrides):
    defaults = dict(
        name="t",
        capacity_bytes=4096,
        associativity=2,
        line_bytes=64,
        read_hit_cycles=read,
        write_hit_cycles=write,
        banks=banks,
    )
    defaults.update(overrides)
    return Cache(
        CacheConfig(**defaults), MainMemory(latency_cycles=mem_latency, transfer_cycles=0.0)
    )


class TestHitLatency:
    def test_read_hit_latency(self):
        cache = make_cache(read=4)
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        latency = cache.access(Access(0, 4, AccessType.READ), 1000.0)
        assert latency == 4.0

    def test_write_hit_latency(self):
        cache = make_cache(write=2)
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        latency = cache.access(Access(0, 4, AccessType.WRITE), 1000.0)
        assert latency == 2.0

    def test_miss_latency_is_tag_plus_next_level(self):
        cache = make_cache(read=4, mem_latency=100.0)
        latency = cache.access(Access(0, 4, AccessType.READ), 0.0)
        assert latency == 104.0  # tag check + memory; fill off critical path

    def test_write_miss_latency_includes_allocate_and_write(self):
        cache = make_cache(read=4, write=2, mem_latency=100.0)
        latency = cache.access(Access(0, 4, AccessType.WRITE), 0.0)
        assert latency == 106.0  # tag + fetch + array write


class TestBankConflicts:
    def test_back_to_back_same_bank_stalls(self):
        cache = make_cache(read=4, banks=4)
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        cache.access(Access(0, 4, AccessType.READ), 5000.0)  # warm, hit at t=5000
        # Immediately hit the same line again: bank busy until 5004.
        latency = cache.access(Access(8, 4, AccessType.READ), 5001.0)
        assert latency == pytest.approx(3.0 + 4.0)
        assert cache.stats.bank_wait_cycles == 3

    def test_different_banks_no_stall(self):
        cache = make_cache(read=4, banks=4)
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        cache.access(Access(64, 4, AccessType.READ), 1000.0)
        cache.access(Access(0, 4, AccessType.READ), 5000.0)
        latency = cache.access(Access(64, 4, AccessType.READ), 5001.0)
        assert latency == 4.0


class TestPrefetchTiming:
    def test_prefetch_costs_nothing_to_issue(self):
        cache = make_cache()
        assert cache.prefetch(0, 0.0) == 0.0
        assert cache.stats.prefetch_misses == 1

    def test_prefetch_hides_full_latency_when_early(self):
        cache = make_cache(read=4, mem_latency=100.0)
        cache.prefetch(0, 0.0)
        latency = cache.access(Access(0, 4, AccessType.READ), 500.0)
        assert latency == 4.0  # lazy fill then ordinary hit
        assert cache.contains(0)

    def test_prefetch_partially_hides_latency(self):
        cache = make_cache(read=4, mem_latency=100.0)
        cache.prefetch(0, 0.0)  # ready at 104
        latency = cache.access(Access(0, 4, AccessType.READ), 50.0)
        assert latency == 54.0  # waits the remaining fill time

    def test_prefetch_of_resident_line_is_noop(self):
        cache = make_cache()
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        cache.prefetch(0, 500.0)
        assert cache.stats.prefetch_hits == 1
        assert cache.stats.prefetch_misses == 0

    def test_duplicate_prefetch_merges(self):
        cache = make_cache()
        cache.prefetch(0, 0.0)
        cache.prefetch(0, 1.0)
        assert cache.stats.prefetch_misses == 1
        assert cache.stats.prefetch_hits == 1


class TestWideRead:
    def test_wide_read_of_resident_lines_is_one_array_read(self):
        cache = make_cache(read=4, banks=4)
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        cache.access(Access(64, 4, AccessType.READ), 1000.0)
        result = cache.read_lines_wide(0, 2, 5000.0)
        assert result.latency == 4.0  # both banks in parallel

    def test_wide_read_single_bank_serialises(self):
        cache = make_cache(read=4, banks=1)
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        cache.access(Access(64, 4, AccessType.READ), 1000.0)
        result = cache.read_lines_wide(0, 2, 5000.0)
        assert result.latency == 8.0

    def test_wide_read_fetches_missing_lines(self):
        cache = make_cache(read=4, mem_latency=100.0, banks=4)
        result = cache.read_lines_wide(0, 2, 0.0)
        assert cache.contains(0) and cache.contains(64)
        assert result.latency >= 200.0  # two serialized narrow fetches

    def test_critical_line_first(self):
        cache = make_cache(read=4, mem_latency=100.0, banks=4)
        result = cache.read_lines_wide(0, 2, 0.0, critical_addr=70)
        # Line 64 fetched first, line 0 second.
        assert result.line_ready[64] < result.line_ready[0]
        assert result.wait_for(64, 0.0) < result.wait_for(0, 0.0)

    def test_wait_for_past_time_is_zero(self):
        cache = make_cache(read=4, banks=4)
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        cache.access(Access(64, 4, AccessType.READ), 1000.0)
        result = cache.read_lines_wide(0, 2, 5000.0)
        assert result.wait_for(0, 1e9) == 0.0


class TestInstallLine:
    def test_install_dirty_resident_updates_in_place(self):
        cache = make_cache()
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        stall = cache.install_line(0, True, 1000.0)
        assert stall == 0.0
        assert cache.is_dirty(0)

    def test_install_clean_resident_is_noop(self):
        cache = make_cache()
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        cache.install_line(0, False, 1000.0)
        assert not cache.is_dirty(0)

    def test_install_dirty_absent_forwards_to_next_level(self):
        cache = make_cache()
        cache.install_line(0, True, 0.0)
        assert not cache.contains(0)
        assert cache.next_level.writes == 1

    def test_install_clean_absent_dropped(self):
        cache = make_cache()
        cache.install_line(0, False, 0.0)
        assert cache.next_level.writes == 0
