"""Acceptance chaos run: the full penalties grid under injected faults.

Drives the exact scenario the resilience layer promises to survive —
worker crashes, one hung point, and two pre-corrupted cache entries,
all injected deterministically through a
:class:`~repro.exec.resilience.FaultPlan` — across the complete
``repro penalties`` evaluation grid, then proves four things:

1. the rendered table is **byte-identical** to the committed
   ``benchmarks/golden_penalties.txt``;
2. the telemetry manifest records non-zero ``worker_restarts`` and
   ``retries``;
3. both corrupted entries were moved under ``<cache>/.quarantine/``
   with reason files;
4. a second, fault-free run over the healed cache replays everything.

Run it standalone (CI's ``resilience`` job does)::

    PYTHONPATH=src python benchmarks/chaos_penalties.py

Exits non-zero with a diagnostic on the first violated guarantee.
"""

import difflib
import json
import pathlib
import shutil
import sys
import tempfile

from repro.exec import ExecutionEngine, FaultPlan, RetryPolicy
from repro.experiments import penalties
from repro.experiments.report import render_figure
from repro.experiments.runner import ExperimentRunner
from repro.telemetry import TelemetryRecorder, build_manifest, load_manifest, write_manifest

GOLDEN = pathlib.Path(__file__).resolve().parent / "golden_penalties.txt"

#: Batch indices of the injected faults.  A fault plan keys on the
#: point's index *within its batch*; the grid's first prefetch batch is
#: the only one with 24 points (12 config + 12 sram baseline), so
#: indices >= 12 fire exactly once across the whole sweep.  Entries 12
#: and 20 start corrupted; 13 and 19 each crash their first worker; 16
#: hangs until the timeout kills it.
PLAN = FaultPlan(
    crashes={13: 1, 19: 1},
    hangs={16: 1},
    corrupt_entries=(12, 20),
)


def fail(message):
    """Print one diagnostic line and exit non-zero."""
    print(f"CHAOS FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_grid(workdir, plan, policy, label):
    """Run the full penalties grid under ``plan``; return (text, engine)."""
    telemetry = TelemetryRecorder(workdir / f"tele-{label}")
    engine = ExecutionEngine(
        jobs=4,
        cache_dir=str(workdir / "cache"),
        telemetry=telemetry,
        policy=policy,
        fault_plan=plan,
    )
    try:
        with telemetry.span("sweep", command="penalties"):
            result = penalties.run(ExperimentRunner(engine=engine))
    finally:
        manifest = build_manifest("penalties", engine)
        write_manifest(manifest, telemetry.path.parent)
        telemetry.close()
    engine.finish()
    return render_figure(result, bars=False) + "\n", engine


def main():
    """Run the chaos scenario and verify every guarantee."""
    golden = GOLDEN.read_text()
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    try:
        policy = RetryPolicy(max_retries=3, timeout=20.0)
        text, engine = run_grid(workdir, PLAN, policy, "chaos")

        if text != golden:
            diff = "".join(
                difflib.unified_diff(
                    golden.splitlines(True), text.splitlines(True),
                    "golden_penalties.txt", "chaos run",
                )
            )
            fail(f"chaos output diverged from the golden table:\n{diff}")
        print("chaos grid: byte-identical to golden_penalties.txt")

        stats = engine.stats
        if stats.worker_restarts < 2:
            fail(f"expected >=2 worker restarts, saw {stats.worker_restarts}")
        if stats.retries != 3:
            fail(f"expected exactly 3 retries (2 crashes + 1 timeout), saw {stats.retries}")
        if stats.timeouts != 1:
            fail(f"expected exactly 1 timeout (one hung point), saw {stats.timeouts}")
        if stats.corrupt != 2:
            fail(f"expected exactly 2 corrupt entries, saw {stats.corrupt}")
        print(f"engine: {engine.summary()}")

        doc = load_manifest(workdir / "tele-chaos" / "manifest.json")
        recorded = doc["engine"]["stats"]
        if not recorded["worker_restarts"] or not recorded["retries"]:
            fail(f"manifest lost the resilience counters: {recorded}")
        counters = (doc.get("metrics") or {}).get("counters") or {}
        if not counters.get("exec.worker_restarts") or not counters.get("exec.retries"):
            fail(f"manifest metrics lost exec.* counters: {sorted(counters)}")
        print(
            f"manifest: worker_restarts={recorded['worker_restarts']} "
            f"retries={recorded['retries']} timeouts={recorded['timeouts']}"
        )

        quarantined = engine.cache.quarantined() if engine.cache else []
        if len(quarantined) != 2:
            fail(f"expected 2 quarantined entries, found {len(quarantined)}")
        for entry in quarantined:
            reason = entry.parent / f"{entry.stem}.reason.txt"
            if not reason.exists():
                fail(f"quarantined entry {entry.name} has no reason file")
        print(f"quarantine: {len(quarantined)} entries with reason files")

        healed, engine2 = run_grid(workdir, None, RetryPolicy(), "healed")
        if healed != golden:
            fail("healed-cache replay diverged from the golden table")
        if engine2.stats.executed:
            fail(
                f"healed cache should replay every point, "
                f"but {engine2.stats.executed} re-executed"
            )
        if json.loads((workdir / "tele-healed" / "manifest.json").read_text())[
            "engine"
        ]["stats"]["misses"]:
            fail("healed-cache manifest reports cache misses")
        print("healed cache: 100% replay, still byte-identical")
        print("chaos acceptance: all guarantees held")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
