"""PolyBench ``atax``: y = A^T (A x).

Two unit-stride inner loops over the rows of ``A`` with a scalar
accumulator (``tmp``) in the first — a streaming, read-dominated kernel
where the VWB promotion amortises well.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions; the 120x120 matrix (~56 KB) nearly fills the DL1.
BASE_DIMS = {"m": 120, "n": 120}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the atax program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    m, n = dims["m"], dims["n"]
    i, j = Var("i"), Var("j")
    a = Array("A", (m, n))
    x = Array("x", (n,))
    y = Array("y", (n,))
    tmp = Array("tmp", (1,))
    body = [
        loop(j, n, [stmt(writes=[y[j]], flops=0, label="init_y")]),
        loop(
            i,
            m,
            [
                stmt(writes=[tmp[0]], flops=0, label="init_tmp"),
                loop(
                    j,
                    n,
                    [
                        stmt(
                            reads=[tmp[0], a[i, j], x[j]],
                            writes=[tmp[0]],
                            flops=2,
                            label="dot",
                        )
                    ],
                ),
                loop(
                    j,
                    n,
                    [
                        stmt(
                            reads=[y[j], a[i, j], tmp[0]],
                            writes=[y[j]],
                            flops=2,
                            label="axpy",
                        )
                    ],
                ),
            ],
        ),
    ]
    return Program("atax", body)
