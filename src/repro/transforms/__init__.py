"""Code transformations and optimizations (Section V of the paper).

The paper steers these "manually by the use of intrinsic functions";
here they are IR-to-IR passes over
:class:`~repro.workloads.ir.Program`:

- :class:`~repro.transforms.vectorize.Vectorize` — loop vectorization of
  unit-stride innermost loops;
- :class:`~repro.transforms.prefetch.InsertPrefetch` — software prefetch
  of "critical data and loop arrays to the VWB";
- :class:`~repro.transforms.branchopt.BranchOptimize` — the paper's
  "others": branch-less inner loops, alignment, unrolling;
- :class:`~repro.transforms.interchange.Interchange` — loop interchange
  on author-marked permutable nests (ablation extension);
- :mod:`repro.transforms.pipeline` — named optimization levels combining
  the passes, matching the configurations of Figures 5/6/9.

All passes are *pure*: they clone the program and return the transformed
copy.
"""

from .base import Transform, apply_all
from .vectorize import Vectorize
from .prefetch import InsertPrefetch
from .branchopt import BranchOptimize
from .interchange import Interchange
from .tile import StripMine, TileNest
from .pipeline import OptLevel, optimize, transforms_for_level

__all__ = [
    "Transform",
    "apply_all",
    "Vectorize",
    "InsertPrefetch",
    "BranchOptimize",
    "Interchange",
    "StripMine",
    "TileNest",
    "OptLevel",
    "optimize",
    "transforms_for_level",
]
