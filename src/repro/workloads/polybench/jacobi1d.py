"""PolyBench ``jacobi-1d``: three-point stencil over time steps.

Extra kernel (not in the paper's figures): a neighbour-access pattern
the dense-linear-algebra subset lacks — each iteration reads ``A[i-1]``,
``A[i]``, ``A[i+1]``, so consecutive VWB windows overlap and the
promotion stream is perfectly sequential.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"n": 400, "tsteps": 20}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the jacobi-1d program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    n, tsteps = dims["n"], dims["tsteps"]
    t, i = Var("t"), Var("i")
    a = Array("A", (n,))
    b = Array("B", (n,))
    body = [
        loop(
            t,
            tsteps,
            [
                loop(
                    i,
                    n - 1,
                    [
                        stmt(
                            reads=[a[i - 1], a[i], a[i + 1]],
                            writes=[b[i]],
                            flops=3,
                            label="stencil",
                        )
                    ],
                    lower=1,
                ),
                loop(
                    i,
                    n - 1,
                    [
                        stmt(
                            reads=[b[i - 1], b[i], b[i + 1]],
                            writes=[a[i]],
                            flops=3,
                            label="stencil_back",
                        )
                    ],
                    lower=1,
                ),
            ],
        )
    ]
    return Program("jacobi-1d", body)
