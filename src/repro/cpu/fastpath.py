"""Inlined per-front-end hit kernels for the encoded replay loop.

Replaying a trace through the object path costs ~6 Python call hops per
memory event (``frontend.read`` → ``Access.__init__``/``__post_init__``
→ ``Cache.access`` → ``Access.lines`` → ``_access_line`` →
``BankTimer.reserve``), and that per-access overhead — not the
simulation arithmetic — dominates wall-clock time.  This module builds,
per run, a pair of closures ``(fast_read, fast_write)`` that serve the
*single-line hit* case of one front-end in a single call frame, binding
every piece of mutable state (tag lists, dirty bits, bank busy times,
LRU orders, stat counters) as closure locals.

The contract, pinned by ``tests/test_encode.py``:

- A kernel either completes an access with **exactly** the state
  mutations and the bit-identical float latency of the generic path, or
  it returns ``None`` having touched **nothing**, and the caller falls
  back to the ordinary ``frontend.read``/``write`` call.  Misses,
  multi-line/multi-window accesses, in-flight fills and every rare case
  take the fallback, so there is exactly one implementation of the
  complicated paths.
- :func:`make_fast_ops` returns ``None`` (no fast path at all) whenever
  any feature that hooks the hit path is active: an attached probe, a
  fault injector, AWARE asymmetric writes, per-line write tracking, or
  a hardware prefetcher.  Exact ``type()`` checks keep subclassed
  front-ends on the generic path too.

The kernels are rebuilt for every encoded run because ``reset()``/
``clear_stats()`` replace the captured containers.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..core.dropin import PlainFrontend
from ..core.emshr import EMSHRFrontend
from ..core.frontend import DCacheFrontend
from ..core.hybrid import HybridFrontend
from ..core.l0 import L0Frontend
from ..core.vwb_frontend import VWBFrontend
from ..mem.cache import Cache

#: A fast kernel: ``(addr, size, now) -> latency`` or ``None`` to fall
#: back to the generic front-end call (with no state touched).
FastOp = Callable[[int, int, float], Optional[float]]


def _array_eligible(cache: Cache) -> bool:
    """True when the cache's hit path has no hooks the kernels skip."""
    return (
        cache._injector is None
        and not cache._probing
        and cache.config.fast_write_cycles is None
        and not cache.config.track_line_writes
    )


def _passthrough_ops(cache: Cache, fstats, count_hits: bool) -> Tuple[FastOp, FastOp]:
    """Kernels for the single-line hit path of a plain :class:`Cache`.

    Mirrors ``Cache._access_line``'s hit branch exactly: tag lookup,
    bank reservation, replacement touch, stat counters, and the
    ``wait + hit_cycles`` latency.  ``count_hits`` selects which
    front-end buffer counter the access books under — ``PlainFrontend``
    counts every access as a buffer *miss* (there is no buffer), the
    hybrid's SRAM partition counts a partition *hit*.
    """
    cfg = cache.config
    cstats = cache.stats
    tags = cache._tags
    dirty = cache._dirty
    repl = cache._repl
    busy = cache._banks._busy_until
    off = cache._offset_bits
    set_mask = cfg.sets - 1
    idx_shift = off + cache._index_bits
    read_cycles = float(cfg.read_hit_cycles)
    write_cycles = float(cfg.write_hit_cycles)
    bank_mask = len(busy) - 1  # bank counts are powers of two
    # Exact-LRU sets are inlined (their per-set state is one list);
    # other policies keep the single `touch` method call.
    lru_orders = [s._order for s in repl] if cfg.replacement == "lru" else None

    def fast_read(addr: int, size: int, now: float) -> Optional[float]:
        line_no = addr >> off
        if (addr + size - 1) >> off != line_no:
            return None  # spans lines: generic per-line loop
        index = line_no & set_mask
        try:
            way = tags[index].index(addr >> idx_shift)
        except ValueError:
            return None  # miss: generic fill path
        if count_hits:
            fstats.buffer_read_hits += 1
        else:
            fstats.buffer_read_misses += 1
        bank = line_no & bank_mask
        busy_until = busy[bank]
        if busy_until > now:
            wait = busy_until - now
            busy[bank] = busy_until + read_cycles
            cstats.bank_wait_cycles += int(wait)
        else:
            wait = 0.0
            busy[bank] = now + read_cycles
        if lru_orders is None:
            repl[index].touch(way)
        else:
            order = lru_orders[index]
            if order[0] != way:
                order.remove(way)
                order.insert(0, way)
        cstats.read_hits += 1
        return wait + read_cycles

    def fast_write(addr: int, size: int, now: float) -> Optional[float]:
        line_no = addr >> off
        if (addr + size - 1) >> off != line_no:
            return None
        index = line_no & set_mask
        try:
            way = tags[index].index(addr >> idx_shift)
        except ValueError:
            return None
        if count_hits:
            fstats.buffer_write_hits += 1
        else:
            fstats.buffer_write_misses += 1
        bank = line_no & bank_mask
        busy_until = busy[bank]
        if busy_until > now:
            wait = busy_until - now
            busy[bank] = busy_until + write_cycles
            cstats.bank_wait_cycles += int(wait)
        else:
            wait = 0.0
            busy[bank] = now + write_cycles
        if lru_orders is None:
            repl[index].touch(way)
        else:
            order = lru_orders[index]
            if order[0] != way:
                order.remove(way)
                order.insert(0, way)
        dirty[index][way] = True
        cstats.write_hits += 1
        return wait + write_cycles

    return fast_read, fast_write


def _vwb_ops(frontend: VWBFrontend) -> Tuple[FastOp, FastOp]:
    """Kernels for the VWB front-end.

    Serves wide-line hits, array store misses, and — the expensive
    common case of unprefetched streaming code — the *demand promotion*:
    a VWB read miss whose victim wide line is clean and whose whole
    window is resident in the NVM array.  Dirty evictions, staged
    windows and array misses stay on the generic path.
    """
    vwb = frontend.vwb
    wb = vwb._window_bytes
    hit_cycles = frontend._hit_cycles
    wide_lines = vwb._lines
    pending = frontend._pending
    pending_get = pending.get
    fstats = frontend.stats
    _, array_write = _passthrough_ops(frontend.backing, fstats, False)

    # Backing-array internals for the inlined wide read (promotion).
    cache = frontend.backing
    cfg = cache.config
    cstats = cache.stats
    tags = cache._tags
    dirty_bits = cache._dirty
    repl = cache._repl
    busy = cache._banks._busy_until
    off = cache._offset_bits
    set_mask = cfg.sets - 1
    idx_shift = off + cache._index_bits
    read_cycles = float(cfg.read_hit_cycles)
    write_cycles = float(cfg.write_hit_cycles)
    bank_mask = len(busy) - 1
    line_bytes = cfg.line_bytes
    lru_orders = [s._order for s in repl] if cfg.replacement == "lru" else None
    n_window_lines = frontend._lines_per_window

    def fast_read(addr: int, size: int, now: float) -> Optional[float]:
        w = addr // wb
        if (addr + size - 1) // wb != w:
            return None  # spans windows
        window = w * wb
        for line in wide_lines:
            if line.window_addr == window:
                vwb._clock += 1
                line.last_touch = vwb._clock
                fstats.buffer_read_hits += 1
                return hit_cycles
        staged = pending_get(window)
        if staged is not None:
            # Served straight out of the fill buffer; `wait_for` does
            # the exact critical-line bookkeeping and mutates nothing.
            stage_wait = staged.result.wait_for((addr >> off) << off, now)
            if stage_wait > 0:
                fstats.buffer_read_misses += 1
            else:
                fstats.buffer_read_hits += 1
            return stage_wait + hit_cycles
        # Demand promotion.  Pre-check everything before mutating any
        # state so a bail-out is free: every window line must be
        # array-resident (so the wide read touches no MSHR/fill logic)
        # and a dirty victim's window lines must all still be resident
        # (so each write-back is an in-place array write, zero stall).
        critical = (addr >> off) << off
        ordered = [critical]
        for i in range(n_window_lines):
            wline = window + i * line_bytes
            if (wline >> idx_shift) not in tags[(wline >> off) & set_mask]:
                return None  # array miss inside the window: generic
            if wline != critical:
                ordered.append(wline)
        victim = None
        best_key = None
        for wl in wide_lines:
            key = (1, wl.last_touch) if wl.window_addr is not None else (0, 0)
            if best_key is None or key < best_key:
                victim = wl
                best_key = key
        old_window = victim.window_addr
        writeback = old_window is not None and victim.dirty
        if writeback:
            for i in range(n_window_lines):
                eline = old_window + i * line_bytes
                if (eline >> idx_shift) not in tags[(eline >> off) & set_mask]:
                    return None  # write-back through the write buffer: generic
        # Commit: allocate the VWB line, write back a dirty victim, then
        # the wide array read with the critical line first (exactly the
        # generic path's order).
        fstats.buffer_read_misses += 1
        victim.window_addr = window
        victim.dirty = False
        vwb._clock += 1
        victim.last_touch = vwb._clock
        if writeback:
            fstats.buffer_writebacks += 1
            for i in range(n_window_lines):
                eline = old_window + i * line_bytes
                line_no = eline >> off
                bank = line_no & bank_mask
                busy_until = busy[bank]
                if busy_until > now:
                    cstats.bank_wait_cycles += int(busy_until - now)
                    busy[bank] = busy_until + write_cycles
                else:
                    busy[bank] = now + write_cycles
                index = line_no & set_mask
                dirty_bits[index][tags[index].index(eline >> idx_shift)] = True
                cstats.write_hits += 1
        ready_max = 0.0
        critical_ready = 0.0
        for wline in ordered:
            line_no = wline >> off
            bank = line_no & bank_mask
            busy_until = busy[bank]
            if busy_until > now:
                wait = busy_until - now
                finish = busy_until + read_cycles
                cstats.bank_wait_cycles += int(wait)
            else:
                finish = now + read_cycles
            busy[bank] = finish
            index = line_no & set_mask
            way = tags[index].index(wline >> idx_shift)
            if lru_orders is None:
                repl[index].touch(way)
            else:
                order = lru_orders[index]
                if order[0] != way:
                    order.remove(way)
                    order.insert(0, way)
            cstats.read_hits += 1
            if wline == critical:
                critical_ready = finish
            if finish > ready_max:
                ready_max = finish
        fstats.promotions += 1
        fstats.promotion_cycles += int(ready_max - now)
        wait = critical_ready - now
        return wait if wait > hit_cycles else hit_cycles

    def fast_write(addr: int, size: int, now: float) -> Optional[float]:
        w = addr // wb
        if (addr + size - 1) // wb != w:
            return None
        window = w * wb
        for line in wide_lines:
            if line.window_addr == window:
                vwb._clock += 1
                line.last_touch = vwb._clock
                line.dirty = True
                fstats.buffer_write_hits += 1
                return hit_cycles
        staged = pending_get(window)
        if staged is not None:
            # Merge the store into the staged wide word on arrival.
            stage_wait = staged.result.wait_for((addr >> off) << off, now)
            staged.dirty = True
            fstats.buffer_write_hits += 1
            return stage_wait + hit_cycles
        # VWB-non-allocate miss: the store goes straight to the NVM
        # array (write-back/write-allocate); within one window the
        # generic path issues Access(addr, size) unchanged.
        return array_write(addr, size, now)

    return fast_read, fast_write


def _l0_ops(frontend: L0Frontend) -> Tuple[FastOp, FastOp]:
    """Kernels for the L0 filter cache.

    Serves L0 hits, array store misses, and the *narrow fill*: an L0
    read miss whose victim L0 line is clean and whose line is resident
    in the NVM array.  In-flight fills, dirty evictions and array
    misses stay on the generic path.
    """
    store = frontend._store
    store_lines = store._lines
    fill_ready = frontend._fill_ready
    hit_cycles = float(store.config.hit_cycles)
    fstats = frontend.stats
    _, array_write = _passthrough_ops(frontend.backing, fstats, False)

    # Backing-array internals for the inlined narrow fill read.
    cache = frontend.backing
    cfg = cache.config
    cstats = cache.stats
    tags = cache._tags
    dirty_bits = cache._dirty
    repl = cache._repl
    busy = cache._banks._busy_until
    off = cache._offset_bits
    set_mask = cfg.sets - 1
    idx_shift = off + cache._index_bits
    read_cycles = float(cfg.read_hit_cycles)
    write_cycles = float(cfg.write_hit_cycles)
    bank_mask = len(busy) - 1
    lru_orders = [s._order for s in repl] if cfg.replacement == "lru" else None

    def fast_read(addr: int, size: int, now: float) -> Optional[float]:
        line_no = addr >> off
        if (addr + size - 1) >> off != line_no:
            return None
        line = line_no << off
        for sl in store_lines:
            if sl.window_addr == line:
                # Mirror `_fill_wait`: expired fill entries are retired
                # on access, in-flight ones expose their remaining time.
                ready = fill_ready.get(line)
                if ready is None:
                    fill_wait = 0.0
                elif ready <= now:
                    del fill_ready[line]
                    fill_wait = 0.0
                else:
                    fill_wait = ready - now
                store._clock += 1
                sl.last_touch = store._clock
                if fill_wait > 0:
                    fstats.buffer_read_misses += 1
                else:
                    fstats.buffer_read_hits += 1
                return fill_wait + hit_cycles
        # Narrow fill.  Pre-check before mutating anything: the filled
        # line must be array-resident (so the one-line read is a pure
        # array hit), and so must a dirty victim's line (so its
        # write-back is an in-place array write with zero stall).
        index = line_no & set_mask
        try:
            way = tags[index].index(addr >> idx_shift)
        except ValueError:
            return None  # array miss: generic next-level fetch
        victim = None
        best_key = None
        for sl in store_lines:
            key = (1, sl.last_touch) if sl.window_addr is not None else (0, 0)
            if best_key is None or key < best_key:
                victim = sl
                best_key = key
        old_line = victim.window_addr
        writeback = old_line is not None and victim.dirty
        if writeback:
            e_index = (old_line >> off) & set_mask
            try:
                e_way = tags[e_index].index(old_line >> idx_shift)
            except ValueError:
                return None  # write-back through the write buffer: generic
        # Commit, replicating the generic sequence exactly: allocate
        # (one recency touch), drop the victim's stale fill entry, write
        # back a dirty victim in place, one array read, then the
        # post-fill lookup's second touch.
        fstats.buffer_read_misses += 1
        if old_line is not None:
            fill_ready.pop(old_line, None)
        victim.window_addr = line
        victim.dirty = False
        store._clock += 2
        victim.last_touch = store._clock
        if writeback:
            fstats.buffer_writebacks += 1
            e_bank = (old_line >> off) & bank_mask
            busy_until = busy[e_bank]
            if busy_until > now:
                cstats.bank_wait_cycles += int(busy_until - now)
                busy[e_bank] = busy_until + write_cycles
            else:
                busy[e_bank] = now + write_cycles
            dirty_bits[e_index][e_way] = True
            cstats.write_hits += 1
        bank = line_no & bank_mask
        busy_until = busy[bank]
        if busy_until > now:
            bank_wait = busy_until - now
            busy[bank] = busy_until + read_cycles
            cstats.bank_wait_cycles += int(bank_wait)
        else:
            bank_wait = 0.0
            busy[bank] = now + read_cycles
        if lru_orders is None:
            repl[index].touch(way)
        else:
            order = lru_orders[index]
            if order[0] != way:
                order.remove(way)
                order.insert(0, way)
        cstats.read_hits += 1
        latency = bank_wait + read_cycles
        fstats.promotions += 1
        fstats.promotion_cycles += int(latency)
        ready = now + latency
        fill_ready[line] = ready
        wait = ready - now  # float-exact: matches `_fill_wait`, not `latency`
        return wait if wait > hit_cycles else hit_cycles

    def fast_write(addr: int, size: int, now: float) -> Optional[float]:
        line_no = addr >> off
        if (addr + size - 1) >> off != line_no:
            return None
        line = line_no << off
        for sl in store_lines:
            if sl.window_addr == line:
                ready = fill_ready.get(line)
                if ready is None:
                    fill_wait = 0.0
                elif ready <= now:
                    del fill_ready[line]
                    fill_wait = 0.0
                else:
                    fill_wait = ready - now
                store._clock += 1
                sl.last_touch = store._clock
                sl.dirty = True
                fstats.buffer_write_hits += 1
                return fill_wait + hit_cycles
        # L0 store miss: the generic path writes the whole aligned line
        # into the NVM array (Access(line, line_bytes)).
        return array_write(line, 1, now)

    return fast_read, fast_write


def _emshr_ops(frontend: EMSHRFrontend) -> Tuple[FastOp, FastOp]:
    """Kernels for the EMSHR front-end: entry hits and NVM array hits."""
    entries = frontend._entries
    entries_get = entries.get
    hit_cycles = frontend._hit_cycles
    off = frontend.backing._offset_bits
    fstats = frontend.stats
    array_read, array_write = _passthrough_ops(frontend.backing, fstats, False)

    def fast_read(addr: int, size: int, now: float) -> Optional[float]:
        line_no = addr >> off
        if (addr + size - 1) >> off != line_no:
            return None
        line = line_no << off
        entry = entries_get(line)
        if entry is not None:
            ready = entry.ready_at
            if ready > now:
                fstats.buffer_read_misses += 1
                return (ready - now) + hit_cycles
            fstats.buffer_read_hits += 1
            return hit_cycles
        # No lingering entry: an NVM read hit pays the full array read
        # ("EMSHR cannot help"); a DL1 miss allocates — generic.
        return array_read(addr, size, now)

    def fast_write(addr: int, size: int, now: float) -> Optional[float]:
        line_no = addr >> off
        if (addr + size - 1) >> off != line_no:
            return None
        line = line_no << off
        entry = entries_get(line)
        if entry is not None:
            ready = entry.ready_at
            entry.dirty = True
            fstats.buffer_write_hits += 1
            if ready > now:
                return (ready - now) + hit_cycles
            return hit_cycles
        # Entry miss: the generic path writes the whole aligned line
        # into the array (write-allocate handles the array miss there).
        return array_write(line, 1, now)

    return fast_read, fast_write


def make_fast_ops(frontend: DCacheFrontend) -> Optional[Tuple[FastOp, FastOp]]:
    """Build the fast hit kernels for ``frontend``, if it is eligible.

    Parameters
    ----------
    frontend : DCacheFrontend
        The front-end to specialise.

    Returns
    -------
    tuple of (FastOp, FastOp) or None
        ``(fast_read, fast_write)`` closures, or ``None`` when the
        front-end type is unknown (or subclassed) or any hit-path hook
        (probe, fault injector, AWARE writes, line-write tracking,
        hardware prefetcher) is active — callers then use the generic
        path for every event.
    """
    if frontend._probing or not _array_eligible(frontend.backing):
        return None
    kind = type(frontend)
    if kind is PlainFrontend:
        if frontend.hw_prefetcher is not None:
            return None
        return _passthrough_ops(frontend.backing, frontend.stats, False)
    if kind is VWBFrontend:
        return _vwb_ops(frontend)
    if kind is L0Frontend:
        return _l0_ops(frontend)
    if kind is EMSHRFrontend:
        return _emshr_ops(frontend)
    if kind is HybridFrontend:
        if not _array_eligible(frontend.sram):
            return None
        return _passthrough_ops(frontend.sram, frontend.stats, True)
    return None
