"""Fault-tolerant execution: supervised workers, retries, checkpoints.

The plain :class:`~concurrent.futures.ProcessPoolExecutor` path of the
execution engine dies with the first misbehaving point: a crashed
worker raises ``BrokenProcessPool`` and aborts the sweep, a hung point
stalls it forever, and a point that raises takes every other in-flight
result down with it.  This module supplies the resilience layer the
engine schedules through instead:

- :class:`Supervisor` owns a pool of long-lived worker processes, each
  connected over its own duplex pipe.  Crashes are detected as pipe
  EOF (no shared queue can be corrupted by a dying worker), the dead
  worker is reaped and respawned, and only its in-flight point is
  re-dispatched.
- :class:`RetryPolicy` bounds the damage a point can do: failed and
  timed-out attempts retry with exponential backoff up to
  ``max_retries``; points that keep killing workers are quarantined
  after ``quarantine_after`` crashes and degraded to in-process serial
  execution as a last resort; per-point wall-clock timeouts are
  enforced by killing the worker (the only way to stop a hung
  simulation) and scale with a static per-kernel cost estimate
  (:func:`estimate_point_cost`).
- Terminal failures become structured :class:`PointFailure` records —
  exception, traceback, worker pid, attempt count — instead of an
  abort, so a partial sweep still returns every completed result.
- :class:`SweepJournal` checkpoints completed points as an append-only
  JSONL next to the run cache, flushed per completion, so an
  interrupted sweep (``SIGINT``/``SIGTERM``, exit 130) resumes exactly
  — including under ``--no-cache``, where the journal is the only
  persistence.
- :class:`FaultPlan` injects worker crashes, hangs, in-process errors
  and cache-entry corruption by point index — deterministic chaos in
  the spirit of the reliability subsystem's seeded fault injection —
  powering the ``tests/test_resilience.py`` suite that proves a
  disturbed sweep's results are bit-identical to an undisturbed run.

The supervisor is deliberately free of engine concerns: progress,
telemetry, caching and journaling are injected through
:class:`SupervisorHooks`, so the scheduling core stays independently
testable.  See ``docs/ARCHITECTURE.md`` §2.12 for the failure model.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import time
import traceback as traceback_module
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection, get_context
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..cpu.model import RunResult
from ..workloads.ir import Loop
from .cache import decode_result, encode_result
from .point import RunPoint, build_point_program, execute_point

#: File name of the completed-point checkpoint journal.
JOURNAL_FILENAME = "journal.jsonl"

#: Journal directory used when the run cache is disabled (``--no-cache``
#: sweeps still checkpoint, or they could never resume).
DEFAULT_JOURNAL_DIR = ".repro-journal"

#: Exit code a worker uses for an injected crash (distinguishable from
#: real segfault signals in the supervisor's logs).
FAULT_EXIT_CODE = 86

#: Floor of the supervisor's poll interval in seconds.
_MIN_WAIT = 0.01

#: Ceiling on one exponential-backoff sleep in seconds.
_MAX_BACKOFF = 2.0


# ----------------------------------------------------------------------
# Failure records and policies
# ----------------------------------------------------------------------


@dataclass
class PointFailure:
    """Terminal failure record of one simulation point.

    Attributes
    ----------
    label : str
        The point's display label (``kernel/config/level``).
    kernel : str
        Kernel name.
    key : str
        Content-addressed cache key of the point.
    kind : str
        Failure classification: ``"error"`` (the point raised),
        ``"timeout"`` (every attempt exceeded its wall-clock budget),
        ``"crash"`` (the point kept killing workers and was never
        quarantined), or ``"poison"`` (quarantined to in-process serial
        execution and failed there too).
    attempts : int
        Attempts consumed, the quarantined serial attempt included.
    exception : str
        Exception class name of the last attempt (empty for crashes).
    message : str
        Exception message (or a crash/timeout description).
    traceback : str
        Formatted traceback of the last raising attempt (empty when the
        worker died without reporting one).
    worker_pid : int
        Pid of the last worker that attempted the point.
    """

    label: str
    kernel: str
    key: str
    kind: str
    attempts: int
    exception: str = ""
    message: str = ""
    traceback: str = ""
    worker_pid: int = 0

    def describe(self) -> str:
        """One-line human-readable account of the failure.

        Returns
        -------
        str
            E.g. ``gemm/vwb/NONE: error after 3 attempt(s) —
            ValueError: boom``.
        """
        what = f"{self.exception}: {self.message}" if self.exception else self.message
        return f"{self.label}: {self.kind} after {self.attempts} attempt(s) — {what}"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form for the run manifest's ``failures`` list.

        Returns
        -------
        dict
            Every attribute, stringified where needed.
        """
        return {
            "label": self.label,
            "kernel": self.kernel,
            "cache_key": self.key,
            "kind": self.kind,
            "attempts": int(self.attempts),
            "exception": self.exception,
            "message": self.message,
            "traceback": self.traceback,
            "worker_pid": int(self.worker_pid),
        }


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on how hard the engine fights for each point.

    Attributes
    ----------
    max_retries : int
        Re-dispatches allowed after the first attempt (so a point runs
        at most ``max_retries + 1`` times before it is declared failed).
    timeout : float, optional
        Base per-point wall-clock budget in seconds (``None`` disables
        timeouts).  The effective budget of a heavy point is scaled up
        by its static cost estimate — see :func:`scale_timeouts`.
    backoff_s : float
        First retry delay in seconds.
    backoff_factor : float
        Multiplier applied per additional retry (exponential backoff,
        capped at two seconds per wait).
    quarantine_after : int
        Worker crashes after which a point is quarantined and degraded
        to in-process serial execution instead of being re-dispatched.
    fail_fast : bool
        Stop the batch at the first terminal failure instead of
        finishing the remaining points.
    """

    max_retries: int = 2
    timeout: Optional[float] = None
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    quarantine_after: int = 2
    fail_fast: bool = False

    def backoff(self, retry: int) -> float:
        """Sleep before the ``retry``-th re-dispatch (1-based).

        Parameters
        ----------
        retry : int
            How many retries the point has already consumed.

        Returns
        -------
        float
            Seconds to hold the point back, exponentially growing and
            capped so a sweep never stalls on backoff alone.
        """
        return min(_MAX_BACKOFF, self.backoff_s * (self.backoff_factor ** max(0, retry - 1)))


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection for the chaos test suite.

    Faults are keyed by the point's position in its batch, so a plan is
    reproducible run to run (the same spirit as the reliability
    subsystem's seeded write-error injection).  Crash and hang faults
    only ever fire inside worker processes — applying them in the
    supervising process would kill or stall the whole sweep, which is
    exactly what the resilience layer exists to prevent — while error
    faults fire anywhere, so the serial engine path retries too.

    Attributes
    ----------
    crashes : mapping of int to int
        ``{point_index: n}`` — hard-kill the worker (``os._exit``) on
        the point's first ``n`` worker attempts.
    hangs : mapping of int to int
        ``{point_index: n}`` — hang the point's first ``n`` worker
        attempts for :attr:`hang_seconds`.
    errors : mapping of int to int
        ``{point_index: n}`` — raise a ``RuntimeError`` on the point's
        first ``n`` attempts, in workers and in-process alike.
    corrupt_entries : tuple of int
        Point indices whose on-disk cache entry the engine overwrites
        with garbage before its first lookup — exercising the cache's
        quarantine-and-recompute healing end to end.
    hang_seconds : float
        How long a hung attempt sleeps (far beyond any test timeout).
    """

    crashes: Mapping[int, int] = field(default_factory=dict)
    hangs: Mapping[int, int] = field(default_factory=dict)
    errors: Mapping[int, int] = field(default_factory=dict)
    corrupt_entries: Tuple[int, ...] = ()
    hang_seconds: float = 3600.0

    def apply(self, index: int, attempt: int) -> None:
        """Fire the planned fault for one worker attempt, if any.

        Called inside a worker process before the point executes.

        Parameters
        ----------
        index : int
            Batch-relative point index.
        attempt : int
            1-based attempt number of the point.

        Raises
        ------
        RuntimeError
            For a planned ``errors`` fault.
        """
        if attempt <= self.crashes.get(index, 0):
            os._exit(FAULT_EXIT_CODE)
        if attempt <= self.hangs.get(index, 0):
            time.sleep(self.hang_seconds)
        self.apply_inline(index, attempt)

    def apply_inline(self, index: int, attempt: int) -> None:
        """Fire only the faults that are safe in the supervising process.

        Crash and hang faults are skipped — a quarantined point's
        in-process attempt must be allowed to succeed.

        Parameters
        ----------
        index : int
            Batch-relative point index.
        attempt : int
            1-based attempt number of the point.

        Raises
        ------
        RuntimeError
            For a planned ``errors`` fault.
        """
        if attempt <= self.errors.get(index, 0):
            raise RuntimeError(f"injected fault: point {index}, attempt {attempt}")


# ----------------------------------------------------------------------
# Static cost estimation (timeout scaling)
# ----------------------------------------------------------------------


def _affine_value(expr: Any, env: Dict[str, int]) -> int:
    """Evaluate an int-or-affine loop bound at midpoint variable values."""
    if isinstance(expr, int):
        return expr
    total = getattr(expr, "const", 0)
    for var, coeff in getattr(expr, "coeffs", {}).items():
        total += coeff * env.get(var.name, 0)
    return int(total)


def _walk_cost(nodes: Any, multiplier: int, env: Dict[str, int]) -> int:
    """Accumulated access-count estimate of an IR subtree."""
    total = 0
    for node in nodes:
        if isinstance(node, Loop):
            lower = _affine_value(node.lower, env)
            upper = _affine_value(node.upper, env)
            trips = max(1, upper - lower)
            inner_env = dict(env)
            inner_env[node.var.name] = lower + trips // 2
            total += _walk_cost(node.body, multiplier * trips, inner_env)
        else:
            total += multiplier * (len(node.reads) + len(node.writes) + 1)
    return total


def estimate_point_cost(point: RunPoint) -> int:
    """Static relative cost estimate of one simulation point.

    Walks the kernel's (optimized) IR counting memory references times
    estimated trip counts — triangular bounds are evaluated at the
    midpoint of their enclosing loops, so the estimate is exact for
    rectangular nests and a reasonable middle for skewed ones.  No
    trace is generated: the program is already memoised in the
    supervising process (the cache key fingerprints it), so the
    estimate is effectively free.

    Parameters
    ----------
    point : RunPoint
        The simulation point.

    Returns
    -------
    int
        Estimated dynamic access count (always at least 1).  Only
        *ratios* between points are meaningful — the engine uses them
        to scale per-point timeouts.
    """
    program = build_point_program(point)
    return max(1, _walk_cost(program.body, 1, {}))


def scale_timeouts(costs: List[int], timeout: Optional[float]) -> List[Optional[float]]:
    """Per-point effective timeouts from one base budget.

    ``timeout`` is the budget of an *average* point of the batch;
    heavier points get proportionally more, lighter points keep the
    full base budget (scaling only ever extends, never shrinks, so a
    user-supplied ``--timeout`` is a floor).

    Parameters
    ----------
    costs : list of int
        Static cost estimates (:func:`estimate_point_cost`), one per
        point.
    timeout : float, optional
        Base budget in seconds; ``None`` disables timeouts entirely.

    Returns
    -------
    list of float or None
        Effective per-point budgets, aligned with ``costs``.
    """
    if timeout is None:
        return [None] * len(costs)
    mean = sum(costs) / len(costs) if costs else 1.0
    if mean <= 0:
        mean = 1.0
    return [timeout * max(1.0, cost / mean) for cost in costs]


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------


class SweepJournal:
    """Append-only completed-point checkpoint next to the run cache.

    One JSONL line per completed point — ``{"key": ..., "result": ...}``
    in the cache's exact-round-trip encoding — flushed as each point
    finishes, so the journal is current the instant a sweep is killed.
    On the next run the engine replays journaled points without
    recomputing them, which makes interrupted sweeps resume exactly
    even when the run cache is disabled.  A journal is discarded when
    its sweep completes cleanly (:meth:`discard`).

    Damage tolerance mirrors the cache: unreadable lines (a write cut
    short by ``SIGKILL``) are skipped, never fatal.  Write failures
    (disk full, permissions) surface as a ``False`` return from
    :meth:`record` so the engine can degrade to journal-off mode with
    one warning instead of crashing the sweep.

    Parameters
    ----------
    directory : str or pathlib.Path
        Where ``journal.jsonl`` lives — the run-cache root when caching
        is on, :data:`DEFAULT_JOURNAL_DIR` under ``--no-cache``.
    """

    def __init__(self, directory: Union[str, pathlib.Path]) -> None:
        self.directory = pathlib.Path(directory)
        self.path = self.directory / JOURNAL_FILENAME
        self._entries: Dict[str, RunResult] = {}
        self._load()

    def _load(self) -> None:
        """Read surviving entries of a previous interrupted sweep."""
        try:
            text = self.path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                self._entries[record["key"]] = decode_result(record["result"])
            except (KeyError, TypeError, ValueError):
                continue  # torn tail write of a killed sweep

    def __len__(self) -> int:
        """Number of journaled results currently replayable."""
        return len(self._entries)

    def lookup(self, key: str) -> Optional[RunResult]:
        """Replay the journaled result under ``key``, if any.

        Parameters
        ----------
        key : str
            A content-addressed cache key.

        Returns
        -------
        RunResult or None
            The checkpointed result, bit-identical to the original run.
        """
        return self._entries.get(key)

    def record(self, key: str, result: RunResult) -> bool:
        """Checkpoint one completed point (append + flush).

        Parameters
        ----------
        key : str
            The point's cache key.
        result : RunResult
            The completed result.

        Returns
        -------
        bool
            ``False`` when the journal cannot be written (the caller
            should degrade to journal-off mode); ``True`` otherwise.
        """
        self._entries[key] = result
        line = json.dumps({"key": key, "result": encode_result(result)}, sort_keys=True)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
        except OSError:
            return False
        return True

    def close(self) -> None:
        """Release the journal (entries stay replayable in memory).

        Appends open and close the file per record, so this only exists
        for symmetry with :meth:`discard` — callers may treat a closed
        journal exactly like an open one.
        """

    def discard(self) -> None:
        """Delete the journal after a cleanly completed sweep."""
        self._entries.clear()
        try:
            self.path.unlink()
        except OSError:
            pass
        try:
            self.directory.rmdir()  # only if the journal was its sole content
        except OSError:
            pass


# ----------------------------------------------------------------------
# Supervised worker pool
# ----------------------------------------------------------------------


@dataclass
class Task:
    """One unit of supervised work: a unique cache-missing point.

    Attributes
    ----------
    index : int
        Batch-relative index of the point's first occurrence (the fault
        plan's key, and the slot progress is reported against).
    key : str
        Content-addressed cache key.
    point : RunPoint
        The simulation point.
    timeout : float, optional
        Effective wall-clock budget of one attempt (already scaled).
    attempts : int
        Attempts started so far.
    crashes : int
        Worker deaths this point has caused.
    not_before : float
        Monotonic time before which the task must not be re-dispatched
        (exponential backoff).
    last_error : tuple
        ``(kind, exception, message, traceback, pid)`` of the most
        recent failed attempt.
    """

    index: int
    key: str
    point: RunPoint
    timeout: Optional[float] = None
    attempts: int = 0
    crashes: int = 0
    not_before: float = 0.0
    last_error: Tuple[str, str, str, str, int] = ("", "", "", "", 0)

    def failure(self, kind: str) -> PointFailure:
        """Terminal :class:`PointFailure` for this task.

        Parameters
        ----------
        kind : str
            Failure classification (see :class:`PointFailure`).

        Returns
        -------
        PointFailure
            The structured record, carrying the last attempt's error.
        """
        _, exception, message, tb, pid = self.last_error
        return PointFailure(
            label=self.point.display(),
            kernel=self.point.kernel,
            key=self.key,
            kind=kind,
            attempts=self.attempts,
            exception=exception,
            message=message,
            traceback=tb,
            worker_pid=pid,
        )


class SupervisorHooks:
    """Observer interface the engine implements; every hook is a no-op.

    The supervisor calls these as scheduling events happen, so the
    engine can feed progress lines, telemetry spans, metrics, the run
    cache and the journal without the supervisor knowing any of them.
    """

    def attempt_started(self, task: Task) -> None:
        """One attempt of ``task`` was dispatched to a worker."""

    def attempt_failed(self, task: Task, kind: str) -> None:
        """The running attempt failed (``kind``: error/timeout/crash)."""

    def retrying(self, task: Task, kind: str) -> None:
        """``task`` was re-queued after a failed attempt."""

    def quarantined(self, task: Task) -> None:
        """``task`` crashed too often and will run in-process."""

    def worker_restarted(self, pid: int) -> None:
        """A dead worker (former ``pid``) was replaced."""

    def completed(self, task: Task, result: RunResult, pid: int, wall_s: float) -> None:
        """``task`` finished; ``result`` came from worker ``pid``."""

    def failed(self, failure: PointFailure) -> None:
        """``task`` is terminally failed."""


def _worker_main(conn: Any, fault_plan: Optional[FaultPlan]) -> None:
    """Worker-process loop: receive points, simulate, send results back.

    ``SIGINT`` is ignored so a Ctrl-C to the process group leaves the
    drain-and-checkpoint shutdown under the supervisor's control.  Any
    exception is reported as a structured error message; the worker
    survives to take the next task.  A message that cannot be sent
    (supervisor gone) ends the loop.

    Parameters
    ----------
    conn : multiprocessing.connection.Connection
        The worker's end of its duplex pipe.
    fault_plan : FaultPlan, optional
        Chaos-injection plan consulted before each attempt.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        task_key, point, index, attempt = message
        started = time.monotonic()
        try:
            if fault_plan is not None:
                fault_plan.apply(index, attempt)
            result = execute_point(point)
            wall = time.monotonic() - started
            reply = ("ok", task_key, os.getpid(), wall, result)
        except Exception as exc:  # structured failure, worker survives
            wall = time.monotonic() - started
            reply = (
                "error",
                task_key,
                os.getpid(),
                wall,
                type(exc).__name__,
                str(exc),
                traceback_module.format_exc(),
            )
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """Supervisor-side record of one worker process."""

    __slots__ = ("process", "conn", "task", "killed", "deadline")

    def __init__(self, process: Any, conn: Any) -> None:
        self.process = process
        self.conn = conn
        self.task: Optional[Task] = None
        self.killed = False
        self.deadline: Optional[float] = None


class Supervisor:
    """Crash-, hang- and error-surviving scheduler over worker processes.

    Dispatches :class:`Task` objects to a pool of long-lived workers,
    each owning a private duplex pipe (so a dying worker can never
    corrupt a shared queue), and applies a :class:`RetryPolicy` to
    every failure:

    - a clean exception in a worker retries with backoff up to
      ``max_retries``, then becomes a terminal ``"error"`` failure;
    - an attempt past its wall-clock budget gets its worker killed
      (the only way to stop a hung simulation), retries, and becomes a
      terminal ``"timeout"`` failure when the budget never suffices;
    - a worker death (pipe EOF without a result) restarts the worker
      and re-dispatches only the in-flight point; a point that crashes
      workers ``quarantine_after`` times is degraded to in-process
      serial execution — success there completes it normally, failure
      classifies it ``"poison"``.

    The supervisor never raises for point failures — they are returned
    — but ``KeyboardInterrupt`` (the CLI's ``SIGINT``/``SIGTERM`` path)
    kills all workers immediately and propagates, leaving completed
    points checkpointed by the engine's hooks.

    Parameters
    ----------
    jobs : int
        Maximum concurrent worker processes.
    policy : RetryPolicy
        Retry/timeout/quarantine bounds.
    fault_plan : FaultPlan, optional
        Chaos plan forwarded to workers (and to quarantined in-process
        attempts, error faults only).
    hooks : SupervisorHooks, optional
        Scheduling-event observer (default: no-ops).
    """

    def __init__(
        self,
        jobs: int,
        policy: RetryPolicy,
        fault_plan: Optional[FaultPlan] = None,
        hooks: Optional[SupervisorHooks] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.policy = policy
        self.fault_plan = fault_plan
        self.hooks = hooks if hooks is not None else SupervisorHooks()
        self._ctx = get_context()
        self._workers: List[_Worker] = []
        self._restarts = 0

    # -- worker lifecycle ------------------------------------------------

    def _spawn(self) -> _Worker:
        """Start one worker process with its private pipe."""
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn, self.fault_plan), daemon=True
        )
        process.start()
        child_conn.close()
        worker = _Worker(process, parent_conn)
        self._workers.append(worker)
        return worker

    def _reap(self, worker: _Worker) -> None:
        """Remove a dead worker and release its resources."""
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=1.0)

    def _shutdown(self, force: bool) -> None:
        """Stop every worker — gracefully, or by kill on interrupt."""
        for worker in list(self._workers):
            if force or worker.task is not None:
                worker.process.kill()
            else:
                try:
                    worker.conn.send(None)
                except OSError:
                    worker.process.kill()
        for worker in list(self._workers):
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers.clear()

    # -- scheduling ------------------------------------------------------

    def run(self, tasks: List[Task]) -> List[PointFailure]:
        """Execute every task, surviving crashes, hangs and errors.

        Completed results are delivered through
        :meth:`SupervisorHooks.completed` as they finish; this method
        returns only the terminal failures (empty for a clean batch).

        Parameters
        ----------
        tasks : list of Task
            Unique cache-missing points of one batch.

        Returns
        -------
        list of PointFailure
            Terminal failures, in the order they were declared.
        """
        queue: deque = deque(tasks)
        failures: List[PointFailure] = []
        outstanding = len(tasks)
        try:
            for _ in range(min(self.jobs, len(tasks))):
                self._spawn()
            while outstanding > len(failures):
                now = time.monotonic()
                outstanding -= self._dispatch(queue, failures, now)
                if self.policy.fail_fast and failures:
                    break
                if outstanding <= len(failures):
                    break
                self._ensure_workers(queue)
                ready = connection.wait(
                    [w.conn for w in self._workers], self._wait_timeout(queue, now)
                )
                for conn in ready:
                    worker = next((w for w in self._workers if w.conn is conn), None)
                    if worker is not None:
                        outstanding -= self._drain(worker, queue, failures)
                outstanding -= self._expire(queue, failures, time.monotonic())
            self._shutdown(force=bool(failures and self.policy.fail_fast))
        except BaseException:
            self._shutdown(force=True)
            raise
        return failures

    def _dispatch(self, queue: deque, failures: List[PointFailure], now: float) -> int:
        """Hand queued tasks to idle workers; run quarantined ones inline.

        Returns
        -------
        int
            Tasks completed inline (quarantined successes).
        """
        done = 0
        idle = [w for w in self._workers if w.task is None]
        deferred: List[Task] = []
        while queue:
            task = queue[0]
            if task.not_before > now:
                break
            if task.crashes >= self.policy.quarantine_after and task.crashes > 0:
                queue.popleft()
                done += self._run_quarantined(task, failures)
                continue
            if not idle:
                break
            queue.popleft()
            worker = idle.pop()
            task.attempts += 1
            try:
                worker.conn.send((task.key, task.point, task.index, task.attempts))
            except OSError:
                # The worker died before taking the task: roll the
                # attempt back, re-queue, and let the reaper respawn.
                task.attempts -= 1
                deferred.append(task)
                worker.killed = False
                self._on_worker_death(worker, queue, failures)
                continue
            worker.task = task
            worker.deadline = None if task.timeout is None else now + task.timeout
            self.hooks.attempt_started(task)
        for task in deferred:
            queue.appendleft(task)
        return done

    def _run_quarantined(self, task: Task, failures: List[PointFailure]) -> int:
        """Last resort: execute a poison point in the supervising process.

        Returns
        -------
        int
            1 when the task completed, 0 when it terminally failed.
        """
        self.hooks.quarantined(task)
        task.attempts += 1
        started = time.monotonic()
        try:
            if self.fault_plan is not None:
                self.fault_plan.apply_inline(task.index, task.attempts)
            result = execute_point(task.point)
        except Exception as exc:
            task.last_error = (
                "poison",
                type(exc).__name__,
                str(exc),
                traceback_module.format_exc(),
                os.getpid(),
            )
            self.hooks.attempt_failed(task, "error")
            failures.append(task.failure("poison"))
            self.hooks.failed(failures[-1])
            return 0
        self.hooks.completed(task, result, os.getpid(), time.monotonic() - started)
        return 1

    def _wait_timeout(self, queue: deque, now: float) -> float:
        """Poll interval until the next deadline or backoff expiry."""
        horizon = 10.0
        for worker in self._workers:
            if worker.deadline is not None:
                horizon = min(horizon, worker.deadline - now)
        for task in queue:
            horizon = min(horizon, task.not_before - now)
        return max(_MIN_WAIT, horizon)

    def _drain(self, worker: _Worker, queue: deque, failures: List[PointFailure]) -> int:
        """Process one ready pipe: a result, an error, or a death.

        Returns
        -------
        int
            Tasks completed by this message (0 or 1).
        """
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            self._on_worker_death(worker, queue, failures)
            return 0
        task = worker.task
        worker.task = None
        worker.deadline = None
        if task is None:
            return 0  # late message from a worker already written off
        if message[0] == "ok":
            _, _, pid, wall, result = message
            self.hooks.completed(task, result, pid, wall)
            return 1
        _, _, pid, wall, exc_name, exc_message, tb = message
        task.last_error = ("error", exc_name, exc_message, tb, pid)
        self._retry_or_fail(task, "error", queue, failures)
        return 0

    def _on_worker_death(
        self, worker: _Worker, queue: deque, failures: List[PointFailure]
    ) -> None:
        """Reap a dead worker; reschedule its in-flight task."""
        task = worker.task
        killed = worker.killed
        pid = worker.process.pid or 0
        self._reap(worker)
        if task is None:
            return
        if killed:
            task.last_error = (
                "timeout",
                "",
                f"attempt exceeded its {task.timeout:.1f}s wall-clock budget",
                "",
                pid,
            )
            self._retry_or_fail(task, "timeout", queue, failures)
        else:
            task.crashes += 1
            exitcode = worker.process.exitcode
            task.last_error = (
                "crash",
                "",
                f"worker {pid} died (exit code {exitcode})",
                "",
                pid,
            )
            self._retry_or_fail(task, "crash", queue, failures)

    def _retry_or_fail(
        self, task: Task, kind: str, queue: deque, failures: List[PointFailure]
    ) -> None:
        """Apply the retry policy to one failed attempt."""
        self.hooks.attempt_failed(task, kind)
        quarantine_bound = kind == "crash" and task.crashes >= self.policy.quarantine_after
        if task.attempts > self.policy.max_retries and not quarantine_bound:
            failures.append(task.failure(kind))
            self.hooks.failed(failures[-1])
            return
        task.not_before = time.monotonic() + self.policy.backoff(task.attempts)
        queue.append(task)
        self.hooks.retrying(task, kind)

    def _expire(self, queue: deque, failures: List[PointFailure], now: float) -> int:
        """Kill workers whose task exceeded its wall-clock budget."""
        for worker in self._workers:
            if worker.task is not None and worker.deadline is not None and now > worker.deadline:
                worker.killed = True
                worker.process.kill()
        return 0

    def _ensure_workers(self, queue: deque) -> None:
        """Respawn workers up to ``jobs`` while work remains."""
        busy = sum(1 for w in self._workers if w.task is not None)
        wanted = min(self.jobs, busy + len(queue))
        while len(self._workers) < wanted:
            self._spawn()
            self._restarts += 1
            self.hooks.worker_restarted(0)

    @property
    def restarts(self) -> int:
        """Workers respawned after a death (initial spawns excluded)."""
        return self._restarts
