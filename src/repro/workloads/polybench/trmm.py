"""PolyBench ``trmm``: B = alpha * A * B with A unit lower triangular.

The reduction loop runs over ``k in [i+1, M)`` — a *triangular* bound —
and both inner references (``A[k][i]``, ``B[k][j]``) walk columns at
stride N.  Nothing here vectorizes; this is the kernel where the "others"
(branch/alignment) transformations do relatively most work.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"m": 36, "n": 36}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the trmm program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    m, n = dims["m"], dims["n"]
    i, j, k = Var("i"), Var("j"), Var("k")
    a = Array("A", (m, m))
    b = Array("B", (m, n))
    body = [
        loop(
            i,
            m,
            [
                loop(
                    j,
                    n,
                    [
                        loop(
                            k,
                            m,
                            [
                                stmt(
                                    reads=[b[i, j], a[k, i], b[k, j]],
                                    writes=[b[i, j]],
                                    flops=2,
                                    label="tri_mac",
                                )
                            ],
                            lower=i + 1,
                        ),
                        stmt(reads=[b[i, j]], writes=[b[i, j]], flops=1, label="alpha_scale"),
                    ],
                )
            ],
        )
    ]
    return Program("trmm", body)
