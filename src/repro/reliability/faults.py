"""Deterministic, seeded fault injection for the NVM array path.

Three fault classes, each with its own per-bit probability:

- **stochastic write failure** — a write pulse fails to switch a cell
  with probability :attr:`ReliabilityConfig.write_error_rate` (the raw
  bit error rate, *rber*).  Physically this is thermal activation: see
  :meth:`repro.tech.params.MemoryTechnology.write_error_rate` for the
  model that derives a default rate from the technology's thermal
  stability factor.  The cache responds with write-verify-retry.
- **read disturb** — the read current flips a cell with probability
  :attr:`ReliabilityConfig.read_disturb_rate` per bit read.
- **retention decay** — a weakly-written cell has decayed by the time it
  is read, with probability :attr:`ReliabilityConfig.retention_fault_rate`
  per bit.  Both read classes are caught (or not) by the SECDED stage.

Determinism
-----------

All sampling draws from one :func:`repro.reliability.rng.make_rng`
generator (stream ``"faults"``), so a run is a pure function of
``(seed, access stream)``: same seed, same trace -> bit-identical
:class:`~repro.cpu.model.RunResult`.  A fault class whose rate is zero
consumes *no* draws, so enabling writes-only faults does not perturb the
read stream and vice versa.  Bit-error counts are sampled with a
geometric-gap binomial sampler — O(errors), not O(bits), so a 512-bit
line write at rber 1e-4 costs one uniform draw almost always.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from random import Random

from ..errors import ConfigurationError
from .ecc import EccOutcome, SECDEDCode
from .rng import make_rng

#: Stream label the injector derives its generator from.
FAULT_RNG_STREAM = "faults"


def sample_bit_errors(rng: Random, bits: int, rate: float) -> int:
    """Sample a Binomial(``bits``, ``rate``) error count.

    Uses geometric gaps between failures so the cost is proportional to
    the number of *errors* (usually zero), not the number of bits.

    Raises:
        ConfigurationError: If ``bits`` is negative or ``rate`` is
            outside [0, 1].
    """
    if bits < 0:
        raise ConfigurationError(f"bit count must be non-negative: {bits}")
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"error rate must be in [0, 1]: {rate}")
    if rate == 0.0 or bits == 0:
        return 0
    if rate == 1.0:
        return bits
    log_miss = math.log1p(-rate)
    errors = 0
    position = 0
    while True:
        # Geometric gap to the next failing bit.
        gap = int(math.log(1.0 - rng.random()) / log_miss)
        position += gap + 1
        if position > bits:
            return errors
        errors += 1


@dataclass(frozen=True)
class ReliabilityConfig:
    """Fault-injection and protection parameters of one NVM array.

    The default instance is inert: every rate is zero, so no generator
    is ever consulted and the timing path is bit-exact with a
    fault-free simulator.

    Attributes:
        seed: Master seed for the injector's generator (stream
            ``"faults"`` of :func:`repro.reliability.rng.make_rng`).
        write_error_rate: Per-bit probability that a write pulse fails
            (the raw bit error rate swept by the reliability
            experiments).
        read_disturb_rate: Per-bit probability that a read flips a cell.
        retention_fault_rate: Per-bit probability that a cell has
            decayed by the time it is read.
        max_write_attempts: Write-verify-retry budget (first attempt
            included); each retry re-occupies the line's bank for a full
            array write.
        ecc_decode_cycles: Fixed SECDED decode latency added to every
            array read while any fault rate is nonzero.
        retire_after_retries: Cumulative write retries after which a
            line slot is retired (0 disables retirement).
    """

    seed: int = 0
    write_error_rate: float = 0.0
    read_disturb_rate: float = 0.0
    retention_fault_rate: float = 0.0
    max_write_attempts: int = 4
    ecc_decode_cycles: int = 1
    retire_after_retries: int = 64

    def __post_init__(self) -> None:
        for name in ("write_error_rate", "read_disturb_rate", "retention_fault_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]: {value}")
        if self.max_write_attempts < 1:
            raise ConfigurationError(
                f"need at least one write attempt: {self.max_write_attempts}"
            )
        if self.ecc_decode_cycles < 0:
            raise ConfigurationError(
                f"ECC decode latency must be non-negative: {self.ecc_decode_cycles}"
            )
        if self.retire_after_retries < 0:
            raise ConfigurationError(
                f"retirement threshold must be non-negative: {self.retire_after_retries}"
            )

    @property
    def enabled(self) -> bool:
        """True when any fault class can actually fire."""
        return (
            self.write_error_rate > 0.0
            or self.read_disturb_rate > 0.0
            or self.retention_fault_rate > 0.0
        )

    @property
    def read_fault_possible(self) -> bool:
        """True when reads can observe faulty bits."""
        return self.read_disturb_rate > 0.0 or self.retention_fault_rate > 0.0


@dataclass
class ReliabilityStats:
    """Counters and cycle totals accumulated by one :class:`FaultInjector`.

    Event counters are in events; ``*_cycles`` fields accumulate the
    extra cycles the corresponding mechanism inserted into the timing
    (bank re-occupancy for retries, decode adders, refill round trips).
    """

    write_faults: int = 0
    write_retries: int = 0
    write_failures: int = 0
    read_disturb_faults: int = 0
    retention_faults: int = 0
    ecc_corrections: int = 0
    ecc_detected: int = 0
    ecc_rereads: int = 0
    fault_refills: int = 0
    retired_lines: int = 0
    write_retry_cycles: float = 0.0
    ecc_decode_cycles: float = 0.0
    fault_refill_cycles: float = 0.0

    def as_dict(self) -> dict:
        """Plain-dict view, for :attr:`RunResult.reliability_stats`."""
        return {f.name: getattr(self, f.name) for f in fields(ReliabilityStats)}


class FaultInjector:
    """Samples fault events for one NVM array, deterministically.

    Args:
        config: Fault rates, retry budget and ECC parameters.
        line_bits: Data bits per cache line (the protection granule).
    """

    def __init__(self, config: ReliabilityConfig, line_bits: int) -> None:
        if line_bits <= 0:
            raise ConfigurationError(f"line width must be positive: {line_bits}")
        self.config = config
        self.line_bits = line_bits
        self.ecc = SECDEDCode(line_bits)
        self.stats = ReliabilityStats()
        self._rng = make_rng(config.seed, FAULT_RNG_STREAM)
        self._last_write_failed = False

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def write_attempts(self) -> int:
        """Attempts one line write needs under write-verify-retry.

        Returns at least 1; values above 1 mean ``result - 1`` retries.
        A return of :attr:`ReliabilityConfig.max_write_attempts` with
        :meth:`last_write_failed` True means the budget was exhausted
        with bits still unwritten.
        """
        cfg = self.config
        self._last_write_failed = False
        if cfg.write_error_rate == 0.0:
            return 1
        attempts = 1
        errors = sample_bit_errors(self._rng, self.line_bits, cfg.write_error_rate)
        if errors > 0:
            self.stats.write_faults += 1
        while errors > 0 and attempts < cfg.max_write_attempts:
            attempts += 1
            self.stats.write_retries += 1
            # The retry only needs to re-write the bits that failed.
            errors = sample_bit_errors(self._rng, errors, cfg.write_error_rate)
        if errors > 0:
            self.stats.write_failures += 1
            self._last_write_failed = True
        return attempts

    def last_write_failed(self) -> bool:
        """True if the most recent write exhausted its retry budget."""
        return self._last_write_failed

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def read_faulty_bits(self) -> int:
        """Sample the faulty bits a line read observes (both classes)."""
        cfg = self.config
        faults = 0
        if cfg.read_disturb_rate > 0.0:
            disturbed = sample_bit_errors(self._rng, self.line_bits, cfg.read_disturb_rate)
            self.stats.read_disturb_faults += disturbed
            faults += disturbed
        if cfg.retention_fault_rate > 0.0:
            decayed = sample_bit_errors(self._rng, self.line_bits, cfg.retention_fault_rate)
            self.stats.retention_faults += decayed
            faults += decayed
        return faults

    def decode(self, faulty_bits: int) -> EccOutcome:
        """SECDED decode of a line read, with statistics."""
        outcome = self.ecc.decode(faulty_bits)
        if outcome is EccOutcome.CORRECTED:
            self.stats.ecc_corrections += 1
        elif outcome is EccOutcome.DETECTED:
            self.stats.ecc_detected += 1
        return outcome

    def reset(self) -> None:
        """Reset statistics and re-seed the generator (fresh run)."""
        self.stats = ReliabilityStats()
        self._rng = make_rng(self.config.seed, FAULT_RNG_STREAM)
        self._last_write_failed = False

    def clear_stats(self) -> None:
        """Zero statistics but keep the generator position (warm run)."""
        self.stats = ReliabilityStats()
