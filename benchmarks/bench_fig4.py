"""Bench: Figure 4 — read vs write penalty contribution.

Paper shape: "The read contribution far exceeds that of it's write
counterpart towards the total penalty."
"""

from repro.experiments import fig4

from conftest import run_once


def test_fig4(benchmark, runner, save):
    result = run_once(benchmark, fig4.run, runner=runner)
    save(result)
    avg = result.averages()
    assert avg["read_share"] > 80.0
    assert avg["write_share"] < 20.0
    # Per-kernel shares are normalised.
    for r, w in zip(result.series_for("read_share"), result.series_for("write_share")):
        assert abs(r + w - 100.0) < 0.1 or (r == 0.0 and w == 0.0)
