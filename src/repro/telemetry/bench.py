"""Benchmark trajectory records: ``BENCH_<name>.json`` generations.

Every module of the benchmark harness emits one record per run —
wall-clock time plus any domain metrics it reports (replay speedup,
probe-overhead ratio).  Records accumulate as *generations* inside one
``BENCH_<name>.json`` file per bench, so the repository carries its own
performance history: ``repro bench-report`` compares the latest
generation against the previous one and flags regressions beyond a
threshold (10% by default) with a non-zero exit — the guard CI runs
against the committed baseline.

Each metric carries a ``higher_is_better`` direction, so "throughput
regressed" means *dropped* for a speedup and *grew* for a wall time.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Tuple, Union

#: Version of the record layout.
BENCH_FORMAT_VERSION = 1

#: Generations kept per record (oldest dropped beyond this).
MAX_GENERATIONS = 50

#: Default regression threshold (fraction of the previous value).
DEFAULT_THRESHOLD = 0.10


def metric(value: float, unit: str = "", higher_is_better: bool = True) -> Dict[str, Any]:
    """Build one metric entry for :func:`record_bench`.

    Parameters
    ----------
    value : float
        The measured value.
    unit : str
        Display unit (``"s"``, ``"x"``, ``"%"``).
    higher_is_better : bool
        Direction: ``True`` for throughput-like metrics, ``False`` for
        times and overheads.

    Returns
    -------
    dict
        The metric mapping stored in a generation.
    """
    return {"value": float(value), "unit": unit, "higher_is_better": bool(higher_is_better)}


def bench_path(name: str, directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Record file path for bench ``name`` under ``directory``."""
    return pathlib.Path(directory) / f"BENCH_{name}.json"


def record_bench(
    name: str,
    metrics: Dict[str, Dict[str, Any]],
    directory: Union[str, pathlib.Path],
    context: Optional[Dict[str, Any]] = None,
) -> pathlib.Path:
    """Append one generation to ``BENCH_<name>.json``.

    Parameters
    ----------
    name : str
        Bench name (``trace`` for ``bench_trace.py``).
    metrics : dict
        Mapping metric name -> :func:`metric` entry.
    directory : str or pathlib.Path
        Where the record lives (created if missing).
    context : dict, optional
        Free-form provenance for the generation (python version, host).

    Returns
    -------
    pathlib.Path
        The record file.
    """
    path = bench_path(name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    record = load_record(path) if path.exists() else None
    if record is None:
        record = {"format": BENCH_FORMAT_VERSION, "name": name, "generations": []}
    generation = {
        "created": datetime.now(timezone.utc).isoformat(),
        "metrics": metrics,
        "context": context or {},
    }
    record["generations"] = record["generations"][-(MAX_GENERATIONS - 1):] + [generation]
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_record(path: Union[str, pathlib.Path]) -> Optional[Dict[str, Any]]:
    """Load one ``BENCH_*.json`` record, tolerating damage.

    Parameters
    ----------
    path : str or pathlib.Path
        The record file.

    Returns
    -------
    dict or None
        The record, or ``None`` when the file is missing, unreadable or
        of a different format version (a fresh history starts then).
    """
    try:
        record = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError):
        return None
    if (
        not isinstance(record, dict)
        or record.get("format") != BENCH_FORMAT_VERSION
        or not isinstance(record.get("generations"), list)
    ):
        return None
    return record


@dataclass
class Delta:
    """Change of one metric between the last two generations.

    Attributes
    ----------
    bench : str
        Bench name the metric belongs to.
    metric : str
        Metric name.
    previous : float
        Value in the previous generation.
    latest : float
        Value in the latest generation.
    unit : str
        Display unit.
    higher_is_better : bool
        Direction of improvement.
    change_pct : float
        Relative change in percent (positive = value grew).
    regressed : bool
        Whether the change crosses the regression threshold in the
        *bad* direction.
    """

    bench: str
    metric: str
    previous: float
    latest: float
    unit: str
    higher_is_better: bool
    change_pct: float
    regressed: bool


def compare_record(
    record: Dict[str, Any], threshold: float = DEFAULT_THRESHOLD
) -> List[Delta]:
    """Deltas between the last two generations of one record.

    Parameters
    ----------
    record : dict
        A record from :func:`load_record`.
    threshold : float
        Regression threshold as a fraction (0.10 = 10%).

    Returns
    -------
    list of Delta
        One entry per metric present in both generations; empty when
        the record has fewer than two generations.
    """
    generations = [g for g in record["generations"] if isinstance(g, dict)]
    if len(generations) < 2:
        return []
    previous = generations[-2].get("metrics") or {}
    latest = generations[-1].get("metrics") or {}
    deltas: List[Delta] = []
    for name in sorted(latest):
        if name not in previous:
            continue
        new, old = latest[name], previous[name]
        old_value, new_value = float(old["value"]), float(new["value"])
        if old_value == 0.0:
            continue
        change = (new_value - old_value) / abs(old_value)
        higher_is_better = bool(new.get("higher_is_better", True))
        regressed = change < -threshold if higher_is_better else change > threshold
        deltas.append(
            Delta(
                bench=str(record.get("name", "")),
                metric=name,
                previous=old_value,
                latest=new_value,
                unit=str(new.get("unit", "")),
                higher_is_better=higher_is_better,
                change_pct=change * 100.0,
                regressed=regressed,
            )
        )
    return deltas


def bench_report(
    directory: Union[str, pathlib.Path], threshold: float = DEFAULT_THRESHOLD
) -> Tuple[str, List[Delta]]:
    """Compare every ``BENCH_*.json`` record under ``directory``.

    Parameters
    ----------
    directory : str or pathlib.Path
        Directory holding the records (``benchmarks/`` in this repo).
    threshold : float
        Regression threshold as a fraction.

    Returns
    -------
    tuple
        ``(text, regressions)`` — the rendered report and the deltas
        that crossed the threshold (empty = healthy).
    """
    root = pathlib.Path(directory)
    paths = sorted(root.glob("BENCH_*.json"))
    lines: List[str] = [f"== bench trajectory ({root}, threshold {threshold * 100:.0f}%) =="]
    regressions: List[Delta] = []
    if not paths:
        lines.append("no BENCH_*.json records found")
        return "\n".join(lines), regressions
    for path in paths:
        record = load_record(path)
        if record is None:
            lines.append(f"{path.name}: unreadable or incompatible record")
            continue
        # A record written by hand (or by an older harness) may lack the
        # "name" field; fall back to the file name so a single damaged
        # record never crashes the report.
        name = str(record.get("name") or path.stem[len("BENCH_"):])
        generations = record["generations"]
        if len(generations) < 2:
            lines.append(
                f"{name}: {len(generations)} generation(s) — no baseline yet "
                "(a second run of the bench creates one)"
            )
            continue
        for delta in compare_record(record, threshold):
            arrow = "+" if delta.change_pct >= 0 else ""
            verdict = "REGRESSED" if delta.regressed else "ok"
            lines.append(
                f"{delta.bench}/{delta.metric}: {delta.previous:.4g} -> "
                f"{delta.latest:.4g}{delta.unit} ({arrow}{delta.change_pct:.1f}%) {verdict}"
            )
            if delta.regressed:
                regressions.append(delta)
    lines.append(
        f"{len(regressions)} regression(s) beyond {threshold * 100:.0f}%"
        if regressions
        else "no regressions"
    )
    return "\n".join(lines), regressions
