"""The parallel experiment engine: fan points out, replay what's cached.

:class:`ExecutionEngine` takes a batch of independent
:class:`~repro.exec.point.RunPoint` simulations and returns their
:class:`~repro.cpu.model.RunResult` list **in input order**, regardless
of how the work was scheduled:

1. every point's content-addressed key is computed
   (:func:`~repro.exec.cache.cache_key_of`) and looked up in the
   :class:`~repro.exec.cache.RunCache` — hits replay from disk;
2. the remaining points are deduplicated by key (a figure batch shares
   one SRAM baseline across configurations) and executed — inline when
   ``jobs == 1``, else on a :class:`~concurrent.futures.ProcessPoolExecutor`
   with ``jobs`` workers;
3. each result is persisted to the cache the moment it completes, so an
   interrupted sweep resumes from the finished points.

Because :func:`~repro.exec.point.execute_point` is deterministic and
self-contained, results are bit-identical whether a point ran inline,
in a worker, or was replayed from the cache — the engine's central
invariant, pinned by ``tests/test_exec.py``.

Per-point progress and the hit/miss counters are surfaced through the
:mod:`repro.obs` probe layer (:meth:`~repro.obs.probe.Probe.exec_point`)
and summarised in :class:`ExecStats`.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TextIO

from ..cpu.model import RunResult
from ..errors import ConfigurationError
from ..obs.probe import NULL_PROBE, Probe
from .cache import RunCache, cache_key_of, key_material_of
from .point import RunPoint, execute_point


@dataclass
class ExecStats:
    """Counters accumulated by one :class:`ExecutionEngine`.

    Attributes
    ----------
    points : int
        Points requested across all batches (duplicates included).
    hits : int
        Points replayed from the run cache.
    misses : int
        Points not found in the cache (``executed`` + ``deduplicated``).
    executed : int
        Simulations actually run.
    deduplicated : int
        Cache-missing points that shared a key with another point of the
        same batch and were computed only once.
    elapsed : float
        Wall-clock seconds spent inside :meth:`ExecutionEngine.run_points`.
    """

    points: int = 0
    hits: int = 0
    misses: int = 0
    executed: int = 0
    deduplicated: int = 0
    elapsed: float = 0.0

    def hit_rate(self) -> float:
        """Cache hit rate in percent (100.0 for an all-hit batch).

        Returns
        -------
        float
            ``hits / points * 100``, or 0.0 before any point ran.
        """
        return self.hits / self.points * 100.0 if self.points else 0.0


@dataclass
class _Pending:
    """One unique cache-missing key and the input slots it fills."""

    point: RunPoint
    indices: List[int] = field(default_factory=list)


class ExecutionEngine:
    """Runs batches of simulation points, in parallel and cached.

    Parameters
    ----------
    jobs : int
        Worker processes for cache-missing points.  ``1`` (the default)
        executes inline in this process; results are bit-identical
        either way.
    cache_dir : str or pathlib.Path, optional
        Run-cache directory.  ``None`` disables the cache entirely
        (every point recomputes).
    probe : Probe, optional
        Observability probe notified per point via
        :meth:`~repro.obs.probe.Probe.exec_point`.
    progress : TextIO, optional
        Stream for one human-readable line per completed point (the CLI
        passes ``sys.stderr``); ``None`` silences progress output.

    Raises
    ------
    ConfigurationError
        If ``jobs`` is not a positive integer.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        probe: Probe = NULL_PROBE,
        progress: Optional[TextIO] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"--jobs must be at least 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache = RunCache(cache_dir) if cache_dir is not None else None
        self.probe = probe
        self.progress = progress
        self.stats = ExecStats()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _report(self, point: RunPoint, status: str, index: int, total: int, dt: float) -> None:
        """Emit one per-point progress record (probe + progress stream)."""
        self.probe.exec_point(point.display(), status, index, total, dt)
        if self.progress is not None:
            print(
                f"[{index + 1}/{total}] {point.display()}: {status} ({dt:.2f}s)",
                file=self.progress,
                flush=True,
            )

    def summary(self) -> str:
        """One-line account of the engine's work so far.

        Returns
        -------
        str
            E.g. ``exec: 26 points — 26 cache hits, 0 misses (100% cache
            hits), jobs=4, cache .repro-cache``.
        """
        s = self.stats
        where = str(self.cache.root) if self.cache is not None else "off"
        return (
            f"exec: {s.points} points — {s.hits} cache hits, {s.misses} misses "
            f"({s.hit_rate():.0f}% cache hits), jobs={self.jobs}, cache {where}"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_points(self, points: Sequence[RunPoint]) -> List[RunResult]:
        """Execute a batch; results come back in input order.

        Cache hits replay instantly; unique misses run with up to
        ``jobs``-way parallelism and are persisted as they finish.  The
        output order depends only on ``points``, never on scheduling.

        Parameters
        ----------
        points : sequence of RunPoint
            Independent simulation points.

        Returns
        -------
        list of RunResult
            ``results[i]`` is the outcome of ``points[i]``.
        """
        started = time.monotonic()
        points = list(points)
        total = len(points)
        self.stats.points += total
        results: List[Optional[RunResult]] = [None] * total

        pending: Dict[str, _Pending] = {}
        for i, point in enumerate(points):
            key = cache_key_of(point)
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                self.stats.hits += 1
                results[i] = cached
                self._report(point, "hit", i, total, 0.0)
                continue
            self.stats.misses += 1
            if key in pending:
                self.stats.deduplicated += 1
                pending[key].indices.append(i)
            else:
                pending[key] = _Pending(point, [i])

        if pending:
            self._execute_pending(pending, results, total)

        self.stats.elapsed += time.monotonic() - started
        return [r for r in results if r is not None]

    def _execute_pending(
        self,
        pending: Dict[str, _Pending],
        results: List[Optional[RunResult]],
        total: int,
    ) -> None:
        """Run the unique cache-missing points and fill their slots."""
        if self.jobs == 1 or len(pending) == 1:
            for key, entry in pending.items():
                t0 = time.monotonic()
                result = execute_point(entry.point)
                self._complete(key, entry, result, results, total, time.monotonic() - t0)
            return
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(pending))) as pool:
            futures = {}
            submitted = {}
            for key, entry in pending.items():
                futures[pool.submit(execute_point, entry.point)] = key
                submitted[key] = time.monotonic()
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    key = futures[future]
                    entry = pending[key]
                    result = future.result()
                    self._complete(
                        key, entry, result, results, total, time.monotonic() - submitted[key]
                    )

    def _complete(
        self,
        key: str,
        entry: _Pending,
        result: RunResult,
        results: List[Optional[RunResult]],
        total: int,
        dt: float,
    ) -> None:
        """Persist one finished point and fill every slot it serves."""
        self.stats.executed += 1
        if self.cache is not None:
            self.cache.put(key, result, key_material_of(entry.point))
        for i in entry.indices:
            results[i] = result
        self._report(entry.point, "run", entry.indices[0], total, dt)


def make_engine(
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
    probe: Probe = NULL_PROBE,
    progress: Optional[TextIO] = None,
) -> Optional[ExecutionEngine]:
    """Build an engine from CLI-style options, or ``None`` for the
    classic serial path.

    The engine engages when parallelism or caching was requested: plain
    ``repro fig1`` keeps the historical in-process behaviour with no
    side effects on the filesystem.

    Parameters
    ----------
    jobs : int
        Requested worker count (``--jobs``).
    cache_dir : str, optional
        Requested cache directory (``--cache-dir``); when ``None`` but
        ``jobs > 1``, :data:`~repro.exec.cache.DEFAULT_CACHE_DIR` is
        used unless ``no_cache`` is set.
    no_cache : bool
        Disable the run cache (``--no-cache``) while keeping ``jobs``.
    probe : Probe, optional
        Forwarded to :class:`ExecutionEngine`.
    progress : TextIO, optional
        Forwarded to :class:`ExecutionEngine`; defaults to ``sys.stderr``
        when the engine engages from the CLI helper.

    Returns
    -------
    ExecutionEngine or None
        ``None`` when neither ``--jobs`` nor a cache was asked for.
    """
    if jobs < 1:
        raise ConfigurationError(f"--jobs must be at least 1, got {jobs}")
    if jobs == 1 and cache_dir is None:
        return None
    from .cache import DEFAULT_CACHE_DIR

    resolved_dir: Optional[str] = cache_dir
    if no_cache:
        resolved_dir = None
    elif resolved_dir is None:
        resolved_dir = DEFAULT_CACHE_DIR
    if jobs == 1 and resolved_dir is None:
        return None
    return ExecutionEngine(
        jobs=jobs,
        cache_dir=resolved_dir,
        probe=probe,
        progress=progress if progress is not None else sys.stderr,
    )
