"""Integration tests of the paper's headline claims.

These are the end-to-end assertions the whole reproduction hangs on,
executed on a 4-kernel subset for speed (the full 12-kernel versions are
the benchmark harness's job).  Band widths are deliberately generous:
they must catch regressions in the *shape* of the results, not pin noise.
"""

import pytest

from repro.experiments import ExperimentRunner
from repro.transforms.pipeline import OptLevel

KERNELS = ["gemm", "atax", "mvt", "2mm"]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(kernels=KERNELS)


def _avg(values):
    return sum(values) / len(values)


class TestHeadlineClaims:
    def test_dropin_penalty_band(self, runner):
        """Figure 1: drop-in penalty ~40-65% per kernel, ~54% average."""
        penalties = runner.penalties("dropin", OptLevel.NONE)
        assert all(35.0 < p < 75.0 for p in penalties)
        assert 45.0 < _avg(penalties) < 65.0

    def test_vwb_cuts_penalty_substantially(self, runner):
        """Figure 3: the VWB alone removes a large share of the penalty."""
        dropin = _avg(runner.penalties("dropin", OptLevel.NONE))
        vwb = _avg(runner.penalties("vwb", OptLevel.NONE))
        assert vwb < 0.75 * dropin

    def test_final_penalty_tolerable(self, runner):
        """Headline: 54% -> ~8%; every kernel ends in single digits."""
        final = runner.penalties("vwb", OptLevel.FULL)
        assert _avg(final) < 10.0
        assert max(final) < 12.0

    def test_penalty_ordering(self, runner):
        """dropin > vwb-unopt > vwb-opt for the suite average."""
        dropin = _avg(runner.penalties("dropin", OptLevel.NONE))
        vwb = _avg(runner.penalties("vwb", OptLevel.NONE))
        opt = _avg(runner.penalties("vwb", OptLevel.FULL))
        assert dropin > vwb > opt

    def test_vwb_beats_equal_capacity_rivals(self, runner):
        """Figure 8: the VWB outperforms the L0 and EMSHR structures."""
        vwb = _avg(runner.penalties("vwb", OptLevel.FULL))
        l0 = _avg(runner.penalties("l0", OptLevel.FULL))
        emshr = _avg(runner.penalties("emshr", OptLevel.FULL))
        assert vwb < l0 < emshr

    def test_vwb_reduction_about_twice_rivals(self, runner):
        """Figure 8: 'almost twice the penalty reduction'."""
        dropin = _avg(runner.penalties("dropin", OptLevel.FULL))
        vwb_red = dropin - _avg(runner.penalties("vwb", OptLevel.FULL))
        l0_red = dropin - _avg(runner.penalties("l0", OptLevel.FULL))
        emshr_red = dropin - _avg(runner.penalties("emshr", OptLevel.FULL))
        rivals = (l0_red + emshr_red) / 2.0
        assert vwb_red > 1.3 * rivals

    def test_optimizations_help_both_systems(self, runner):
        """Figure 9: gains on the SRAM baseline and (more) on the NVM
        proposal."""
        gains_sram = []
        gains_vwb = []
        for kernel in KERNELS:
            sram_n = runner.run("sram", kernel, OptLevel.NONE).cycles
            sram_f = runner.run("sram", kernel, OptLevel.FULL).cycles
            vwb_n = runner.run("vwb", kernel, OptLevel.NONE).cycles
            vwb_f = runner.run("vwb", kernel, OptLevel.FULL).cycles
            gains_sram.append((sram_n - sram_f) / sram_n)
            gains_vwb.append((vwb_n - vwb_f) / vwb_n)
        assert _avg(gains_vwb) > _avg(gains_sram)
        assert _avg(gains_sram) > 0

    def test_optimized_sram_stays_ahead(self, runner):
        """Figure 9: the optimized SRAM system ends ahead of the
        optimized NVM proposal (by ~8% in the paper)."""
        edges = []
        for kernel in KERNELS:
            sram = runner.run("sram", kernel, OptLevel.FULL).cycles
            vwb = runner.run("vwb", kernel, OptLevel.FULL).cycles
            edges.append((vwb - sram) / sram * 100.0)
        assert 0.0 < _avg(edges) < 15.0

    def test_read_latency_dominates_penalty(self, runner):
        """Figure 4: the read contribution far exceeds the write one."""
        from repro.experiments import fig4

        result = fig4.run(runner)
        avg = result.averages()
        assert avg["read_share"] > 4 * avg["write_share"]

    def test_vwb_size_sweet_spot(self, runner):
        """Figure 7: 2 Kbit performs much better than 1 Kbit; 4 Kbit adds
        little — the paper's argument for stopping at 2 Kbit."""
        from repro.experiments import fig7

        result = fig7.run(runner)
        avg = result.averages()
        gain_1_to_2 = avg["vwb_1kbit"] - avg["vwb_2kbit"]
        gain_2_to_4 = avg["vwb_2kbit"] - avg["vwb_4kbit"]
        assert avg["vwb_1kbit"] >= avg["vwb_2kbit"]
        assert gain_1_to_2 >= gain_2_to_4 - 0.5
