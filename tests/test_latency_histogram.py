"""Per-load exposed-latency histograms."""

import pytest

from repro.cpu.system import System, SystemConfig
from repro.errors import ConfigurationError
from repro.workloads import build_kernel, materialize_trace
from repro.workloads.trace import Load


class TestHistogram:
    def test_counts_sum_to_loads(self, gemm_trace):
        result = System(SystemConfig()).run(gemm_trace)
        assert sum(result.load_latency_histogram.values()) == result.counts["loads"]

    def test_sram_hits_dominate_bucket_one(self, gemm_trace):
        result = System(SystemConfig(technology="sram")).run(gemm_trace)
        hist = result.load_latency_histogram
        assert hist[1] > 0.9 * sum(hist.values())

    def test_nvm_dropin_mode_shifts(self, gemm_trace):
        result = System(SystemConfig(technology="stt-mram")).run(gemm_trace)
        hist = result.load_latency_histogram
        # Exposed latency of an NVM hit: 4 - 1.5 overlap = 2.5 -> bucket 2
        # (a tail of bank-conflicted hits lands higher).
        assert hist[2] > 0.8 * sum(hist.values())
        assert hist.get(1, 0) == 0  # nothing is ever as fast as SRAM

    def test_vwb_is_bimodal(self, gemm_trace):
        result = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(gemm_trace)
        hist = result.load_latency_histogram
        assert hist[1] > 0.8 * sum(hist.values())  # VWB hits
        slow = sum(count for bucket, count in hist.items() if bucket >= 2)
        assert slow > 0  # promotions exist

    def test_quantiles(self, gemm_trace):
        result = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(gemm_trace)
        assert result.load_latency_quantile(0.5) == 1.0
        assert result.load_latency_quantile(1.0) >= 2.0
        assert result.load_latency_quantile(0.0) <= result.load_latency_quantile(1.0)

    def test_quantile_validation(self, gemm_trace):
        result = System(SystemConfig()).run(gemm_trace)
        with pytest.raises(ConfigurationError):
            result.load_latency_quantile(1.5)
        with pytest.raises(ConfigurationError):
            result.load_latency_quantile(-0.1)

    def test_empty_run_quantile(self):
        result = System(SystemConfig()).run([])
        assert result.load_latency_quantile(0.5) == 0.0

    def test_empty_histogram_boundaries(self):
        # A run with zero loads: every quantile is defined and 0.0.
        result = System(SystemConfig()).run([])
        assert result.load_latency_quantile(0.0) == 0.0
        assert result.load_latency_quantile(1.0) == 0.0

    def test_boundary_quantiles_are_min_and_max_buckets(self, gemm_trace):
        result = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(gemm_trace)
        hist = result.load_latency_histogram
        assert result.load_latency_quantile(0.0) == float(min(hist))
        assert result.load_latency_quantile(1.0) == float(max(hist))

    def test_cap_bucket(self):
        # A single very cold DRAM access lands in a high bucket <= cap.
        from repro.cpu.model import LOAD_HISTOGRAM_CAP

        result = System(SystemConfig()).run([Load(0, 4)])
        assert max(result.load_latency_histogram) <= LOAD_HISTOGRAM_CAP


class TestConv2dKernel:
    def test_builds_and_runs(self):
        trace = materialize_trace(build_kernel("conv2d"))
        result = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(trace)
        assert result.cycles > 0

    def test_weights_register_allocated(self):
        from repro.workloads.inspect import analyze

        report = analyze(build_kernel("conv2d"))
        inner = report.loops[0]
        # 9 weights hoisted; image rows stream.
        assert inner.invariant_refs == 9
        assert any(s.array == "image" for s in inner.streams)

    def test_vectorizable(self):
        from repro.workloads.inspect import analyze

        assert analyze(build_kernel("conv2d")).fully_vectorizable

    def test_vwb_tames_conv2d(self):
        from repro.cpu.system import warm_regions_of
        from repro.transforms import OptLevel, optimize

        prog = optimize(build_kernel("conv2d"), OptLevel.FULL)
        trace = materialize_trace(prog)
        warm = warm_regions_of(prog)
        sram = System(SystemConfig(technology="sram")).run(trace, warm_regions=warm)
        vwb = System(SystemConfig(technology="stt-mram", frontend="vwb")).run(
            trace, warm_regions=warm
        )
        assert vwb.penalty_vs(sram) < 15.0
