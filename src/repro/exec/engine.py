"""The parallel experiment engine: fan points out, replay what's cached.

:class:`ExecutionEngine` takes a batch of independent
:class:`~repro.exec.point.RunPoint` simulations and returns their
:class:`~repro.cpu.model.RunResult` list **in input order**, regardless
of how the work was scheduled:

1. every point's content-addressed key is computed
   (:func:`~repro.exec.cache.cache_key_of`) and looked up in the
   :class:`~repro.exec.cache.RunCache` — hits replay from disk, and the
   checkpoint journal of an interrupted previous sweep
   (:class:`~repro.exec.resilience.SweepJournal`) replays next, so a
   resumed run executes only the points that never finished;
2. the remaining points are deduplicated by key (a figure batch shares
   one SRAM baseline across configurations) and executed — inline when
   ``jobs == 1``, else on a crash-surviving
   :class:`~repro.exec.resilience.Supervisor` worker pool with ``jobs``
   workers;
3. each result is persisted to the cache and the journal the moment it
   completes, so an interrupted sweep resumes from the finished points.

Failure handling follows the :class:`~repro.exec.resilience.RetryPolicy`
(`--timeout`/`--max-retries`/`--fail-fast`): worker deaths restart only
the dead worker, hung points are killed at their (cost-scaled) deadline,
failed attempts retry with backoff, and points that exhaust the budget
become structured :class:`~repro.exec.resilience.PointFailure` records —
:meth:`ExecutionEngine.run_points` raises
:class:`~repro.errors.SweepFailure` listing them, while
:meth:`ExecutionEngine.run_points_detailed` returns the partial results
alongside the failures.  Stale or corrupt cache entries are quarantined
(:meth:`~repro.exec.cache.RunCache.quarantine`) and recomputed; a cache
that stops accepting writes (disk full, permissions) degrades the sweep
to cache-off mode with one structured warning.  The failure model is
specified in ``docs/ARCHITECTURE.md`` §2.12.

Because :func:`~repro.exec.point.execute_point` is deterministic and
self-contained, results are bit-identical whether a point ran inline,
in a worker, was retried after a crash, or was replayed from the cache
or the journal — the engine's central invariant, pinned by
``tests/test_exec.py`` and the chaos suite in
``tests/test_resilience.py``.

Per-point progress and the hit/miss counters are surfaced through the
:mod:`repro.obs` probe layer (:meth:`~repro.obs.probe.Probe.exec_point`)
and summarised in :class:`ExecStats`.  When a
:class:`~repro.telemetry.events.TelemetryRecorder` is attached, the
engine additionally emits batch/point spans and retry events into
``events.jsonl``, feeds a
:class:`~repro.telemetry.metrics.MetricsRegistry`, and collects the
per-point provenance records (failures included) the run manifest is
built from — all of it guarded on ``telemetry.enabled`` so a disabled
run pays nothing and stays bit-identical (the same contract
``NullProbe`` upholds).
"""

from __future__ import annotations

import os
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple

from ..cpu.model import RunResult
from ..errors import ConfigurationError, SweepFailure
from ..obs.probe import NULL_PROBE, Probe
from ..telemetry.events import NULL_TELEMETRY, Telemetry
from ..telemetry.metrics import MetricsRegistry
from .cache import RunCache, cache_key_of, canonicalize, key_material_of
from .point import RunPoint, execute_point, execute_point_batch
from .resilience import (
    DEFAULT_JOURNAL_DIR,
    FaultPlan,
    PointFailure,
    RetryPolicy,
    Supervisor,
    SupervisorHooks,
    SweepJournal,
    Task,
    estimate_point_cost,
    scale_timeouts,
)


@dataclass
class ExecStats:
    """Counters accumulated by one :class:`ExecutionEngine`.

    Attributes
    ----------
    points : int
        Points requested across all batches (duplicates included).
    hits : int
        Points replayed from the run cache.
    misses : int
        Points not found in the cache (``journal_hits`` + ``executed``
        + ``deduplicated`` + ``failed``).
    journal_hits : int
        Cache-missing points replayed from the checkpoint journal of an
        interrupted previous sweep (counted within ``misses``).
    stale : int
        Misses caused by an entry of a different cache format version
        (counted within ``misses``).
    corrupt : int
        Misses caused by an unreadable or undecodable entry (counted
        within ``misses``).
    executed : int
        Simulations actually run to completion.
    deduplicated : int
        Cache-missing points that shared a key with another point of the
        same batch and were computed only once.
    retries : int
        Attempts re-dispatched after an error, timeout or worker crash.
    timeouts : int
        Attempts killed for exceeding their wall-clock budget.
    worker_restarts : int
        Worker processes respawned after a death.
    quarantined : int
        Poison points degraded to in-process serial execution.
    failed : int
        Points terminally failed after the retry budget was exhausted.
    events_eliminated : int
        Trace events consumed through guaranteed-hit runs
        (:mod:`repro.workloads.elim`) instead of per-event simulation,
        accumulated per batch from the in-process elimination counters.
        Pool workers run in their own processes, so only in-process
        execution (``jobs=1``, quarantined points, cache-hit replays
        of course eliminate nothing) contributes here.
    runs_applied : int
        Guaranteed-hit runs applied in-process (same visibility caveat
        as ``events_eliminated``).
    elapsed : float
        Wall-clock seconds spent inside :meth:`ExecutionEngine.run_points`.
    busy : float
        Summed execution wall seconds across all workers — divided by
        ``elapsed * jobs`` this is the pool's utilization.
    """

    points: int = 0
    hits: int = 0
    misses: int = 0
    journal_hits: int = 0
    stale: int = 0
    corrupt: int = 0
    executed: int = 0
    deduplicated: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_restarts: int = 0
    quarantined: int = 0
    failed: int = 0
    events_eliminated: int = 0
    runs_applied: int = 0
    elapsed: float = 0.0
    busy: float = 0.0

    def hit_rate(self) -> float:
        """Cache hit rate in percent (100.0 for an all-hit batch).

        Returns
        -------
        float
            ``hits / points * 100``, or 0.0 before any point ran.
        """
        return self.hits / self.points * 100.0 if self.points else 0.0


@dataclass
class _Pending:
    """One unique cache-missing key and the input slots it fills."""

    point: RunPoint
    indices: List[int] = field(default_factory=list)


@dataclass
class BatchOutcome:
    """What one :meth:`ExecutionEngine.run_points_detailed` produced.

    Attributes
    ----------
    results : list of RunResult or None
        ``results[i]`` is the outcome of input point ``i`` — ``None``
        exactly for the points listed in ``failures``.
    failures : list of PointFailure
        Terminal failures of this batch (empty for a clean run).
    """

    results: List[Optional[RunResult]]
    failures: List[PointFailure]

    @property
    def ok(self) -> bool:
        """Whether every point of the batch completed."""
        return not self.failures


class _EngineHooks(SupervisorHooks):
    """Bridges supervisor scheduling events into one engine batch."""

    def __init__(
        self,
        engine: "ExecutionEngine",
        pending: Dict[str, _Pending],
        results: List[Optional[RunResult]],
        total: int,
        batch_span: int,
    ) -> None:
        self.engine = engine
        self.pending = pending
        self.results = results
        self.total = total
        self.batch_span = batch_span
        self.spans: Dict[str, int] = {}
        self.submitted: Dict[str, float] = {}

    def attempt_started(self, task: Task) -> None:
        """Open the point span on the first attempt; note retry starts."""
        self.submitted.setdefault(task.key, time.monotonic())
        tele = self.engine.telemetry
        if tele.enabled:
            if task.key not in self.spans:
                self.spans[task.key] = tele.begin_span(
                    "point",
                    parent=self.batch_span,
                    label=task.point.display(),
                    key=task.key,
                )
            if task.attempts > 1:
                tele.event(
                    "point_attempt", label=task.point.display(), attempt=task.attempts
                )

    def attempt_failed(self, task: Task, kind: str) -> None:
        """Count one failed attempt."""
        self.engine._on_attempt_failed(task, kind)

    def retrying(self, task: Task, kind: str) -> None:
        """Count and announce one re-queued point."""
        self.engine._on_retry(task, kind)

    def quarantined(self, task: Task) -> None:
        """Count and announce one poison point degrading to serial."""
        self.engine._on_quarantined(task)

    def worker_restarted(self, pid: int) -> None:
        """Count one worker respawn."""
        self.engine._on_worker_restart()

    def completed(self, task: Task, result: RunResult, pid: int, wall_s: float) -> None:
        """Persist and slot one finished point."""
        dt = time.monotonic() - self.submitted.get(task.key, time.monotonic())
        self.engine._complete(
            task.key,
            self.pending[task.key],
            result,
            self.results,
            self.total,
            dt,
            pid,
            wall_s,
            self.spans.get(task.key, 0),
        )

    def failed(self, failure: PointFailure) -> None:
        """Record one terminal failure."""
        entry = self.pending[failure.key]
        self.engine._fail(failure, entry, self.spans.get(failure.key, 0))


class ExecutionEngine:
    """Runs batches of simulation points, in parallel, cached, resilient.

    Parameters
    ----------
    jobs : int
        Worker processes for cache-missing points.  ``1`` (the default)
        executes inline in this process; results are bit-identical
        either way.
    cache_dir : str or pathlib.Path, optional
        Run-cache directory.  ``None`` disables the cache entirely
        (every point recomputes; the checkpoint journal then lives in
        :data:`~repro.exec.resilience.DEFAULT_JOURNAL_DIR`).
    probe : Probe, optional
        Observability probe notified per point via
        :meth:`~repro.obs.probe.Probe.exec_point`.
    progress : TextIO, optional
        Stream for one human-readable line per completed point (the CLI
        passes ``sys.stderr``); ``None`` silences progress output.
    telemetry : Telemetry, optional
        Structured event sink (:data:`~repro.telemetry.events.
        NULL_TELEMETRY` by default).  When enabled, the engine emits
        batch/point spans and retry events, cache-anomaly warnings, and
        accumulates the ``point_records`` / ``technologies`` /
        ``failures`` provenance that
        :func:`repro.telemetry.manifest.build_manifest` captures.
    policy : RetryPolicy, optional
        Retry/timeout/quarantine bounds applied to every failure
        (defaults are forgiving: two retries, no timeout).
    fault_plan : FaultPlan, optional
        Chaos-injection plan, used by the resilience test suite only.
    journal_dir : str or pathlib.Path, optional
        Where the checkpoint journal lives when the cache is off (with
        a cache it always sits in the cache root).  ``None`` disables
        journaling for cache-less engines, keeping bare library use
        free of filesystem side effects — the CLI passes
        :data:`~repro.exec.resilience.DEFAULT_JOURNAL_DIR` so
        ``--no-cache`` sweeps still resume.

    Raises
    ------
    ConfigurationError
        If ``jobs`` is not a positive integer.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        probe: Probe = NULL_PROBE,
        progress: Optional[TextIO] = None,
        telemetry: Telemetry = NULL_TELEMETRY,
        policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        journal_dir: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"--jobs must be at least 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache = RunCache(cache_dir) if cache_dir is not None else None
        self.probe = probe
        self.progress = progress
        self.telemetry = telemetry
        self.policy = policy if policy is not None else RetryPolicy()
        self.fault_plan = fault_plan
        self.stats = ExecStats()
        self.metrics = MetricsRegistry()
        #: Terminal point failures across all batches.
        self.failures: List[PointFailure] = []
        #: Per-point provenance dicts (manifest ``points``), collected
        #: only while ``telemetry.enabled``.
        self.point_records: List[Dict[str, Any]] = []
        #: Resolved technology parameter sets seen across batches,
        #: keyed by technology name (canonicalized like the cache key
        #: material); collected only while ``telemetry.enabled``.
        self.technologies: Dict[str, Any] = {}
        journal_root = self.cache.root if self.cache is not None else journal_dir
        self.journal: Optional[SweepJournal] = (
            SweepJournal(journal_root) if journal_root is not None else None
        )
        self._cache_degraded = False
        self._corrupted_indices: set = set()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _report(self, point: RunPoint, status: str, index: int, total: int, dt: float) -> None:
        """Emit one per-point progress record (probe + progress stream)."""
        self.probe.exec_point(point.display(), status, index, total, dt)
        if self.progress is not None:
            print(
                f"[{index + 1}/{total}] {point.display()}: {status} ({dt:.2f}s)",
                file=self.progress,
                flush=True,
            )

    def summary(self) -> str:
        """One-line account of the engine's work so far.

        Returns
        -------
        str
            E.g. ``exec: 26 points — 26 cache hits, 0 misses (100% cache
            hits), jobs=4, cache .repro-cache``, with journal replays,
            stale/corrupt entries and resilience counters appended when
            non-zero.
        """
        s = self.stats
        if self.cache is not None:
            where = str(self.cache.root)
        else:
            where = "off (degraded)" if self._cache_degraded else "off"
        line = (
            f"exec: {s.points} points — {s.hits} cache hits, {s.misses} misses "
            f"({s.hit_rate():.0f}% cache hits), jobs={self.jobs}, cache {where}"
        )
        if s.journal_hits:
            line += f" [{s.journal_hits} journal replays]"
        if s.stale or s.corrupt:
            line += f" [{s.stale} stale, {s.corrupt} corrupt entries]"
        extras = []
        for label, value in (
            ("retries", s.retries),
            ("timeouts", s.timeouts),
            ("worker restarts", s.worker_restarts),
            ("quarantined", s.quarantined),
            ("failed", s.failed),
        ):
            if value:
                extras.append(f"{value} {label}")
        if extras:
            line += f" [{', '.join(extras)}]"
        return line

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_points(self, points: Sequence[RunPoint]) -> List[RunResult]:
        """Execute a batch; results come back in input order.

        Cache hits replay instantly; unique misses run with up to
        ``jobs``-way parallelism and are persisted as they finish.  The
        output order depends only on ``points``, never on scheduling.

        Parameters
        ----------
        points : sequence of RunPoint
            Independent simulation points.

        Returns
        -------
        list of RunResult
            ``results[i]`` is the outcome of ``points[i]``.

        Raises
        ------
        SweepFailure
            When at least one point failed terminally after exhausting
            its retry budget.  Completed points were cached/journaled
            before the raise, so re-running retries only the failures.
        """
        outcome = self.run_points_detailed(points)
        if outcome.failures:
            raise SweepFailure(outcome.failures)
        return [r for r in outcome.results if r is not None]

    def run_points_detailed(self, points: Sequence[RunPoint]) -> BatchOutcome:
        """Execute a batch, returning partial results plus failures.

        The tolerant sibling of :meth:`run_points`: terminal point
        failures never raise — the corresponding result slots are
        ``None`` and the structured failure records ride alongside, so
        a caller can salvage everything that completed.

        Parameters
        ----------
        points : sequence of RunPoint
            Independent simulation points.

        Returns
        -------
        BatchOutcome
            Input-ordered results (``None`` for failed points) and this
            batch's terminal failures.
        """
        from ..workloads.elim import counters as _elim_counters

        started = time.monotonic()
        elim_before = _elim_counters()
        points = list(points)
        total = len(points)
        self.stats.points += total
        results: List[Optional[RunResult]] = [None] * total
        failures_before = len(self.failures)

        tele = self.telemetry
        batch = tele.span("batch", points=total, jobs=self.jobs)
        with batch:
            pending: Dict[str, _Pending] = {}
            for i, point in enumerate(points):
                key = cache_key_of(point)
                self._maybe_corrupt_entry(i, key)
                found = self.cache.lookup(key) if self.cache is not None else None
                if found is not None and found.status in ("stale", "corrupt"):
                    self._note_cache_anomaly(found.status, key, point)
                if found is not None and found.result is not None:
                    self.stats.hits += 1
                    self.metrics.count("cache.hit")
                    results[i] = found.result
                    if tele.enabled:
                        self._record_point(
                            point, key, "hit", os.getpid(), 0.0, tele.now(), found.result
                        )
                        tele.event("point_hit", label=point.display(), key=key)
                    self._report(point, "hit", i, total, 0.0)
                    continue
                self.stats.misses += 1
                self.metrics.count("cache.miss")
                journaled = self.journal.lookup(key) if self.journal is not None else None
                if journaled is not None:
                    self._replay_journal(point, key, journaled, results, i, total)
                    continue
                if key in pending:
                    self.stats.deduplicated += 1
                    self.metrics.count("exec.deduplicated")
                    pending[key].indices.append(i)
                else:
                    pending[key] = _Pending(point, [i])

            if pending:
                self._execute_pending(pending, results, total, batch.id)

        dt = time.monotonic() - started
        self.stats.elapsed += dt
        elim_after = _elim_counters()
        self.stats.events_eliminated += (
            elim_after["events_eliminated"] - elim_before["events_eliminated"]
        )
        self.stats.runs_applied += (
            elim_after["runs_applied"] - elim_before["runs_applied"]
        )
        self.metrics.observe("exec.batch_wall_s", dt)
        if self.stats.elapsed > 0.0:
            self.metrics.gauge(
                "exec.utilization_pct",
                min(100.0, 100.0 * self.stats.busy / (self.stats.elapsed * self.jobs)),
            )
        return BatchOutcome(results, self.failures[failures_before:])

    def finish(self) -> None:
        """Mark the sweep complete: discard the checkpoint journal.

        Called by the CLI after an experiment ran to the end with no
        terminal failures.  An interrupted or failed sweep never gets
        here, so its journal survives for the resuming run.
        """
        if self.journal is not None and not self.failures:
            self.journal.discard()
        elif self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------
    # Resilience plumbing
    # ------------------------------------------------------------------

    def _maybe_corrupt_entry(self, index: int, key: str) -> None:
        """Apply the fault plan's cache-entry corruption, once per index."""
        if (
            self.fault_plan is None
            or self.cache is None
            or index not in self.fault_plan.corrupt_entries
            or index in self._corrupted_indices
        ):
            return
        self._corrupted_indices.add(index)
        path = self.cache.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text('{"format": 1, "truncated mid-wri')
        except OSError:
            pass

    def _replay_journal(
        self,
        point: RunPoint,
        key: str,
        result: RunResult,
        results: List[Optional[RunResult]],
        index: int,
        total: int,
    ) -> None:
        """Fill one slot from the interrupted-sweep checkpoint journal."""
        self.stats.journal_hits += 1
        self.metrics.count("journal.replay")
        results[index] = result
        self._store(key, result, point)  # heal the cache from the journal
        tele = self.telemetry
        if tele.enabled:
            self._record_point(point, key, "journal", os.getpid(), 0.0, tele.now(), result)
            tele.event("point_journal", label=point.display(), key=key)
        self._report(point, "journal", index, total, 0.0)

    def _store(self, key: str, result: RunResult, point: RunPoint) -> None:
        """Persist one result to the cache, degrading to cache-off on error."""
        if self.cache is None:
            return
        try:
            self.cache.put(key, result, key_material_of(point))
        except OSError as exc:
            from ..telemetry import log

            root = self.cache.root
            self.cache = None
            self._cache_degraded = True
            self.metrics.count("cache.degraded")
            log.warn(
                f"run cache degraded to off: cannot write {root} "
                f"({type(exc).__name__}: {exc}); the sweep continues uncached"
            )
            self.telemetry.warning(
                "cache_degraded", root=str(root), error=f"{type(exc).__name__}: {exc}"
            )

    def _journal_record(self, key: str, result: RunResult) -> None:
        """Checkpoint one completion, degrading to journal-off on error."""
        if self.journal is None:
            return
        if not self.journal.record(key, result):
            from ..telemetry import log

            path = self.journal.path
            self.journal = None
            self.metrics.count("journal.degraded")
            log.warn(
                f"checkpoint journal degraded to off: cannot write {path}; "
                "an interrupted sweep will not resume from this run"
            )
            self.telemetry.warning("journal_degraded", path=str(path))

    def _on_attempt_failed(self, task: Task, kind: str) -> None:
        """Count one failed attempt of ``task`` (error/timeout/crash)."""
        self.metrics.count(f"exec.attempt_{kind}")
        if kind == "timeout":
            self.stats.timeouts += 1
            self.metrics.count("exec.timeouts")
        if self.telemetry.enabled:
            self.telemetry.event(
                "point_attempt_failed",
                label=task.point.display(),
                kind=kind,
                attempt=task.attempts,
            )

    def _on_retry(self, task: Task, kind: str) -> None:
        """Count and announce one re-queued point."""
        from ..telemetry import log

        self.stats.retries += 1
        self.metrics.count("exec.retries")
        log.warn(
            f"{task.point.display()}: attempt {task.attempts} {kind}; retrying "
            f"(budget {self.policy.max_retries + 1} attempts)"
        )
        if self.telemetry.enabled:
            self.telemetry.event(
                "point_retry", label=task.point.display(), kind=kind, attempt=task.attempts
            )

    def _on_quarantined(self, task: Task) -> None:
        """Count and announce one poison point degrading to serial."""
        from ..telemetry import log

        self.stats.quarantined += 1
        self.metrics.count("exec.quarantined")
        log.warn(
            f"{task.point.display()}: crashed {task.crashes} worker(s); "
            "quarantined to in-process execution"
        )
        if self.telemetry.enabled:
            self.telemetry.event(
                "point_quarantined", label=task.point.display(), crashes=task.crashes
            )

    def _on_worker_restart(self) -> None:
        """Count one worker respawn after a death."""
        from ..telemetry import log

        self.stats.worker_restarts += 1
        self.metrics.count("exec.worker_restarts")
        log.warn("worker process died; restarted a replacement")
        if self.telemetry.enabled:
            self.telemetry.event("worker_restarted")

    def _fail(self, failure: PointFailure, entry: _Pending, span_id: int = 0) -> None:
        """Record one terminal point failure."""
        from ..telemetry import log

        self.stats.failed += 1
        self.metrics.count("exec.failed")
        self.failures.append(failure)
        log.error(failure.describe())
        tele = self.telemetry
        if tele.enabled:
            self._record_point(
                entry.point, failure.key, "failed", failure.worker_pid, 0.0, tele.now(), None
            )
            tele.end_span(span_id, status="failed", kind=failure.kind, attempts=failure.attempts)

    def _note_cache_anomaly(self, status: str, key: str, point: RunPoint) -> None:
        """Count, report and quarantine one stale/corrupt cache entry."""
        from ..telemetry import log

        if status == "stale":
            self.stats.stale += 1
        else:
            self.stats.corrupt += 1
        self.metrics.count(f"cache.{status}")
        path = str(self.cache.path_for(key))
        moved = self.cache.quarantine(key, f"{status} entry for {point.display()} ({key})")
        where = f"quarantined to {moved}" if moved is not None else "left in place"
        log.warn(f"cache entry {status}: {key} for {point.display()} ({path}); {where}; recomputing")
        self.telemetry.warning(
            f"cache_entry_{status}",
            key=key,
            path=path,
            point=point.display(),
            quarantined=moved is not None,
        )

    # ------------------------------------------------------------------
    # Pending-point execution
    # ------------------------------------------------------------------

    def _execute_pending(
        self,
        pending: Dict[str, _Pending],
        results: List[Optional[RunResult]],
        total: int,
        batch_span: int = 0,
    ) -> None:
        """Run the unique cache-missing points and fill their slots."""
        tasks = [
            Task(index=entry.indices[0], key=key, point=entry.point)
            for key, entry in pending.items()
        ]
        if self.policy.timeout is not None:
            costs = [estimate_point_cost(task.point) for task in tasks]
            for task, budget in zip(tasks, scale_timeouts(costs, self.policy.timeout)):
                task.timeout = budget
        if self.jobs == 1 or len(tasks) == 1:
            self._execute_serial(tasks, pending, results, total, batch_span)
            return
        hooks = _EngineHooks(self, pending, results, total, batch_span)
        supervisor = Supervisor(
            jobs=min(self.jobs, len(tasks)),
            policy=self.policy,
            fault_plan=self.fault_plan,
            hooks=hooks,
        )
        self.metrics.gauge("exec.queue_depth", len(tasks))
        supervisor.run(tasks)
        self.metrics.gauge("exec.queue_depth", 0)

    def _execute_serial(
        self,
        tasks: List[Task],
        pending: Dict[str, _Pending],
        results: List[Optional[RunResult]],
        total: int,
        batch_span: int,
    ) -> None:
        """In-process execution with the same retry policy (no timeouts).

        Wall-clock budgets need a killable worker process, so the serial
        path enforces only the error-retry part of the policy — hung
        points cannot be interrupted here.

        Same-trace groups (points sharing kernel/size/level — the shape
        of a figure batch) first run through the batched multi-lane
        stepper (:func:`~repro.exec.point.execute_point_batch`); cache
        writes, journal checkpoints, telemetry spans and progress
        reporting stay per-point, and a group that raises falls back to
        the per-point loop below with every member's retry budget
        untouched.  Disabled under a fault plan: the chaos suite
        reasons about strictly per-point attempts.
        """
        tele = self.telemetry
        done = self._execute_serial_batched(tasks, pending, results, total, batch_span)
        for task in tasks:
            if task.key in done:
                continue
            entry = pending[task.key]
            span_id = 0
            if tele.enabled:
                span_id = tele.begin_span(
                    "point", parent=batch_span, label=entry.point.display(), key=task.key
                )
            t0 = time.monotonic()
            while True:
                task.attempts += 1
                attempt_started = time.monotonic()
                try:
                    if self.fault_plan is not None:
                        self.fault_plan.apply_inline(task.index, task.attempts)
                    result = execute_point(entry.point)
                except Exception as exc:
                    task.last_error = (
                        "error",
                        type(exc).__name__,
                        str(exc),
                        traceback_module.format_exc(),
                        os.getpid(),
                    )
                    self._on_attempt_failed(task, "error")
                    if task.attempts > self.policy.max_retries:
                        self._fail(task.failure("error"), entry, span_id)
                        break
                    self._on_retry(task, "error")
                    time.sleep(self.policy.backoff(task.attempts))
                    continue
                wall = time.monotonic() - attempt_started
                dt = time.monotonic() - t0
                self._complete(
                    task.key, entry, result, results, total, dt, os.getpid(), wall, span_id
                )
                break
            if self.policy.fail_fast and self.failures:
                break

    def _execute_serial_batched(
        self,
        tasks: List[Task],
        pending: Dict[str, _Pending],
        results: List[Optional[RunResult]],
        total: int,
        batch_span: int,
    ) -> set:
        """Run same-trace task groups through the batched stepper.

        Groups tasks by ``(kernel, size, level)`` and executes each
        group of two or more through
        :func:`~repro.exec.point.execute_point_batch`, completing every
        member with its own cache write, journal checkpoint, telemetry
        span and progress line.  A group that raises is abandoned
        wholesale — its members return to the caller's per-point loop
        with their attempt counters untouched.

        Parameters
        ----------
        tasks : list of Task
            The batch's unique cache-missing tasks.
        pending : dict
            Key -> :class:`_Pending` map for the batch.
        results : list
            Input-ordered result slots being filled.
        total : int
            Batch size, for progress reporting.
        batch_span : int
            Parent telemetry span id.

        Returns
        -------
        set
            Keys completed here; the caller skips them.
        """
        done: set = set()
        if self.fault_plan is not None:
            return done
        groups: Dict[Tuple, List[Task]] = {}
        for task in tasks:
            point = pending[task.key].point
            groups.setdefault((point.kernel, point.size, point.level), []).append(task)
        tele = self.telemetry
        for group in groups.values():
            if len(group) < 2:
                continue
            spans: Dict[str, int] = {}
            if tele.enabled:
                for task in group:
                    spans[task.key] = tele.begin_span(
                        "point",
                        parent=batch_span,
                        label=pending[task.key].point.display(),
                        key=task.key,
                    )
            t0 = time.monotonic()
            try:
                outs = execute_point_batch([pending[t.key].point for t in group])
            except Exception:
                # Never terminal: the per-point loop recomputes each
                # member from scratch under the full retry policy.
                if tele.enabled:
                    for task in group:
                        tele.end_span(spans.get(task.key, 0), status="degraded")
                continue
            wall = time.monotonic() - t0
            share = wall / len(group)
            self.metrics.count("exec.batched_groups")
            for task, result in zip(group, outs):
                task.attempts += 1
                self._complete(
                    task.key,
                    pending[task.key],
                    result,
                    results,
                    total,
                    wall,
                    os.getpid(),
                    share,
                    spans.get(task.key, 0),
                )
                done.add(task.key)
        return done

    def _complete(
        self,
        key: str,
        entry: _Pending,
        result: RunResult,
        results: List[Optional[RunResult]],
        total: int,
        dt: float,
        worker_pid: int,
        wall_s: float,
        span_id: int = 0,
    ) -> None:
        """Persist one finished point and fill every slot it serves."""
        self.stats.executed += 1
        self.stats.busy += wall_s
        self.metrics.count("exec.executed")
        self.metrics.observe("exec.point_wall_s", wall_s)
        self._store(key, result, entry.point)
        self._journal_record(key, result)
        for i in entry.indices:
            results[i] = result
        tele = self.telemetry
        if tele.enabled:
            end = tele.now()
            self._record_point(
                entry.point, key, "run", worker_pid, wall_s, max(0.0, end - wall_s), result
            )
            tele.end_span(
                span_id, status="run", worker_pid=int(worker_pid), wall_s=round(wall_s, 6)
            )
        self._report(entry.point, "run", entry.indices[0], total, dt)

    def _record_point(
        self,
        point: RunPoint,
        key: str,
        status: str,
        worker_pid: int,
        wall_s: float,
        start_s: float,
        result: Optional[RunResult],
    ) -> None:
        """Append one manifest point record (telemetry-enabled path only)."""
        config = point.config
        tech = config.resolved_technology()
        if tech.name not in self.technologies:
            self.technologies[tech.name] = canonicalize(tech)
        record = {
            "label": point.display(),
            "kernel": point.kernel,
            "frontend": str(config.frontend),
            "technology": tech.name,
            "level": point.level.name,
            "size": point.size.name,
            "seed": config.reliability.seed if config.reliability is not None else None,
            "cache_key": key,
            "status": status,
            "worker_pid": int(worker_pid),
            "wall_s": round(float(wall_s), 6),
            "start_s": round(float(start_s), 6),
        }
        if result is not None:
            record["cycles"] = float(result.cycles)
        self.point_records.append(record)


def make_engine(
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
    probe: Probe = NULL_PROBE,
    progress: Optional[TextIO] = None,
    telemetry: Telemetry = NULL_TELEMETRY,
    timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    fail_fast: bool = False,
    fault_plan: Optional[FaultPlan] = None,
) -> Optional[ExecutionEngine]:
    """Build an engine from CLI-style options, or ``None`` for the
    classic serial path.

    The engine engages when parallelism, caching, telemetry or a
    resilience bound was requested: plain ``repro fig1`` keeps the
    historical in-process behaviour with no side effects on the
    filesystem.

    Parameters
    ----------
    jobs : int
        Requested worker count (``--jobs``).
    cache_dir : str, optional
        Requested cache directory (``--cache-dir``); when ``None`` but
        ``jobs > 1``, :data:`~repro.exec.cache.DEFAULT_CACHE_DIR` is
        used unless ``no_cache`` is set.
    no_cache : bool
        Disable the run cache (``--no-cache``) while keeping ``jobs``.
    probe : Probe, optional
        Forwarded to :class:`ExecutionEngine`.
    progress : TextIO, optional
        Forwarded to :class:`ExecutionEngine`; defaults to the levelled
        CLI log's progress stream (``sys.stderr`` unless ``--quiet``).
    telemetry : Telemetry, optional
        Forwarded to :class:`ExecutionEngine`.  An *enabled* telemetry
        sink engages the engine even for a plain serial run, so every
        point flows through the instrumented path (``--telemetry``).
    timeout : float, optional
        Base per-point wall-clock budget (``--timeout``); engages the
        engine and is scaled per point by the static cost estimate.
        Enforced only on the parallel path (a hung in-process point
        cannot be killed).
    max_retries : int, optional
        Retry budget per point (``--max-retries``); engages the engine.
        ``None`` keeps the :class:`~repro.exec.resilience.RetryPolicy`
        default.
    fail_fast : bool
        Stop at the first terminal point failure (``--fail-fast``);
        engages the engine.
    fault_plan : FaultPlan, optional
        Chaos-injection plan, forwarded to :class:`ExecutionEngine`
        (used by the resilience tests and CI chaos job only).

    Returns
    -------
    ExecutionEngine or None
        ``None`` when neither ``--jobs``, a cache, telemetry nor a
        resilience flag was asked for.

    Raises
    ------
    ConfigurationError
        If ``jobs`` or ``max_retries`` is out of range.
    """
    if jobs < 1:
        raise ConfigurationError(f"--jobs must be at least 1, got {jobs}")
    if max_retries is not None and max_retries < 0:
        raise ConfigurationError(f"--max-retries must be at least 0, got {max_retries}")
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"--timeout must be positive, got {timeout}")
    resilient = timeout is not None or max_retries is not None or fail_fast or fault_plan is not None
    if jobs == 1 and cache_dir is None and not telemetry.enabled and not resilient:
        return None
    from ..telemetry import log
    from .cache import DEFAULT_CACHE_DIR

    resolved_dir: Optional[str] = cache_dir
    if no_cache:
        resolved_dir = None
    elif resolved_dir is None:
        resolved_dir = DEFAULT_CACHE_DIR
    if jobs == 1 and resolved_dir is None and not telemetry.enabled and not resilient:
        return None
    if progress is None:
        progress = log.progress_stream()
    policy = RetryPolicy(
        max_retries=max_retries if max_retries is not None else RetryPolicy.max_retries,
        timeout=timeout,
        fail_fast=fail_fast,
    )
    return ExecutionEngine(
        jobs=jobs,
        cache_dir=resolved_dir,
        probe=probe,
        progress=progress,
        telemetry=telemetry,
        policy=policy,
        fault_plan=fault_plan,
        journal_dir=DEFAULT_JOURNAL_DIR if resolved_dir is None else None,
    )
