"""PolyBench ``cholesky``: in-place Cholesky factorisation (simplified).

Extra kernel: doubly triangular loop nest with an in-place update —
reads and writes alias within the same array, producing the suite's most
irregular reuse pattern.  The square-root is charged as a multi-cycle
arithmetic op.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"n": 40}

#: Cycles charged for the per-row square root / division step.
SQRT_FLOPS = 12


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the cholesky program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    n = dims["n"]
    i, j, k = Var("i"), Var("j"), Var("k")
    a = Array("A", (n, n))
    body = [
        loop(
            i,
            n,
            [
                # for j < i: A[i][j] = (A[i][j] - sum_k A[i][k]*A[j][k]) / A[j][j]
                loop(
                    j,
                    i,
                    [
                        loop(
                            k,
                            j,
                            [
                                stmt(
                                    reads=[a[i, j], a[i, k], a[j, k]],
                                    writes=[a[i, j]],
                                    flops=2,
                                    label="row_update",
                                )
                            ],
                        ),
                        stmt(
                            reads=[a[i, j], a[j, j]],
                            writes=[a[i, j]],
                            flops=1,
                            label="scale",
                        ),
                    ],
                ),
                # diagonal: A[i][i] = sqrt(A[i][i] - sum_k A[i][k]^2)
                loop(
                    k,
                    i,
                    [
                        stmt(
                            reads=[a[i, i], a[i, k]],
                            writes=[a[i, i]],
                            flops=2,
                            label="diag_update",
                        )
                    ],
                ),
                stmt(reads=[a[i, i]], writes=[a[i, i]], flops=SQRT_FLOPS, label="sqrt"),
            ],
        )
    ]
    return Program("cholesky", body)
