"""Chaos suite for the fault-tolerant execution engine.

Every scenario injects a deterministic fault through
:class:`~repro.exec.resilience.FaultPlan` — worker crashes, hung points,
poison points, corrupted cache entries, a full disk — and asserts the
sweep still completes with results **bit-identical** to a clean serial
run (full :class:`~repro.cpu.model.RunResult` equality, histogram
included).  The interrupt tests drive the real CLI in a subprocess:
``SIGINT`` mid-sweep must exit 130 after checkpointing, and re-running
the same command must resume executing only the remaining points.
"""

import dataclasses
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import EXIT_INTERRUPTED, EXIT_OK, main
from repro.errors import SweepFailure
from repro.exec import (
    ExecutionEngine,
    FaultPlan,
    PointFailure,
    RetryPolicy,
    RunCache,
    RunPoint,
    SweepJournal,
    cache_key_of,
    estimate_point_cost,
)
from repro.exec.point import execute_point
from repro.exec.resilience import scale_timeouts
from repro.experiments.runner import CONFIGURATIONS

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
KERNELS = ("gemm", "atax", "bicg", "mvt")
CONFIGS = ("sram", "vwb")


def _points():
    return [
        RunPoint(kernel=k, config=CONFIGURATIONS[c], label=f"{k}/{c}")
        for k in KERNELS
        for c in CONFIGS
    ]


@pytest.fixture(scope="module")
def reference():
    """Clean serial results every chaos run must reproduce exactly."""
    return [execute_point(p) for p in _points()]


def _chaos_engine(tmp_path, plan, policy=None, jobs=3, cache=True):
    return ExecutionEngine(
        jobs=jobs,
        cache_dir=str(tmp_path / "cache") if cache else None,
        policy=policy or RetryPolicy(),
        fault_plan=plan,
    )


class TestPolicyAndEstimates:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=2.0)
        waits = [policy.backoff(n) for n in (1, 2, 3, 10)]
        assert waits[0] == pytest.approx(0.1)
        assert waits[1] == pytest.approx(0.2)
        assert waits[2] == pytest.approx(0.4)
        assert waits == sorted(waits)
        assert waits[-1] <= 2.0

    def test_cost_estimate_is_deterministic_and_kernel_specific(self):
        """The static estimate reflects the kernel, not a shared constant."""
        gemm = estimate_point_cost(RunPoint("gemm", CONFIGURATIONS["vwb"]))
        atax = estimate_point_cost(RunPoint("atax", CONFIGURATIONS["vwb"]))
        assert gemm > 0 and atax > 0
        assert gemm != atax
        assert gemm == estimate_point_cost(RunPoint("gemm", CONFIGURATIONS["vwb"]))

    def test_timeout_scaling_extends_never_shrinks(self):
        budgets = scale_timeouts([100, 400, 1000], 10.0)
        assert budgets[0] == pytest.approx(10.0)  # light point keeps the floor
        assert budgets[2] == pytest.approx(20.0)  # 2x the mean cost -> 2x budget
        assert all(b >= 10.0 for b in budgets)
        assert scale_timeouts([1, 2], None) == [None, None]

    def test_failure_record_round_trips(self):
        failure = PointFailure(
            label="gemm/vwb", kernel="gemm", key="k" * 64, kind="timeout",
            attempts=3, message="exceeded budget", worker_pid=41,
        )
        data = failure.as_dict()
        assert data["kind"] == "timeout" and data["attempts"] == 3
        assert "timeout after 3 attempt(s)" in failure.describe()


class TestSweepJournal:
    def test_round_trip_is_bit_identical(self, tmp_path, reference):
        journal = SweepJournal(tmp_path)
        assert journal.record("k1", reference[0])
        replayed = SweepJournal(tmp_path)
        assert replayed.lookup("k1") == reference[0]
        assert len(replayed) == 1

    def test_torn_tail_line_is_tolerated(self, tmp_path, reference):
        journal = SweepJournal(tmp_path)
        journal.record("k1", reference[0])
        with open(journal.path, "a") as handle:
            handle.write('{"key": "k2", "result": {"cut mid-wri')  # SIGKILL artefact
        survivor = SweepJournal(tmp_path)
        assert survivor.lookup("k1") == reference[0]
        assert survivor.lookup("k2") is None

    def test_discard_removes_the_journal(self, tmp_path, reference):
        journal = SweepJournal(tmp_path / "j")
        journal.record("k1", reference[0])
        assert journal.path.exists()
        journal.discard()
        assert not journal.path.exists()
        assert len(SweepJournal(tmp_path / "j")) == 0


class TestCacheHardening:
    def test_orphaned_tmp_files_swept_at_open(self, tmp_path):
        """Satellite: ``*.tmp`` leaked between mkstemp and replace."""
        root = tmp_path / "cache"
        (root / "ab").mkdir(parents=True)
        orphan = root / "ab" / "stale123.tmp"
        orphan.write_text("half an entry")
        old = time.time() - 3600
        os.utime(orphan, (old, old))
        RunCache(root)
        assert not orphan.exists()

    def test_fresh_tmp_files_survive_the_sweep(self, tmp_path):
        """A concurrent writer's in-flight tmp file must not be raced."""
        root = tmp_path / "cache"
        (root / "ab").mkdir(parents=True)
        fresh = root / "ab" / "inflight.tmp"
        fresh.write_text("being written right now")
        future = time.time() + 3600
        os.utime(fresh, (future, future))
        RunCache(root)
        assert fresh.exists()

    def test_quarantine_moves_entry_with_reason(self, tmp_path, reference):
        cache = RunCache(tmp_path / "cache")
        key = cache_key_of(_points()[0])
        cache.put(key, reference[0])
        cache.path_for(key).write_text("not json at all")
        assert cache.lookup(key).status == "corrupt"
        moved = cache.quarantine(key, "corrupt entry (test)")
        assert moved is not None and moved.exists()
        reason = moved.parent / f"{key}.reason.txt"
        assert "corrupt" in reason.read_text()
        assert cache.lookup(key).status == "miss"  # healed: recomputes
        assert cache.entries() == []  # quarantined entries are not live
        assert cache.quarantined() == [moved]


class TestChaos:
    def test_worker_crash_mid_batch_is_bit_identical(self, tmp_path, reference):
        engine = _chaos_engine(tmp_path, FaultPlan(crashes={0: 1, 5: 1}))
        assert engine.run_points(_points()) == reference
        assert engine.stats.worker_restarts >= 2
        assert engine.stats.retries >= 2
        assert engine.metrics.snapshot()["counters"]["exec.worker_restarts"] >= 2

    def test_hung_point_times_out_and_retries(self, tmp_path, reference):
        engine = _chaos_engine(
            tmp_path,
            FaultPlan(hangs={1: 1}),
            policy=RetryPolicy(timeout=3.0),
        )
        assert engine.run_points(_points()) == reference
        assert engine.stats.timeouts == 1

    def test_poison_point_quarantined_to_serial(self, tmp_path, reference):
        engine = _chaos_engine(
            tmp_path,
            FaultPlan(crashes={2: 99}),  # crashes every worker attempt
            policy=RetryPolicy(max_retries=5, quarantine_after=2),
        )
        assert engine.run_points(_points()) == reference
        assert engine.stats.quarantined == 1
        assert engine.stats.worker_restarts >= 2

    def test_corrupt_cache_entries_quarantined_and_recomputed(self, tmp_path, reference):
        warm = _chaos_engine(tmp_path, None, jobs=1)
        warm.run_points(_points())
        engine = _chaos_engine(tmp_path, FaultPlan(corrupt_entries=(1, 4)), jobs=1)
        assert engine.run_points(_points()) == reference
        assert engine.stats.corrupt == 2
        quarantined = engine.cache.quarantined()
        assert len(quarantined) == 2
        for entry in quarantined:
            reason = entry.parent / f"{entry.stem}.reason.txt"
            assert "corrupt" in reason.read_text()

    def test_disk_full_degrades_to_cache_off(self, tmp_path, reference, monkeypatch):
        engine = _chaos_engine(tmp_path, None, jobs=1)

        def full_disk(key, result, material=None):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(engine.cache, "put", full_disk)
        assert engine.run_points(_points()) == reference
        assert engine.cache is None  # degraded, not crashed
        assert "off (degraded)" in engine.summary()
        assert engine.metrics.snapshot()["counters"]["cache.degraded"] == 1

    def test_terminal_failure_is_structured_not_fatal(self, tmp_path, reference):
        plan = FaultPlan(errors={3: 99})
        engine = _chaos_engine(tmp_path, plan, policy=RetryPolicy(max_retries=1))
        with pytest.raises(SweepFailure) as excinfo:
            engine.run_points(_points())
        (failure,) = excinfo.value.failures
        assert failure.kind == "error"
        assert failure.attempts == 2
        assert failure.exception == "RuntimeError"
        assert "injected fault" in failure.message

        detailed = _chaos_engine(
            tmp_path / "d", plan, policy=RetryPolicy(max_retries=1)
        ).run_points_detailed(_points())
        assert [r is None for r in detailed.results] == [i == 3 for i in range(8)]
        kept = [r for r in detailed.results if r is not None]
        assert kept == [r for i, r in enumerate(reference) if i != 3]

    def test_serial_path_retries_identically(self, tmp_path, reference):
        engine = _chaos_engine(
            tmp_path,
            FaultPlan(errors={0: 1, 6: 2}),
            policy=RetryPolicy(max_retries=2, backoff_s=0.01),
            jobs=1,
        )
        assert engine.run_points(_points()) == reference
        assert engine.stats.retries == 3


class TestInterruptAndResume:
    def _spawn(self, cwd, *extra):
        env = dict(os.environ, PYTHONPATH=str(SRC))
        cmd = [
            sys.executable, "-m", "repro", "penalties", "--no-bars",
            "--jobs", "4", "--cache-dir", ".cache", "--telemetry", ".tele",
        ] + list(extra)
        return subprocess.Popen(
            cmd, cwd=cwd, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            start_new_session=True,  # isolate from pytest's process group
        )

    def test_sigint_checkpoints_then_resume_executes_only_the_rest(self, tmp_path):
        proc = self._spawn(tmp_path)
        time.sleep(5.0)  # mid-sweep: some points done, more outstanding
        proc.send_signal(signal.SIGINT)
        _, err = proc.communicate(timeout=120)
        assert proc.returncode == EXIT_INTERRUPTED, err.decode()
        assert b"resume" in err
        journal = tmp_path / ".cache" / "journal.jsonl"
        assert journal.exists() and journal.read_text().strip()

        interrupted = json.loads((tmp_path / ".tele" / "manifest.json").read_text())
        done_before = {
            p["cache_key"] for p in interrupted["points"] if p["status"] in ("run", "hit")
        }
        assert done_before, "expected some completed points before the interrupt"

        resume = self._spawn(tmp_path)
        _, err = resume.communicate(timeout=300)
        assert resume.returncode == EXIT_OK, err.decode()
        manifest = json.loads((tmp_path / ".tele" / "manifest.json").read_text())
        stats = manifest["engine"]["stats"]
        assert stats["failed"] == 0
        # Exact resume: everything that completed before the interrupt
        # replays (cache hit), only the remainder executes.
        assert stats["hits"] >= len(done_before)
        assert 0 < stats["executed"] < stats["points"]
        assert not journal.exists()  # discarded after the clean finish

    def test_keyboard_interrupt_maps_to_130_in_process(self, monkeypatch):
        """Satellite: KeyboardInterrupt routes through the error handler."""
        import repro.cli as cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_dispatch", interrupted)
        assert main(["fig1"]) == EXIT_INTERRUPTED


class TestBenchReportSatellite:
    def _write(self, tmp_path, name, generations, with_name=True):
        record = {"format": 1, "generations": generations}
        if with_name:
            record["name"] = name
        (tmp_path / f"BENCH_{name}.json").write_text(json.dumps(record))

    def test_single_generation_reports_no_baseline_and_exits_zero(self, tmp_path, capsys):
        from repro.telemetry import bench_report

        gen = {"created": "now", "metrics": {"wall_s": {"value": 1.0}}, "context": {}}
        self._write(tmp_path, "solo", [gen])
        text, regressions = bench_report(tmp_path)
        assert "no baseline yet" in text
        assert regressions == []
        assert main(["bench-report", "--bench-dir", str(tmp_path)]) == EXIT_OK
        assert "no baseline yet" in capsys.readouterr().out

    def test_record_without_name_falls_back_to_filename(self, tmp_path):
        from repro.telemetry import bench_report

        gen = {"created": "now", "metrics": {"wall_s": {"value": 1.0}}, "context": {}}
        self._write(tmp_path, "anon", [gen], with_name=False)
        text, regressions = bench_report(tmp_path)
        assert "anon: 1 generation(s)" in text
        assert regressions == []
