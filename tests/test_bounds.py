"""Static bounds checking of IR programs."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import build_kernel, kernel_names
from repro.workloads.affine import Var
from repro.workloads.bounds import assert_in_bounds, check_bounds
from repro.workloads.ir import Array, Loop, Program, loop, stmt

i, j = Var("i"), Var("j")


class TestDetection:
    def test_clean_program(self):
        x = Array("x", (16,))
        prog = Program("ok", [loop(i, 16, [stmt(reads=[x[i]], flops=1)])])
        assert check_bounds(prog) == []

    def test_off_by_one_upper(self):
        x = Array("x", (16,))
        prog = Program("bad", [loop(i, 17, [stmt(reads=[x[i]], flops=1)])])
        violations = check_bounds(prog)
        assert len(violations) == 1
        assert violations[0].subscript_range == (0, 16)
        assert violations[0].extent == 16

    def test_negative_subscript(self):
        x = Array("x", (16,))
        prog = Program("bad", [loop(i, 16, [stmt(reads=[x[i - 1]], flops=1)])])
        violations = check_bounds(prog)
        assert violations and violations[0].subscript_range[0] == -1

    def test_stencil_with_correct_bounds_clean(self):
        x = Array("x", (16,))
        prog = Program(
            "stencil",
            [loop(i, 15, [stmt(reads=[x[i - 1], x[i], x[i + 1]], flops=1)], lower=1)],
        )
        assert check_bounds(prog) == []

    def test_transposed_subscript_on_rectangular_array(self):
        a = Array("A", (4, 16))
        prog = Program(
            "bad",
            [loop(i, 4, [loop(j, 16, [stmt(reads=[a[j, i]], flops=1)])])],
        )
        violations = check_bounds(prog)
        assert violations
        assert violations[0].dimension == 0

    def test_triangular_bounds_exact(self):
        a = Array("A", (8, 8))
        inner = Loop(j, i + 1, 8, [stmt(reads=[a[i, j]], flops=1)])
        prog = Program("tri", [loop(i, 8, [inner])])
        assert check_bounds(prog) == []

    def test_empty_loop_produces_no_violation(self):
        x = Array("x", (4,))
        prog = Program("empty", [Loop(i, 10, 10, [stmt(reads=[x[i]], flops=1)])])
        assert check_bounds(prog) == []

    def test_duplicate_violations_deduplicated(self):
        x = Array("x", (4,))
        prog = Program(
            "dup",
            [
                loop(
                    i,
                    8,
                    [stmt(reads=[x[i]], flops=1), stmt(reads=[x[i]], flops=1)],
                )
            ],
        )
        assert len(check_bounds(prog)) == 1

    def test_violation_str(self):
        x = Array("x", (4,))
        prog = Program("bad", [loop(i, 8, [stmt(reads=[x[i]], flops=1)])])
        text = str(check_bounds(prog)[0])
        assert "x" in text and "[0, 7]" in text and "[0, 3]" in text


class TestExactConfirmation:
    def _coupled_prog(self, n=16):
        """r[k-j-1] with j < k: safe, but interval analysis can't see it."""
        from repro.workloads.ir import stmt as _stmt

        k = Var("k")
        r = Array("r", (n,))
        inner = Loop(j, 0, k, [_stmt(reads=[r[k - j - 1]], flops=1)])
        return Program("coupled", [Loop(k, 1, n, [inner])])

    def test_coupled_subscript_dismissed_by_enumeration(self):
        assert check_bounds(self._coupled_prog()) == []

    def test_coupled_subscript_flagged_without_budget(self):
        violations = check_bounds(self._coupled_prog(), exact_budget=0)
        assert violations
        assert not violations[0].confirmed
        assert "may span" in str(violations[0])

    def test_real_violation_survives_enumeration(self):
        x = Array("x", (8,))
        prog = Program("bad", [loop(i, 9, [stmt(reads=[x[i]], flops=1)])])
        violations = check_bounds(prog)
        assert violations and violations[0].confirmed
        # Enumeration tightens the reported range to the actual one.
        assert violations[0].subscript_range == (0, 8)

    def test_budget_exhaustion_reports_unconfirmed(self):
        # Force the interval pass to flag, then starve the enumerator.
        from repro.workloads.ir import stmt as _stmt

        k = Var("k")
        r = Array("r", (64,))
        inner = Loop(j, 0, k, [_stmt(reads=[r[k - j - 1]], flops=1)])
        prog = Program("big", [Loop(k, 1, 64, [inner])])
        violations = check_bounds(prog, exact_budget=10)
        assert violations and not violations[0].confirmed


class TestAssertHelper:
    def test_passes_clean(self):
        x = Array("x", (8,))
        assert_in_bounds(Program("ok", [loop(i, 8, [stmt(reads=[x[i]], flops=1)])]))

    def test_raises_with_context(self):
        x = Array("x", (4,))
        prog = Program("bad", [loop(i, 8, [stmt(reads=[x[i]], flops=1)])])
        with pytest.raises(WorkloadError, match="out-of-bounds"):
            assert_in_bounds(prog)


class TestAllKernelsInBounds:
    """Every shipped kernel — paper subset and extras — must be clean."""

    @pytest.mark.parametrize("name", kernel_names(include_extras=True))
    def test_kernel(self, name):
        assert check_bounds(build_kernel(name)) == []
