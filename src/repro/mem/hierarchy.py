"""Wiring of the platform's memory hierarchy.

The paper's platform (Section VI): 32 KB 2-way L1 I-cache, 64 KB 2-way L1
D-cache, 2 MB 16-way unified L2, all in front of DRAM, on a 1 GHz
single-core ARM-like CPU.  The D-cache *front-end* (drop-in, VWB, L0 or
EMSHR) is pluggable and lives in :mod:`repro.core`; this module builds the
backing stores they all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..units import kib, mib
from .cache import Cache, CacheConfig
from .dram import BankedMemory, DRAMConfig
from .mainmem import MainMemory


class LineAccessAdapter:
    """Adapts a :class:`Cache` to the :class:`~repro.mem.cache.NextLevel`
    protocol so it can back another cache."""

    def __init__(self, cache: Cache) -> None:
        self._cache = cache

    def access(self, addr: int, is_write: bool, now: float) -> float:
        """Forward one line-sized request to the wrapped cache."""
        return self._cache.line_access(addr, is_write, now)


def default_il1_config() -> CacheConfig:
    """32 KB, 2-way, 64 B-line SRAM instruction cache (always SRAM)."""
    return CacheConfig(
        name="il1",
        capacity_bytes=kib(32),
        associativity=2,
        line_bytes=64,
        read_hit_cycles=1,
        write_hit_cycles=1,
    )


def default_l2_config() -> CacheConfig:
    """2 MB, 16-way unified SRAM L2 with an 8-cycle access time."""
    return CacheConfig(
        name="l2",
        capacity_bytes=mib(2),
        associativity=16,
        line_bytes=64,
        read_hit_cycles=8,
        write_hit_cycles=8,
        banks=4,
        mshr_entries=16,
        write_buffer_entries=8,
        write_buffer_drain_cycles=12.0,
    )


@dataclass
class HierarchyConfig:
    """Configuration of the shared (non-DL1) part of the hierarchy.

    Attributes:
        il1: Instruction-cache geometry (SRAM in every experiment).
        l2: Unified L2 geometry (SRAM in every experiment).
        memory_latency_cycles: DRAM access latency (simple model).
        memory_transfer_cycles: DRAM channel occupancy per line.
        memory_model: ``"simple"`` (flat latency, the default the
            figures use) or ``"banked"`` (open-page row-buffer DRAM).
        dram: Banked-DRAM timing, used when ``memory_model="banked"``.
    """

    il1: CacheConfig = field(default_factory=default_il1_config)
    l2: CacheConfig = field(default_factory=default_l2_config)
    memory_latency_cycles: float = 100.0
    memory_transfer_cycles: float = 8.0
    memory_model: str = "simple"
    dram: DRAMConfig = field(default_factory=DRAMConfig)


class MemoryHierarchy:
    """The shared backing hierarchy: IL1 and L2 over main memory.

    The D-cache front-end is attached separately (see
    :mod:`repro.core.frontend`); it receives the L2 adapter as its next
    level, exactly like the IL1 does.
    """

    def __init__(self, config: HierarchyConfig) -> None:
        self.config = config
        model = config.memory_model.strip().lower()
        if model == "simple":
            self.memory = MainMemory(
                latency_cycles=config.memory_latency_cycles,
                transfer_cycles=config.memory_transfer_cycles,
            )
        elif model == "banked":
            self.memory = BankedMemory(config.dram)
        else:
            raise ConfigurationError(
                f"unknown memory model {config.memory_model!r}; expected simple or banked"
            )
        self.l2 = Cache(config.l2, self.memory)
        self.l2_port = LineAccessAdapter(self.l2)
        self.il1 = Cache(config.il1, self.l2_port)

    def set_probe(self, probe) -> None:
        """Attach an observability probe to every shared level."""
        self.memory.set_probe(probe)
        self.l2.set_probe(probe)
        self.il1.set_probe(probe)

    def ifetch(self, addr: int, now: float) -> float:
        """Fetch one instruction line through the IL1."""
        return self.il1.line_access(addr, False, now)

    def clear_stats(self) -> None:
        """Zero statistics/timing everywhere but keep cache contents."""
        self.memory.clear_stats()
        self.l2.clear_stats()
        self.il1.clear_stats()

    def reset(self) -> None:
        """Reset every level (used between benchmark runs)."""
        self.memory.reset()
        self.l2.reset()
        self.il1.reset()
