"""The repository's single seeded-generator helper.

Every stochastic path in the simulator — synthetic workload generators,
the random replacement policy, fault injection, seeded ablations — draws
its generator from :func:`make_rng`, so reproducibility has exactly one
rule: *same seed, same stream name, same draw order -> bit-identical
run*.

Streams exist so independent consumers sharing one user-facing seed do
not consume each other's draws: ``make_rng(seed)`` and
``make_rng(seed, "faults")`` are decorrelated generators, and adding
draws to one never perturbs the other.  Stream derivation is a stable
hash (:func:`derive_seed`), not Python's salted ``hash()``, so the
mapping is identical across processes and Python versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

from ..errors import ConfigurationError


def derive_seed(seed: int, stream: str) -> int:
    """Derive a decorrelated child seed for ``stream`` from ``seed``.

    The derivation is SHA-256 over the seed and stream name, truncated
    to 64 bits — stable across processes, platforms and Python versions
    (unlike the built-in salted ``hash``).

    Args:
        seed: User-facing master seed.
        stream: Consumer label (e.g. ``"faults"``, ``"replacement"``).

    Raises:
        ConfigurationError: If the stream name is empty.
    """
    if not stream:
        raise ConfigurationError("stream name must be non-empty")
    digest = hashlib.sha256(f"{seed}:{stream}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(seed: int, stream: Optional[str] = None) -> random.Random:
    """Create a deterministic :class:`random.Random` for one consumer.

    Args:
        seed: Master seed.  ``make_rng(seed)`` is exactly
            ``random.Random(seed)``, so existing seeded behaviour
            (synthetic workloads, the random replacement policy) is
            unchanged by routing through this helper.
        stream: Optional consumer label; when given, the generator is
            seeded with :func:`derive_seed` so distinct streams sharing
            one master seed stay decorrelated.
    """
    if stream is None:
        return random.Random(seed)
    return random.Random(derive_seed(seed, stream))
