"""The static workload inspector."""

import pytest

from repro.units import kib
from repro.workloads import build_kernel
from repro.workloads.inspect import analyze, render_report


class TestAnalyze:
    def test_gemm_report(self):
        report = analyze(build_kernel("gemm"))
        assert report.name == "gemm"
        assert set(report.array_bytes) == {"A", "B", "C"}
        assert report.footprint_bytes == sum(report.array_bytes.values())
        assert report.fully_vectorizable

    def test_mvt_detects_column_walk(self):
        report = analyze(build_kernel("mvt"))
        assert len(report.loops) == 2
        first, second = report.loops
        assert first.vectorizable
        assert not second.vectorizable
        strided = [s for s in second.streams if s.stride_bytes > 64]
        assert strided and strided[0].array == "A"

    def test_trmm_not_vectorizable(self):
        report = analyze(build_kernel("trmm"))
        assert not report.fully_vectorizable

    def test_stream_counts(self):
        # bicg's inner loop carries three varying streams (s, A, p).
        report = analyze(build_kernel("bicg"))
        mac_loops = [lp for lp in report.loops if lp.stream_count >= 3]
        assert mac_loops
        arrays = {s.array for s in mac_loops[0].streams}
        assert arrays == {"s", "A", "p"}

    def test_read_write_stream_classification(self):
        report = analyze(build_kernel("gemm"))
        mac = max(report.loops, key=lambda lp: lp.depth)
        c_stream = next(s for s in mac.streams if s.array == "C")
        assert c_stream.is_read and c_stream.is_write
        b_stream = next(s for s in mac.streams if s.array == "B")
        assert b_stream.is_read and not b_stream.is_write

    def test_invariant_refs_counted(self):
        report = analyze(build_kernel("gemm"))
        mac = max(report.loops, key=lambda lp: lp.depth)
        assert mac.invariant_refs == 1  # A[i,k] in the j-loop

    def test_fits_in(self):
        gemm = analyze(build_kernel("gemm"))
        assert gemm.fits_in(kib(64))
        gesummv = analyze(build_kernel("gesummv"))
        assert not gesummv.fits_in(kib(64))

    def test_max_streams(self):
        assert analyze(build_kernel("syr2k")).max_streams >= 4


class TestRender:
    def test_render_mentions_key_facts(self):
        text = render_report(analyze(build_kernel("mvt")))
        assert "mvt" in text
        assert "NOT vectorizable" in text
        assert "stride" in text
        assert "fits" in text

    def test_render_overflow_flag(self):
        text = render_report(analyze(build_kernel("gesummv")), dl1_bytes=kib(64))
        assert "exceeds" in text


class TestInspectCLI:
    def test_cli_inspect(self, capsys):
        from repro.cli import main

        assert main(["inspect", "--kernels", "gemm", "mvt"]) == 0
        out = capsys.readouterr().out
        assert "== gemm ==" in out and "== mvt ==" in out

    def test_cli_inspect_unknown_kernel(self, capsys):
        from repro.cli import main

        # Unknown kernel -> WorkloadError -> runtime exit code.
        assert main(["inspect", "--kernels", "bogus"]) == 3
