"""Banked DRAM with row buffers."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.dram import BankedMemory, DRAMConfig
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy


def make(**overrides):
    return BankedMemory(DRAMConfig(**overrides))


class TestRowBuffer:
    def test_first_access_activates(self):
        mem = make()
        latency = mem.access(0, False, 0.0)
        # Closed bank: activate + CAS + transfer.
        assert latency == 40.0 + 20.0 + 8.0
        assert mem.row_misses == 1

    def test_row_hit_is_fast(self):
        mem = make()
        mem.access(0, False, 0.0)
        latency = mem.access(64, False, 1000.0)  # same 2 KB row
        assert latency == 20.0 + 8.0
        assert mem.row_hits == 1

    def test_row_conflict_pays_precharge(self):
        mem = make(banks=1)
        mem.access(0, False, 0.0)
        latency = mem.access(4096, False, 1000.0)  # other row, same bank
        assert latency == 40.0 + 40.0 + 20.0 + 8.0

    def test_different_banks_keep_rows_open(self):
        mem = make(banks=8)
        mem.access(0, False, 0.0)
        mem.access(2048, False, 1000.0)  # next row -> next bank
        latency = mem.access(64, False, 2000.0)
        assert latency == 28.0  # row 0 still open in bank 0
        assert mem.row_hit_rate == pytest.approx(1 / 3)

    def test_channel_serialises(self):
        mem = make()
        first = mem.access(0, False, 0.0)
        second = mem.access(2048, False, 0.0)
        # The second access waits for the first transfer's channel slot.
        assert second > first - 8.0

    def test_posted_write(self):
        mem = make()
        latency = mem.access(0, True, 0.0)
        assert latency == 8.0
        assert mem.writes == 1

    def test_sequential_stream_mostly_hits(self):
        mem = make()
        t = 0.0
        for addr in range(0, 8192, 64):
            t += mem.access(addr, False, t)
        assert mem.row_hit_rate > 0.9

    def test_random_rows_mostly_miss(self):
        mem = make(banks=2)
        t = 0.0
        for n in range(32):
            t += mem.access((n * 7919 % 64) * 4096, False, t)
        assert mem.row_hit_rate < 0.3

    def test_reset_closes_rows(self):
        mem = make()
        mem.access(0, False, 0.0)
        mem.reset()
        assert mem.access(0, False, 0.0) == 68.0
        assert mem.accesses == 1

    def test_stats_snapshot(self):
        mem = make()
        mem.access(0, False, 0.0)
        snap = mem.stats()
        assert snap["reads"] == 1
        assert snap["row_misses"] == 1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            DRAMConfig(banks=3)
        with pytest.raises(ConfigurationError):
            DRAMConfig(row_bytes=1000)
        with pytest.raises(ConfigurationError):
            DRAMConfig(t_cas=-1.0)


class TestHierarchyIntegration:
    def test_banked_model_selected(self):
        h = MemoryHierarchy(HierarchyConfig(memory_model="banked"))
        assert isinstance(h.memory, BankedMemory)

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryHierarchy(HierarchyConfig(memory_model="quantum"))

    def test_system_runs_with_banked_dram(self, gemm_trace):
        from repro.cpu.system import System, SystemConfig

        config = SystemConfig(hierarchy=HierarchyConfig(memory_model="banked"))
        result = System(config).run(gemm_trace)
        assert result.cycles > 0
        assert result.memory_accesses > 0

    def test_streaming_faster_on_banked_than_flat(self):
        """A sequential cold stream exploits row hits: banked DRAM beats
        the flat 100-cycle model."""
        from repro.cpu.system import System, SystemConfig
        from repro.workloads.trace import Load

        events = [Load(addr, 4) for addr in range(0, 256 * 1024, 64)]
        flat = System(SystemConfig()).run(events)
        banked = System(
            SystemConfig(hierarchy=HierarchyConfig(memory_model="banked"))
        ).run(events)
        assert banked.cycles < flat.cycles
