"""The sanitizer: shadow capture, invariants, differential replay audit."""

from collections import deque

import pytest

import repro.cpu.model as cpu_model
from repro.check import (
    Sanitizer,
    audit_point,
    bisect_divergence,
    capture_cache,
    capture_system,
    check_cache,
    check_store_queue,
    check_system,
    check_wide_buffer,
    diff_states,
)
from repro.core.vwb import VeryWideBuffer, VWBConfig
from repro.errors import ConfigurationError, InvariantViolation
from repro.experiments.runner import CONFIGURATIONS, ExperimentRunner, make_system
from repro.transforms.pipeline import OptLevel
from repro.workloads.encode import encode_events
from repro.workloads.trace import Compute, Load, Store

ALL_CONFIGS = sorted(CONFIGURATIONS)


def short_trace():
    """A small mixed trace touching a few lines (hits and misses)."""
    events = []
    for i in range(8):
        events.append(Load(i * 64, 4))
        events.append(Compute(2))
        events.append(Store(i * 64 + 8, 4))
    for i in range(8):  # revisit: hits on whatever is resident
        events.append(Load(i * 64, 4))
    return events


# ----------------------------------------------------------------------
# Shadow capture
# ----------------------------------------------------------------------


class TestShadowCapture:
    @pytest.mark.parametrize("config", ALL_CONFIGS)
    def test_fresh_systems_capture_equal(self, config):
        a = capture_system(make_system(config))
        b = capture_system(make_system(config))
        assert a == b
        assert diff_states(a, b) == []

    @pytest.mark.parametrize("config", ALL_CONFIGS)
    def test_run_changes_capture(self, config):
        system = make_system(config)
        before = capture_system(system)
        system.run(short_trace())
        after = capture_system(system)
        assert before != after
        assert diff_states(before, after)

    @pytest.mark.parametrize("config", ALL_CONFIGS)
    def test_capture_is_readonly(self, config):
        system = make_system(config)
        system.run(short_trace())
        assert capture_system(system) == capture_system(system)

    def test_capture_covers_frontend_structures(self):
        vwb = capture_system(make_system("vwb"))["frontend"]
        assert "vwb" in vwb and "pending" in vwb
        l0 = capture_system(make_system("l0"))["frontend"]
        assert "store" in l0 and "fill_ready" in l0
        emshr = capture_system(make_system("emshr"))["frontend"]
        assert "entries" in emshr
        hybrid = capture_system(make_system("hybrid"))["frontend"]
        assert "sram" in hybrid and "tags" in hybrid["sram"]

    def test_capture_cache_covers_substructures(self):
        system = make_system("sram")
        system.run(short_trace())
        state = capture_cache(system.dl1)
        for key in ("tags", "dirty", "repl", "bank_busy", "write_buffer",
                    "mshr", "line_writes", "fast_write_credit", "stats"):
            assert key in state

    def test_diff_names_the_leaf(self):
        a = {"dl1": {"tags": ((1, 2), (3, 4))}}
        b = {"dl1": {"tags": ((1, 2), (3, 9))}}
        diffs = diff_states(a, b)
        assert diffs == [("dl1.tags[1][1]", 4, 9)]

    def test_diff_reports_absent_keys(self):
        diffs = diff_states({"x": 1}, {"y": 2})
        assert ("x", 1, "<absent>") in diffs
        assert ("y", "<absent>", 2) in diffs


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------


class TestInvariants:
    @pytest.mark.parametrize("config", ALL_CONFIGS)
    def test_clean_run_passes(self, config):
        system = make_system(config)
        system.run(short_trace())
        check_system(system)  # no raise

    def test_duplicate_tag_caught(self):
        system = make_system("sram")
        system.run(short_trace())
        dl1 = system.dl1
        index = next(i for i, ways in enumerate(dl1._tags) if ways[0] is not None)
        dl1._tags[index][1] = dl1._tags[index][0]
        with pytest.raises(InvariantViolation, match="duplicate tag"):
            check_cache(dl1)

    def test_dirty_invalid_way_caught(self):
        system = make_system("sram")
        assert system.dl1._tags[0][0] is None
        system.dl1._dirty[0][0] = True
        with pytest.raises(InvariantViolation, match="dirty but invalid"):
            check_cache(system.dl1)

    def test_lru_corruption_caught(self):
        system = make_system("sram")
        system.dl1._repl[0]._order[0] = system.dl1._repl[0]._order[1]
        with pytest.raises(InvariantViolation, match="not a permutation"):
            check_cache(system.dl1)

    def test_write_buffer_disorder_caught(self):
        system = make_system("sram")
        system.dl1._write_buffer._completions.extend([10.0, 5.0])
        with pytest.raises(InvariantViolation, match="not FIFO-ordered"):
            check_cache(system.dl1)

    def test_store_queue_disorder_caught(self):
        system = make_system("sram")
        system.run(short_trace())
        system.cpu.store_queue = deque([10.0, 5.0])
        with pytest.raises(InvariantViolation, match="not FIFO-ordered"):
            check_store_queue(system.cpu)

    def test_store_queue_overflow_caught(self):
        system = make_system("sram")
        entries = system.config.cpu.store_buffer_entries
        system.cpu.store_queue = deque(float(i) for i in range(entries + 1))
        with pytest.raises(InvariantViolation, match="capacity"):
            check_store_queue(system.cpu)

    def test_stale_recency_stamp_caught(self):
        # The bug class fixed in VeryWideBuffer.invalidate: an
        # invalidated line keeping its old last_touch stamp.
        vwb = VeryWideBuffer(VWBConfig())
        vwb.allocate(0)
        line = vwb._lines[vwb.lookup(0)]
        line.window_addr = None
        line.dirty = False
        line.last_touch = 7  # stale
        with pytest.raises(InvariantViolation, match="stale recency stamp"):
            check_wide_buffer(vwb, "vwb")

    def test_stamp_ahead_of_clock_caught(self):
        vwb = VeryWideBuffer(VWBConfig())
        vwb.allocate(0)
        vwb._lines[vwb.lookup(0)].last_touch = vwb._clock + 5
        with pytest.raises(InvariantViolation, match="ahead of the"):
            check_wide_buffer(vwb, "vwb")

    def test_violation_carries_event_index(self):
        system = make_system("sram")
        system.dl1._dirty[0][0] = True
        with pytest.raises(InvariantViolation) as excinfo:
            check_system(system, event_index=41)
        assert excinfo.value.event_index == 41
        assert "after event 41" in str(excinfo.value)


# ----------------------------------------------------------------------
# The live sanitizer
# ----------------------------------------------------------------------


class TestSanitizer:
    def test_stride_validation(self):
        with pytest.raises(ConfigurationError):
            Sanitizer(make_system("sram"), stride=0)

    @pytest.mark.parametrize("config", ["sram", "vwb", "l0"])
    def test_sanitized_run_is_bit_identical(self, config):
        events = short_trace()
        plain = make_system(config).run(list(events))
        system = make_system(config)
        sanitizer = Sanitizer(system, stride=1)
        checked = sanitizer.run(list(events))
        assert checked.cycles == plain.cycles
        assert checked.breakdown == plain.breakdown
        assert checked.counts == plain.counts
        assert sanitizer.events_seen == len(events)
        assert sanitizer.checks_run >= len(events)
        assert system.cpu.checker is None  # always detached afterwards

    def test_corruption_caught_at_the_injecting_event(self):
        system = make_system("sram")
        events = [Compute(1)] * 10  # no memory traffic: lines stay invalid

        def corruptor():
            for i, event in enumerate(events):
                if i == 5:
                    system.dl1._dirty[0][0] = True
                yield event

        with pytest.raises(InvariantViolation) as excinfo:
            Sanitizer(system, stride=1).run(corruptor())
        assert excinfo.value.event_index == 5
        assert system.cpu.checker is None  # detached even on failure

    def test_final_sweep_catches_late_corruption(self):
        # Stride larger than the trace: no in-stream check ever fires,
        # only the post-drain sweep at the end of Sanitizer.run.
        system = make_system("sram")
        events = [Compute(1)] * 10

        def corruptor():
            for i, event in enumerate(events):
                if i == len(events) - 1:
                    system.dl1._dirty[0][0] = True
                yield event

        sanitizer = Sanitizer(system, stride=10_000)
        with pytest.raises(InvariantViolation) as excinfo:
            sanitizer.run(corruptor())
        assert excinfo.value.event_index == len(events) - 1
        assert sanitizer.checks_run == 1  # the final sweep only

    def test_encoded_trace_falls_back_to_checked_generic(self):
        # A sanitized run of an EncodedTrace must still stream events
        # through the checker (run_encoded bypasses it by design).
        events = short_trace()
        system = make_system("sram")
        sanitizer = Sanitizer(system, stride=1)
        result = sanitizer.run(encode_events(events))
        assert sanitizer.events_seen == len(events)
        assert result.cycles == make_system("sram").run(encode_events(events)).cycles


# ----------------------------------------------------------------------
# Differential audit
# ----------------------------------------------------------------------


class TestAudit:
    @pytest.mark.parametrize("config", ["sram", "nvm-vwb", "nvm-l0"])
    @pytest.mark.parametrize("kernel", ["gemm", "3mm", "mvt"])
    def test_audit_passes(self, kernel, config):
        report = audit_point(kernel, config, stride=20_011)
        assert report.ok, report.summary()
        assert report.events > 0
        assert "PASS" in report.summary()

    def test_audit_detects_injected_fastpath_divergence(self, monkeypatch):
        real = cpu_model.make_fast_ops

        def poisoned(frontend):
            ops = real(frontend)
            if ops is None:
                return None
            fast_read, fast_write = ops

            def bad_read(addr, size, now):
                cost = fast_read(addr, size, now)
                return None if cost is None else cost + 0.5

            return bad_read, fast_write

        monkeypatch.setattr(cpu_model, "make_fast_ops", poisoned)
        report = audit_point("gemm", "sram", bisect=False)
        assert not report.ok
        legs = {leg for leg, _, _, _ in report.divergences}
        assert any(leg.startswith("encoded") for leg in legs)
        assert "FAIL" in report.summary()

    def test_bisection_finds_the_offending_event(self, monkeypatch):
        # Build a trace where address POISON is loaded twice: a miss
        # (generic in both paths) and later a hit served by the fast
        # path.  Poison only that hit: the first diverging event is the
        # second load's index, exactly.
        poison_addr = 0
        events = [Load(poison_addr, 4)] + [Load(64 * i, 4) for i in range(1, 10)]
        events += [Compute(3)] * 5
        poison_index = len(events)
        events.append(Load(poison_addr, 4))  # the poisoned hit
        events += [Load(64 * i, 4) for i in range(1, 10)]

        real = cpu_model.make_fast_ops

        def poisoned(frontend):
            ops = real(frontend)
            if ops is None:
                return None
            fast_read, fast_write = ops

            def bad_read(addr, size, now):
                cost = fast_read(addr, size, now)
                if cost is not None and addr == poison_addr:
                    # Big enough to survive the CPU's load-use overlap
                    # and change the exposed latency.
                    return cost + 10.0
                return cost

            return bad_read, fast_write

        monkeypatch.setattr(cpu_model, "make_fast_ops", poisoned)
        config = CONFIGURATIONS["sram"]
        trace = encode_events(events)
        assert bisect_divergence(config, trace, None) == poison_index

    def test_bisection_returns_none_without_divergence(self):
        trace = encode_events(short_trace())
        assert bisect_divergence(CONFIGURATIONS["sram"], trace, None) is None


# ----------------------------------------------------------------------
# Runner and CLI wiring
# ----------------------------------------------------------------------


class TestCheckWiring:
    def test_runner_check_is_bit_identical(self):
        checked = ExperimentRunner(check=True, check_stride=20_011)
        plain = ExperimentRunner()
        a = checked.run("vwb", "gemm")
        b = plain.run("vwb", "gemm")
        assert a.cycles == b.cycles
        assert a.breakdown == b.breakdown
        assert a.counts == b.counts

    def test_runner_check_skips_engine_prefetch(self):
        class ExplodingEngine:
            jobs = 4

            def run_points(self, points):  # pragma: no cover - must not run
                raise AssertionError("sanitized runs must stay in-process")

        runner = ExperimentRunner(check=True, check_stride=20_011, engine=ExplodingEngine())
        runner.prefetch([("vwb", "gemm", OptLevel.NONE)])
        result = runner.run("vwb", "gemm")
        assert result.cycles > 0

    def test_cli_check_command_passes(self, capsys):
        from repro.cli import main

        code = main(["check", "gemm", "--configs", "sram", "--stride", "20011", "--no-bisect"])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out
        assert "1 passed, 0 failed" in out

    def test_cli_check_rejects_unknown_config(self, capsys):
        from repro.cli import main

        assert main(["check", "gemm", "--configs", "nope"]) == 2
