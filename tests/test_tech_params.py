"""Technology presets and Table I values."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.tech.params import (
    PRAM_32NM,
    RERAM_32NM,
    SRAM_32NM_HP,
    STT_MRAM_32NM,
    TECHNOLOGY_PRESETS,
    MemoryTechnology,
    TechnologyKind,
    get_technology,
)


class TestTableOneValues:
    """The presets must carry the paper's Table I numbers exactly."""

    def test_sram_read_latency(self):
        assert SRAM_32NM_HP.read_latency_ns == pytest.approx(0.787)

    def test_sram_write_latency(self):
        assert SRAM_32NM_HP.write_latency_ns == pytest.approx(0.773)

    def test_stt_read_latency(self):
        assert STT_MRAM_32NM.read_latency_ns == pytest.approx(3.37)

    def test_stt_write_latency(self):
        assert STT_MRAM_32NM.write_latency_ns == pytest.approx(1.86)

    def test_stt_leakage(self):
        assert STT_MRAM_32NM.leakage_mw == pytest.approx(28.35)

    def test_sram_cell_area(self):
        assert SRAM_32NM_HP.cell_area_f2 == pytest.approx(146.0)

    def test_stt_cell_area(self):
        assert STT_MRAM_32NM.cell_area_f2 == pytest.approx(42.0)

    def test_read_ratio_about_four(self):
        ratio = STT_MRAM_32NM.read_latency_ns / SRAM_32NM_HP.read_latency_ns
        assert 4.0 <= ratio <= 4.5

    def test_write_ratio_about_two(self):
        ratio = STT_MRAM_32NM.write_latency_ns / SRAM_32NM_HP.write_latency_ns
        assert 2.0 <= ratio <= 2.6

    def test_area_advantage_over_3x(self):
        assert SRAM_32NM_HP.cell_area_f2 / STT_MRAM_32NM.cell_area_f2 > 3.0

    def test_stt_leaks_less_than_sram(self):
        assert STT_MRAM_32NM.leakage_mw < SRAM_32NM_HP.leakage_mw


class TestKinds:
    def test_sram_is_volatile(self):
        assert not SRAM_32NM_HP.non_volatile
        assert not TechnologyKind.SRAM.non_volatile

    @pytest.mark.parametrize("tech", [STT_MRAM_32NM, RERAM_32NM, PRAM_32NM])
    def test_nvms_are_non_volatile(self, tech):
        assert tech.non_volatile

    def test_sram_unbounded_endurance(self):
        assert SRAM_32NM_HP.endurance_writes == float("inf")

    def test_stt_endurance_beats_reram_and_pram(self):
        assert STT_MRAM_32NM.endurance_writes > RERAM_32NM.endurance_writes
        assert STT_MRAM_32NM.endurance_writes > PRAM_32NM.endurance_writes

    def test_pram_write_latency_worst(self):
        # Section II: PRAM's "very high write latency puts it at a
        # disadvantage when the focus is on higher level caches".
        assert PRAM_32NM.write_latency_ns > RERAM_32NM.write_latency_ns
        assert PRAM_32NM.write_latency_ns > STT_MRAM_32NM.write_latency_ns


class TestRegistry:
    @pytest.mark.parametrize("name", ["sram", "stt-mram", "reram", "pram"])
    def test_lookup(self, name):
        assert get_technology(name) is TECHNOLOGY_PRESETS[name]

    def test_lookup_case_insensitive(self):
        assert get_technology("STT-MRAM") is STT_MRAM_32NM

    def test_lookup_strips_whitespace(self):
        assert get_technology("  sram ") is SRAM_32NM_HP

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="stt-mram"):
            get_technology("flash")


class TestValidationAndHelpers:
    def test_immutable(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SRAM_32NM_HP.read_latency_ns = 1.0

    def test_with_latencies(self):
        hybrid = STT_MRAM_32NM.with_latencies(0.787, 1.86)
        assert hybrid.read_latency_ns == pytest.approx(0.787)
        assert hybrid.write_latency_ns == pytest.approx(1.86)
        # Everything else carried over.
        assert hybrid.cell_area_f2 == STT_MRAM_32NM.cell_area_f2

    def test_write_read_ratio_property(self):
        assert STT_MRAM_32NM.write_read_latency_ratio == pytest.approx(1.86 / 3.37)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(SRAM_32NM_HP, read_latency_ns=-1.0)

    def test_rejects_zero_feature(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(SRAM_32NM_HP, feature_nm=0.0)

    def test_rejects_zero_endurance(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(SRAM_32NM_HP, endurance_writes=0.0)

    def test_rejects_negative_energy(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(SRAM_32NM_HP, read_energy_pj_per_bit=-0.1)
