"""Repository-level consistency: registries, benches and docs agree."""

import pathlib

import pytest

from repro.cli import PAPER_EXPERIMENTS
from repro.experiments import EXPERIMENTS
from repro.workloads import KERNELS, EXTRA_KERNELS

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestBenchCoverage:
    def test_every_paper_artefact_has_a_bench(self):
        bench_sources = "\n".join(
            p.read_text() for p in (REPO / "benchmarks").glob("bench_*.py")
        )
        for name in PAPER_EXPERIMENTS:
            module = name if name == "table1" else name
            assert f"bench_{module}" in str(
                list((REPO / "benchmarks").glob(f"bench_{module}.py"))
            ) or module in bench_sources, name

    def test_paper_experiments_subset_of_registry(self):
        assert set(PAPER_EXPERIMENTS) <= set(EXPERIMENTS)

    def test_registry_names_are_cli_safe(self):
        for name in EXPERIMENTS:
            assert " " not in name
            assert name == name.lower()


class TestDocsMentionExperiments:
    def test_readme_mentions_core_artefacts(self):
        readme = (REPO / "README.md").read_text()
        for token in ("fig5", "validate", "EXPERIMENTS.md", "DESIGN.md"):
            assert token in readme, token

    def test_experiments_md_covers_every_figure(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for fig in ("Figure 1", "Figure 3", "Figure 4", "Figure 5",
                    "Figure 6", "Figure 7", "Figure 8", "Figure 9", "Table I"):
            assert fig in text, fig

    def test_design_md_has_per_experiment_index(self):
        text = (REPO / "DESIGN.md").read_text()
        for fig in ("Fig. 1", "Fig. 5", "Fig. 8", "Table I"):
            assert fig in text, fig


class TestKernelRegistry:
    def test_paper_suite_has_twelve(self):
        assert len(KERNELS) == 12

    def test_no_overlap_with_extras(self):
        assert not set(KERNELS) & set(EXTRA_KERNELS)

    def test_kernel_modules_exist(self):
        package = REPO / "src" / "repro" / "workloads" / "polybench"
        modules = {p.stem for p in package.glob("*.py")} - {"__init__"}
        # Every registered kernel resolves to some module in the package
        # (names are normalised: '2mm' -> two_mm, 'jacobi-1d' -> jacobi1d).
        assert len(modules) >= len(KERNELS) + len(EXTRA_KERNELS)


class TestExamplesPresent:
    def test_at_least_five_examples(self):
        examples = list((REPO / "examples").glob("*.py"))
        assert len(examples) >= 5
        names = {p.name for p in examples}
        assert "quickstart.py" in names

    def test_examples_have_docstrings_and_main(self):
        for path in (REPO / "examples").glob("*.py"):
            text = path.read_text()
            assert text.lstrip().startswith(('"""', "#!")), path.name
            assert '__main__' in text, path.name
