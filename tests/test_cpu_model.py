"""The in-order CPU timing model."""

import pytest

from repro.core.dropin import PlainFrontend
from repro.cpu.model import CPUConfig, InOrderCPU
from repro.errors import ConfigurationError
from repro.mem.cache import Cache, CacheConfig
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.mem.mainmem import MainMemory
from repro.workloads.trace import Branch, Compute, Load, Prefetch, Store


def make_cpu(read=4, write=2, overlap=1.0, store_buffer=2, **cpu_overrides):
    backing = Cache(
        CacheConfig(
            name="dl1",
            capacity_bytes=4096,
            associativity=2,
            line_bytes=64,
            read_hit_cycles=read,
            write_hit_cycles=write,
        ),
        MainMemory(latency_cycles=100.0, transfer_cycles=0.0),
    )
    config = CPUConfig(
        load_use_overlap=overlap,
        store_buffer_entries=store_buffer,
        **cpu_overrides,
    )
    return InOrderCPU(config, PlainFrontend(backing))


class TestEventCosts:
    def test_compute_costs_its_ops(self):
        cpu = make_cpu()
        result = cpu.run([Compute(5), Compute(3)])
        assert result.cycles == 8.0
        assert result.instructions == 8

    def test_branch_cost(self):
        cpu = make_cpu()
        result = cpu.run([Branch(), Branch(taken=False)])
        assert result.cycles == 2.0
        assert result.counts["branches"] == 2

    def test_mispredict_penalty_on_loop_exit(self):
        cpu = make_cpu(branch_mispredict_cycles=8.0)
        result = cpu.run([Branch(), Branch(), Branch(taken=False)])
        assert result.cycles == 3.0 + 8.0

    def test_mispredict_validation(self):
        with pytest.raises(ConfigurationError):
            CPUConfig(branch_mispredict_cycles=-1.0)

    def test_load_hit_exposed_latency(self):
        # Warm the line, insulate with compute, then hit: the hit's
        # exposed latency is read latency minus the pipeline overlap.
        miss_only = make_cpu(read=4, overlap=1.0).run([Load(0, 4), Compute(50)])
        with_hit = make_cpu(read=4, overlap=1.0).run([Load(0, 4), Compute(50), Load(8, 4)])
        assert with_hit.cycles - miss_only.cycles == 3.0  # 4 - 1 overlap

    def test_load_never_below_one_cycle(self):
        miss_only = make_cpu(read=1, overlap=2.0).run([Load(0, 4), Compute(50)])
        with_hit = make_cpu(read=1, overlap=2.0).run([Load(0, 4), Compute(50), Load(8, 4)])
        assert with_hit.cycles - miss_only.cycles == 1.0

    def test_prefetch_issue_cost(self):
        cpu = make_cpu(prefetch_issue_cycles=0.5)
        result = cpu.run([Prefetch(0)])
        assert result.cycles == 0.5
        assert result.counts["prefetches"] == 1

    def test_breakdown_sums_to_total(self):
        cpu = make_cpu()
        result = cpu.run([Load(0, 4), Compute(2), Branch(), Prefetch(64)])
        assert sum(result.breakdown.values()) == pytest.approx(result.cycles)


class TestStoreBuffer:
    def test_store_issue_is_one_cycle(self):
        # A store to a warm line: one issue cycle; the 2-cycle array
        # write drains behind trailing compute.
        base = make_cpu(write=2).run([Load(0, 4), Compute(50)])
        result = make_cpu(write=2).run([Load(0, 4), Store(8, 4), Compute(50)])
        assert result.cycles - base.cycles == 1.0

    def test_full_buffer_stalls(self):
        base = make_cpu(write=50, store_buffer=2).run([Load(0, 4)])
        result = make_cpu(write=50, store_buffer=2).run(
            [Load(0, 4)] + [Store(8, 4)] * 3
        )
        # Third store waits for the first drain (50 cycles each).
        assert result.cycles - base.cycles > 50.0

    def test_final_drain_counted(self):
        base = make_cpu(write=20, store_buffer=4).run([Load(0, 4)])
        result = make_cpu(write=20, store_buffer=4).run([Load(0, 4), Store(8, 4)])
        # The run ends only when the store buffer is empty.
        assert result.cycles - base.cycles >= 20.0

    def test_sparse_stores_hidden(self):
        base = make_cpu(write=2, store_buffer=4).run([Load(0, 4)])
        events = [Load(0, 4)]
        for _ in range(10):
            events.extend([Store(8, 4), Compute(10)])
        result = make_cpu(write=2, store_buffer=4).run(events)
        # Each store costs ~1 issue cycle; drains hide under the compute.
        assert result.cycles - base.cycles == pytest.approx(10 * 11.0, rel=0.05)

    def test_final_drain_attributed_to_store_category(self):
        # The end-of-trace drain is part of the run's cycles, so it must
        # appear in the breakdown too (it used to be dropped, leaving
        # sum(breakdown) short of cycles on store-tailed traces).
        result = make_cpu(write=50, store_buffer=2).run([Load(0, 4), Store(8, 4)])
        assert sum(result.breakdown.values()) == pytest.approx(result.cycles)
        assert result.breakdown["store"] >= 50.0

    def test_final_drain_identical_across_replay_paths(self):
        from repro.workloads.encode import encode_events

        # Last event is a store that fills the buffer: both replay paths
        # must charge the same drain to the same category.
        events = [Store(0, 4), Store(64, 4), Store(128, 4)]
        generic = make_cpu(write=50, store_buffer=1).run(list(events))
        encoded = make_cpu(write=50, store_buffer=1).run_encoded(encode_events(events))
        assert sum(generic.breakdown.values()) == pytest.approx(generic.cycles)
        assert encoded.cycles == generic.cycles
        assert encoded.breakdown == generic.breakdown


class TestIFetch:
    def test_requires_hierarchy(self):
        with pytest.raises(ConfigurationError):
            InOrderCPU(
                CPUConfig(model_ifetch=True),
                PlainFrontend(
                    Cache(
                        CacheConfig(
                            name="d",
                            capacity_bytes=1024,
                            associativity=2,
                            line_bytes=64,
                            read_hit_cycles=1,
                            write_hit_cycles=1,
                        ),
                        MainMemory(),
                    )
                ),
            )

    def test_ifetch_adds_cycles(self):
        hierarchy = MemoryHierarchy(HierarchyConfig())
        backing = Cache(
            CacheConfig(
                name="dl1",
                capacity_bytes=4096,
                associativity=2,
                line_bytes=64,
                read_hit_cycles=1,
                write_hit_cycles=1,
            ),
            hierarchy.l2_port,
        )
        on = InOrderCPU(CPUConfig(model_ifetch=True), PlainFrontend(backing), hierarchy)
        result_on = on.run([Compute(100)])
        assert result_on.breakdown["ifetch"] > 0
        assert result_on.cycles > 100.0


class TestRunResult:
    def test_ipc(self):
        cpu = make_cpu()
        result = cpu.run([Compute(10)])
        assert result.ipc == pytest.approx(1.0)

    def test_penalty_vs(self):
        cpu = make_cpu()
        base = cpu.run([Compute(100)])
        slow = cpu.run([Compute(150)])
        assert slow.penalty_vs(base) == pytest.approx(50.0)

    def test_penalty_vs_empty_baseline_rejected(self):
        cpu = make_cpu()
        base = cpu.run([])
        other = cpu.run([Compute(1)])
        with pytest.raises(ConfigurationError):
            other.penalty_vs(base)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CPUConfig(load_use_overlap=-1.0)
        with pytest.raises(ConfigurationError):
            CPUConfig(store_buffer_entries=0)
        with pytest.raises(ConfigurationError):
            CPUConfig(code_bytes=0)
