"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table/figure of the paper (or one
ablation), asserts its headline shape, and writes the rendered rows to
``results/<name>.txt`` so the artefacts survive the pytest capture.

The :class:`~repro.experiments.runner.ExperimentRunner` is session-scoped:
kernel traces and named-configuration runs are shared across benches,
so the full harness costs roughly one pass over the evaluation grid.

Every bench module additionally leaves a trajectory record behind: the
session hooks below fold each module's passing-test wall time — plus any
domain metrics the tests registered through the ``bench_metrics``
fixture — into ``benchmarks/BENCH_<name>.json`` via
:mod:`repro.telemetry.bench`.  ``repro bench-report`` compares the last
two generations and flags >10% regressions, which is the gate CI runs
against the committed baseline.
"""

from __future__ import annotations

import pathlib
import platform
from typing import Dict

import pytest

from repro.experiments import ExperimentRunner
from repro.experiments.report import FigureResult, render_figure
from repro.telemetry import metric, record_bench

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Where the BENCH_<name>.json trajectory records live (committed).
BENCH_DIR = pathlib.Path(__file__).resolve().parent

_module_wall: Dict[str, float] = {}
_domain_metrics: Dict[str, Dict[str, dict]] = {}


@pytest.fixture(scope="session")
def bench_metrics() -> Dict[str, Dict[str, dict]]:
    """Registry for domain metrics: ``bench_metrics[bench][name] = metric(...)``.

    Whatever tests put here is merged into the bench's trajectory record
    at session end, next to the automatic ``wall_s``.
    """
    return _domain_metrics


def pytest_runtest_logreport(report):
    """Accumulate per-module wall time of passing bench tests."""
    if report.when != "call" or not report.passed:
        return
    name = pathlib.Path(str(report.fspath)).stem
    if name.startswith("bench_"):
        _module_wall[name] = _module_wall.get(name, 0.0) + report.duration


def pytest_sessionfinish(session, exitstatus):
    """Write one trajectory generation per bench module that ran green."""
    if exitstatus != 0 or not _module_wall:
        return
    context = {"python": platform.python_version(), "platform": platform.platform()}
    for module, wall in sorted(_module_wall.items()):
        bench = module[len("bench_"):]
        metrics = {"wall_s": metric(wall, unit="s", higher_is_better=False)}
        metrics.update(_domain_metrics.get(bench, {}))
        record_bench(bench, metrics, BENCH_DIR, context=context)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One shared runner over the full 12-kernel suite."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def save():
    """Write a rendered figure to results/ and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result: FigureResult) -> str:
        text = render_figure(result)
        (RESULTS_DIR / f"{result.name}.txt").write_text(text + "\n")
        print(f"\n{text}")
        return text

    return _save


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    The interesting output is the figure itself; wall-clock time is
    reported for orientation, so one round is enough and keeps the whole
    harness to a few minutes.
    """
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
