"""Synthetic access-pattern generators (stress workloads).

The PolyBench kernels are affine and regular; these generators produce
the irregular extremes the cache and VWB models should also be sane on:

- :func:`streaming` — pure sequential sweep (best case for wide
  promotions);
- :func:`strided` — fixed-stride walk (the mvt/trmm column pattern in
  isolation, with a tunable stride);
- :func:`random_access` — uniform random touches over a working set
  (worst case for any locality structure; seeded, reproducible);
- :func:`pointer_chase` — a dependent chain visiting every line of the
  working set exactly once per round in a scrambled order (classic
  latency probe: no spatial locality, perfect reuse across rounds);
- :func:`hot_cold` — a small hot set hit with probability ``p`` mixed
  with a large cold set (a cache-friendliness dial).

Each returns a plain event list compatible with everything a kernel
trace feeds (System.run, reuse profiling, trace files).
"""

from __future__ import annotations

from typing import List

from ..errors import WorkloadError
from ..reliability.rng import make_rng
from .trace import Branch, Compute, Load, Store, TraceEvent

#: Base address synthetic working sets are laid out at.
BASE_ADDR = 0x20_0000


def _footer(events: List[TraceEvent], compute_per_access: int) -> List[TraceEvent]:
    return events


def _mix(addresses, compute_per_access: int, write_every: int) -> List[TraceEvent]:
    events: List[TraceEvent] = []
    for n, addr in enumerate(addresses):
        if write_every and (n + 1) % write_every == 0:
            events.append(Store(addr, 4))
        else:
            events.append(Load(addr, 4))
        if compute_per_access:
            events.append(Compute(compute_per_access))
        events.append(Branch(taken=True))
    if events and isinstance(events[-1], Branch):
        events[-1] = Branch(taken=False)
    return events


def streaming(
    bytes_total: int = 65536,
    rounds: int = 2,
    compute_per_access: int = 2,
    write_every: int = 0,
) -> List[TraceEvent]:
    """Sequential 4-byte sweep over ``bytes_total``, repeated ``rounds``."""
    if bytes_total <= 0 or rounds <= 0:
        raise WorkloadError("streaming needs a positive size and round count")
    addresses = [
        BASE_ADDR + offset
        for _ in range(rounds)
        for offset in range(0, bytes_total, 4)
    ]
    return _mix(addresses, compute_per_access, write_every)


def strided(
    stride_bytes: int = 256,
    accesses: int = 4096,
    compute_per_access: int = 2,
    write_every: int = 0,
) -> List[TraceEvent]:
    """Fixed-stride walk of ``accesses`` touches."""
    if stride_bytes <= 0 or accesses <= 0:
        raise WorkloadError("strided needs a positive stride and access count")
    addresses = [BASE_ADDR + n * stride_bytes for n in range(accesses)]
    return _mix(addresses, compute_per_access, write_every)


def random_access(
    working_set_bytes: int = 262144,
    accesses: int = 8192,
    compute_per_access: int = 2,
    write_every: int = 4,
    seed: int = 0,
) -> List[TraceEvent]:
    """Uniform random 4-byte touches over a working set (seeded)."""
    if working_set_bytes < 4 or accesses <= 0:
        raise WorkloadError("random_access needs a working set and access count")
    rng = make_rng(seed)
    slots = working_set_bytes // 4
    addresses = [BASE_ADDR + rng.randrange(slots) * 4 for _ in range(accesses)]
    return _mix(addresses, compute_per_access, write_every)


def pointer_chase(
    working_set_bytes: int = 65536,
    rounds: int = 4,
    line_bytes: int = 64,
    compute_per_access: int = 0,
    seed: int = 0,
) -> List[TraceEvent]:
    """Dependent-chain walk: every line once per round, scrambled order.

    The permutation is a seeded shuffle, so consecutive accesses share
    no spatial locality while rounds repeat the identical sequence —
    the pattern that isolates pure load-to-load latency.
    """
    if working_set_bytes < line_bytes or rounds <= 0:
        raise WorkloadError("pointer_chase needs at least one line and one round")
    rng = make_rng(seed)
    lines = list(range(working_set_bytes // line_bytes))
    rng.shuffle(lines)
    addresses = [
        BASE_ADDR + line * line_bytes for _ in range(rounds) for line in lines
    ]
    return _mix(addresses, compute_per_access, write_every=0)


def hot_cold(
    hot_bytes: int = 2048,
    cold_bytes: int = 1 << 20,
    accesses: int = 8192,
    hot_probability: float = 0.9,
    compute_per_access: int = 2,
    seed: int = 0,
) -> List[TraceEvent]:
    """Mix of a small hot set (probability ``hot_probability``) and a
    large cold set."""
    if not 0.0 <= hot_probability <= 1.0:
        raise WorkloadError(f"hot probability must be in [0, 1]: {hot_probability}")
    if hot_bytes < 4 or cold_bytes < 4 or accesses <= 0:
        raise WorkloadError("hot_cold needs positive region sizes and accesses")
    rng = make_rng(seed)
    cold_base = BASE_ADDR + hot_bytes
    addresses = []
    for _ in range(accesses):
        if rng.random() < hot_probability:
            addresses.append(BASE_ADDR + rng.randrange(hot_bytes // 4) * 4)
        else:
            addresses.append(cold_base + rng.randrange(cold_bytes // 4) * 4)
    return _mix(addresses, compute_per_access, write_every=4)
