"""Write-endurance and lifetime modelling for NVM caches.

Section II of the paper argues for STT-MRAM over ReRAM/PRAM on endurance
grounds (STT-MRAM sustains ~1e15 writes, ReRAM/PRAM only ~1e9-1e11).  An
L1 D-cache is the most write-intensive level of the hierarchy, so this
extension module turns simulated write traffic into a lifetime estimate
and reproduces the technology-choice argument quantitatively.

The model assumes the cache's wear-levelling is whatever the set-index
hash provides naturally, so the constraining quantity is the write rate of
the *hottest line*.  Callers supply per-line write counts from a
simulation; the model extrapolates to years of continuous operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import ConfigurationError
from .params import MemoryTechnology

_SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class LifetimeEstimate:
    """Projected lifetime of an NVM array under a measured write pattern.

    Attributes:
        technology: Name of the technology assessed.
        hottest_line_writes_per_second: Extrapolated write rate of the most
            written line.
        mean_writes_per_second: Extrapolated mean per-line write rate.
        lifetime_years_worst: Years until the hottest line wears out.
        lifetime_years_mean: Years until an average line wears out.
    """

    technology: str
    hottest_line_writes_per_second: float
    mean_writes_per_second: float
    lifetime_years_worst: float
    lifetime_years_mean: float

    @property
    def viable_for_decade(self) -> bool:
        """True if even the hottest line outlives ten years of operation.

        Ten years is the usual consumer-product qualification horizon and
        the retention target the STT-MRAM preset is specified for.
        """
        return self.lifetime_years_worst >= 10.0


class EnduranceModel:
    """Turns per-line write counts into lifetime projections.

    Args:
        tech: Technology whose ``endurance_writes`` bound applies.
    """

    def __init__(self, tech: MemoryTechnology) -> None:
        self._tech = tech

    def estimate(
        self, writes_per_line: Mapping[int, int], elapsed_seconds: float
    ) -> LifetimeEstimate:
        """Project array lifetime from one simulated interval.

        Args:
            writes_per_line: Map from line index to number of array writes
                observed during the interval.  Lines never written may be
                omitted.
            elapsed_seconds: Simulated wall-clock duration of the interval;
                must be positive.

        Returns:
            A :class:`LifetimeEstimate`; lifetimes are ``inf`` when the
            technology has unbounded endurance (SRAM) or no writes were
            observed.
        """
        if elapsed_seconds <= 0:
            raise ConfigurationError(f"elapsed time must be positive: {elapsed_seconds}")
        counts = [c for c in writes_per_line.values() if c > 0]
        if not counts:
            return LifetimeEstimate(
                technology=self._tech.name,
                hottest_line_writes_per_second=0.0,
                mean_writes_per_second=0.0,
                lifetime_years_worst=float("inf"),
                lifetime_years_mean=float("inf"),
            )
        hottest = max(counts) / elapsed_seconds
        mean = (sum(counts) / len(counts)) / elapsed_seconds
        endurance = self._tech.endurance_writes

        def _years(rate: float) -> float:
            if rate == 0 or endurance == float("inf"):
                return float("inf")
            return endurance / rate / _SECONDS_PER_YEAR

        return LifetimeEstimate(
            technology=self._tech.name,
            hottest_line_writes_per_second=hottest,
            mean_writes_per_second=mean,
            lifetime_years_worst=_years(hottest),
            lifetime_years_mean=_years(mean),
        )
