"""Benches: design-choice ablations (DESIGN.md's extension table)."""

from repro.experiments import ablations

from conftest import run_once


def test_ablation_banks(benchmark, runner, save):
    """More NVM banks -> fewer promotion conflicts -> lower penalty."""
    result = run_once(benchmark, ablations.run_bank_sweep, runner=runner)
    save(result)
    avg = result.averages()
    assert avg["1_banks"] >= avg["4_banks"]
    assert avg["4_banks"] >= avg["8_banks"] - 0.5


def test_ablation_promotion_width(benchmark, runner, save):
    """Wide-line count at fixed capacity trades width for associativity."""
    result = run_once(benchmark, ablations.run_promotion_width_sweep, runner=runner)
    save(result)
    for key in result.series:
        assert all(v < 30.0 for v in result.series[key])


def test_ablation_prefetch_distance(benchmark, runner, save):
    """Too-short look-ahead leaves latency exposed."""
    result = run_once(benchmark, ablations.run_prefetch_distance_sweep, runner=runner)
    save(result)
    avg = result.averages()
    # 128 B look-ahead (the default) must not lose to 32 B.
    assert avg["ahead_128B"] <= avg["ahead_32B"] + 1.0


def test_ablation_replacement(benchmark, runner, save):
    """LRU is never much worse than the alternatives on these kernels."""
    result = run_once(benchmark, ablations.run_replacement_sweep, runner=runner)
    save(result)
    avg = result.averages()
    assert avg["lru"] <= min(avg["fifo"], avg["random"]) + 2.0


def test_ablation_datasets(benchmark, save):
    """The paper's extrapolation claim: the optimized proposal stays
    tolerable on larger datasets."""
    result = run_once(benchmark, ablations.run_dataset_sweep)
    save(result)
    avg = result.averages()
    assert avg["small"] < 20.0


def test_ablation_linesize(benchmark, runner, save):
    """Against Table I's 256-bit SRAM lines the drop-in penalty shrinks
    (the NVM's wide line wins back some of the loss)."""
    result = run_once(benchmark, ablations.run_line_size_study, runner=runner)
    save(result)
    avg = result.averages()
    assert avg["vs_256bit_sram"] < avg["vs_512bit_sram"]
