"""Telemetry contract tests: bit-identity, spans, manifests, bench gate.

The load-bearing invariants of ``repro.telemetry``:

- results are ``RunResult``-equal with telemetry enabled, disabled, or
  bypassed entirely (the engine's central invariant extends to the
  instrumented path);
- ``events.jsonl`` is well-formed: monotone sequence numbers, balanced
  span begin/end pairs, point spans parented on their batch;
- manifests schema-validate, round-trip through disk, and reject
  documents that violate the schema;
- stale and corrupt cache entries are counted separately, surfaced on
  :class:`~repro.exec.engine.ExecStats` and named in a structured
  warning;
- the CLI log honours ``--quiet``/``--verbose`` and ``REPRO_LOG``;
- ``repro bench-report`` exits non-zero on an injected regression.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_OK, EXIT_RUNTIME, main
from repro.exec import CACHE_FORMAT_VERSION, ExecutionEngine, RunPoint, cache_key_of, execute_point
from repro.experiments.runner import CONFIGURATIONS
from repro.telemetry import (
    NULL_TELEMETRY,
    TelemetryRecorder,
    build_manifest,
    load_manifest,
    metric,
    read_events,
    record_bench,
    sweep_timeline,
    validate_manifest,
    write_manifest,
)
from repro.telemetry import log as repro_log

KERNELS = ("gemm", "atax")
CONFIGS = ("sram", "vwb", "dropin")


def _grid_points():
    return [
        RunPoint(kernel=kernel, config=CONFIGURATIONS[config])
        for kernel in KERNELS
        for config in CONFIGS
    ]


@pytest.fixture(autouse=True)
def _reset_log_level():
    """The CLI log level is process-global; restore the default after use."""
    yield
    repro_log.configure()


@pytest.fixture()
def recorder(tmp_path):
    rec = TelemetryRecorder(tmp_path / "tele")
    yield rec
    rec.close()


class TestBitIdentity:
    def test_telemetry_on_off_and_bypass_are_equal(self, tmp_path):
        points = _grid_points()
        bare = [execute_point(p) for p in points]

        engine_off = ExecutionEngine(jobs=1, telemetry=NULL_TELEMETRY)
        off = engine_off.run_points(points)

        rec = TelemetryRecorder(tmp_path / "tele")
        engine_on = ExecutionEngine(jobs=2, telemetry=rec)
        on = engine_on.run_points(points)
        rec.close()

        assert off == bare
        assert on == bare

    def test_null_telemetry_is_inert(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.now() == 0.0
        assert NULL_TELEMETRY.begin_span("x") == 0
        assert NULL_TELEMETRY.end_span(0) is None
        assert NULL_TELEMETRY.event("x") is None
        with NULL_TELEMETRY.span("x") as span:
            assert span.id == 0


class TestEventLog:
    def _run(self, recorder, jobs=2):
        engine = ExecutionEngine(jobs=jobs, telemetry=recorder)
        with recorder.span("sweep", command="test"):
            engine.run_points(_grid_points())
        return engine

    def test_events_are_well_formed(self, recorder):
        self._run(recorder)
        recorder.close()
        records = read_events(recorder.path)

        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert all("ts" in r and "pid" in r for r in records)
        assert records[0]["name"] == "telemetry_start"
        assert records[-1]["name"] == "telemetry_end"

        begins = {r["span"] for r in records if r["kind"] == "span_begin"}
        ends = {r["span"] for r in records if r["kind"] == "span_end"}
        assert begins == ends

    def test_point_spans_nest_under_batch_under_sweep(self, recorder):
        self._run(recorder)
        recorder.close()
        records = read_events(recorder.path)
        by_name = {}
        for r in records:
            if r["kind"] == "span_begin":
                by_name.setdefault(r["name"], []).append(r)
        assert len(by_name["sweep"]) == 1
        sweep_id = by_name["sweep"][0]["span"]
        assert [b["parent"] for b in by_name["batch"]] == [sweep_id]
        batch_id = by_name["batch"][0]["span"]
        assert len(by_name["point"]) == len(KERNELS) * len(CONFIGS)
        assert all(b["parent"] == batch_id for b in by_name["point"])

    def test_timestamps_are_monotonic(self, recorder):
        self._run(recorder, jobs=1)
        recorder.close()
        ts = [r["ts"] for r in read_events(recorder.path)]
        assert ts == sorted(ts)


class TestManifest:
    def _engine(self, tmp_path, jobs=2):
        rec = TelemetryRecorder(tmp_path / "tele")
        engine = ExecutionEngine(jobs=jobs, telemetry=rec)
        engine.run_points(_grid_points())
        rec.close()
        return engine

    def test_round_trip_and_schema(self, tmp_path):
        engine = self._engine(tmp_path)
        doc = build_manifest("penalties", engine, argv=["penalties", "--jobs", "2"])
        validate_manifest(doc)
        path = write_manifest(doc, tmp_path / "tele")
        loaded = load_manifest(tmp_path / "tele")
        assert loaded == json.loads(path.read_text())
        assert loaded["command"] == "penalties"
        assert len(loaded["points"]) == len(KERNELS) * len(CONFIGS)
        assert loaded["engine"]["stats"]["executed"] == len(KERNELS) * len(CONFIGS)
        assert set(loaded["technologies"]) == {"SRAM 32nm HP", "STT-MRAM 32nm"}

    def test_worker_attribution(self, tmp_path):
        engine = self._engine(tmp_path, jobs=2)
        doc = build_manifest("penalties", engine)
        runs = [p for p in doc["points"] if p["status"] == "run"]
        assert runs, "expected executed points"
        assert all(p["worker_pid"] > 0 for p in runs)
        assert all(p["wall_s"] > 0.0 for p in runs)

    def test_invalid_manifest_is_rejected(self, tmp_path):
        engine = self._engine(tmp_path, jobs=1)
        doc = build_manifest("penalties", engine)
        doc["points"][0]["status"] = "bogus"
        with pytest.raises(ValueError, match="status"):
            validate_manifest(doc)
        del doc["points"]
        with pytest.raises(ValueError, match="points"):
            validate_manifest(doc)

    def test_timeline_tracks_workers(self, tmp_path):
        engine = self._engine(tmp_path, jobs=2)
        doc = build_manifest("penalties", engine)
        trace = sweep_timeline(doc)
        events = trace["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        worker_threads = [e for e in metas if e["name"] == "thread_name"]
        assert len(slices) == len(doc["points"])
        assert len(worker_threads) == len({p["worker_pid"] for p in doc["points"]})
        body_ts = [e["ts"] for e in slices]
        assert body_ts == sorted(body_ts)


class TestCacheAnomalies:
    def _cached_engine(self, tmp_path, telemetry=NULL_TELEMETRY):
        return ExecutionEngine(jobs=1, cache_dir=str(tmp_path / "cache"), telemetry=telemetry)

    def test_corrupt_entry_counts_and_warns(self, tmp_path, capsys):
        point = RunPoint(kernel="gemm", config=CONFIGURATIONS["sram"])
        engine = self._cached_engine(tmp_path)
        [first] = engine.run_points([point])

        key = cache_key_of(point)
        engine.cache.path_for(key).write_text("{not json")

        rec = TelemetryRecorder(tmp_path / "tele")
        engine2 = ExecutionEngine(jobs=1, cache_dir=str(tmp_path / "cache"), telemetry=rec)
        [again] = engine2.run_points([point])
        rec.close()

        assert again == first
        assert engine2.stats.corrupt == 1
        assert engine2.stats.stale == 0
        assert engine2.metrics.counters["cache.corrupt"] == 1
        assert "corrupt" in engine2.summary()
        warnings = [r for r in read_events(rec.path) if r["kind"] == "warning"]
        assert len(warnings) == 1
        assert warnings[0]["key"] == key
        assert key in capsys.readouterr().err

    def test_stale_entry_counts_separately(self, tmp_path):
        point = RunPoint(kernel="gemm", config=CONFIGURATIONS["sram"])
        engine = self._cached_engine(tmp_path)
        engine.run_points([point])

        key = cache_key_of(point)
        path = engine.cache.path_for(key)
        entry = json.loads(path.read_text())
        entry["format"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(entry))

        engine2 = self._cached_engine(tmp_path)
        engine2.run_points([point])
        assert engine2.stats.stale == 1
        assert engine2.stats.corrupt == 0
        assert engine2.stats.misses == 1

    def test_lookup_classifies_miss_kinds(self, tmp_path):
        from repro.exec import RunCache

        cache = RunCache(tmp_path / "cache")
        assert cache.lookup("ab" * 32).status == "miss"
        path = cache.path_for("ab" * 32)
        path.parent.mkdir(parents=True)
        path.write_text("garbage")
        assert cache.lookup("ab" * 32).status == "corrupt"
        assert cache.get("ab" * 32) is None


class TestLogLevels:
    def teardown_method(self):
        repro_log.configure()

    def test_quiet_beats_verbose(self):
        assert repro_log.configure(quiet=True, verbose=True) == "quiet"
        assert repro_log.progress_stream() is None

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(repro_log.ENV_VAR, "debug")
        assert repro_log.configure() == "debug"
        monkeypatch.setenv(repro_log.ENV_VAR, "nonsense")
        assert repro_log.configure() == "info"

    def test_levels_filter_output(self, capsys):
        repro_log.configure(quiet=True)
        repro_log.warn("hidden")
        repro_log.info("hidden")
        repro_log.error("shown")
        err = capsys.readouterr().err
        assert "hidden" not in err
        assert "error: shown" in err


class TestBenchReport:
    def _record(self, tmp_path, value):
        record_bench("trace", {"throughput": metric(value, unit="x")}, tmp_path)

    def test_flags_injected_regression(self, tmp_path, capsys):
        self._record(tmp_path, 5.0)
        self._record(tmp_path, 4.0)  # -20%: beyond the 10% threshold
        code = main(["bench-report", "--bench-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == EXIT_RUNTIME
        assert "REGRESSED" in out

    def test_improvement_and_noise_pass(self, tmp_path, capsys):
        self._record(tmp_path, 5.0)
        self._record(tmp_path, 4.8)  # -4%: within threshold
        code = main(["bench-report", "--bench-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "no regressions" in out

    def test_lower_is_better_direction(self, tmp_path):
        record_bench("p", {"overhead": metric(1.0, unit="x", higher_is_better=False)}, tmp_path)
        record_bench("p", {"overhead": metric(1.3, unit="x", higher_is_better=False)}, tmp_path)
        code = main(["bench-report", "--bench-dir", str(tmp_path)])
        assert code == EXIT_RUNTIME


class TestCLITelemetry:
    def test_penalties_with_telemetry_writes_artifacts(self, tmp_path, capsys):
        tele = tmp_path / "tele"
        code = main(
            [
                "penalties",
                "--kernels",
                "gemm",
                "--telemetry",
                str(tele),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--quiet",
            ]
        )
        assert code == EXIT_OK
        assert (tele / "events.jsonl").exists()
        assert (tele / "manifest.json").exists()
        assert (tele / "sweep_timeline.json").exists()
        doc = load_manifest(tele)
        assert doc["command"] == "penalties"
        assert doc["points"]

        capsys.readouterr()
        assert main(["status", str(tele)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "penalties" in out
        assert "cache.miss" in out

    def test_quiet_suppresses_progress(self, tmp_path, capsys):
        code = main(
            [
                "penalties",
                "--kernels",
                "gemm",
                "--telemetry",
                str(tmp_path / "tele"),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--quiet",
            ]
        )
        assert code == EXIT_OK
        assert capsys.readouterr().err == ""
