#!/usr/bin/env python3
"""Compare every D-cache organisation on one kernel, with metrics.

Runs the six configurations of the evaluation (SRAM baseline, drop-in
NVM, NVM+VWB, NVM+L0, NVM+EMSHR, NVM+hybrid partition) on one kernel and
prints the cycle counts next to the derived metrics (AMAT, MPKI, cycle
shares, buffer hit rates) from :mod:`repro.analysis` — the quickest way
to see *why* each organisation lands where it does.

Run with::

    python examples/compare_frontends.py [kernel] [none|full]
"""

import sys

from repro import OptLevel, System, SystemConfig, build_kernel, materialize_trace, optimize
from repro.analysis import compare_runs
from repro.cpu.system import warm_regions_of

CONFIGS = {
    "sram": SystemConfig(technology="sram"),
    "dropin": SystemConfig(technology="stt-mram"),
    "vwb": SystemConfig(technology="stt-mram", frontend="vwb"),
    "l0": SystemConfig(technology="stt-mram", frontend="l0"),
    "emshr": SystemConfig(technology="stt-mram", frontend="emshr"),
    "hybrid": SystemConfig(technology="stt-mram", frontend="hybrid"),
}


def main(kernel: str = "atax", level: str = "full") -> None:
    program = build_kernel(kernel)
    if level == "full":
        program = optimize(program, OptLevel.FULL)
    trace = materialize_trace(program)
    warm = warm_regions_of(program)

    runs = {}
    for name, config in CONFIGS.items():
        runs[name] = System(config).run(trace, warm_regions=warm)

    baseline = runs["sram"]
    print(f"kernel={kernel}, code={'optimized' if level == 'full' else 'unoptimized'}\n")
    print(f"{'config':>8}  {'cycles':>10}  {'penalty':>8}")
    for name, result in runs.items():
        print(f"{name:>8}  {result.cycles:10.0f}  {result.penalty_vs(baseline):+7.1f}%")
    print()
    print(compare_runs(runs))


if __name__ == "__main__":
    args = sys.argv[1:]
    main(args[0] if args else "atax", args[1] if len(args) > 1 else "full")
