"""PolyBench ``syrk`` (rectangular form): C = alpha*A*A^T + beta*C.

Written with the reduction loop innermost so both ``A[i][k]`` and
``A[j][k]`` stream at unit stride and the accumulator ``C[i][j]`` is
register-allocated — a vectorizable reduction.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"n": 20, "m": 24}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the syrk program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    n, m = dims["n"], dims["m"]
    i, j, k = Var("i"), Var("j"), Var("k")
    a = Array("A", (n, m))
    c = Array("C", (n, n))
    body = [
        loop(
            i,
            n,
            [loop(j, n, [stmt(reads=[c[i, j]], writes=[c[i, j]], flops=1, label="beta_scale")])],
        ),
        loop(
            i,
            n,
            [
                loop(
                    j,
                    n,
                    [
                        loop(
                            k,
                            m,
                            [
                                stmt(
                                    reads=[c[i, j], a[i, k], a[j, k]],
                                    writes=[c[i, j]],
                                    flops=3,
                                    label="mac",
                                )
                            ],
                        )
                    ],
                    permutable=True,
                )
            ],
        ),
    ]
    return Program("syrk", body)
