"""Banked-array conflict timing."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.banks import BankTimer


class TestBankMapping:
    def test_line_interleaving(self):
        timer = BankTimer(banks=4, line_bytes=64)
        assert timer.bank_of(0) == 0
        assert timer.bank_of(64) == 1
        assert timer.bank_of(128) == 2
        assert timer.bank_of(192) == 3
        assert timer.bank_of(256) == 0

    def test_same_line_same_bank(self):
        timer = BankTimer(banks=4, line_bytes=64)
        assert timer.bank_of(10) == timer.bank_of(63)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            BankTimer(banks=3, line_bytes=64)


class TestReserve:
    def test_idle_bank_no_wait(self):
        timer = BankTimer(banks=2, line_bytes=64)
        wait, finish = timer.reserve(0, now=10.0, occupancy=4.0)
        assert wait == 0.0
        assert finish == 14.0

    def test_busy_bank_waits(self):
        timer = BankTimer(banks=2, line_bytes=64)
        timer.reserve(0, now=0.0, occupancy=4.0)
        wait, finish = timer.reserve(0, now=1.0, occupancy=4.0)
        assert wait == 3.0
        assert finish == 8.0

    def test_different_banks_overlap(self):
        timer = BankTimer(banks=2, line_bytes=64)
        timer.reserve(0, now=0.0, occupancy=4.0)
        wait, _ = timer.reserve(64, now=0.0, occupancy=4.0)
        assert wait == 0.0

    def test_next_free(self):
        timer = BankTimer(banks=1, line_bytes=64)
        timer.reserve(0, now=0.0, occupancy=5.0)
        assert timer.next_free(0, now=2.0) == 3.0
        assert timer.next_free(0, now=9.0) == 0.0

    def test_negative_occupancy_rejected(self):
        timer = BankTimer(banks=1, line_bytes=64)
        with pytest.raises(ConfigurationError):
            timer.reserve(0, 0.0, -1.0)

    def test_reset(self):
        timer = BankTimer(banks=1, line_bytes=64)
        timer.reserve(0, now=0.0, occupancy=100.0)
        timer.reset()
        wait, _ = timer.reserve(0, now=0.0, occupancy=1.0)
        assert wait == 0.0


class TestReserveRange:
    def test_parallel_lines_in_distinct_banks(self):
        timer = BankTimer(banks=4, line_bytes=64)
        wait, finish = timer.reserve_range(0, 2, now=0.0, occupancy_per_line=4.0)
        assert wait == 0.0
        assert finish == 4.0  # both lines read in parallel

    def test_colliding_lines_serialise(self):
        timer = BankTimer(banks=1, line_bytes=64)
        wait, finish = timer.reserve_range(0, 2, now=0.0, occupancy_per_line=4.0)
        assert finish == 8.0  # one bank: two serialized reads

    def test_range_blocks_following_access(self):
        timer = BankTimer(banks=4, line_bytes=64)
        timer.reserve_range(0, 2, now=0.0, occupancy_per_line=4.0)
        wait, _ = timer.reserve(64, now=1.0, occupancy=1.0)
        assert wait == 3.0  # bank 1 busy until cycle 4

    def test_wait_reflects_prior_occupancy(self):
        timer = BankTimer(banks=4, line_bytes=64)
        timer.reserve(0, now=0.0, occupancy=6.0)
        wait, finish = timer.reserve_range(0, 2, now=0.0, occupancy_per_line=4.0)
        assert wait == 6.0  # line 0's bank busy
        assert finish == 10.0

    def test_rejects_zero_lines(self):
        timer = BankTimer(banks=2, line_bytes=64)
        with pytest.raises(ConfigurationError):
            timer.reserve_range(0, 0, 0.0, 1.0)

    def test_banks_property(self):
        assert BankTimer(banks=8, line_bytes=64).banks == 8
