"""Interpreter: imperfect nests, triangular bounds, combined annotations."""

import pytest

from repro.workloads.affine import Var
from repro.workloads.ir import Array, Loop, Program, loop, stmt
from repro.workloads.interp import TraceConfig, generate_trace, materialize_trace
from repro.workloads.trace import Branch, Compute, Load, Prefetch, Store, trace_summary

i, j, k = Var("i"), Var("j"), Var("k")


class TestImperfectNests:
    def test_statement_before_inner_loop(self):
        """gesummv-style: init statement + inner loop + combine statement."""
        x = Array("x", (4, 8))
        acc = Array("acc", (4,))
        body = loop(
            i,
            4,
            [
                stmt(writes=[acc[i]], flops=0, label="init"),
                loop(j, 8, [stmt(reads=[acc[i], x[i, j]], writes=[acc[i]], flops=1)]),
                stmt(reads=[acc[i]], writes=[acc[i]], flops=2, label="post"),
            ],
        )
        s = trace_summary(materialize_trace(Program("p", [body])))
        # Per i: init store, 1 hoisted acc load + 8 x loads, 1 hoisted
        # store, post load + store.
        assert s["stores"] == 4 * 3
        assert s["loads"] == 4 * (1 + 8 + 1)

    def test_two_sequential_nests(self):
        a = Array("A", (4, 4))
        p1 = loop(i, 4, [loop(j, 4, [stmt(reads=[a[i, j]], flops=1)])])
        p2 = loop(i, 4, [loop(j, 4, [stmt(writes=[a[i, j]], flops=1)])])
        s = trace_summary(materialize_trace(Program("p", [p1, p2])))
        assert s["loads"] == 16
        assert s["stores"] == 16

    def test_three_deep_nest(self):
        a = Array("A", (2, 3, 4))
        body = loop(i, 2, [loop(j, 3, [loop(k, 4, [stmt(reads=[a[i, j, k]], flops=1)])])])
        s = trace_summary(materialize_trace(Program("p", [body])))
        assert s["loads"] == 24
        assert s["branches"] == 24 + 6 + 2


class TestTriangularBounds:
    def test_triangular_trip_counts(self):
        a = Array("A", (8, 8))
        inner = Loop(j, 0, i, [stmt(reads=[a[i, j]], flops=1)])
        body = loop(i, 8, [inner])
        s = trace_summary(materialize_trace(Program("p", [body])))
        assert s["loads"] == sum(range(8))  # 0+1+...+7

    def test_triangular_with_vectorization(self):
        a = Array("A", (8, 8))
        inner = Loop(j, 0, i, [stmt(reads=[a[i, j]], flops=1)])
        inner.vector_width = 4
        body = loop(i, 8, [inner])
        s = trace_summary(materialize_trace(Program("p", [body])))
        # Bytes covered must equal the scalar version's.
        assert s["load_bytes"] == sum(range(8)) * 4

    def test_empty_triangular_first_iteration(self):
        a = Array("A", (4, 4))
        inner = Loop(j, 0, i, [stmt(reads=[a[i, j]], flops=1)])
        body = loop(i, 4, [inner])
        events = materialize_trace(Program("p", [body]))
        # i=0 contributes nothing; trace still well-formed.
        assert trace_summary(events)["loads"] == 6


class TestNegativeStride:
    def test_reverse_walk(self):
        a = Array("A", (16,))
        body = loop(i, 16, [stmt(reads=[a[15 - i]], flops=1)])
        loads = [ev for ev in generate_trace(Program("p", [body])) if isinstance(ev, Load)]
        addrs = [ev.addr for ev in loads]
        assert addrs == sorted(addrs, reverse=True)

    def test_negative_stride_not_vector_friendly(self):
        from repro.transforms import Vectorize

        a = Array("A", (16,))
        prog = Program("p", [loop(i, 16, [stmt(reads=[a[15 - i]], flops=1)])])
        out = Vectorize().apply(prog)
        assert out.loops()[0].vector_width == 1  # stride -1 is not 0/1


class TestCombinedAnnotations:
    def _annotated(self, n=32, width=4, unroll=2, distance=8):
        x = Array("x", (n,))
        y = Array("y", (n,))
        body = loop(i, n, [stmt(reads=[x[i]], writes=[y[i]], flops=1)])
        body.vector_width = width
        body.unroll = unroll
        body.prefetch = [(body.statements()[0].reads[0], distance)]
        return Program("p", [body])

    def test_vector_plus_unroll_branches(self):
        s = trace_summary(materialize_trace(self._annotated()))
        # 32 elems / width 4 = 8 chunks; branch every 2 chunks -> 4.
        assert s["branches"] == 4

    def test_vector_plus_prefetch(self):
        events = materialize_trace(self._annotated())
        kinds = [type(ev) for ev in events]
        assert Prefetch in kinds
        # Prefetch precedes the first load of each new block.
        assert kinds.index(Prefetch) < kinds.index(Load)

    def test_bytes_conserved_under_all_annotations(self):
        plain = trace_summary(materialize_trace(self._annotated(width=1, unroll=1, distance=1)))
        fancy = trace_summary(materialize_trace(self._annotated()))
        assert plain["load_bytes"] == fancy["load_bytes"]
        assert plain["store_bytes"] == fancy["store_bytes"]


class TestTraceConfig:
    def test_layout_base_respected(self):
        x = Array("x", (4,))
        prog = Program("p", [loop(i, 4, [stmt(reads=[x[i]], flops=1)])])
        list(generate_trace(prog, TraceConfig(layout_base=0x40_0000)))
        assert x.base_addr == 0x40_0000

    def test_existing_layout_not_overwritten(self):
        x = Array("x", (4,))
        prog = Program("p", [loop(i, 4, [stmt(reads=[x[i]], flops=1)])])
        prog.layout(base_addr=0x1234_0000 & ~63)
        base = x.base_addr
        list(generate_trace(prog))
        assert x.base_addr == base
