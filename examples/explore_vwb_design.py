#!/usr/bin/env python3
"""Design-space exploration of the Very Wide Buffer.

Sweeps the two axes the paper discusses in Sections IV and VI — the VWB
capacity (Figure 7) and the NVM array's bank count — over a kernel mix,
and prints the penalty matrix so the 2 Kbit / 4-bank sweet spot is
visible.

Run with::

    python examples/explore_vwb_design.py [kernel ...]
"""

import sys
from dataclasses import replace

from repro import OptLevel, System, SystemConfig, build_kernel, materialize_trace, optimize
from repro.cpu.system import warm_regions_of

KERNELS = ("gemm", "atax", "trmm", "2mm")
VWB_BITS = (1024, 2048, 4096)
BANKS = (1, 2, 4, 8)


def penalty(config: SystemConfig, trace, warm, baseline_cycles: float) -> float:
    result = System(config).run(trace, warm_regions=warm)
    return (result.cycles - baseline_cycles) / baseline_cycles * 100.0


def main(kernels) -> None:
    nvm_vwb = SystemConfig(technology="stt-mram", frontend="vwb")
    sram = SystemConfig(technology="sram")

    traces = {}
    for name in kernels:
        program = optimize(build_kernel(name), OptLevel.FULL)
        trace = materialize_trace(program)
        warm = warm_regions_of(program)
        base = System(sram).run(trace, warm_regions=warm)
        traces[name] = (trace, warm, base.cycles)

    print("Average optimized NVM+VWB penalty (%) over:", ", ".join(kernels))
    print(f"\n{'VWB size':>10} | " + " ".join(f"{b:>3d} banks" for b in BANKS))
    print("-" * (13 + 10 * len(BANKS)))
    for bits in VWB_BITS:
        row = [f"{bits // 1024}Kbit".rjust(10) + " |"]
        for banks in BANKS:
            config = replace(nvm_vwb, vwb_bits=bits, dl1_banks=banks)
            values = [
                penalty(config, trace, warm, base) for trace, warm, base in traces.values()
            ]
            row.append(f"{sum(values) / len(values):8.1f} ")
            sys.stdout.flush()
        print(" ".join(row))
    print(
        "\nReading: penalties fall with both capacity and banking; the "
        "paper picks 2 Kbit (associative-search and area limits) on a "
        "banked array."
    )


if __name__ == "__main__":
    main(sys.argv[1:] or KERNELS)
