"""The live sanitizer: invariant checks interleaved with trace replay.

:class:`Sanitizer` attaches to a :class:`~repro.cpu.system.System` and
audits the machine's representation invariants *between trace events*
while the CPU replays.  The hook is generator interposition: the CPU's
event loop iterates ``checker.stream(events)``, which yields each event
and — when the loop comes back for the next one, i.e. after the previous
event has been fully processed — runs the invariant catalogue of
:mod:`repro.check.invariants` against the live structures.  A violation
therefore surfaces as an :class:`~repro.errors.InvariantViolation`
raised *at the event that introduced it*, carrying the replayable event
index for bisection.

Overhead contract
-----------------

Off by default and free when off: a system without a sanitizer attached
runs the exact code it always ran — ``InOrderCPU.run`` performs one
``self.checker is None`` test per *run* (not per event), and the encoded
fast path is untouched.  ``benchmarks/bench_profile.py`` guards this.
When attached, the encoded fast path falls back to generic object replay
(the sanitizer audits the canonical implementation of the timing paths),
and a check costs one full scan of every cache — which is why
:attr:`Sanitizer.stride` exists: checking every N-th event keeps grid
audits tractable while still localising a corruption to a window of N
events.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import ConfigurationError
from ..workloads.trace import TraceEvent
from .invariants import check_system


class Sanitizer:
    """Invariant-checking shadow auditor for one system.

    Args:
        system: The platform to audit.
        stride: Check the invariants after every ``stride``-th event
            (1 = after every event).  Larger strides trade detection
            granularity for speed; the final post-drain check always
            runs regardless.

    Attributes:
        events_seen: Events that have flowed through :meth:`stream`.
        checks_run: Invariant sweeps started so far (a sweep that finds
            a violation still counts).
    """

    def __init__(self, system, stride: int = 1) -> None:
        if stride < 1:
            raise ConfigurationError(f"sanitizer stride must be positive: {stride}")
        self.system = system
        self.stride = int(stride)
        self.events_seen = 0
        self.checks_run = 0

    # ------------------------------------------------------------------
    # The CPU-side hook
    # ------------------------------------------------------------------

    def stream(self, events: Iterable[TraceEvent]) -> Iterator[TraceEvent]:
        """Yield ``events`` unchanged, checking invariants between them.

        The check for event ``i`` runs when the consumer requests event
        ``i + 1`` (or exhausts the stream) — exactly the point at which
        the CPU has fully processed event ``i``, including its cache
        side effects.  Raising out of the generator propagates through
        the CPU's ``for`` loop, aborting the run at the faulty event.
        """
        system = self.system
        stride = self.stride
        index = 0
        for event in events:
            yield event
            # The consumer processed `event` completely before resuming.
            index += 1
            self.events_seen = index
            if index % stride == 0:
                self.checks_run += 1
                check_system(system, event_index=index - 1)

    # ------------------------------------------------------------------
    # Attachment and checked execution
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Install this sanitizer as the system CPU's event checker."""
        self.system.cpu.checker = self

    def detach(self) -> None:
        """Remove this sanitizer from the CPU (no-op if not attached)."""
        if self.system.cpu.checker is self:
            self.system.cpu.checker = None

    def run(self, events, **kwargs):
        """Execute ``events`` through ``System.run`` under the sanitizer.

        Accepts everything :meth:`repro.cpu.system.System.run` accepts
        (``reset``, ``warm_regions``, ``probe``).  After the run — which
        includes the CPU's end-of-trace store-buffer drain, past the
        last in-stream check — one final invariant sweep audits the end
        state.  The sanitizer is always detached on exit, so the system
        returns to the zero-overhead configuration even when a check
        raises.

        Returns:
            The :class:`~repro.cpu.model.RunResult` of the audited run.
        """
        self.attach()
        try:
            result = self.system.run(events, **kwargs)
        finally:
            self.detach()
        self.checks_run += 1
        check_system(self.system, event_index=self.events_seen - 1)
        return result
