"""Miss-status holding registers (MSHRs).

An MSHR file tracks outstanding line fills so that

- a second miss to an in-flight line merges instead of re-requesting, and
- software prefetches can run ahead without blocking the core.

The file is also the substrate for the *Enhanced MSHR* comparison point
(Komalan et al., DATE 2014, reference [7] of the paper), modelled in
:mod:`repro.core.emshr`: EMSHR additionally lets completed entries linger
and serve reads at buffer speed before being deallocated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..obs.probe import NULL_PROBE, Probe


@dataclass
class MSHREntry:
    """One outstanding (or lingering) fill."""

    line_addr: int
    ready_at: float
    issued_at: float
    is_prefetch: bool


class MSHRFile:
    """Bounded set of outstanding fills keyed by line address.

    ``now`` must be non-decreasing across calls.  Entries whose fill has
    completed are *lingering*: by default :meth:`reclaim_completed` frees
    them lazily when a new allocation needs a slot, which mimics hardware
    deallocation without a global event queue.
    """

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ConfigurationError(f"MSHR file needs at least one entry: {entries}")
        self._capacity = entries
        self._entries: Dict[int, MSHREntry] = {}
        self.allocations = 0
        self.merges = 0
        self.full_rejections = 0
        self._probe: Probe = NULL_PROBE
        self._probing = False
        self._owner = ""

    def set_probe(self, probe: Probe, owner: str) -> None:
        """Attach ``probe``; MSHR events are reported under ``owner``."""
        self._probe = probe
        self._probing = probe.enabled
        self._owner = owner

    @property
    def capacity(self) -> int:
        """Number of MSHR slots."""
        return self._capacity

    def lookup(self, line_addr: int) -> Optional[MSHREntry]:
        """Return the entry tracking ``line_addr``, if any."""
        return self._entries.get(line_addr)

    def allocate(
        self, line_addr: int, now: float, ready_at: float, is_prefetch: bool
    ) -> Optional[MSHREntry]:
        """Try to allocate an entry for a new miss.

        If an entry for the line already exists the miss *merges*: the
        existing entry is returned (its ``ready_at`` is authoritative).
        If the file is full after reclaiming completed entries, ``None``
        is returned and the caller must handle the structural stall.
        """
        existing = self._entries.get(line_addr)
        if existing is not None:
            self.merges += 1
            if self._probing:
                self._probe.mshr_event(self._owner, "merge", line_addr, now)
            return existing
        if len(self._entries) >= self._capacity:
            self.reclaim_completed(now)
        if len(self._entries) >= self._capacity:
            self.full_rejections += 1
            if self._probing:
                self._probe.mshr_event(self._owner, "full", line_addr, now)
            return None
        entry = MSHREntry(
            line_addr=line_addr, ready_at=ready_at, issued_at=now, is_prefetch=is_prefetch
        )
        self._entries[line_addr] = entry
        self.allocations += 1
        if self._probing:
            self._probe.mshr_event(self._owner, "allocate", line_addr, now)
        return entry

    def release(self, line_addr: int) -> None:
        """Explicitly deallocate the entry for ``line_addr`` (no-op if absent)."""
        self._entries.pop(line_addr, None)

    def reclaim_completed(self, now: float) -> int:
        """Free every entry whose fill completed by ``now``.

        Returns:
            Number of entries reclaimed.
        """
        done = [addr for addr, e in self._entries.items() if e.ready_at <= now]
        for addr in done:
            del self._entries[addr]
        return len(done)

    def earliest_completion(self) -> Optional[float]:
        """``ready_at`` of the entry finishing soonest, or ``None`` if empty."""
        if not self._entries:
            return None
        return min(e.ready_at for e in self._entries.values())

    def occupancy(self) -> int:
        """Entries currently allocated (including lingering completed ones)."""
        return len(self._entries)

    def reset(self) -> None:
        """Clear all entries and statistics."""
        self._entries.clear()
        self.allocations = 0
        self.merges = 0
        self.full_rejections = 0
