"""Energy accounting for simulated runs.

The paper defers power modelling ("power models have yet to be fully
developed though") but argues qualitatively that the NVM DL1 wins on
leakage and that the wide NVM array is cheaper per wide access than an
equally wide SRAM.  This module provides the bookkeeping to quantify that
claim as an *extension*: simulators record access counts into an
:class:`EnergyLedger`, and :meth:`EnergyLedger.report` converts counts plus
elapsed time into energy using per-array :class:`~repro.tech.array_model.ArrayEstimate`
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import ConfigurationError
from .array_model import ArrayEstimate


@dataclass
class _ArrayActivity:
    """Access counters for one physical array."""

    estimate: ArrayEstimate
    reads: int = 0
    writes: int = 0


@dataclass(frozen=True)
class EnergyReport:
    """Energy totals for one run, all in nanojoules.

    Attributes:
        dynamic_nj: Energy of all array reads and writes.
        leakage_nj: Static energy integrated over the run's duration.
        per_array_nj: Dynamic energy split by array name.
    """

    dynamic_nj: float
    leakage_nj: float
    per_array_nj: Dict[str, float]

    @property
    def total_nj(self) -> float:
        """Dynamic plus leakage energy."""
        return self.dynamic_nj + self.leakage_nj


class EnergyLedger:
    """Accumulates array activity during a simulation.

    Usage::

        ledger = EnergyLedger()
        ledger.register("dl1", dl1_estimate)
        ...
        ledger.count_read("dl1")          # once per array read
        report = ledger.report(elapsed_ns=cycles)  # 1 GHz: 1 cycle = 1 ns

    Registering the same name twice replaces the estimate but keeps the
    counters, so a ledger can be re-priced under a different technology
    without rerunning the simulation.
    """

    def __init__(self) -> None:
        self._arrays: Dict[str, _ArrayActivity] = {}

    def register(self, name: str, estimate: ArrayEstimate) -> None:
        """Attach (or re-price) the physical estimate for array ``name``."""
        if name in self._arrays:
            self._arrays[name].estimate = estimate
        else:
            self._arrays[name] = _ArrayActivity(estimate=estimate)

    def count_read(self, name: str, n: int = 1) -> None:
        """Record ``n`` full-line reads of array ``name``."""
        self._activity(name).reads += n

    def count_write(self, name: str, n: int = 1) -> None:
        """Record ``n`` full-line writes of array ``name``."""
        self._activity(name).writes += n

    def reads(self, name: str) -> int:
        """Total reads recorded for ``name`` so far."""
        return self._activity(name).reads

    def writes(self, name: str) -> int:
        """Total writes recorded for ``name`` so far."""
        return self._activity(name).writes

    def report(self, elapsed_ns: float) -> EnergyReport:
        """Convert accumulated counts into an :class:`EnergyReport`.

        Args:
            elapsed_ns: Wall-clock duration of the simulated run in
                nanoseconds (cycles at 1 GHz); leakage integrates over it.
        """
        if elapsed_ns < 0:
            raise ConfigurationError(f"elapsed time must be non-negative: {elapsed_ns}")
        per_array: Dict[str, float] = {}
        dynamic_nj = 0.0
        for name, activity in self._arrays.items():
            est = activity.estimate
            nj = (activity.reads * est.read_energy_pj + activity.writes * est.write_energy_pj) / 1e3
            per_array[name] = nj
            dynamic_nj += nj
        # mW * ns = pJ, so the nJ conversion is a factor of 1e-6.
        leakage_nj = sum(a.estimate.leakage_mw for a in self._arrays.values()) * elapsed_ns * 1e-6
        return EnergyReport(dynamic_nj=dynamic_nj, leakage_nj=leakage_nj, per_array_nj=per_array)

    def _activity(self, name: str) -> _ArrayActivity:
        if name not in self._arrays:
            raise ConfigurationError(f"array {name!r} was never registered with the ledger")
        return self._arrays[name]
