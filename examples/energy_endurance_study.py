#!/usr/bin/env python3
"""Technology study: area, energy, scaling and endurance of the NVM DL1.

Quantifies the paper's qualitative claims ("the use of NVMs also allows
gains in area and even energy", Section II's endurance argument against
ReRAM/PRAM) with the analytic models:

1. Table I plus derived area/cycle rows;
2. DL1 energy of an actual simulated kernel run, SRAM vs STT-MRAM+VWB;
3. the SRAM-vs-NVM leakage gap across technology nodes;
4. the worst-line lifetime of STT-MRAM/ReRAM/PRAM under the kernel's
   write traffic.

Run with::

    python examples/energy_endurance_study.py
"""

from repro import System, SystemConfig, build_kernel, materialize_trace
from repro.cpu.system import warm_regions_of
from repro.tech import (
    ArrayGeometry,
    EnduranceModel,
    EnergyLedger,
    PRAM_32NM,
    RERAM_32NM,
    SRAM_32NM_HP,
    STT_MRAM_32NM,
    build_table_one,
    estimate_array,
    scale_technology,
)
from repro.tech.compare import render_table_one
from repro.units import kib


def table_one() -> None:
    print("=== Table I (with derived rows) ===")
    print(render_table_one(build_table_one()))


def kernel_energy(kernel: str = "atax") -> None:
    print(f"\n=== DL1 energy for one '{kernel}' run ===")
    program = build_kernel(kernel)
    trace = materialize_trace(program)
    warm = warm_regions_of(program)
    for label, config in (
        ("SRAM baseline", SystemConfig(technology="sram")),
        ("STT-MRAM + VWB", SystemConfig(technology="stt-mram", frontend="vwb")),
    ):
        system = System(config)
        result = system.run(trace, warm_regions=warm)
        tech = config.resolved_technology()
        geometry = ArrayGeometry(
            capacity_bytes=kib(64), associativity=2, line_bytes=64, banks=config.dl1_banks
        )
        ledger = EnergyLedger()
        ledger.register("dl1", estimate_array(tech, geometry))
        stats = result.dl1_stats
        ledger.count_read("dl1", stats["read_hits"] + stats["read_misses"])
        ledger.count_write("dl1", stats["write_hits"] + stats["write_misses"] + stats["fills"])
        report = ledger.report(elapsed_ns=result.cycles)
        print(
            f"  {label:16s}: {result.cycles:9.0f} cycles | dynamic "
            f"{report.dynamic_nj:8.1f} nJ | leakage {report.leakage_nj:8.1f} nJ "
            f"| total {report.total_nj:8.1f} nJ"
        )


def scaling_gap() -> None:
    print("\n=== Leakage gap across nodes (64 KB array) ===")
    print(f"{'node':>6} {'SRAM mW':>10} {'STT mW':>10} {'ratio':>7}")
    for node in (45.0, 32.0, 22.0, 14.0):
        sram = scale_technology(SRAM_32NM_HP, node)
        stt = scale_technology(STT_MRAM_32NM, node)
        print(
            f"{node:5.0f}n {sram.leakage_mw:10.2f} {stt.leakage_mw:10.2f} "
            f"{sram.leakage_mw / stt.leakage_mw:7.2f}"
        )


def endurance(kernel: str = "gemm") -> None:
    print(f"\n=== Worst-line DL1 lifetime under '{kernel}' write traffic ===")
    program = build_kernel(kernel)
    trace = materialize_trace(program)
    config = SystemConfig(technology="stt-mram", frontend="vwb", track_line_writes=True)
    system = System(config)
    result = system.run(trace, warm_regions=warm_regions_of(program))
    writes = system.dl1.line_write_counts
    elapsed_s = result.cycles * 1e-9
    for tech in (STT_MRAM_32NM, RERAM_32NM, PRAM_32NM):
        estimate = EnduranceModel(tech).estimate(writes, elapsed_s)
        years = estimate.lifetime_years_worst
        verdict = "OK for a decade" if estimate.viable_for_decade else "WEARS OUT"
        print(f"  {tech.name:14s}: {years:12.2e} years  ({verdict})")


if __name__ == "__main__":
    table_one()
    kernel_energy()
    scaling_gap()
    endurance()
