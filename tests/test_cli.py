"""The command-line interface."""

import pytest

from repro.cli import PAPER_EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table1" in out and "all" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "STT-MRAM" in out
        assert "3.37ns" in out

    def test_figure_with_kernel_subset(self, capsys):
        assert main(["fig1", "--kernels", "gemm", "--no-bars"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out
        assert "#" not in out.split("note:")[0]

    def test_bars_rendered_by_default(self, capsys):
        assert main(["fig1", "--kernels", "gemm"]) == 0
        assert "#" in capsys.readouterr().out

    def test_paper_experiments_cover_figures(self):
        assert set(PAPER_EXPERIMENTS) == {
            "table1", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        }

    def test_size_option(self, capsys):
        assert main(["fig1", "--kernels", "syrk", "--size", "MINI"]) == 0


class TestProfileCommand:
    def test_profile_requires_a_kernel(self, capsys):
        assert main(["profile"]) == 2
        assert "kernel" in capsys.readouterr().err

    def test_profile_unknown_config(self, capsys, tmp_path):
        # Unknown configuration -> ConfigurationError -> usage exit code.
        assert main(["profile", "gemm", "--config", "warp", "--out", str(tmp_path)]) == 2
        assert "unknown configuration" in capsys.readouterr().err

    def test_profile_gemm_nvm_vwb(self, capsys, tmp_path):
        # The acceptance path: a ledger that balances and a Perfetto-
        # loadable trace on disk.
        import json

        assert main(["profile", "gemm", "--config", "nvm-vwb", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "gemm on vwb" in out
        assert "compute" in out and "frontend_hit" in out
        trace_path = tmp_path / "profile_gemm_vwb.json"
        assert "profile_gemm_vwb.json" in out
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]

    def test_profile_csv_option(self, capsys, tmp_path):
        assert (
            main(
                [
                    "profile", "gemm", "--config", "vwb",
                    "--out", str(tmp_path), "--csv", str(tmp_path),
                ]
            )
            == 0
        )
        assert (tmp_path / "profile_gemm_vwb.csv").exists()
