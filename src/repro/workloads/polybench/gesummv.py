"""PolyBench ``gesummv``: y = alpha*A*x + beta*B*x.

Two matrices are streamed simultaneously in the unit-stride inner loop,
doubling the demand-read bandwidth relative to a single-matrix kernel —
the heaviest read mix in the suite.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"n": 100}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the gesummv program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    n = dims["n"]
    i, j = Var("i"), Var("j")
    a = Array("A", (n, n))
    b = Array("B", (n, n))
    x = Array("x", (n,))
    y = Array("y", (n,))
    tmp = Array("tmp", (n,))
    body = [
        loop(
            i,
            n,
            [
                stmt(writes=[tmp[i], y[i]], flops=0, label="init"),
                loop(
                    j,
                    n,
                    [
                        stmt(
                            reads=[tmp[i], a[i, j], x[j]],
                            writes=[tmp[i]],
                            flops=2,
                            label="a_mac",
                        ),
                        stmt(
                            reads=[y[i], b[i, j], x[j]],
                            writes=[y[i]],
                            flops=2,
                            label="b_mac",
                        ),
                    ],
                ),
                stmt(reads=[tmp[i], y[i]], writes=[y[i]], flops=3, label="combine"),
            ],
        )
    ]
    return Program("gesummv", body)
