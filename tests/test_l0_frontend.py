"""The L0 filter-cache comparison front-end."""

import pytest

from repro.core.l0 import L0Frontend
from repro.errors import ConfigurationError
from repro.mem.cache import Cache, CacheConfig
from repro.mem.mainmem import MainMemory


def make_frontend(total_bits=2048, mem_latency=100.0):
    backing = Cache(
        CacheConfig(
            name="dl1",
            capacity_bytes=4096,
            associativity=2,
            line_bytes=64,
            read_hit_cycles=4,
            write_hit_cycles=2,
            banks=4,
        ),
        MainMemory(latency_cycles=mem_latency, transfer_cycles=0.0),
    )
    return L0Frontend(backing, total_bits=total_bits)


class TestGeometry:
    def test_2kbit_is_four_lines(self):
        fe = make_frontend(2048)
        assert fe._store.config.n_lines == 4
        assert fe._store.config.window_bytes == 64

    def test_rejects_sub_line_capacity(self):
        with pytest.raises(ConfigurationError):
            make_frontend(total_bits=256)


class TestReadPath:
    def test_hit_after_fill(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        assert fe.read(8, 4, 1000.0) == 1.0

    def test_narrow_fill_no_window_effect(self):
        """Unlike the VWB, filling one line does NOT bring the adjacent
        line — the L0 'conforms to the interface of the regular size
        memory array'."""
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        latency = fe.read(64, 4, 1000.0)
        assert latency > 1.0  # adjacent line still misses
        assert fe.stats.promotions == 2

    def test_dl1_hit_fill_costs_nvm_read(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        # Evict line 0 with four other fills (fully associative LRU).
        for i in range(1, 5):
            fe.read(i * 64, 4, i * 1000.0)
        latency = fe.read(0, 4, 10000.0)
        assert latency == 4.0  # narrow NVM array read

    def test_store_hit_updates_l0(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        assert fe.write(0, 4, 1000.0) == 1.0
        assert fe._store.is_dirty(0)

    def test_store_miss_writes_array_without_allocating(self):
        fe = make_frontend()
        fe.write(0, 4, 0.0)
        assert not fe._store.contains(0)
        assert fe.backing.is_dirty(0)

    def test_dirty_eviction_written_back(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        fe.write(0, 4, 100.0)
        for i in range(1, 5):
            fe.read(i * 64, 4, 1000.0 * i)
        assert fe.stats.buffer_writebacks == 1
        assert fe.backing.is_dirty(0)


class TestPrefetch:
    def test_prefetch_allocates_at_issue(self):
        """An ordinary cache allocates on fill start — the structural
        weakness vs the VWB's staged buffers."""
        fe = make_frontend()
        fe.prefetch(0, 0.0)
        assert fe._store.contains(0)

    def test_prefetch_hides_fill_latency(self):
        fe = make_frontend()
        fe.prefetch(0, 0.0)
        assert fe.read(0, 4, 5000.0) == 1.0

    def test_early_read_waits(self):
        fe = make_frontend(mem_latency=100.0)
        fe.prefetch(0, 0.0)
        latency = fe.read(0, 4, 10.0)
        assert latency > 50.0

    def test_prefetch_can_evict_live_line(self):
        fe = make_frontend()
        for i in range(4):
            fe.read(i * 64, 4, i * 1000.0)  # fill all four lines
        fe.prefetch(512, 10000.0)  # evicts LRU = line 0
        assert not fe._store.contains(0)

    def test_outstanding_fill_bound_drops_hints(self):
        fe = make_frontend(mem_latency=10000.0)
        for i in range(6):
            fe.prefetch(i * 64, 0.0)
        assert fe.stats.prefetches_useless >= 2

    def test_prefetch_of_resident_useless(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        fe.prefetch(0, 1000.0)
        assert fe.stats.prefetches_useless == 1

    def test_reset(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        fe.reset()
        assert not fe._store.contains(0)
        assert fe.stats.buffer_accesses == 0
