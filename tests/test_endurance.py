"""Endurance and lifetime projections."""

import pytest

from repro.errors import ConfigurationError
from repro.tech.endurance import EnduranceModel
from repro.tech.params import PRAM_32NM, RERAM_32NM, SRAM_32NM_HP, STT_MRAM_32NM


class TestLifetime:
    def test_stt_mram_survives_decade_at_l1_rates(self):
        # A hot L1 line written every 10 ns: 1e8 writes/s; STT-MRAM's 1e15
        # endurance gives ~4 months... the paper's cited 1e15+ is for the
        # hottest realistic traffic with some locality; at 1e6 writes/s
        # the line lasts ~30 years.
        model = EnduranceModel(STT_MRAM_32NM)
        estimate = model.estimate({0: 1_000_000}, elapsed_seconds=1.0)
        assert estimate.lifetime_years_worst > 10

    @pytest.mark.parametrize("tech", [RERAM_32NM, PRAM_32NM])
    def test_reram_pram_fail_decade_at_l1_rates(self, tech):
        # Section II: "Both PRAM and ReRAM are also plagued by severe
        # endurance issues" — at the same write rate they wear out fast.
        model = EnduranceModel(tech)
        estimate = model.estimate({0: 1_000_000}, elapsed_seconds=1.0)
        assert not estimate.viable_for_decade

    def test_stt_outlives_reram_under_same_traffic(self):
        writes = {0: 500, 1: 100}
        stt = EnduranceModel(STT_MRAM_32NM).estimate(writes, 1e-3)
        reram = EnduranceModel(RERAM_32NM).estimate(writes, 1e-3)
        assert stt.lifetime_years_worst > reram.lifetime_years_worst

    def test_sram_unbounded(self):
        estimate = EnduranceModel(SRAM_32NM_HP).estimate({0: 10**9}, 1.0)
        assert estimate.lifetime_years_worst == float("inf")

    def test_hottest_line_drives_worst_case(self):
        model = EnduranceModel(STT_MRAM_32NM)
        est = model.estimate({0: 1000, 1: 10}, elapsed_seconds=1.0)
        assert est.hottest_line_writes_per_second == pytest.approx(1000.0)
        assert est.mean_writes_per_second == pytest.approx(505.0)
        assert est.lifetime_years_worst < est.lifetime_years_mean

    def test_no_writes_is_infinite(self):
        est = EnduranceModel(STT_MRAM_32NM).estimate({}, 1.0)
        assert est.lifetime_years_worst == float("inf")

    def test_zero_count_lines_ignored(self):
        est = EnduranceModel(STT_MRAM_32NM).estimate({0: 0, 1: 100}, 1.0)
        assert est.hottest_line_writes_per_second == pytest.approx(100.0)

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ConfigurationError):
            EnduranceModel(STT_MRAM_32NM).estimate({0: 1}, 0.0)

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError):
            EnduranceModel(STT_MRAM_32NM).estimate({0: 1}, -1.0)

    def test_empty_counts_report_zero_rates(self):
        est = EnduranceModel(STT_MRAM_32NM).estimate({}, 1.0)
        assert est.hottest_line_writes_per_second == 0.0
        assert est.mean_writes_per_second == 0.0
        assert est.lifetime_years_mean == float("inf")
        assert est.viable_for_decade

    def test_sram_unbounded_even_under_extreme_traffic(self):
        # 1e12 writes/s would wear any NVM out in seconds; SRAM's
        # feedback cell has no endurance bound at all.
        est = EnduranceModel(SRAM_32NM_HP).estimate({0: 10**12}, 1.0)
        assert est.lifetime_years_mean == float("inf")
        assert est.viable_for_decade
