"""repro — reproduction of "System level exploration of a STT-MRAM based
Level 1 Data-Cache" (Komalan et al., DATE 2015).

The package builds the paper's whole experimental platform in Python:

- :mod:`repro.tech` — SRAM/STT-MRAM technology models (Table I);
- :mod:`repro.mem` — caches, banks, buffers, DRAM;
- :mod:`repro.core` — the Very Wide Buffer proposal and its competitors;
- :mod:`repro.cpu` — the in-order ARM-like core and system assembly;
- :mod:`repro.workloads` — the PolyBench kernel subset as an affine IR;
- :mod:`repro.transforms` — the paper's code transformations;
- :mod:`repro.experiments` — one module per reproduced table/figure;
- :mod:`repro.exec` — the parallel experiment engine and its
  content-addressed run cache (``--jobs``/``--cache-dir`` on the CLI).

Quickstart::

    from repro import SystemConfig, System, build_kernel, materialize_trace

    baseline = System(SystemConfig(technology="sram"))
    dropin = System(SystemConfig(technology="stt-mram"))
    trace = materialize_trace(build_kernel("gemm"))
    penalty = dropin.run(trace).penalty_vs(baseline.run(trace))
"""

from .analysis import RunMetrics, compare_runs, metrics_of
from .cpu.model import CPUConfig, RunResult
from .cpu.system import System, SystemConfig, warm_regions_of
from .exec import ExecutionEngine, RunCache, RunPoint, make_engine
from .core.vwb import VWBConfig, VeryWideBuffer
from .tech.params import (
    SRAM_32NM_HP,
    STT_MRAM_32NM,
    MemoryTechnology,
    get_technology,
)
from .transforms.pipeline import OptLevel, optimize
from .workloads import build_kernel, kernel_names, materialize_trace
from .workloads.datasets import DatasetSize

__version__ = "1.0.0"

__all__ = [
    "RunMetrics",
    "compare_runs",
    "metrics_of",
    "CPUConfig",
    "RunResult",
    "System",
    "SystemConfig",
    "warm_regions_of",
    "ExecutionEngine",
    "RunCache",
    "RunPoint",
    "make_engine",
    "VWBConfig",
    "VeryWideBuffer",
    "SRAM_32NM_HP",
    "STT_MRAM_32NM",
    "MemoryTechnology",
    "get_technology",
    "OptLevel",
    "optimize",
    "build_kernel",
    "kernel_names",
    "materialize_trace",
    "DatasetSize",
    "__version__",
]
