"""Access descriptors."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.request import Access, AccessType


class TestAccessType:
    def test_write_flag(self):
        assert AccessType.WRITE.is_write
        assert not AccessType.READ.is_write
        assert not AccessType.PREFETCH.is_write

    def test_demand_flag(self):
        assert AccessType.READ.is_demand
        assert AccessType.WRITE.is_demand
        assert AccessType.IFETCH.is_demand
        assert not AccessType.PREFETCH.is_demand


class TestAccess:
    def test_end(self):
        assert Access(100, 4, AccessType.READ).end == 104

    def test_single_line(self):
        acc = Access(10, 4, AccessType.READ)
        assert list(acc.lines(64)) == [0]

    def test_line_aligned_span(self):
        acc = Access(64, 64, AccessType.READ)
        assert list(acc.lines(64)) == [64]

    def test_crossing_access_touches_two_lines(self):
        acc = Access(60, 8, AccessType.READ)
        assert list(acc.lines(64)) == [0, 64]

    def test_wide_access_touches_many_lines(self):
        acc = Access(0, 256, AccessType.READ)
        assert list(acc.lines(64)) == [0, 64, 128, 192]

    def test_last_byte_boundary(self):
        acc = Access(0, 64, AccessType.READ)
        assert list(acc.lines(64)) == [0]

    def test_rejects_negative_address(self):
        with pytest.raises(ConfigurationError):
            Access(-1, 4, AccessType.READ)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            Access(0, 0, AccessType.READ)


class TestCacheStatsBasics:
    def test_merge_and_rates(self):
        from repro.mem.stats import CacheStats

        a = CacheStats(read_hits=3, read_misses=1)
        b = CacheStats(write_hits=2, write_misses=2)
        merged = a.merged_with(b)
        assert merged.accesses == 8
        assert merged.hits == 5
        assert merged.hit_rate == pytest.approx(5 / 8)
        assert merged.miss_rate == pytest.approx(3 / 8)

    def test_empty_rates_are_zero(self):
        from repro.mem.stats import CacheStats

        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.miss_rate == 0.0

    def test_as_dict_roundtrip(self):
        from repro.mem.stats import CacheStats

        stats = CacheStats(read_hits=7, writebacks=2)
        d = stats.as_dict()
        assert d["read_hits"] == 7
        assert d["writebacks"] == 2
        assert "bank_wait_cycles" in d
