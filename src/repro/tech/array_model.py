"""Analytic memory-array model (a deliberately small CACTI stand-in).

The paper takes its 64 KB array numbers from silicon measurements
(Table I).  For *other* geometries — the tiny VWB register file, the 2 MB
L2, the size sweeps in the ablation benches — we need a way to derive
latency, leakage, area and per-access energy from first-order scaling
rules.  This module provides that: it anchors every estimate to the
technology's reference 64 KB / 2-way numbers and scales with array
geometry using the classic square-root wire-delay rule that CACTI-like
tools reduce to at this level of abstraction.

The model is intentionally simple and fully documented so its assumptions
can be audited:

- access time splits into a fixed sensing/decode component and a wire
  component proportional to ``sqrt(bits_per_bank)``;
- leakage is proportional to bit count (periphery folded into the per-bit
  constant);
- area is cell area plus a fixed fractional periphery overhead that grows
  with associativity (comparators) and bank count (duplicated decoders);
- dynamic energy per access is the per-bit energy times the bits moved per
  access, plus a decoder term that grows with ``log2(rows)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import BITS_PER_BYTE, f2_to_mm2, is_power_of_two, kib
from .params import MemoryTechnology

#: Geometry all presets are anchored to: the paper's 64 KB, 2-way array.
_REFERENCE_BYTES = kib(64)
_REFERENCE_ASSOC = 2
#: Fraction of the reference access time attributed to wires (H-tree +
#: bitlines); the remainder is sensing/decode and does not scale with size.
_WIRE_FRACTION = 0.55
#: Fixed periphery area overhead as a fraction of cell-array area.
_PERIPHERY_AREA_FRACTION = 0.35
#: Extra periphery area per doubling of associativity beyond the reference.
_ASSOC_AREA_STEP = 0.04
#: Extra periphery area per doubling of bank count beyond one bank.
_BANK_AREA_STEP = 0.03
#: Decoder energy per access per address bit, in picojoules.
_DECODE_PJ_PER_ADDRESS_BIT = 0.05


@dataclass(frozen=True)
class ArrayGeometry:
    """Physical organisation of one memory array.

    Attributes:
        capacity_bytes: Total data capacity in bytes.
        associativity: Number of ways (1 for a register file / direct map).
        line_bytes: Bytes moved per full-line access.
        banks: Number of independently accessible banks.
    """

    capacity_bytes: int
    associativity: int = 1
    line_bytes: int = 64
    banks: int = 1

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(f"capacity must be positive: {self.capacity_bytes}")
        if self.associativity <= 0:
            raise ConfigurationError(f"associativity must be positive: {self.associativity}")
        if self.line_bytes <= 0:
            raise ConfigurationError(f"line size must be positive: {self.line_bytes}")
        if not is_power_of_two(self.banks):
            raise ConfigurationError(f"bank count must be a power of two: {self.banks}")
        if self.capacity_bytes % self.line_bytes != 0:
            raise ConfigurationError(
                f"capacity {self.capacity_bytes} not divisible by line size {self.line_bytes}"
            )

    @property
    def bits(self) -> int:
        """Total data bits in the array."""
        return self.capacity_bytes * BITS_PER_BYTE

    @property
    def bits_per_bank(self) -> int:
        """Data bits in a single bank (drives the wire-delay term)."""
        return max(1, self.bits // self.banks)

    @property
    def lines(self) -> int:
        """Number of cache lines (or register-file rows) stored."""
        return self.capacity_bytes // self.line_bytes


@dataclass(frozen=True)
class ArrayEstimate:
    """Derived physical characteristics of an array in a technology.

    All latencies are in nanoseconds, powers in milliwatts, energies in
    picojoules, areas in square millimetres.
    """

    technology: str
    geometry: ArrayGeometry
    read_latency_ns: float
    write_latency_ns: float
    leakage_mw: float
    area_mm2: float
    read_energy_pj: float
    write_energy_pj: float

    def summary(self) -> str:
        """One-line human-readable summary, used by the CLI."""
        g = self.geometry
        return (
            f"{self.technology}: {g.capacity_bytes // 1024}KB {g.associativity}-way "
            f"x{g.banks} banks | rd {self.read_latency_ns:.3f}ns "
            f"wr {self.write_latency_ns:.3f}ns | {self.leakage_mw:.2f}mW leak | "
            f"{self.area_mm2:.4f}mm^2 | rd {self.read_energy_pj:.1f}pJ "
            f"wr {self.write_energy_pj:.1f}pJ per line"
        )


def _scaled_latency(reference_ns: float, geometry: ArrayGeometry) -> float:
    """Scale a reference-geometry latency to ``geometry``.

    The wire component scales with ``sqrt(bits_per_bank / reference_bits)``
    (bitline/wordline RC grows with physical array edge length); the
    sensing component is held constant.  Banking shortens wires, which is
    exactly why the paper simulates a banked NVM array.
    """
    reference_bits = _REFERENCE_BYTES * BITS_PER_BYTE
    wire = reference_ns * _WIRE_FRACTION
    fixed = reference_ns - wire
    scale = math.sqrt(geometry.bits_per_bank / reference_bits)
    return fixed + wire * scale


def estimate_array(tech: MemoryTechnology, geometry: ArrayGeometry) -> ArrayEstimate:
    """Estimate latency/leakage/area/energy of an array built in ``tech``.

    Anchored so that a 64 KB, 2-way, single-bank geometry reproduces the
    technology's reference (Table I) numbers exactly.

    Args:
        tech: Technology parameters (see :mod:`repro.tech.params`).
        geometry: Array organisation to estimate.

    Returns:
        An :class:`ArrayEstimate`.  ``read_energy_pj``/``write_energy_pj``
        are per full-line access.
    """
    read_ns = _scaled_latency(tech.read_latency_ns, geometry)
    write_ns = _scaled_latency(tech.write_latency_ns, geometry)

    reference_bits = _REFERENCE_BYTES * BITS_PER_BYTE
    leakage_mw = tech.leakage_mw * geometry.bits / reference_bits

    cell_mm2 = f2_to_mm2(tech.cell_area_f2, geometry.bits, tech.feature_nm)
    periphery = _PERIPHERY_AREA_FRACTION
    if geometry.associativity > _REFERENCE_ASSOC:
        periphery += _ASSOC_AREA_STEP * math.log2(geometry.associativity / _REFERENCE_ASSOC)
    if geometry.banks > 1:
        periphery += _BANK_AREA_STEP * math.log2(geometry.banks)
    area_mm2 = cell_mm2 * (1.0 + periphery)

    line_bits = geometry.line_bytes * BITS_PER_BYTE
    address_bits = max(1, math.ceil(math.log2(max(2, geometry.lines))))
    decode_pj = _DECODE_PJ_PER_ADDRESS_BIT * address_bits
    read_energy_pj = tech.read_energy_pj_per_bit * line_bits + decode_pj
    write_energy_pj = tech.write_energy_pj_per_bit * line_bits + decode_pj

    return ArrayEstimate(
        technology=tech.name,
        geometry=geometry,
        read_latency_ns=read_ns,
        write_latency_ns=write_ns,
        leakage_mw=leakage_mw,
        area_mm2=area_mm2,
        read_energy_pj=read_energy_pj,
        write_energy_pj=write_energy_pj,
    )
