"""Set-associative cache: functional behaviour."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mem.cache import Cache, CacheConfig
from repro.mem.mainmem import MainMemory
from repro.mem.request import Access, AccessType


def make_cache(**overrides):
    defaults = dict(
        name="t",
        capacity_bytes=1024,
        associativity=2,
        line_bytes=64,
        read_hit_cycles=1,
        write_hit_cycles=1,
    )
    defaults.update(overrides)
    return Cache(CacheConfig(**defaults), MainMemory(latency_cycles=100.0, transfer_cycles=0.0))


class TestConfigValidation:
    def test_sets_computed(self):
        assert make_cache().config.sets == 8

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            make_cache(line_bytes=48)

    def test_rejects_indivisible_capacity(self):
        with pytest.raises(ConfigurationError):
            make_cache(capacity_bytes=1000)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            make_cache(capacity_bytes=1024 + 128 * 3, associativity=1)

    def test_rejects_zero_latency(self):
        with pytest.raises(ConfigurationError):
            make_cache(read_hit_cycles=0)

    def test_rejects_bad_banks(self):
        with pytest.raises(ConfigurationError):
            make_cache(banks=3)


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        assert cache.stats.read_misses == 1
        cache.access(Access(0, 4, AccessType.READ), 200.0)
        assert cache.stats.read_hits == 1

    def test_spatial_hit_within_line(self):
        cache = make_cache()
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        cache.access(Access(60, 4, AccessType.READ), 200.0)
        assert cache.stats.read_hits == 1

    def test_distinct_lines_miss(self):
        cache = make_cache()
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        cache.access(Access(64, 4, AccessType.READ), 200.0)
        assert cache.stats.read_misses == 2

    def test_contains(self):
        cache = make_cache()
        assert not cache.contains(0)
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        assert cache.contains(0)
        assert cache.contains(63)
        assert not cache.contains(64)

    def test_crossing_access_counts_both_lines(self):
        cache = make_cache()
        cache.access(Access(60, 8, AccessType.READ), 0.0)
        assert cache.stats.read_misses == 2
        assert cache.contains(0) and cache.contains(64)

    def test_resident_lines(self):
        cache = make_cache()
        for i in range(4):
            cache.access(Access(i * 64, 4, AccessType.READ), i * 300.0)
        assert cache.resident_lines == 4


class TestWritePolicy:
    def test_write_allocate(self):
        cache = make_cache()
        cache.access(Access(0, 4, AccessType.WRITE), 0.0)
        assert cache.stats.write_misses == 1
        assert cache.contains(0)
        assert cache.is_dirty(0)

    def test_write_hit_sets_dirty(self):
        cache = make_cache()
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        assert not cache.is_dirty(0)
        cache.access(Access(0, 4, AccessType.WRITE), 200.0)
        assert cache.is_dirty(0)

    def test_writeback_on_dirty_eviction(self):
        cache = make_cache(associativity=1)  # 16 sets, direct-mapped
        cache.access(Access(0, 4, AccessType.WRITE), 0.0)
        # Same set: 16 sets x 64 B = 1024 B stride.
        cache.access(Access(1024, 4, AccessType.READ), 500.0)
        assert cache.stats.evictions == 1
        assert cache.stats.writebacks == 1
        assert cache.next_level.writes == 1

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(associativity=1)
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        cache.access(Access(1024, 4, AccessType.READ), 500.0)
        assert cache.stats.evictions == 1
        assert cache.stats.writebacks == 0

    def test_no_write_through(self):
        cache = make_cache()
        for t in range(5):
            cache.access(Access(0, 4, AccessType.WRITE), t * 100.0)
        # One allocation fetch; no per-write traffic to the next level.
        assert cache.next_level.writes == 0
        assert cache.next_level.reads == 1


class TestLRUWithinSet:
    def test_evicts_lru_way(self):
        cache = make_cache()  # 8 sets, 2-way; set stride = 512 B
        cache.access(Access(0, 4, AccessType.READ), 0.0)  # way A
        cache.access(Access(512, 4, AccessType.READ), 200.0)  # way B
        cache.access(Access(0, 4, AccessType.READ), 400.0)  # touch A
        cache.access(Access(1024, 4, AccessType.READ), 600.0)  # evicts B
        assert cache.contains(0)
        assert not cache.contains(512)
        assert cache.contains(1024)


class TestMaintenance:
    def test_reset_clears_contents_and_stats(self):
        cache = make_cache()
        cache.access(Access(0, 4, AccessType.WRITE), 0.0)
        cache.reset()
        assert not cache.contains(0)
        assert cache.stats.accesses == 0
        assert cache.resident_lines == 0

    def test_clear_stats_keeps_contents(self):
        cache = make_cache()
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        cache.clear_stats()
        assert cache.contains(0)
        assert cache.stats.accesses == 0

    def test_clear_stats_resets_fast_write_credit(self):
        # The AWARE fast-write credit is a statistics-epoch accumulator:
        # a warm run must start from the same credit as a cold run, or
        # warm timing drifts from the replayed cold run.
        cache = make_cache()
        cache._fast_write_credit = 0.75
        cache.clear_stats()
        assert cache._fast_write_credit == 0.0

    def test_clear_stats_resets_retry_counters_keeps_retired_lines(self):
        from repro.reliability.faults import FaultInjector, ReliabilityConfig

        injector = FaultInjector(
            ReliabilityConfig(seed=0, write_error_rate=1e-3, retire_after_retries=4),
            line_bits=512,
        )
        cache = Cache(
            make_cache().config,
            MainMemory(latency_cycles=100.0, transfer_cycles=0.0),
            reliability=injector,
        )
        cache._retirement._retries[(0, 0)] = 3
        cache._retirement.retire(1, 0)
        cache.clear_stats()
        # Cold-run retry credit must not bleed into the warm run's
        # retirement decisions...
        assert cache._retirement._retries == {}
        # ...but physically retired slots stay retired (contents survive
        # clear_stats, and so does wear).
        assert cache._retirement.is_disabled(1, 0)

    def test_clear_stats_resets_reliability_stats(self):
        from repro.reliability.faults import FaultInjector, ReliabilityConfig

        injector = FaultInjector(
            ReliabilityConfig(seed=0, write_error_rate=1.0, max_write_attempts=2),
            line_bits=512,
        )
        cache = Cache(
            make_cache().config,
            MainMemory(latency_cycles=100.0, transfer_cycles=0.0),
            reliability=injector,
        )
        cache.access(Access(0, 4, AccessType.WRITE), 0.0)
        assert injector.stats.write_faults > 0
        cache.clear_stats()
        assert injector.stats.write_faults == 0
        assert injector.stats.write_retries == 0

    def test_duplicate_fill_is_simulation_error(self):
        cache = make_cache()
        cache.access(Access(0, 4, AccessType.READ), 0.0)
        with pytest.raises(SimulationError):
            cache._fill(0, 100.0)

    def test_line_write_tracking(self):
        cache = make_cache(track_line_writes=True)
        cache.access(Access(0, 4, AccessType.WRITE), 0.0)
        cache.access(Access(0, 4, AccessType.WRITE), 100.0)
        counts = cache.line_write_counts
        assert sum(counts.values()) >= 2

    def test_line_write_tracking_off_by_default(self):
        cache = make_cache()
        cache.access(Access(0, 4, AccessType.WRITE), 0.0)
        assert cache.line_write_counts == {}

    def test_line_addr(self):
        cache = make_cache()
        assert cache.line_addr(100) == 64
        assert cache.line_addr(64) == 64
        assert cache.line_addr(63) == 0
