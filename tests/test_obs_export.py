"""The profile exporters: Chrome trace JSON, CSV and flamegraph text."""

import csv
import json

import pytest

from repro.experiments.export import (
    profile_to_chrome_trace,
    render_flame,
    render_profile,
    write_perfetto,
    write_profile_csv,
)
from repro.experiments.runner import ExperimentRunner
from repro.obs import LEDGER_CATEGORIES


@pytest.fixture(scope="module")
def profile():
    return ExperimentRunner(kernels=["gemm"]).profile("gemm", config="nvm-vwb")


class TestChromeTrace:
    def test_round_trips_through_json(self, profile):
        doc = json.loads(json.dumps(profile_to_chrome_trace(profile)))
        assert doc["traceEvents"]
        assert doc["otherData"]["kernel"] == "gemm"
        assert doc["otherData"]["config"] == "vwb"  # alias resolved

    def test_timestamps_are_monotonic(self, profile):
        doc = profile_to_chrome_trace(profile)
        ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert ts, "no complete events exported"
        assert all(a <= b for a, b in zip(ts, ts[1:]))
        assert all(e["dur"] >= 0.0 for e in doc["traceEvents"] if e["ph"] == "X")

    def test_pid_tid_per_component(self, profile):
        doc = profile_to_chrome_trace(profile)
        meta = {
            (e.get("pid"), e.get("tid")): e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] in ("process_name", "thread_name")
        }
        # CPU ops on pid 1, each memory component on its own pid-2 thread.
        assert meta[(1, None)] == "cpu"
        assert meta[(2, None)] == "mem"
        assert meta[(1, 1)] == "ops"
        mem_threads = {name for (pid, tid), name in meta.items() if pid == 2 and tid}
        assert {"dl1", "l2", "vwb"} <= mem_threads
        # Every X event lands on a named (pid, tid) lane.
        for e in doc["traceEvents"]:
            if e["ph"] == "X":
                assert (e["pid"], e["tid"]) in meta

    def test_events_carry_region_and_addr(self, profile):
        doc = profile_to_chrome_trace(profile)
        regions = {
            e["args"].get("region")
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["args"].get("region")
        }
        assert "i.k.j" in regions
        assert any(
            e["args"].get("addr", "").startswith("0x")
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        )

    def test_write_perfetto_names_file_by_kernel_and_config(self, profile, tmp_path):
        path = write_perfetto(profile, tmp_path)
        assert path.name == "profile_gemm_vwb.json"
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestCsvAndText:
    def test_profile_csv_rows(self, profile, tmp_path):
        path = write_profile_csv(profile, tmp_path)
        with open(path, newline="") as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["region", "category", "cycles"]
        body = rows[1:]
        assert all(len(r) == 3 for r in body)
        categories = {r[1] for r in body}
        assert categories <= set(LEDGER_CATEGORIES)
        totals = [r for r in body if r[0] == "TOTAL"]
        assert totals
        assert sum(float(r[2]) for r in totals) == profile.result.cycles

    def test_flamegraph_collapsed_stacks(self, profile):
        lines = render_flame(profile).splitlines()
        assert lines
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            float(value)
            assert stack.startswith("gemm[vwb];")

    def test_render_profile_mentions_everything(self, profile):
        text = render_profile(profile)
        assert "gemm on vwb" in text
        assert "category" in text and "compute" in text
        assert "flamegraph" in text
