"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table/figure of the paper (or one
ablation), asserts its headline shape, and writes the rendered rows to
``results/<name>.txt`` so the artefacts survive the pytest capture.

The :class:`~repro.experiments.runner.ExperimentRunner` is session-scoped:
kernel traces and named-configuration runs are shared across benches,
so the full harness costs roughly one pass over the evaluation grid.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import ExperimentRunner
from repro.experiments.report import FigureResult, render_figure

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One shared runner over the full 12-kernel suite."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def save():
    """Write a rendered figure to results/ and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result: FigureResult) -> str:
        text = render_figure(result)
        (RESULTS_DIR / f"{result.name}.txt").write_text(text + "\n")
        print(f"\n{text}")
        return text

    return _save


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    The interesting output is the figure itself; wall-clock time is
    reported for orientation, so one round is enough and keeps the whole
    harness to a few minutes.
    """
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
