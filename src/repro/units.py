"""Unit helpers shared across the technology and timing models.

The simulator works internally in *CPU cycles* (the platform is a 1 GHz
ARM-like core, so one cycle is one nanosecond by default) and in *bytes*
for capacities.  The paper quotes latencies in nanoseconds, capacities in
kilobytes and kilobits, and cell areas in F^2, so this module centralises
the conversions and keeps rounding policy in one place.
"""

from __future__ import annotations

import math

from .errors import ConfigurationError

#: Number of bits in a byte; named to avoid magic numbers in capacity math.
BITS_PER_BYTE = 8

#: Default CPU clock of the platform modelled in the paper (Section VI).
DEFAULT_CLOCK_HZ = 1_000_000_000


def ns_to_cycles(latency_ns: float, clock_hz: float = DEFAULT_CLOCK_HZ) -> int:
    """Convert a latency in nanoseconds to a whole number of CPU cycles.

    The result is rounded *up*: a 3.37 ns STT-MRAM read on a 1 GHz core
    occupies 4 cycles, exactly as the paper assumes ("read access time of
    the STT-MRAM cache to be four times that of the SRAM cache").

    Args:
        latency_ns: Access latency in nanoseconds; must be non-negative.
        clock_hz: Core clock frequency in hertz.

    Returns:
        The smallest integer cycle count covering ``latency_ns``; at least
        1 for any positive latency.

    Raises:
        ConfigurationError: If the latency is negative or the clock is not
            positive.
    """
    if latency_ns < 0:
        raise ConfigurationError(f"latency must be non-negative, got {latency_ns} ns")
    if clock_hz <= 0:
        raise ConfigurationError(f"clock must be positive, got {clock_hz} Hz")
    if latency_ns == 0:
        return 0
    cycle_ns = 1e9 / clock_hz
    return max(1, math.ceil(latency_ns / cycle_ns - 1e-9))


def cycles_to_ns(cycles: float, clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
    """Convert a cycle count back to nanoseconds at the given clock."""
    if clock_hz <= 0:
        raise ConfigurationError(f"clock must be positive, got {clock_hz} Hz")
    return cycles * 1e9 / clock_hz


def kib(n: float) -> int:
    """Return ``n`` kibibytes expressed in bytes (e.g. ``kib(64)`` = 65536)."""
    return int(n * 1024)


def mib(n: float) -> int:
    """Return ``n`` mebibytes expressed in bytes."""
    return int(n * 1024 * 1024)


def kbit(n: float) -> int:
    """Return ``n`` kilobits expressed in *bits* (e.g. ``kbit(2)`` = 2048).

    The paper sizes the Very Wide Buffer in kilobits ("at-least 2KBit of
    data"), so VWB capacities flow through this helper.
    """
    return int(n * 1024)


def bits_to_bytes(bits: int) -> int:
    """Convert a bit count to bytes, requiring whole-byte alignment."""
    if bits % BITS_PER_BYTE != 0:
        raise ConfigurationError(f"bit count {bits} is not a whole number of bytes")
    return bits // BITS_PER_BYTE


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of a power-of-two ``value``; raise otherwise.

    Cache geometry (sets, line size, banks) must be a power of two so tag,
    index and offset fields can be carved from the address by shifting.
    """
    if not is_power_of_two(value):
        raise ConfigurationError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def f2_to_mm2(cell_area_f2: float, bits: int, feature_nm: float) -> float:
    """Convert a per-bit cell area in F^2 to a total array area in mm^2.

    This is the standard technology-independent area metric used by
    Table I of the paper (SRAM 146 F^2 vs STT-MRAM 42 F^2 at 32 nm).
    The result covers the cell array only; peripheral overhead is added by
    the analytic array model.

    Args:
        cell_area_f2: Area of one bit cell in units of F^2.
        bits: Number of bits in the array.
        feature_nm: Feature size F in nanometres.
    """
    if cell_area_f2 <= 0 or bits <= 0 or feature_nm <= 0:
        raise ConfigurationError("cell area, bit count, and feature size must be positive")
    f_mm = feature_nm * 1e-6
    return cell_area_f2 * bits * f_mm * f_mm
