"""Figure rendering and comparison tables."""

import pytest

from repro.experiments.report import FigureResult, render_comparison, render_figure


def make_result(**overrides):
    defaults = dict(
        name="t",
        title="Title",
        labels=["k1", "k2", "k3"],
        series={"a": [10.0, 20.0, 30.0], "b": [1.0, 2.0, 3.0]},
    )
    defaults.update(overrides)
    return FigureResult(**defaults)


class TestFigureResult:
    def test_averages(self):
        result = make_result()
        assert result.averages() == {"a": 20.0, "b": 2.0}

    def test_averages_empty_series(self):
        result = make_result(labels=[], series={"a": []})
        assert result.averages() == {"a": 0.0}

    def test_series_for(self):
        assert make_result().series_for("a") == [10.0, 20.0, 30.0]


class TestRenderFigure:
    def test_header_and_unit(self):
        text = render_figure(make_result(unit="nJ"))
        assert "values in nJ" in text
        assert text.startswith("== t: Title")

    def test_rows_in_order(self):
        lines = render_figure(make_result(), bars=False).splitlines()
        data_lines = [l for l in lines if l.startswith("k")]
        assert [l.split()[0] for l in data_lines] == ["k1", "k2", "k3"]

    def test_average_row_suppressed(self):
        text = render_figure(make_result(average_row=False))
        assert "AVERAGE" not in text

    def test_bars_scale_to_max(self):
        text = render_figure(make_result())
        rows = [l for l in text.splitlines() if l.startswith("k")]
        bars = [l.split("|")[-1].count("#") for l in rows]
        assert bars[2] == max(bars)  # the 30.0 row has the longest bar

    def test_negative_values_render_empty_bars(self):
        result = make_result(series={"a": [-5.0, 10.0, 20.0]})
        text = render_figure(result)
        first_row = [l for l in text.splitlines() if l.startswith("k1")][0]
        assert first_row.rstrip().endswith("|")

    def test_zero_series_no_bars(self):
        result = make_result(series={"a": [0.0, 0.0, 0.0]})
        text = render_figure(result)
        assert "#" not in text

    def test_empty_labels(self):
        result = FigureResult(name="e", title="Empty", labels=[], series={})
        text = render_figure(result)
        assert "Empty" in text


class TestRenderComparison:
    def test_side_by_side(self):
        text = render_comparison(
            labels=["fig1", "fig5"],
            paper=[54.0, 8.0],
            measured=[55.4, 4.6],
            title="claims",
        )
        assert "54.0" in text and "55.4" in text
        assert text.splitlines()[0] == "claims"

    def test_missing_paper_value(self):
        text = render_comparison(["x"], [None], [1.0], "t")
        assert "n/a" in text


class TestDatasetsEnum:
    def test_factors(self):
        from repro.workloads.datasets import DatasetSize

        assert DatasetSize.MINI.factor == 1
        assert DatasetSize.SMALL.factor == 2
        assert DatasetSize.LARGE.factor == 3
