"""Engine telemetry, run provenance and benchmark trajectory tracking.

``repro.telemetry`` makes the parallel experiment engine observable the
way :mod:`repro.obs` made a single simulation observable — structured,
exact and free when off:

- :mod:`repro.telemetry.events` — a structured JSONL event log with
  nested spans (sweep → batch → point), monotonic timestamps and
  worker/pid attribution; the :data:`NULL_TELEMETRY` default is a
  no-op, guarded like ``NULL_PROBE``, so disabled runs stay
  bit-identical;
- :mod:`repro.telemetry.metrics` — a counters/gauges/histograms
  registry the engine feeds (cache hits/misses/stale/corrupt, worker
  utilization, queue depth, per-point wall time);
- :mod:`repro.telemetry.manifest` — the per-sweep provenance record
  (cache keys, code fingerprint, resolved technology parameters, seeds,
  package version, host info), schema-validated on write and load;
- :mod:`repro.telemetry.timeline` — the sweep schedule as a Perfetto
  trace (workers as tracks, points as slices), sharing its
  serialization with the profile exporter via
  :mod:`repro.obs.perfetto`;
- :mod:`repro.telemetry.log` — the CLI's levelled stderr logging
  (``--quiet``/``--verbose``/``REPRO_LOG``);
- :mod:`repro.telemetry.bench` — ``BENCH_<name>.json`` benchmark
  trajectory records and the ``repro bench-report`` regression gate.

See ``docs/ARCHITECTURE.md`` §2.11 for the event/manifest schemas and
the overhead contract.
"""

from .bench import (
    BENCH_FORMAT_VERSION,
    DEFAULT_THRESHOLD,
    Delta,
    bench_report,
    compare_record,
    load_record,
    metric,
    record_bench,
)
from .events import (
    EVENTS_FILENAME,
    EVENTS_FORMAT_VERSION,
    NULL_TELEMETRY,
    Telemetry,
    TelemetryRecorder,
    read_events,
)
from .manifest import (
    MANIFEST_FILENAME,
    MANIFEST_FORMAT_VERSION,
    MANIFEST_SCHEMA,
    build_manifest,
    load_manifest,
    render_manifest,
    validate_manifest,
    write_manifest,
)
from .metrics import HistogramSummary, MetricsRegistry, render_snapshot
from .timeline import TIMELINE_FILENAME, sweep_timeline, write_timeline

__all__ = [
    "BENCH_FORMAT_VERSION",
    "DEFAULT_THRESHOLD",
    "Delta",
    "EVENTS_FILENAME",
    "EVENTS_FORMAT_VERSION",
    "HistogramSummary",
    "MANIFEST_FILENAME",
    "MANIFEST_FORMAT_VERSION",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "TIMELINE_FILENAME",
    "Telemetry",
    "TelemetryRecorder",
    "bench_report",
    "build_manifest",
    "compare_record",
    "load_manifest",
    "load_record",
    "metric",
    "read_events",
    "record_bench",
    "render_manifest",
    "render_snapshot",
    "sweep_timeline",
    "validate_manifest",
    "write_manifest",
]
