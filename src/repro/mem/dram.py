"""Banked DRAM with row-buffer locality (optional main-memory model).

The default :class:`~repro.mem.mainmem.MainMemory` is a fixed-latency
channel, which is all the paper's L2-resident kernels need.  The
dataset-scaling ablation pushes working sets toward DRAM, where
row-buffer behaviour starts to matter; this model adds it at the usual
first-order granularity:

- the address space is striped over ``banks`` independent banks at
  row granularity;
- each bank has one open row; an access to it costs ``t_cas`` (row hit),
  an access to another row costs precharge + activate + CAS
  (``t_rp + t_rcd + t_cas``), and a closed bank skips the precharge;
- each access occupies the shared channel for ``transfer_cycles``
  (line transfer), serialising bursts;
- writes are posted: the requester waits only for the channel slot.

Timing uses the same absolute busy-until convention as every other
component (monotonic ``now``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from ..obs.probe import NULL_PROBE, Probe
from ..units import is_power_of_two


@dataclass(frozen=True)
class DRAMConfig:
    """Banked-DRAM timing parameters (in CPU cycles at 1 GHz).

    The defaults give ~100-cycle row-miss reads and ~40-cycle row hits,
    bracketing the simple model's flat 100 cycles.
    """

    banks: int = 8
    row_bytes: int = 2048
    t_cas: float = 20.0
    t_rcd: float = 40.0
    t_rp: float = 40.0
    transfer_cycles: float = 8.0

    def __post_init__(self) -> None:
        if not is_power_of_two(self.banks):
            raise ConfigurationError(f"bank count must be a power of two: {self.banks}")
        if not is_power_of_two(self.row_bytes):
            raise ConfigurationError(f"row size must be a power of two: {self.row_bytes}")
        if min(self.t_cas, self.t_rcd, self.t_rp, self.transfer_cycles) < 0:
            raise ConfigurationError("DRAM timings must be non-negative")


class _Bank:
    __slots__ = ("open_row", "busy_until")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.busy_until = 0.0


class BankedMemory:
    """Open-page banked DRAM behind the shared channel.

    Satisfies the same ``access(addr, is_write, now) -> latency``
    protocol as :class:`~repro.mem.mainmem.MainMemory`.
    """

    def __init__(self, config: DRAMConfig = DRAMConfig()) -> None:
        self.config = config
        self._banks: List[_Bank] = [_Bank() for _ in range(config.banks)]
        self._channel_free_at = 0.0
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.channel_busy_cycles = 0.0
        self.probe: Probe = NULL_PROBE
        self._probing = False

    def set_probe(self, probe: Probe) -> None:
        """Attach an observability probe."""
        self.probe = probe
        self._probing = probe.enabled

    @property
    def accesses(self) -> int:
        """Total requests served."""
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        """Fraction of requests that hit an open row."""
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def _locate(self, addr: int) -> tuple:
        row = addr // self.config.row_bytes
        return self._banks[row % self.config.banks], row

    def access(self, addr: int, is_write: bool, now: float) -> float:
        """Serve one line-sized request starting at cycle ``now``."""
        cfg = self.config
        bank, row = self._locate(addr)
        start = max(now, bank.busy_until, self._channel_free_at)

        if bank.open_row == row:
            self.row_hits += 1
            array_time = cfg.t_cas
        elif bank.open_row is None:
            self.row_misses += 1
            array_time = cfg.t_rcd + cfg.t_cas
        else:
            self.row_misses += 1
            array_time = cfg.t_rp + cfg.t_rcd + cfg.t_cas
        bank.open_row = row

        data_at = start + array_time
        bank.busy_until = data_at
        self._channel_free_at = data_at + cfg.transfer_cycles
        self.channel_busy_cycles += cfg.transfer_cycles

        if is_write:
            self.writes += 1
            # Posted write: wait for the slot, not the array.
            latency = start - now + cfg.transfer_cycles
        else:
            self.reads += 1
            latency = data_at + cfg.transfer_cycles - now
        if self._probing:
            self.probe.mem_access("dram", is_write, latency, now)
        return latency

    def clear_stats(self) -> None:
        """Zero counters and timing; open rows are also closed (a run
        boundary implies refresh cycles have passed)."""
        self.reset()

    def reset(self) -> None:
        """Return to power-on state."""
        for bank in self._banks:
            bank.open_row = None
            bank.busy_until = 0.0
        self._channel_free_at = 0.0
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.channel_busy_cycles = 0.0

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for reports."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "row_hit_rate": self.row_hit_rate,
            "channel_busy_cycles": self.channel_busy_cycles,
        }

    def stats_dict(self) -> Dict[str, float]:
        """Uniform counter accessor shared with :class:`MainMemory`."""
        return self.stats()
