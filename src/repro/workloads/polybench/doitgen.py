"""PolyBench ``doitgen``: multiresolution analysis kernel.

``sum[p] += A[r][q][s] * C4[s][p]`` with ``s`` innermost: ``A`` streams
at unit stride while ``C4[s][p]`` walks a column (stride NP), followed by
a write-back pass into ``A`` — the only 3-D array and the only kernel
whose hot array is also its output.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"nr": 8, "nq": 8, "np": 24}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the doitgen program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    nr, nq, np_ = dims["nr"], dims["nq"], dims["np"]
    r, q, p, s = Var("r"), Var("q"), Var("p"), Var("s")
    a = Array("A", (nr, nq, np_))
    c4 = Array("C4", (np_, np_))
    sum_ = Array("sum", (np_,))
    body = [
        loop(
            r,
            nr,
            [
                loop(
                    q,
                    nq,
                    [
                        loop(
                            p,
                            np_,
                            [
                                stmt(writes=[sum_[p]], flops=0, label="init_sum"),
                                loop(
                                    s,
                                    np_,
                                    [
                                        stmt(
                                            reads=[sum_[p], a[r, q, s], c4[s, p]],
                                            writes=[sum_[p]],
                                            flops=2,
                                            label="mac",
                                        )
                                    ],
                                ),
                            ],
                        ),
                        loop(
                            p,
                            np_,
                            [stmt(reads=[sum_[p]], writes=[a[r, q, p]], flops=0, label="copy_back")],
                        ),
                    ],
                )
            ],
        )
    ]
    return Program("doitgen", body)
