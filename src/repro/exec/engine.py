"""The parallel experiment engine: fan points out, replay what's cached.

:class:`ExecutionEngine` takes a batch of independent
:class:`~repro.exec.point.RunPoint` simulations and returns their
:class:`~repro.cpu.model.RunResult` list **in input order**, regardless
of how the work was scheduled:

1. every point's content-addressed key is computed
   (:func:`~repro.exec.cache.cache_key_of`) and looked up in the
   :class:`~repro.exec.cache.RunCache` — hits replay from disk;
2. the remaining points are deduplicated by key (a figure batch shares
   one SRAM baseline across configurations) and executed — inline when
   ``jobs == 1``, else on a :class:`~concurrent.futures.ProcessPoolExecutor`
   with ``jobs`` workers;
3. each result is persisted to the cache the moment it completes, so an
   interrupted sweep resumes from the finished points.

Because :func:`~repro.exec.point.execute_point` is deterministic and
self-contained, results are bit-identical whether a point ran inline,
in a worker, or was replayed from the cache — the engine's central
invariant, pinned by ``tests/test_exec.py``.

Per-point progress and the hit/miss counters are surfaced through the
:mod:`repro.obs` probe layer (:meth:`~repro.obs.probe.Probe.exec_point`)
and summarised in :class:`ExecStats`.  When a
:class:`~repro.telemetry.events.TelemetryRecorder` is attached, the
engine additionally emits batch/point spans into ``events.jsonl``,
feeds a :class:`~repro.telemetry.metrics.MetricsRegistry`, and collects
the per-point provenance records the run manifest is built from — all
of it guarded on ``telemetry.enabled`` so a disabled run pays nothing
and stays bit-identical (the same contract ``NullProbe`` upholds).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, TextIO

from ..cpu.model import RunResult
from ..errors import ConfigurationError
from ..obs.probe import NULL_PROBE, Probe
from ..telemetry.events import NULL_TELEMETRY, Telemetry
from ..telemetry.metrics import MetricsRegistry
from .cache import RunCache, cache_key_of, canonicalize, key_material_of
from .point import RunPoint, execute_point, execute_point_timed


@dataclass
class ExecStats:
    """Counters accumulated by one :class:`ExecutionEngine`.

    Attributes
    ----------
    points : int
        Points requested across all batches (duplicates included).
    hits : int
        Points replayed from the run cache.
    misses : int
        Points not found in the cache (``executed`` + ``deduplicated``).
    stale : int
        Misses caused by an entry of a different cache format version
        (counted within ``misses``).
    corrupt : int
        Misses caused by an unreadable or undecodable entry (counted
        within ``misses``).
    executed : int
        Simulations actually run.
    deduplicated : int
        Cache-missing points that shared a key with another point of the
        same batch and were computed only once.
    elapsed : float
        Wall-clock seconds spent inside :meth:`ExecutionEngine.run_points`.
    busy : float
        Summed execution wall seconds across all workers — divided by
        ``elapsed * jobs`` this is the pool's utilization.
    """

    points: int = 0
    hits: int = 0
    misses: int = 0
    stale: int = 0
    corrupt: int = 0
    executed: int = 0
    deduplicated: int = 0
    elapsed: float = 0.0
    busy: float = 0.0

    def hit_rate(self) -> float:
        """Cache hit rate in percent (100.0 for an all-hit batch).

        Returns
        -------
        float
            ``hits / points * 100``, or 0.0 before any point ran.
        """
        return self.hits / self.points * 100.0 if self.points else 0.0


@dataclass
class _Pending:
    """One unique cache-missing key and the input slots it fills."""

    point: RunPoint
    indices: List[int] = field(default_factory=list)


class ExecutionEngine:
    """Runs batches of simulation points, in parallel and cached.

    Parameters
    ----------
    jobs : int
        Worker processes for cache-missing points.  ``1`` (the default)
        executes inline in this process; results are bit-identical
        either way.
    cache_dir : str or pathlib.Path, optional
        Run-cache directory.  ``None`` disables the cache entirely
        (every point recomputes).
    probe : Probe, optional
        Observability probe notified per point via
        :meth:`~repro.obs.probe.Probe.exec_point`.
    progress : TextIO, optional
        Stream for one human-readable line per completed point (the CLI
        passes ``sys.stderr``); ``None`` silences progress output.
    telemetry : Telemetry, optional
        Structured event sink (:data:`~repro.telemetry.events.
        NULL_TELEMETRY` by default).  When enabled, the engine emits
        batch/point spans, cache-anomaly warnings, and accumulates the
        ``point_records`` / ``technologies`` provenance that
        :func:`repro.telemetry.manifest.build_manifest` captures.

    Raises
    ------
    ConfigurationError
        If ``jobs`` is not a positive integer.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        probe: Probe = NULL_PROBE,
        progress: Optional[TextIO] = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"--jobs must be at least 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache = RunCache(cache_dir) if cache_dir is not None else None
        self.probe = probe
        self.progress = progress
        self.telemetry = telemetry
        self.stats = ExecStats()
        self.metrics = MetricsRegistry()
        #: Per-point provenance dicts (manifest ``points``), collected
        #: only while ``telemetry.enabled``.
        self.point_records: List[Dict[str, Any]] = []
        #: Resolved technology parameter sets seen across batches,
        #: keyed by technology name (canonicalized like the cache key
        #: material); collected only while ``telemetry.enabled``.
        self.technologies: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _report(self, point: RunPoint, status: str, index: int, total: int, dt: float) -> None:
        """Emit one per-point progress record (probe + progress stream)."""
        self.probe.exec_point(point.display(), status, index, total, dt)
        if self.progress is not None:
            print(
                f"[{index + 1}/{total}] {point.display()}: {status} ({dt:.2f}s)",
                file=self.progress,
                flush=True,
            )

    def summary(self) -> str:
        """One-line account of the engine's work so far.

        Returns
        -------
        str
            E.g. ``exec: 26 points — 26 cache hits, 0 misses (100% cache
            hits), jobs=4, cache .repro-cache``.
        """
        s = self.stats
        where = str(self.cache.root) if self.cache is not None else "off"
        line = (
            f"exec: {s.points} points — {s.hits} cache hits, {s.misses} misses "
            f"({s.hit_rate():.0f}% cache hits), jobs={self.jobs}, cache {where}"
        )
        if s.stale or s.corrupt:
            line += f" [{s.stale} stale, {s.corrupt} corrupt entries]"
        return line

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_points(self, points: Sequence[RunPoint]) -> List[RunResult]:
        """Execute a batch; results come back in input order.

        Cache hits replay instantly; unique misses run with up to
        ``jobs``-way parallelism and are persisted as they finish.  The
        output order depends only on ``points``, never on scheduling.

        Parameters
        ----------
        points : sequence of RunPoint
            Independent simulation points.

        Returns
        -------
        list of RunResult
            ``results[i]`` is the outcome of ``points[i]``.
        """
        started = time.monotonic()
        points = list(points)
        total = len(points)
        self.stats.points += total
        results: List[Optional[RunResult]] = [None] * total

        tele = self.telemetry
        batch = tele.span("batch", points=total, jobs=self.jobs)
        with batch:
            pending: Dict[str, _Pending] = {}
            for i, point in enumerate(points):
                key = cache_key_of(point)
                found = self.cache.lookup(key) if self.cache is not None else None
                if found is not None and found.status in ("stale", "corrupt"):
                    self._note_cache_anomaly(found.status, key, point)
                if found is not None and found.result is not None:
                    self.stats.hits += 1
                    self.metrics.count("cache.hit")
                    results[i] = found.result
                    if tele.enabled:
                        self._record_point(
                            point, key, "hit", os.getpid(), 0.0, tele.now(), found.result
                        )
                        tele.event("point_hit", label=point.display(), key=key)
                    self._report(point, "hit", i, total, 0.0)
                    continue
                self.stats.misses += 1
                self.metrics.count("cache.miss")
                if key in pending:
                    self.stats.deduplicated += 1
                    self.metrics.count("exec.deduplicated")
                    pending[key].indices.append(i)
                else:
                    pending[key] = _Pending(point, [i])

            if pending:
                self._execute_pending(pending, results, total, batch.id)

        dt = time.monotonic() - started
        self.stats.elapsed += dt
        self.metrics.observe("exec.batch_wall_s", dt)
        if self.stats.elapsed > 0.0:
            self.metrics.gauge(
                "exec.utilization_pct",
                min(100.0, 100.0 * self.stats.busy / (self.stats.elapsed * self.jobs)),
            )
        return [r for r in results if r is not None]

    def _note_cache_anomaly(self, status: str, key: str, point: RunPoint) -> None:
        """Count and report one stale/corrupt cache entry (it recomputes)."""
        from ..telemetry import log

        if status == "stale":
            self.stats.stale += 1
        else:
            self.stats.corrupt += 1
        self.metrics.count(f"cache.{status}")
        path = str(self.cache.path_for(key))
        log.warn(f"cache entry {status}: {key} for {point.display()} ({path}); recomputing")
        self.telemetry.warning(
            f"cache_entry_{status}", key=key, path=path, point=point.display()
        )

    def _execute_pending(
        self,
        pending: Dict[str, _Pending],
        results: List[Optional[RunResult]],
        total: int,
        batch_span: int = 0,
    ) -> None:
        """Run the unique cache-missing points and fill their slots."""
        tele = self.telemetry
        if self.jobs == 1 or len(pending) == 1:
            for key, entry in pending.items():
                span_id = 0
                if tele.enabled:
                    span_id = tele.begin_span(
                        "point", parent=batch_span, label=entry.point.display(), key=key
                    )
                t0 = time.monotonic()
                result = execute_point(entry.point)
                dt = time.monotonic() - t0
                self._complete(key, entry, result, results, total, dt, os.getpid(), dt, span_id)
            return
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(pending))) as pool:
            futures = {}
            submitted = {}
            spans: Dict[str, int] = {}
            for key, entry in pending.items():
                futures[pool.submit(execute_point_timed, entry.point)] = key
                submitted[key] = time.monotonic()
                if tele.enabled:
                    spans[key] = tele.begin_span(
                        "point", parent=batch_span, label=entry.point.display(), key=key
                    )
            outstanding = set(futures)
            self.metrics.gauge("exec.queue_depth", len(outstanding))
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                self.metrics.gauge("exec.queue_depth", len(outstanding))
                for future in done:
                    key = futures[future]
                    entry = pending[key]
                    result, worker_pid, wall_s = future.result()
                    dt = time.monotonic() - submitted[key]
                    self._complete(
                        key, entry, result, results, total, dt, worker_pid, wall_s,
                        spans.get(key, 0),
                    )

    def _complete(
        self,
        key: str,
        entry: _Pending,
        result: RunResult,
        results: List[Optional[RunResult]],
        total: int,
        dt: float,
        worker_pid: int,
        wall_s: float,
        span_id: int = 0,
    ) -> None:
        """Persist one finished point and fill every slot it serves."""
        self.stats.executed += 1
        self.stats.busy += wall_s
        self.metrics.count("exec.executed")
        self.metrics.observe("exec.point_wall_s", wall_s)
        if self.cache is not None:
            self.cache.put(key, result, key_material_of(entry.point))
        for i in entry.indices:
            results[i] = result
        tele = self.telemetry
        if tele.enabled:
            end = tele.now()
            self._record_point(
                entry.point, key, "run", worker_pid, wall_s, max(0.0, end - wall_s), result
            )
            tele.end_span(
                span_id, status="run", worker_pid=int(worker_pid), wall_s=round(wall_s, 6)
            )
        self._report(entry.point, "run", entry.indices[0], total, dt)

    def _record_point(
        self,
        point: RunPoint,
        key: str,
        status: str,
        worker_pid: int,
        wall_s: float,
        start_s: float,
        result: RunResult,
    ) -> None:
        """Append one manifest point record (telemetry-enabled path only)."""
        config = point.config
        tech = config.resolved_technology()
        if tech.name not in self.technologies:
            self.technologies[tech.name] = canonicalize(tech)
        self.point_records.append(
            {
                "label": point.display(),
                "kernel": point.kernel,
                "frontend": str(config.frontend),
                "technology": tech.name,
                "level": point.level.name,
                "size": point.size.name,
                "seed": config.reliability.seed if config.reliability is not None else None,
                "cache_key": key,
                "status": status,
                "worker_pid": int(worker_pid),
                "wall_s": round(float(wall_s), 6),
                "start_s": round(float(start_s), 6),
                "cycles": float(result.cycles),
            }
        )


def make_engine(
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
    probe: Probe = NULL_PROBE,
    progress: Optional[TextIO] = None,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> Optional[ExecutionEngine]:
    """Build an engine from CLI-style options, or ``None`` for the
    classic serial path.

    The engine engages when parallelism, caching or telemetry was
    requested: plain ``repro fig1`` keeps the historical in-process
    behaviour with no side effects on the filesystem.

    Parameters
    ----------
    jobs : int
        Requested worker count (``--jobs``).
    cache_dir : str, optional
        Requested cache directory (``--cache-dir``); when ``None`` but
        ``jobs > 1``, :data:`~repro.exec.cache.DEFAULT_CACHE_DIR` is
        used unless ``no_cache`` is set.
    no_cache : bool
        Disable the run cache (``--no-cache``) while keeping ``jobs``.
    probe : Probe, optional
        Forwarded to :class:`ExecutionEngine`.
    progress : TextIO, optional
        Forwarded to :class:`ExecutionEngine`; defaults to the levelled
        CLI log's progress stream (``sys.stderr`` unless ``--quiet``).
    telemetry : Telemetry, optional
        Forwarded to :class:`ExecutionEngine`.  An *enabled* telemetry
        sink engages the engine even for a plain serial run, so every
        point flows through the instrumented path (``--telemetry``).

    Returns
    -------
    ExecutionEngine or None
        ``None`` when neither ``--jobs``, a cache nor telemetry was
        asked for.
    """
    if jobs < 1:
        raise ConfigurationError(f"--jobs must be at least 1, got {jobs}")
    if jobs == 1 and cache_dir is None and not telemetry.enabled:
        return None
    from ..telemetry import log
    from .cache import DEFAULT_CACHE_DIR

    resolved_dir: Optional[str] = cache_dir
    if no_cache:
        resolved_dir = None
    elif resolved_dir is None:
        resolved_dir = DEFAULT_CACHE_DIR
    if jobs == 1 and resolved_dir is None and not telemetry.enabled:
        return None
    if progress is None:
        progress = log.progress_stream()
    return ExecutionEngine(
        jobs=jobs,
        cache_dir=resolved_dir,
        probe=probe,
        progress=progress,
        telemetry=telemetry,
    )
