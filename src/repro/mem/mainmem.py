"""Main-memory (DRAM) model.

A fixed access latency plus a simple channel-occupancy model: requests
serialise on the single channel at a per-line transfer cost.  For the
PolyBench working sets used in the paper almost everything fits in the
2 MB L2, so DRAM detail beyond this contributes nothing to the figures —
but the occupancy term keeps streaming misses from being unrealistically
free in the dataset-scaling ablation.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ConfigurationError
from ..obs.probe import NULL_PROBE, Probe


class MainMemory:
    """Flat DRAM with fixed latency and serialised channel transfers.

    Args:
        latency_cycles: Cycles from request to first data (row activation,
            column access, controller overheads folded together).
        transfer_cycles: Channel occupancy per line transferred.
    """

    def __init__(self, latency_cycles: float = 100.0, transfer_cycles: float = 8.0) -> None:
        if latency_cycles < 0 or transfer_cycles < 0:
            raise ConfigurationError("memory latencies must be non-negative")
        self.latency_cycles = latency_cycles
        self.transfer_cycles = transfer_cycles
        self._channel_free_at = 0.0
        self.reads = 0
        self.writes = 0
        self.channel_busy_cycles = 0.0
        self.probe: Probe = NULL_PROBE
        self._probing = False

    def set_probe(self, probe: Probe) -> None:
        """Attach an observability probe."""
        self.probe = probe
        self._probing = probe.enabled

    @property
    def accesses(self) -> int:
        """Total lines read plus written."""
        return self.reads + self.writes

    def access(self, addr: int, is_write: bool, now: float) -> float:
        """Serve one line-sized access starting at cycle ``now``.

        Returns:
            Cycles until the data is returned (reads) or accepted
            (writes), including any wait for the channel.
        """
        start = max(now, self._channel_free_at)
        self._channel_free_at = start + self.transfer_cycles
        self.channel_busy_cycles += self.transfer_cycles
        if is_write:
            self.writes += 1
            # Posted write: the requester only waits for the channel slot.
            latency = start - now + self.transfer_cycles
        else:
            self.reads += 1
            latency = start - now + self.latency_cycles
        if self._probing:
            self.probe.mem_access("dram", is_write, latency, now)
        return latency

    def stats_dict(self) -> Dict[str, float]:
        """Counter snapshot (reads, writes, channel occupancy) for reports."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "channel_busy_cycles": self.channel_busy_cycles,
        }

    def clear_stats(self) -> None:
        """Zero counters and channel state (main memory has no contents)."""
        self.reset()

    def reset(self) -> None:
        """Clear channel state and counters (used between runs)."""
        self._channel_free_at = 0.0
        self.reads = 0
        self.writes = 0
        self.channel_busy_cycles = 0.0
