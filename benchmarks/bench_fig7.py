"""Bench: Figure 7 — VWB size sweep (1/2/4 Kbit).

Paper shape: "larger size VWB's help in reducing the penalty more", with
2 Kbit the chosen sweet spot (the 2->4 Kbit step adds little).
"""

from repro.experiments import fig7

from conftest import run_once


def test_fig7(benchmark, runner, save):
    result = run_once(benchmark, fig7.run, runner=runner)
    save(result)
    avg = result.averages()
    assert avg["vwb_1kbit"] >= avg["vwb_2kbit"] >= avg["vwb_4kbit"] - 0.5
    # Diminishing returns beyond 2 Kbit (the paper's sizing argument).
    gain_1_to_2 = avg["vwb_1kbit"] - avg["vwb_2kbit"]
    gain_2_to_4 = avg["vwb_2kbit"] - avg["vwb_4kbit"]
    assert gain_1_to_2 >= gain_2_to_4
