"""Columnar trace encoding: the memory- and replay-friendly trace form.

A materialised trace is a Python list with one heap object per event —
hundreds of thousands of allocations per kernel, megabytes of pointers,
and a ``type()`` dispatch per event on every replay.  An
:class:`EncodedTrace` stores the same event sequence as parallel columns:

- ``opcodes`` — one byte per event (:data:`OP_LOAD` ... :data:`OP_MARK`),
  in program order;
- per-kind integer operand columns (``array('q')``/``array('b')``):
  ``load_addrs``/``load_sizes``, ``store_addrs``/``store_sizes``,
  ``pf_addrs``, ``ops`` (compute) and ``taken`` (branches);
- a string table ``labels`` plus an index column ``marks`` for
  :class:`~repro.workloads.trace.IRMark` annotations.

The i-th event of kind K takes its operands from position i-of-kind-K in
K's columns, so every column is dense and a consumer that ignores a kind
(e.g. the replay fast path skipping ``IRMark``) never touches its
columns.  Encoding consumes the :func:`~repro.workloads.interp
.generate_trace` generator directly — the object list is never built —
and :meth:`EncodedTrace.decode` round-trips to the exact event sequence.

``EncodedTrace`` is iterable (iteration decodes lazily), so it can be
passed anywhere a trace is expected; :meth:`repro.cpu.model.InOrderCPU
.run` additionally recognises it and takes the opcode-dispatch fast
path, which is bit-exact with object replay (pinned by
``tests/test_encode.py``).
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Tuple

from .interp import TraceConfig, generate_trace
from .ir import Program
from .trace import (
    Branch,
    Compute,
    IRMark,
    Load,
    Prefetch,
    Store,
    TraceEvent,
    branch_event,
    compute_event,
)

#: Event opcodes, ordered roughly by dynamic frequency.
OP_LOAD = 0
OP_COMPUTE = 1
OP_STORE = 2
OP_BRANCH = 3
OP_PREFETCH = 4
OP_MARK = 5


class EncodedTrace:
    """One trace as parallel columnar arrays (see module docstring).

    Instances are built by :func:`encode_events`/:func:`encode_trace`;
    the columns are exposed as attributes for the replay fast path but
    must be treated as immutable — traces are shared across runs.
    """

    __slots__ = (
        "opcodes",
        "load_addrs",
        "load_sizes",
        "store_addrs",
        "store_sizes",
        "pf_addrs",
        "ops",
        "taken",
        "marks",
        "labels",
        "_analysis",
    )

    def __init__(
        self,
        opcodes: bytes,
        load_addrs: "array",
        load_sizes: "array",
        store_addrs: "array",
        store_sizes: "array",
        pf_addrs: "array",
        ops: "array",
        taken: "array",
        marks: "array",
        labels: Tuple[str, ...],
    ) -> None:
        self.opcodes = opcodes
        self.load_addrs = load_addrs
        self.load_sizes = load_sizes
        self.store_addrs = store_addrs
        self.store_sizes = store_sizes
        self.pf_addrs = pf_addrs
        self.ops = ops
        self.taken = taken
        self.marks = marks
        self.labels = labels
        # Lazy per-trace analysis memo: reuse profiles keyed by
        # ("reuse", line_bytes) and hit-run annotations keyed by
        # ("elim", line_bytes, sets, ways, banks).  Derived data only —
        # never part of equality, round-tripping or nbytes accounting.
        self._analysis: Dict[tuple, object] = {}

    def __len__(self) -> int:
        return len(self.opcodes)

    def __iter__(self) -> Iterator[TraceEvent]:
        return self.decode_iter()

    def __repr__(self) -> str:
        return (
            f"EncodedTrace({len(self.opcodes)} events, "
            f"{self.nbytes / 1024:.1f} KiB)"
        )

    def decode_iter(self) -> Iterator[TraceEvent]:
        """Yield the exact original event sequence, lazily.

        Loads/stores/prefetches/marks decode to fresh objects; branches
        and computes decode to the interned singletons the interpreter
        itself emits (events are immutable in practice, so sharing is
        safe — see :func:`~repro.workloads.trace.branch_event`).
        """
        la, ls = self.load_addrs, self.load_sizes
        sa, ss = self.store_addrs, self.store_sizes
        pa, ops, tk = self.pf_addrs, self.ops, self.taken
        marks, labels = self.marks, self.labels
        li = sti = pi = ci = ti = mi = 0
        for op in self.opcodes:
            if op == OP_LOAD:
                yield Load(la[li], ls[li])
                li += 1
            elif op == OP_COMPUTE:
                yield compute_event(ops[ci])
                ci += 1
            elif op == OP_STORE:
                yield Store(sa[sti], ss[sti])
                sti += 1
            elif op == OP_BRANCH:
                yield branch_event(bool(tk[ti]))
                ti += 1
            elif op == OP_PREFETCH:
                yield Prefetch(pa[pi])
                pi += 1
            else:
                yield IRMark(labels[marks[mi]])
                mi += 1

    def decode(self) -> List[TraceEvent]:
        """The whole trace as an object list (see :meth:`decode_iter`)."""
        return list(self.decode_iter())

    def summary(self) -> Dict[str, int]:
        """Event counts without decoding — same dict as ``trace_summary``.

        Per-kind totals come straight from the column lengths and
        C-speed ``sum()`` over the operand arrays, so summarising an
        encoded trace costs microseconds regardless of length.
        """
        return {
            "loads": len(self.load_addrs),
            "stores": len(self.store_addrs),
            "prefetches": len(self.pf_addrs),
            "branches": len(self.taken),
            "compute_events": len(self.ops),
            "compute_ops": sum(self.ops),
            "load_bytes": sum(self.load_sizes),
            "store_bytes": sum(self.store_sizes),
            "ir_marks": len(self.marks),
        }

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint of the column data in bytes."""
        total = len(self.opcodes)
        for column in (
            self.load_addrs,
            self.load_sizes,
            self.store_addrs,
            self.store_sizes,
            self.pf_addrs,
            self.ops,
            self.taken,
            self.marks,
        ):
            total += len(column) * column.itemsize
        total += sum(len(label) for label in self.labels)
        return total


def encode_events(events: Iterable[TraceEvent]) -> EncodedTrace:
    """Encode any event iterable into columns, without materialising it.

    Args:
        events: Trace events in program order (typically the live
            :func:`~repro.workloads.interp.generate_trace` generator).

    Returns:
        The equivalent :class:`EncodedTrace`.
    """
    opcodes = bytearray()
    load_addrs, load_sizes = array("q"), array("q")
    store_addrs, store_sizes = array("q"), array("q")
    pf_addrs = array("q")
    ops = array("q")
    taken = array("b")
    marks = array("i")
    labels: List[str] = []
    label_index: Dict[str, int] = {}

    op_append = opcodes.append
    for ev in events:
        kind = type(ev)
        if kind is Load:
            op_append(OP_LOAD)
            load_addrs.append(ev.addr)
            load_sizes.append(ev.size)
        elif kind is Compute:
            op_append(OP_COMPUTE)
            ops.append(ev.ops)
        elif kind is Store:
            op_append(OP_STORE)
            store_addrs.append(ev.addr)
            store_sizes.append(ev.size)
        elif kind is Branch:
            op_append(OP_BRANCH)
            taken.append(1 if ev.taken else 0)
        elif kind is Prefetch:
            op_append(OP_PREFETCH)
            pf_addrs.append(ev.addr)
        elif kind is IRMark:
            op_append(OP_MARK)
            index = label_index.get(ev.label)
            if index is None:
                index = label_index[ev.label] = len(labels)
                labels.append(ev.label)
            marks.append(index)
        else:
            raise TypeError(f"cannot encode trace event {ev!r}")

    return EncodedTrace(
        opcodes=bytes(opcodes),
        load_addrs=load_addrs,
        load_sizes=load_sizes,
        store_addrs=store_addrs,
        store_sizes=store_sizes,
        pf_addrs=pf_addrs,
        ops=ops,
        taken=taken,
        marks=marks,
        labels=tuple(labels),
    )


def encode_trace(program: Program, config: TraceConfig = TraceConfig()) -> EncodedTrace:
    """Generate and encode a program's trace in one streaming pass.

    The columnar equivalent of :func:`~repro.workloads.interp
    .materialize_trace`: the generator feeds the column builders
    directly, so peak memory is the columns themselves (roughly an
    order of magnitude below the object list).
    """
    return encode_events(generate_trace(program, config))
