"""Bench: regenerate Table I (technology comparison)."""

from repro.experiments import table1
from repro.experiments.report import render_figure

from conftest import run_once


def test_table1(benchmark, runner, save):
    result = run_once(benchmark, table1.run, runner=runner)
    text = save(result)
    # The paper's exact cell values must appear.
    for value in ("0.787ns", "3.37ns", "1.86ns", "146F^2", "42F^2", "28.35mW"):
        assert value in text
