"""Affine loop-nest intermediate representation for PolyBench-style kernels.

A :class:`Program` is a list of top-level :class:`Loop`/:class:`Statement`
nodes.  Loops carry optional *transformation annotations* (vector width,
unroll factor, prefetch directives) that the passes in
:mod:`repro.transforms` set and the interpreter in
:mod:`repro.workloads.interp` honours — the IR analogue of the paper's
compile-time intrinsic flags.

Example (the heart of ``gemm``)::

    i, j, k = Var("i"), Var("j"), Var("k")
    A, B, C = Array("A", (NI, NK)), Array("B", (NK, NJ)), Array("C", (NI, NJ))
    body = loop(i, NI, [
        loop(j, NJ, [stmt(reads=[C[i, j]], writes=[C[i, j]], flops=1)]),
        loop(k, NK, [
            loop(j, NJ, [
                stmt(reads=[C[i, j], A[i, k], B[k, j]], writes=[C[i, j]], flops=2),
            ]),
        ]),
    ])
    prog = Program("gemm", [body])
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import WorkloadError
from .affine import Affine, AffineLike, Var

#: Default element size: PolyBench's DATA_TYPE is float (4 bytes) by
#: default; kernels may override per array.
DEFAULT_ELEM_BYTES = 4


class Array:
    """A dense, row-major array living in the simulated address space.

    Attributes:
        name: Identifier used in reports.
        shape: Extent of each dimension, in elements.
        elem_bytes: Bytes per element.
        base_addr: Byte address assigned by :meth:`Program.layout`
            (``None`` until layout runs).
    """

    __slots__ = ("name", "shape", "elem_bytes", "base_addr", "_row_strides")

    def __init__(
        self, name: str, shape: Sequence[int], elem_bytes: int = DEFAULT_ELEM_BYTES
    ) -> None:
        if not name:
            raise WorkloadError("array needs a non-empty name")
        if not shape or any(d <= 0 for d in shape):
            raise WorkloadError(f"array {name!r} needs positive dimensions, got {shape}")
        if elem_bytes <= 0:
            raise WorkloadError(f"array {name!r} needs a positive element size")
        self.name = name
        self.shape: Tuple[int, ...] = tuple(int(d) for d in shape)
        self.elem_bytes = elem_bytes
        self.base_addr: Optional[int] = None
        self._row_strides: Optional[Tuple[int, ...]] = None

    @property
    def elements(self) -> int:
        """Total element count."""
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def size_bytes(self) -> int:
        """Total footprint in bytes."""
        return self.elements * self.elem_bytes

    @property
    def row_strides(self) -> Tuple[int, ...]:
        """Element stride of each dimension under row-major layout."""
        cached = self._row_strides
        if cached is None:
            strides = [1] * len(self.shape)
            for d in range(len(self.shape) - 2, -1, -1):
                strides[d] = strides[d + 1] * self.shape[d + 1]
            cached = self._row_strides = tuple(strides)
        return cached

    def __getitem__(self, indices: Union[AffineLike, Tuple[AffineLike, ...]]) -> "Ref":
        if not isinstance(indices, tuple):
            indices = (indices,)
        return Ref(self, tuple(Affine.of(ix) for ix in indices))

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"Array({self.name}[{dims}])"


class Ref:
    """A subscripted reference to an :class:`Array` (e.g. ``A[i, k]``)."""

    __slots__ = ("array", "indices")

    def __init__(self, array: Array, indices: Tuple[Affine, ...]) -> None:
        if len(indices) != len(array.shape):
            raise WorkloadError(
                f"{array.name} has {len(array.shape)} dimensions but was "
                f"subscripted with {len(indices)} indices"
            )
        self.array = array
        self.indices = indices

    def flat_index(self, env: Dict[str, int]) -> int:
        """Row-major element index under ``env``."""
        strides = self.array.row_strides
        flat = 0
        for expr, stride in zip(self.indices, strides):
            flat += expr.evaluate(env) * stride
        return flat

    def addr(self, env: Dict[str, int]) -> int:
        """Byte address under ``env``; requires layout to have run."""
        base = self.array.base_addr
        if base is None:
            raise WorkloadError(f"array {self.array.name!r} has no layout address yet")
        return base + self.flat_index(env) * self.array.elem_bytes

    def stride_elements(self, var: Var) -> int:
        """Element stride of this reference per unit step of ``var``."""
        strides = self.array.row_strides
        total = 0
        for expr, stride in zip(self.indices, strides):
            total += expr.coefficient(var) * stride
        return total

    def stride_bytes(self, var: Var) -> int:
        """Byte stride of this reference per unit step of ``var``."""
        return self.stride_elements(var) * self.array.elem_bytes

    def depends_on(self, var: Var) -> bool:
        """True if any subscript mentions ``var``."""
        return any(expr.coefficient(var) != 0 for expr in self.indices)

    def __repr__(self) -> str:
        subs = ", ".join(repr(ix) for ix in self.indices)
        return f"{self.array.name}[{subs}]"


class Statement:
    """One loop-body statement: reads, writes and arithmetic work.

    ``flops`` counts the statement's arithmetic operations;
    ``overhead_ops`` models addressing/bookkeeping instructions that a
    compiler would emit per execution (defaults to 1).
    """

    __slots__ = ("reads", "writes", "flops", "overhead_ops", "label")

    def __init__(
        self,
        reads: Sequence[Ref],
        writes: Sequence[Ref],
        flops: int,
        overhead_ops: int = 1,
        label: str = "",
    ) -> None:
        if flops < 0 or overhead_ops < 0:
            raise WorkloadError("flops and overhead must be non-negative")
        self.reads: Tuple[Ref, ...] = tuple(reads)
        self.writes: Tuple[Ref, ...] = tuple(writes)
        self.flops = flops
        self.overhead_ops = overhead_ops
        self.label = label

    @property
    def refs(self) -> Tuple[Ref, ...]:
        """All references (reads then writes)."""
        return self.reads + self.writes

    def __repr__(self) -> str:
        return f"Statement({self.label or 'stmt'}: {len(self.reads)}R {len(self.writes)}W)"


Node = Union["Loop", Statement]


class Loop:
    """A counted loop ``for var in [lower, upper)`` over a body of nodes.

    Transformation annotations (all default to the untransformed state):

    - ``vector_width``: >1 after :class:`repro.transforms.Vectorize`; the
      interpreter then processes the loop in SIMD chunks.
    - ``unroll``: >1 after :class:`repro.transforms.BranchOptimize`; the
      interpreter charges one back-edge per ``unroll`` iterations.
    - ``prefetch``: list of ``(ref, distance_iterations)`` directives set
      by :class:`repro.transforms.InsertPrefetch`.
    - ``permutable``: kernel author's promise that this loop may be
      freely interchanged with its perfectly nested child.
    """

    __slots__ = ("var", "lower", "upper", "body", "vector_width", "unroll", "prefetch", "permutable")

    def __init__(
        self,
        var: Var,
        lower: AffineLike,
        upper: AffineLike,
        body: Sequence[Node],
        permutable: bool = False,
    ) -> None:
        if not body:
            raise WorkloadError(f"loop over {var.name} has an empty body")
        self.var = var
        self.lower = Affine.of(lower)
        self.upper = Affine.of(upper)
        self.body: List[Node] = list(body)
        self.vector_width = 1
        self.unroll = 1
        self.prefetch: List[Tuple[Ref, int]] = []
        self.permutable = permutable

    @property
    def is_innermost(self) -> bool:
        """True when the body contains no nested loops."""
        return all(not isinstance(node, Loop) for node in self.body)

    def statements(self) -> List[Statement]:
        """Direct child statements (not descending into nested loops)."""
        return [node for node in self.body if isinstance(node, Statement)]

    def trip_count(self, env: Dict[str, int]) -> int:
        """Iterations executed under ``env`` (0 when bounds are empty)."""
        return max(0, self.upper.evaluate(env) - self.lower.evaluate(env))

    def clone(self) -> "Loop":
        """Deep copy of the loop tree; statements/refs are shared
        (immutable), annotations are copied so passes never mutate the
        original program."""
        copy = Loop(
            self.var,
            self.lower,
            self.upper,
            [node.clone() if isinstance(node, Loop) else node for node in self.body],
            permutable=self.permutable,
        )
        copy.vector_width = self.vector_width
        copy.unroll = self.unroll
        copy.prefetch = list(self.prefetch)
        return copy

    def __repr__(self) -> str:
        return f"Loop({self.var.name} in [{self.lower!r}, {self.upper!r}))"


class Program:
    """A named kernel: top-level nodes plus the arrays they reference.

    Arrays are discovered by walking the references; :meth:`layout`
    assigns row-major base addresses in discovery order.
    """

    def __init__(self, name: str, body: Sequence[Node]) -> None:
        if not body:
            raise WorkloadError(f"program {name!r} has an empty body")
        self.name = name
        self.body: List[Node] = list(body)
        self.arrays: List[Array] = self._collect_arrays()
        self._validate()

    def _collect_arrays(self) -> List[Array]:
        seen: List[Array] = []

        def visit(node: Node) -> None:
            if isinstance(node, Loop):
                for child in node.body:
                    visit(child)
            else:
                for ref in node.refs:
                    if ref.array not in seen:
                        seen.append(ref.array)

        for node in self.body:
            visit(node)
        return seen

    def _validate(self) -> None:
        names = [a.name for a in self.arrays]
        if len(set(names)) != len(names):
            raise WorkloadError(f"program {self.name!r} has duplicate array names: {names}")

    def layout(self, base_addr: int = 0x10_0000, align: int = 64) -> None:
        """Assign base addresses to all arrays.

        Arrays are placed consecutively in discovery order, each aligned
        to ``align`` bytes — the natural contiguous layout a C program
        with global arrays would get, so conflict misses arise naturally.
        """
        if align <= 0 or base_addr < 0:
            raise WorkloadError("layout needs a positive alignment and non-negative base")
        addr = base_addr
        for array in self.arrays:
            addr = (addr + align - 1) // align * align
            array.base_addr = addr
            addr += array.size_bytes

    @property
    def footprint_bytes(self) -> int:
        """Total bytes of all arrays."""
        return sum(a.size_bytes for a in self.arrays)

    def loops(self) -> List[Loop]:
        """All loops in the program, outermost first (preorder)."""
        found: List[Loop] = []

        def visit(node: Node) -> None:
            if isinstance(node, Loop):
                found.append(node)
                for child in node.body:
                    visit(child)

        for node in self.body:
            visit(node)
        return found

    def clone(self) -> "Program":
        """Copy the program tree so transformation passes stay pure."""
        copied = Program(
            self.name,
            [node.clone() if isinstance(node, Loop) else node for node in self.body],
        )
        return copied

    def __repr__(self) -> str:
        return f"Program({self.name!r}, arrays={[a.name for a in self.arrays]})"


def loop(
    var: Var,
    upper: AffineLike,
    body: Sequence[Node],
    lower: AffineLike = 0,
    permutable: bool = False,
) -> Loop:
    """Convenience constructor: ``loop(i, N, [...])`` = ``for i in [0, N)``."""
    return Loop(var, lower, upper, body, permutable=permutable)


def stmt(
    reads: Iterable[Ref] = (),
    writes: Iterable[Ref] = (),
    flops: int = 1,
    overhead_ops: int = 1,
    label: str = "",
) -> Statement:
    """Convenience constructor for :class:`Statement`."""
    return Statement(tuple(reads), tuple(writes), flops, overhead_ops, label)
