"""Access descriptors exchanged between the CPU model and the hierarchy."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError


class AccessType(enum.Enum):
    """Kind of memory access, as seen by a cache."""

    READ = "read"
    WRITE = "write"
    PREFETCH = "prefetch"
    IFETCH = "ifetch"

    @property
    def is_write(self) -> bool:
        """True for accesses that modify the addressed data."""
        return self is AccessType.WRITE

    @property
    def is_demand(self) -> bool:
        """True for accesses the core waits on (everything but prefetch)."""
        return self is not AccessType.PREFETCH


@dataclass(frozen=True)
class Access:
    """One memory access: an address, a size in bytes, and a type.

    Addresses are plain integers (byte addresses in a flat physical
    address space); the workload interpreter lays arrays out in this space
    and the System-call-Emulation-style platform needs no translation,
    mirroring the paper's gem5 SE-mode setup.
    """

    addr: int
    size: int
    type: AccessType

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ConfigurationError(f"address must be non-negative: {self.addr}")
        if self.size <= 0:
            raise ConfigurationError(f"access size must be positive: {self.size}")

    @property
    def end(self) -> int:
        """One past the last byte touched by this access."""
        return self.addr + self.size

    def lines(self, line_bytes: int) -> range:
        """Aligned line addresses this access touches, lowest first."""
        first = (self.addr // line_bytes) * line_bytes
        last = ((self.end - 1) // line_bytes) * line_bytes
        return range(first, last + line_bytes, line_bytes)
