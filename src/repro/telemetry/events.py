"""Structured JSONL event log with nested spans.

One :class:`TelemetryRecorder` owns one ``events.jsonl`` file.  Every
record is a single JSON object per line with a monotonically increasing
``seq`` number, a monotonic ``ts`` in seconds since the recorder was
opened, and the emitting process id — so records from a sweep can be
ordered, nested and attributed without any clock assumptions.

Spans nest: a CLI command opens a ``sweep`` span, the execution engine
opens one ``batch`` span per :meth:`~repro.exec.engine.ExecutionEngine.
run_points` call inside it, and each simulation point gets its own
``point`` span parented on the batch.  Point spans of a parallel batch
overlap freely — each carries its own id, so readers reconstruct the
timeline from ``span_begin``/``span_end`` pairs, not from nesting order
in the file.

The default :data:`NULL_TELEMETRY` singleton follows the same contract
as :data:`repro.obs.NULL_PROBE`: every hook is a no-op, ``enabled`` is
``False``, and instrumented code guards any non-trivial work behind
that flag — results are bit-identical and the overhead is below the 5%
budget ``benchmarks/bench_profile.py`` enforces.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, TextIO, Union

#: Version of the JSONL record layout (the first ``meta`` record of
#: every log carries it, so readers can reject incompatible files).
EVENTS_FORMAT_VERSION = 1

#: File name a recorder writes inside its telemetry directory.
EVENTS_FILENAME = "events.jsonl"


class NullSpan:
    """Inert span handle returned by the disabled telemetry path."""

    __slots__ = ()

    #: A null span has no identity; readers never see it.
    id = 0

    def __enter__(self) -> "NullSpan":
        """Enter the no-op context."""
        return self

    def __exit__(self, *exc) -> None:
        """Leave the no-op context (exceptions propagate)."""
        return None


_NULL_SPAN = NullSpan()


class Telemetry:
    """Disabled-telemetry base: every hook is a no-op.

    Instrumented code (the execution engine, the CLI) holds a
    ``Telemetry`` reference and gates any non-trivial bookkeeping on
    :attr:`enabled`, exactly like components gate probe hooks on
    ``Probe.enabled`` — so the default path stays bit-identical and
    effectively free.
    """

    #: Instrumented code gates record-keeping on this flag.
    enabled: bool = False

    def now(self) -> float:
        """Seconds since the recorder opened (0.0 when disabled)."""
        return 0.0

    def span(self, name: str, **attrs: Any) -> Union[NullSpan, "SpanHandle"]:
        """Context manager for an implicitly-nested span (no-op here)."""
        return _NULL_SPAN

    def begin_span(self, name: str, parent: Optional[int] = None, **attrs: Any) -> int:
        """Open an explicitly-managed span; returns its id (0 here)."""
        return 0

    def end_span(self, span_id: int, **attrs: Any) -> None:
        """Close a span opened with :meth:`begin_span`."""

    def event(self, name: str, **fields: Any) -> None:
        """Record a point-in-time event under the current span."""

    def warning(self, name: str, **fields: Any) -> None:
        """Record a structured warning event (``level: "warning"``)."""

    def close(self) -> None:
        """Flush and close the underlying log (no-op here)."""


#: Shared do-nothing telemetry instance — the default everywhere.
NULL_TELEMETRY = Telemetry()


class SpanHandle:
    """Context-manager handle for one open span of a recorder."""

    __slots__ = ("_recorder", "id")

    def __init__(self, recorder: "TelemetryRecorder", span_id: int) -> None:
        self._recorder = recorder
        self.id = span_id

    def __enter__(self) -> "SpanHandle":
        """Enter the span context (the begin record is already written)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Pop the span off the nesting stack and emit ``span_end``."""
        self._recorder.end_span_handle(self.id)
        self._recorder.end_span(self.id, ok=exc_type is None)
        return None


class TelemetryRecorder(Telemetry):
    """Writes the structured JSONL event log of one sweep.

    Parameters
    ----------
    directory : str
        Telemetry output directory; ``events.jsonl`` is created (and
        truncated) inside it.  The directory is created if missing.

    Attributes
    ----------
    directory : pathlib-like str path
        Where the log (and, later, the manifest and sweep timeline)
        live.
    """

    enabled = True

    def __init__(self, directory: str) -> None:
        import pathlib

        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / EVENTS_FILENAME
        self._file: Optional[TextIO] = open(self.path, "w")
        self._t0 = time.monotonic()
        self._seq = 0
        self._next_span = 1
        self._stack: List[int] = []
        self._emit(
            {
                "kind": "meta",
                "name": "telemetry_start",
                "format": EVENTS_FORMAT_VERSION,
                "created": datetime.now(timezone.utc).isoformat(),
            }
        )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def now(self) -> float:
        """Monotonic seconds since the recorder opened."""
        return time.monotonic() - self._t0

    def _emit(self, record: Dict[str, Any], ts: Optional[float] = None) -> None:
        """Write one JSONL record (sequence number and pid stamped)."""
        if self._file is None:
            return
        record["seq"] = self._seq
        self._seq += 1
        record["ts"] = round(self.now() if ts is None else ts, 6)
        record["pid"] = os.getpid()
        self._file.write(json.dumps(record, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    # Spans and events
    # ------------------------------------------------------------------

    def begin_span(self, name: str, parent: Optional[int] = None, **attrs: Any) -> int:
        """Open a span and return its id.

        Parameters
        ----------
        name : str
            Span name (``sweep``, ``batch``, ``point``).
        parent : int, optional
            Explicit parent span id; defaults to the innermost span
            opened with :meth:`span` (or ``None`` at top level).
        **attrs
            Extra JSON-serialisable fields stored on the begin record.

        Returns
        -------
        int
            The span id to pass to :meth:`end_span`.
        """
        span_id = self._next_span
        self._next_span += 1
        if parent is None and self._stack:
            parent = self._stack[-1]
        record: Dict[str, Any] = {
            "kind": "span_begin",
            "name": name,
            "span": span_id,
            "parent": parent,
        }
        record.update(attrs)
        self._emit(record)
        return span_id

    def end_span(self, span_id: int, **attrs: Any) -> None:
        """Close a span by id, attaching any final fields.

        Parameters
        ----------
        span_id : int
            Id returned by :meth:`begin_span`.
        **attrs
            Extra JSON-serialisable fields stored on the end record.
        """
        record: Dict[str, Any] = {"kind": "span_end", "span": span_id}
        record.update(attrs)
        self._emit(record)

    def span(self, name: str, **attrs: Any) -> SpanHandle:
        """Open an implicitly-nested span as a context manager.

        The span is pushed on the recorder's nesting stack, so spans and
        events emitted inside the ``with`` block default their parent to
        it.  Use :meth:`begin_span`/:meth:`end_span` for spans whose
        lifetime does not follow lexical scope (parallel points).

        Parameters
        ----------
        name : str
            Span name.
        **attrs
            Extra fields for the begin record.

        Returns
        -------
        SpanHandle
            Context manager that ends the span on exit.
        """
        span_id = self.begin_span(name, **attrs)
        self._stack.append(span_id)
        handle = SpanHandle(self, span_id)
        return handle

    def end_span_handle(self, span_id: int) -> None:
        """Pop ``span_id`` off the nesting stack (internal helper)."""
        if self._stack and self._stack[-1] == span_id:
            self._stack.pop()

    def event(self, name: str, **fields: Any) -> None:
        """Record a point-in-time event parented on the current span.

        Parameters
        ----------
        name : str
            Event name.
        **fields
            Extra JSON-serialisable fields.
        """
        record: Dict[str, Any] = {
            "kind": "event",
            "name": name,
            "span": self._stack[-1] if self._stack else None,
        }
        record.update(fields)
        self._emit(record)

    def warning(self, name: str, **fields: Any) -> None:
        """Record a structured warning (kind ``warning``).

        Used for anomalies that must be visible but not fatal — e.g.
        the run cache naming a corrupt or stale entry.

        Parameters
        ----------
        name : str
            Warning name (e.g. ``cache_entry_corrupt``).
        **fields
            Extra fields; the offending cache key goes here.
        """
        record: Dict[str, Any] = {
            "kind": "warning",
            "name": name,
            "span": self._stack[-1] if self._stack else None,
        }
        record.update(fields)
        self._emit(record)

    def close(self) -> None:
        """Close any spans left open, flush and close the file."""
        while self._stack:
            self.end_span(self._stack.pop(), ok=True)
        if self._file is not None:
            self._emit({"kind": "meta", "name": "telemetry_end"})
            self._file.close()
            self._file = None


def read_events(path) -> List[Dict[str, Any]]:
    """Load every record of an ``events.jsonl`` file.

    Parameters
    ----------
    path : str or pathlib.Path
        The JSONL file.

    Returns
    -------
    list of dict
        Records in file order.

    Raises
    ------
    ValueError
        If any line is not a JSON object.
    """
    records: List[Dict[str, Any]] = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: expected a JSON object")
            records.append(record)
    return records
