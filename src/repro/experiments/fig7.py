"""Figure 7: effect of the VWB size (1/2/4 Kbit) on the penalty.

Paper: "larger size VWB's help in reducing the penalty more ... However,
a limit is present to the VWB size put forward by technology, circuit
level aspects cost and energy ... we found it ideal to keep the size of
the VWB to around 2KBit."

The sweep keeps the paper's two-line organisation and widens the lines
(1 Kbit VWB = two 512-bit lines, one DL1 line each; 4 Kbit = two 2-Kbit
lines spanning four DL1 lines each).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..transforms.pipeline import OptLevel
from .report import FigureResult
from .runner import CONFIGURATIONS, ExperimentRunner

#: VWB capacities swept by the paper.
SIZES_BITS = (1024, 2048, 4096)


def run(
    runner: Optional[ExperimentRunner] = None,
    sizes_bits: Sequence[int] = SIZES_BITS,
    level: OptLevel = OptLevel.FULL,
) -> FigureResult:
    """Optimized NVM+VWB penalty per kernel for each VWB capacity."""
    runner = runner or ExperimentRunner()
    series = {}
    for bits in sizes_bits:
        config = replace(CONFIGURATIONS["vwb"], vwb_bits=bits)
        series[f"vwb_{bits//1024}kbit"] = [
            runner.penalty(config, kernel, level, cache_key=f"vwb{bits}")
            for kernel in runner.kernels
        ]
    averages = {key: sum(vals) / len(vals) for key, vals in series.items()}
    ordered = list(averages.values())
    monotone = all(a >= b for a, b in zip(ordered, ordered[1:]))
    return FigureResult(
        name="fig7",
        title="Penalty of the optimized proposal for different VWB sizes",
        labels=list(runner.kernels),
        series=series,
        notes=[
            "paper: bigger VWBs reduce the penalty more; 2 Kbit chosen as the "
            "sweet spot given area/energy/associative-search limits",
            "measured averages: "
            + ", ".join(f"{k}={v:.1f}%" for k, v in averages.items())
            + (" (monotone)" if monotone else " (NOT monotone)"),
        ],
    )
