"""Docstring style gate for the exec, experiments and cpu packages.

The simulator core and the experiment engine ship "documented end to
end": every module and every public class/function in these packages
(:mod:`repro.exec` — resilience included — :mod:`repro.experiments`,
and :mod:`repro.cpu` with the batched replay engine) carries a
docstring, and parameter/attribute documentation uses NumPy style
(underlined ``Parameters``/``Returns``/``Raises``/``Attributes``
sections), not the Google ``Args:`` form.  CI additionally runs
``pydocstyle`` over the same packages; this test is the
dependency-free local equivalent.
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
PACKAGES = ("exec", "experiments", "cpu")

#: Google-style section markers that must not appear in these packages.
GOOGLE_MARKERS = ("Args:", "Arguments:", "Keyword Args:", "Attributes:", "Returns:", "Raises:", "Yields:")

#: NumPy section headers whose underline we check when present.
NUMPY_SECTIONS = ("Parameters", "Returns", "Raises", "Yields", "Attributes", "Notes")


def gated_files():
    files = []
    for package in PACKAGES:
        files.extend(sorted((SRC / package).rglob("*.py")))
    assert files, f"no sources under {SRC}"
    return files


def public_defs(tree):
    """Public classes and functions, including methods of public classes."""
    out = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            out.append(node)
            if isinstance(node, ast.ClassDef):
                out.extend(
                    item
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and not item.name.startswith("_")
                )
    return out


@pytest.mark.parametrize("path", gated_files(), ids=lambda p: str(p.relative_to(SRC)))
def test_module_and_public_api_documented(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name}: missing module docstring"
    undocumented = [n.name for n in public_defs(tree) if not ast.get_docstring(n)]
    assert not undocumented, f"{path.name}: undocumented public API: {undocumented}"


@pytest.mark.parametrize("path", gated_files(), ids=lambda p: str(p.relative_to(SRC)))
def test_numpy_style_not_google(path):
    tree = ast.parse(path.read_text())
    nodes = [tree] + [
        n for n in ast.walk(tree) if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    ]
    for node in nodes:
        doc = ast.get_docstring(node)
        if not doc:
            continue
        where = f"{path.name}:{getattr(node, 'name', '<module>')}"
        for marker in GOOGLE_MARKERS:
            assert marker not in doc, f"{where}: Google-style {marker!r} section (use NumPy style)"
        lines = doc.splitlines()
        for i, line in enumerate(lines):
            if line.strip() in NUMPY_SECTIONS:
                assert i + 1 < len(lines) and set(lines[i + 1].strip()) == {"-"}, (
                    f"{where}: NumPy section {line.strip()!r} must be underlined with dashes"
                )
