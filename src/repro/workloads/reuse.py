"""Reuse-distance profiling over traces (Mattson LRU stack analysis).

Given the memory accesses of a trace, computes each access's *reuse
distance* — the number of distinct cache lines touched since the last
access to the same line.  For a fully associative LRU cache the classic
Mattson result makes the histogram a one-shot miss-rate oracle: an
access misses iff its reuse distance is at least the cache's line
capacity, so one profiling pass predicts the miss rate of *every*
capacity at once.

The implementation is the standard O(N log N) Fenwick-tree formulation:
each line's most recent access time is marked in the tree; the reuse
distance of the next access to it is the count of marked times more
recent than that.

Used by ``examples/trace_tools.py`` and as an independent cross-check of
the cache simulator (a fully associative LRU cache must reproduce the
histogram's prediction exactly — see ``tests/test_reuse.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..errors import WorkloadError
from .trace import Load, Store, TraceEvent

#: Reuse distance reported for first-ever (compulsory) accesses.
COLD = -1


class _Fenwick:
    """Prefix-sum tree over access time slots."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i < len(self._tree):
            self._tree[i] += delta
            i += i & (-i)

    def prefix(self, index: int) -> int:
        """Sum of slots [0, index]."""
        i = index + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total


@dataclass
class ReuseProfile:
    """Reuse-distance histogram of one trace.

    Attributes:
        line_bytes: Granularity the trace was profiled at.
        histogram: distance -> access count (:data:`COLD` = first touch).
        total_accesses: Line-granular accesses profiled.
    """

    line_bytes: int
    histogram: Dict[int, int] = field(default_factory=dict)
    total_accesses: int = 0

    @property
    def cold_accesses(self) -> int:
        """First-touch (compulsory) accesses."""
        return self.histogram.get(COLD, 0)

    @property
    def unique_lines(self) -> int:
        """Distinct lines touched (equals the cold count)."""
        return self.cold_accesses

    def miss_rate_for(self, capacity_lines: int) -> float:
        """Predicted miss rate of a fully associative LRU cache.

        Args:
            capacity_lines: Cache capacity in lines.

        Returns:
            Fraction of accesses with reuse distance >= capacity (cold
            accesses always miss).
        """
        if capacity_lines <= 0:
            raise WorkloadError(f"capacity must be positive: {capacity_lines}")
        if self.total_accesses == 0:
            return 0.0
        misses = self.cold_accesses
        for distance, count in self.histogram.items():
            if distance != COLD and distance >= capacity_lines:
                misses += count
        return misses / self.total_accesses

    def miss_curve(self, capacities: Iterable[int]) -> List[float]:
        """Miss rates over a capacity sweep."""
        return [self.miss_rate_for(c) for c in capacities]


def profile_reuse(events: Iterable[TraceEvent], line_bytes: int = 64) -> ReuseProfile:
    """Profile the loads/stores of a trace at line granularity.

    Accesses spanning multiple lines contribute one profiled access per
    line, matching how the cache model splits them.
    """
    if line_bytes <= 0:
        raise WorkloadError(f"line size must be positive: {line_bytes}")

    # Pass 1: collect the line-granular access sequence.
    sequence: List[int] = []
    for ev in events:
        kind = type(ev)
        if kind is not Load and kind is not Store:
            continue
        first = ev.addr // line_bytes
        last = (ev.addr + ev.size - 1) // line_bytes
        sequence.extend(range(first, last + 1))

    profile = ReuseProfile(line_bytes=line_bytes, total_accesses=len(sequence))
    if not sequence:
        return profile

    # Pass 2: Mattson via Fenwick over time slots.
    tree = _Fenwick(len(sequence))
    last_time: Dict[int, int] = {}
    for now, line in enumerate(sequence):
        prev = last_time.get(line)
        if prev is None:
            distance = COLD
        else:
            # Distinct lines touched strictly after `prev`: each has its
            # most recent access marked in (prev, now).
            distance = tree.prefix(now - 1) - tree.prefix(prev)
            tree.add(prev, -1)
        tree.add(now, 1)
        last_time[line] = now
        profile.histogram[distance] = profile.histogram.get(distance, 0) + 1
    return profile
