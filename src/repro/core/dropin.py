"""Plain D-cache front-end: the baseline and the drop-in NVM replacement.

With an SRAM-latency backing cache this is the paper's baseline platform;
with STT-MRAM latencies it is the "Drop-In STT-MRAM D-Cache" of Figure 1 —
every load pays the 4-cycle NVM array read, which is exactly the penalty
the VWB is designed to remove.

Optionally a hardware :class:`~repro.mem.prefetcher.StridePrefetcher`
observes the demand stream — the extension comparison point against the
paper's software prefetching (``ablation-hwprefetch``).
"""

from __future__ import annotations

from typing import Optional

from ..mem.cache import Cache
from ..mem.prefetcher import StridePrefetcher
from ..mem.request import Access, AccessType
from .frontend import DCacheFrontend


class PlainFrontend(DCacheFrontend):
    """Forwards every access straight to the backing cache.

    Args:
        backing: The DL1 array.
        hw_prefetcher: Optional hardware stride prefetcher fed by the
            demand stream (off in every reproduced figure).
    """

    name = "plain"

    def __init__(self, backing: Cache, hw_prefetcher: Optional[StridePrefetcher] = None) -> None:
        super().__init__(backing)
        self.hw_prefetcher = hw_prefetcher

    def read(self, addr: int, size: int, now: float) -> float:
        """Demand load: one backing-cache access per line touched."""
        self.stats.buffer_read_misses += 1
        if self.hw_prefetcher is not None:
            self.hw_prefetcher.observe(addr, now)
        return self.backing.access(Access(addr, size, AccessType.READ), now)

    def write(self, addr: int, size: int, now: float) -> float:
        """Demand store: write-back/write-allocate in the backing cache."""
        self.stats.buffer_write_misses += 1
        if self.hw_prefetcher is not None:
            self.hw_prefetcher.observe(addr, now)
        return self.backing.access(Access(addr, size, AccessType.WRITE), now)

    def prefetch(self, addr: int, now: float) -> float:
        """Software prefetch into the backing cache (fills its MSHRs)."""
        self.stats.prefetches_issued += 1
        return self.backing.prefetch(addr, now)

    def reset(self) -> None:
        """Reset the backing cache, stats, and the prefetcher table."""
        super().reset()
        if self.hw_prefetcher is not None:
            self.hw_prefetcher.reset()

    def clear_stats(self) -> None:
        """Clear stats/timing; the prefetcher table holds no timestamps
        but its counters belong to the cleared run."""
        super().clear_stats()
        if self.hw_prefetcher is not None:
            self.hw_prefetcher.reset()
