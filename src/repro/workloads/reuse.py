"""Reuse-distance profiling over traces (Mattson LRU stack analysis).

Given the memory accesses of a trace, computes each access's *reuse
distance* — the number of distinct cache lines touched since the last
access to the same line.  For a fully associative LRU cache the classic
Mattson result makes the histogram a one-shot miss-rate oracle: an
access misses iff its reuse distance is at least the cache's line
capacity, so one profiling pass predicts the miss rate of *every*
capacity at once.

The implementation is the standard O(N log N) Fenwick-tree formulation:
each line's most recent access time is marked in the tree; the reuse
distance of the next access to it is the count of marked times more
recent than that.

Used by ``examples/trace_tools.py`` and as an independent cross-check of
the cache simulator (a fully associative LRU cache must reproduce the
histogram's prediction exactly — see ``tests/test_reuse.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..errors import WorkloadError
from .trace import Load, Store, TraceEvent

#: Reuse distance reported for first-ever (compulsory) accesses.
COLD = -1


class _Fenwick:
    """Prefix-sum tree over access time slots."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i < len(self._tree):
            self._tree[i] += delta
            i += i & (-i)

    def prefix(self, index: int) -> int:
        """Sum of slots [0, index]."""
        i = index + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total


@dataclass
class ReuseProfile:
    """Reuse-distance histogram of one trace.

    Attributes:
        line_bytes: Granularity the trace was profiled at.
        histogram: distance -> access count (:data:`COLD` = first touch).
        total_accesses: Line-granular accesses profiled.
    """

    line_bytes: int
    histogram: Dict[int, int] = field(default_factory=dict)
    total_accesses: int = 0

    @property
    def cold_accesses(self) -> int:
        """First-touch (compulsory) accesses."""
        return self.histogram.get(COLD, 0)

    @property
    def unique_lines(self) -> int:
        """Distinct lines touched (equals the cold count)."""
        return self.cold_accesses

    def miss_rate_for(self, capacity_lines: int) -> float:
        """Predicted miss rate of a fully associative LRU cache.

        Args:
            capacity_lines: Cache capacity in lines.

        Returns:
            Fraction of accesses with reuse distance >= capacity (cold
            accesses always miss).
        """
        if capacity_lines <= 0:
            raise WorkloadError(f"capacity must be positive: {capacity_lines}")
        if self.total_accesses == 0:
            return 0.0
        misses = self.cold_accesses
        for distance, count in self.histogram.items():
            if distance != COLD and distance >= capacity_lines:
                misses += count
        return misses / self.total_accesses

    def miss_curve(self, capacities: Iterable[int]) -> List[float]:
        """Miss rates over a capacity sweep."""
        return [self.miss_rate_for(c) for c in capacities]


def _profile_sequence(sequence: List[int], line_bytes: int) -> ReuseProfile:
    """Mattson pass over an already line-granular access sequence."""
    profile = ReuseProfile(line_bytes=line_bytes, total_accesses=len(sequence))
    if not sequence:
        return profile
    tree = _Fenwick(len(sequence))
    last_time: Dict[int, int] = {}
    for now, line in enumerate(sequence):
        prev = last_time.get(line)
        if prev is None:
            distance = COLD
        else:
            # Distinct lines touched strictly after `prev`: each has its
            # most recent access marked in (prev, now).
            distance = tree.prefix(now - 1) - tree.prefix(prev)
            tree.add(prev, -1)
        tree.add(now, 1)
        last_time[line] = now
        profile.histogram[distance] = profile.histogram.get(distance, 0) + 1
    return profile


def profile_reuse(events: Iterable[TraceEvent], line_bytes: int = 64) -> ReuseProfile:
    """Profile the loads/stores of a trace at line granularity.

    Accesses spanning multiple lines contribute one profiled access per
    line, matching how the cache model splits them.
    """
    if line_bytes <= 0:
        raise WorkloadError(f"line size must be positive: {line_bytes}")

    sequence: List[int] = []
    for ev in events:
        kind = type(ev)
        if kind is not Load and kind is not Store:
            continue
        first = ev.addr // line_bytes
        last = (ev.addr + ev.size - 1) // line_bytes
        sequence.extend(range(first, last + 1))
    return _profile_sequence(sequence, line_bytes)


def profile_trace(trace, line_bytes: int = 64) -> ReuseProfile:
    """Profile an :class:`~repro.workloads.encode.EncodedTrace`, memoized.

    A reuse histogram is only valid at the line granularity it was
    profiled at — a 64 B profile says nothing about a 32 B cache — so
    this re-profiles per line size and memoizes the result on the trace
    itself, keyed by ``("reuse", line_bytes)``.  Callers comparing
    configurations with differing line sizes get one correct profile
    each instead of silently sharing one granularity.

    Args:
        trace: The encoded trace to profile.
        line_bytes: Line granularity to profile at.

    Returns:
        The (possibly cached) profile at ``line_bytes``.
    """
    if line_bytes <= 0:
        raise WorkloadError(f"line size must be positive: {line_bytes}")
    memo = trace._analysis
    key = ("reuse", line_bytes)
    profile = memo.get(key)
    if profile is None:
        from .encode import OP_LOAD, OP_STORE

        sequence: List[int] = []
        la, ls = trace.load_addrs, trace.load_sizes
        sa, ss = trace.store_addrs, trace.store_sizes
        li = si = 0
        for op in trace.opcodes:
            if op == OP_LOAD:
                addr, size = la[li], ls[li]
                li += 1
            elif op == OP_STORE:
                addr, size = sa[si], ss[si]
                si += 1
            else:
                continue
            first = addr // line_bytes
            last = (addr + size - 1) // line_bytes
            if first == last:
                sequence.append(first)
            else:
                sequence.extend(range(first, last + 1))
        profile = _profile_sequence(sequence, line_bytes)
        memo[key] = profile
    return profile
