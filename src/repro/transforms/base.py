"""Transformation-pass infrastructure."""

from __future__ import annotations

import abc
from typing import Iterable, List

from ..workloads.ir import Loop, Node, Program


class Transform(abc.ABC):
    """A pure IR-to-IR pass.

    Subclasses implement :meth:`apply_to`, mutating the *cloned* tree
    they are given; :meth:`apply` handles cloning so callers can reuse
    the input program.
    """

    #: Short name used in reports and the Figure 6 breakdown.
    name: str = "transform"

    def apply(self, program: Program) -> Program:
        """Return a transformed copy of ``program``."""
        copy = program.clone()
        self.apply_to(copy)
        return copy

    @abc.abstractmethod
    def apply_to(self, program: Program) -> None:
        """Transform ``program`` in place (already cloned by the caller)."""

    @staticmethod
    def innermost_loops(program: Program) -> List[Loop]:
        """All innermost loops of the program, in preorder."""
        return [lp for lp in program.loops() if lp.is_innermost]

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def apply_all(program: Program, transforms: Iterable[Transform]) -> Program:
    """Apply ``transforms`` in order, returning the final program.

    The input program is never mutated; each pass clones its input.
    """
    current = program
    for transform in transforms:
        current = transform.apply(current)
    return current
