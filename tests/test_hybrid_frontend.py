"""The hybrid SRAM/NVM front-end (related-work extension)."""

import pytest

from repro.core.hybrid import HybridFrontend
from repro.errors import ConfigurationError
from repro.mem.cache import Cache, CacheConfig
from repro.mem.mainmem import MainMemory


def make_frontend(sram_bytes=1024, mem_latency=100.0):
    backing = Cache(
        CacheConfig(
            name="dl1",
            capacity_bytes=8192,
            associativity=2,
            line_bytes=64,
            read_hit_cycles=4,
            write_hit_cycles=2,
            banks=4,
        ),
        MainMemory(latency_cycles=mem_latency, transfer_cycles=0.0),
    )
    return HybridFrontend(backing, sram_bytes=sram_bytes)


class TestReadPath:
    def test_sram_hit_is_one_cycle(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        assert fe.read(8, 4, 1000.0) == 1.0
        assert fe.stats.buffer_read_hits == 1

    def test_miss_fills_sram_from_nvm(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        assert fe.sram.contains(0)
        assert fe.backing.contains(0)

    def test_nvm_resident_refill_costs_array_read(self):
        fe = make_frontend(sram_bytes=128)  # 2 lines: easy to evict
        fe.read(0, 4, 0.0)
        fe.read(128, 4, 1000.0)
        fe.read(256, 4, 2000.0)  # evicts line 0 from the partition
        latency = fe.read(0, 4, 10000.0)
        assert latency == pytest.approx(1.0 + 4.0)  # SRAM tag + NVM read
        assert fe.backing.stats.read_hits >= 1


class TestWritePath:
    def test_write_allocates_into_sram(self):
        fe = make_frontend()
        fe.write(0, 4, 0.0)
        assert fe.sram.contains(0)
        assert fe.sram.is_dirty(0)

    def test_repeated_writes_coalesce_in_sram(self):
        fe = make_frontend()
        fe.write(0, 4, 0.0)
        nvm_writes_before = fe.backing.stats.writes
        for t in range(1, 10):
            fe.write(0, 4, t * 100.0)
        assert fe.backing.stats.writes == nvm_writes_before

    def test_dirty_eviction_reaches_nvm(self):
        fe = make_frontend(sram_bytes=128)  # direct pressure
        fe.write(0, 4, 0.0)
        fe.read(128, 4, 1000.0)
        fe.read(256, 4, 2000.0)
        fe.read(384, 4, 3000.0)
        # The dirty line 0 must have been written back into the NVM.
        assert fe.backing.is_dirty(0)


class TestPrefetchAndMaintenance:
    def test_prefetch_fills_sram(self):
        fe = make_frontend()
        fe.prefetch(0, 0.0)
        assert fe.read(0, 4, 5000.0) == 1.0

    def test_prefetch_of_resident_useless(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        fe.prefetch(0, 1000.0)
        assert fe.stats.prefetches_useless == 1

    def test_reset(self):
        fe = make_frontend()
        fe.write(0, 4, 0.0)
        fe.reset()
        assert not fe.sram.contains(0)
        assert not fe.backing.contains(0)

    def test_clear_stats_keeps_contents(self):
        fe = make_frontend()
        fe.read(0, 4, 0.0)
        fe.clear_stats()
        assert fe.sram.contains(0)
        assert fe.stats.buffer_accesses == 0

    def test_rejects_empty_partition(self):
        with pytest.raises(ConfigurationError):
            make_frontend(sram_bytes=0)


class TestSystemIntegration:
    def test_hybrid_configuration(self):
        from repro.cpu.system import System, SystemConfig

        system = System(SystemConfig(technology="stt-mram", frontend="hybrid"))
        assert isinstance(system.frontend, HybridFrontend)
        assert system.frontend.sram.config.capacity_bytes == 8192

    def test_hybrid_beats_dropin(self, gemm_trace):
        from repro.cpu.system import System, SystemConfig

        dropin = System(SystemConfig(technology="stt-mram")).run(gemm_trace)
        hybrid = System(SystemConfig(technology="stt-mram", frontend="hybrid")).run(gemm_trace)
        assert hybrid.cycles < dropin.cycles
