"""Fault injection: determinism, bit-exactness, ECC, retry and retirement."""

import random

import pytest

from repro.cpu.system import System, SystemConfig
from repro.errors import ConfigurationError
from repro.obs.probe import RecordingProbe
from repro.reliability.degrade import LineRetirementMap
from repro.reliability.ecc import EccOutcome, SECDEDCode, secded_check_bits
from repro.reliability.faults import FaultInjector, ReliabilityConfig, sample_bit_errors
from repro.reliability.rng import derive_seed, make_rng
from repro.tech.params import SRAM_32NM_HP, STT_MRAM_32NM
from repro.workloads.synthetic import random_access

FAULTY = ReliabilityConfig(
    seed=7,
    write_error_rate=2e-3,
    read_disturb_rate=1e-4,
    retention_fault_rate=1e-4,
    retire_after_retries=8,
)


def _events(accesses=2000, seed=3):
    return random_access(accesses=accesses, seed=seed)


class TestRng:
    def test_make_rng_matches_plain_random(self):
        # Bit-exactness of pre-existing users (synthetic workloads, the
        # random replacement policy) depends on this equivalence.
        a, b = make_rng(42), random.Random(42)
        assert [a.random() for _ in range(8)] == [b.random() for _ in range(8)]

    def test_streams_are_separated_and_deterministic(self):
        assert derive_seed(1, "faults") == derive_seed(1, "faults")
        assert derive_seed(1, "faults") != derive_seed(1, "workload")
        assert derive_seed(1, "faults") != derive_seed(2, "faults")

    def test_stream_rng_reproducible(self):
        assert make_rng(5, "x").random() == make_rng(5, "x").random()

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_seed(1, "")


class TestSECDED:
    def test_check_bits_for_standard_widths(self):
        # Hamming bound + 1 parity bit: (64, 8) and (512, 11) are the
        # textbook SECDED geometries.
        assert secded_check_bits(64) == 8
        assert secded_check_bits(512) == 11

    def test_decode_outcomes(self):
        code = SECDEDCode(512)
        assert code.decode(0) is EccOutcome.CLEAN
        assert code.decode(1) is EccOutcome.CORRECTED
        assert code.decode(2) is EccOutcome.DETECTED
        assert code.decode(5) is EccOutcome.DETECTED

    def test_usable_property(self):
        assert EccOutcome.CLEAN.usable
        assert EccOutcome.CORRECTED.usable
        assert not EccOutcome.DETECTED.usable

    def test_negative_faults_rejected(self):
        with pytest.raises(ConfigurationError):
            SECDEDCode(512).decode(-1)


class TestSampling:
    def test_zero_rate_draws_nothing(self):
        rng = make_rng(0)
        before = rng.getstate()
        assert sample_bit_errors(rng, 512, 0.0) == 0
        assert rng.getstate() == before

    def test_certain_rate_flips_everything(self):
        assert sample_bit_errors(make_rng(0), 512, 1.0) == 512

    def test_counts_are_binomial_ish(self):
        rng = make_rng(1)
        total = sum(sample_bit_errors(rng, 512, 0.01) for _ in range(2000))
        assert total == pytest.approx(512 * 0.01 * 2000, rel=0.15)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_bit_errors(make_rng(0), -1, 0.5)
        with pytest.raises(ConfigurationError):
            sample_bit_errors(make_rng(0), 8, 1.5)


class TestConfig:
    def test_default_config_is_inert(self):
        cfg = ReliabilityConfig()
        assert not cfg.enabled
        assert not cfg.read_fault_possible

    def test_enabled_by_any_rate(self):
        assert ReliabilityConfig(write_error_rate=1e-6).enabled
        assert ReliabilityConfig(read_disturb_rate=1e-6).read_fault_possible
        assert ReliabilityConfig(retention_fault_rate=1e-6).read_fault_possible

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReliabilityConfig(write_error_rate=1.5)
        with pytest.raises(ConfigurationError):
            ReliabilityConfig(max_write_attempts=0)
        with pytest.raises(ConfigurationError):
            ReliabilityConfig(ecc_decode_cycles=-1)
        with pytest.raises(ConfigurationError):
            ReliabilityConfig(retire_after_retries=-1)


class TestInjector:
    def test_attempts_bounded_by_budget(self):
        inj = FaultInjector(
            ReliabilityConfig(seed=0, write_error_rate=0.9, max_write_attempts=3), 512
        )
        for _ in range(50):
            assert 1 <= inj.write_attempts() <= 3

    def test_budget_exhaustion_flags_failure(self):
        inj = FaultInjector(
            ReliabilityConfig(seed=0, write_error_rate=1.0, max_write_attempts=2), 8
        )
        inj.write_attempts()
        assert inj.last_write_failed()
        assert inj.stats.write_failures == 1

    def test_reset_replays_identically(self):
        inj = FaultInjector(FAULTY, 512)
        first = [inj.write_attempts() for _ in range(100)]
        inj.reset()
        assert [inj.write_attempts() for _ in range(100)] == first


class TestRetirementMap:
    def test_threshold_crossing(self):
        m = LineRetirementMap(4, 2, retire_after_retries=3)
        assert not m.record_retries(0, 0, 2)
        assert m.record_retries(0, 0, 1)
        m.retire(0, 0)
        assert m.is_disabled(0, 0)
        assert m.enabled_ways(0) == 1
        assert m.retired_lines == 1

    def test_last_way_never_retires(self):
        m = LineRetirementMap(4, 2, retire_after_retries=1)
        assert m.record_retries(0, 0, 5)
        m.retire(0, 0)
        # Way 1 is the last usable way of set 0: it must stay in service.
        assert not m.record_retries(0, 1, 100)

    def test_zero_threshold_disables_retirement(self):
        m = LineRetirementMap(4, 2, retire_after_retries=0)
        assert not m.record_retries(0, 0, 10**6)

    def test_reset_restores_service(self):
        m = LineRetirementMap(4, 2, retire_after_retries=1)
        m.record_retries(0, 0, 1)
        m.retire(0, 0)
        m.reset()
        assert m.retired_lines == 0
        assert not m.is_disabled(0, 0)


class TestThermalModel:
    def test_sram_writes_are_deterministic(self):
        assert SRAM_32NM_HP.write_error_rate() == 0.0

    def test_stt_mram_rate_is_single_digit_ppm(self):
        rate = STT_MRAM_32NM.write_error_rate()
        assert 1e-7 < rate < 1e-4

    def test_longer_pulse_is_exponentially_safer(self):
        short = STT_MRAM_32NM.write_error_rate(pulse_ns=1.0)
        long = STT_MRAM_32NM.write_error_rate(pulse_ns=4.0)
        assert long < short**2

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            STT_MRAM_32NM.write_error_rate(pulse_ns=0.0)
        with pytest.raises(ConfigurationError):
            STT_MRAM_32NM.write_error_rate(overdrive=1.0)


class TestSystemDeterminism:
    def test_zero_rates_bit_exact_with_fault_free(self):
        events = _events()
        for frontend in ("plain", "vwb"):
            base = System(SystemConfig(technology="stt-mram", frontend=frontend))
            inert = System(
                SystemConfig(
                    technology="stt-mram",
                    frontend=frontend,
                    reliability=ReliabilityConfig(seed=9),
                )
            )
            r0, r1 = base.run(events), inert.run(events)
            assert r1.cycles == r0.cycles
            assert r1.dl1_stats == r0.dl1_stats
            # An inert injector reports stats, but they are all zero.
            assert r1.reliability_stats
            assert not any(r1.reliability_stats.values())

    def test_same_seed_reproduces_identical_run(self):
        events = _events()
        cfg = SystemConfig(technology="stt-mram", frontend="vwb", reliability=FAULTY)
        a, b = System(cfg).run(events), System(cfg).run(events)
        assert a.cycles == b.cycles
        assert a.reliability_stats == b.reliability_stats
        assert a.dl1_stats == b.dl1_stats
        assert a.retired_lines == b.retired_lines

    def test_reset_reproduces_identical_run(self):
        events = _events()
        system = System(
            SystemConfig(technology="stt-mram", frontend="vwb", reliability=FAULTY)
        )
        a = system.run(events)
        b = system.run(events)  # run() resets, re-seeding the injector
        assert a.cycles == b.cycles
        assert a.reliability_stats == b.reliability_stats

    def test_faults_slow_the_machine_down(self):
        events = _events()
        clean = System(SystemConfig(technology="stt-mram", frontend="plain")).run(events)
        faulty = System(
            SystemConfig(technology="stt-mram", frontend="plain", reliability=FAULTY)
        ).run(events)
        assert faulty.cycles > clean.cycles
        assert faulty.reliability_stats["write_retries"] > 0

    def test_different_seeds_diverge(self):
        events = _events()
        runs = []
        for seed in (1, 2):
            cfg = SystemConfig(
                technology="stt-mram",
                frontend="plain",
                reliability=ReliabilityConfig(seed=seed, write_error_rate=2e-3),
            )
            runs.append(System(cfg).run(events))
        assert runs[0].reliability_stats != runs[1].reliability_stats


class TestLedgerExactness:
    @pytest.mark.parametrize("frontend", ["plain", "vwb"])
    def test_ledger_balances_under_faults(self, frontend):
        probe = RecordingProbe()
        system = System(
            SystemConfig(technology="stt-mram", frontend=frontend, reliability=FAULTY)
        )
        system.run(_events(), probe=probe)  # probe.finish verifies exactness
        assert probe.verified
        assert probe.ledger.totals["ecc_decode"] > 0.0

    def test_new_categories_stay_zero_without_faults(self):
        probe = RecordingProbe()
        System(SystemConfig(technology="stt-mram", frontend="vwb")).run(
            _events(), probe=probe
        )
        assert probe.verified
        for category in ("ecc_decode", "write_retry", "fault_refill"):
            assert probe.ledger.totals[category] == 0.0


class TestGracefulDegradation:
    def test_hot_retirement_shrinks_associativity_without_breaking(self):
        cfg = SystemConfig(
            technology="stt-mram",
            frontend="plain",
            reliability=ReliabilityConfig(
                seed=0, write_error_rate=5e-2, retire_after_retries=1
            ),
        )
        result = System(cfg).run(_events())
        assert result.retired_lines > 0
        # Never below one usable way per set.
        dl1 = SystemConfig().dl1_cache_config()
        assert result.retired_lines <= dl1.sets * (dl1.associativity - 1)

    def test_retirement_survives_every_replacement_policy(self):
        for policy in ("lru", "plru", "fifo", "random"):
            cfg = SystemConfig(
                technology="stt-mram",
                frontend="plain",
                dl1_replacement=policy,
                reliability=ReliabilityConfig(
                    seed=0, write_error_rate=5e-2, retire_after_retries=1
                ),
            )
            result = System(cfg).run(_events(accesses=800))
            assert result.retired_lines > 0, policy
