"""PolyBench ``gemver``: BLAS-style vector/matrix update chain.

Four phases: a rank-2 update of ``A`` (unit stride), a transposed
matrix-vector product (column walk, stride N), a vector add, and a
regular matrix-vector product — the most phase-diverse kernel in the
suite, exercising both VWB-friendly and VWB-hostile patterns in one run.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"n": 90}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the gemver program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    n = dims["n"]
    i, j = Var("i"), Var("j")
    a = Array("A", (n, n))
    u1, v1 = Array("u1", (n,)), Array("v1", (n,))
    u2, v2 = Array("u2", (n,)), Array("v2", (n,))
    w, x, y, z = Array("w", (n,)), Array("x", (n,)), Array("y", (n,)), Array("z", (n,))
    body = [
        loop(
            i,
            n,
            [
                loop(
                    j,
                    n,
                    [
                        stmt(
                            reads=[a[i, j], u1[i], v1[j], u2[i], v2[j]],
                            writes=[a[i, j]],
                            flops=4,
                            label="rank2_update",
                        )
                    ],
                )
            ],
        ),
        loop(
            i,
            n,
            [
                loop(
                    j,
                    n,
                    [
                        stmt(
                            reads=[x[i], a[j, i], y[j]],
                            writes=[x[i]],
                            flops=3,
                            label="at_x",
                        )
                    ],
                )
            ],
        ),
        loop(i, n, [stmt(reads=[x[i], z[i]], writes=[x[i]], flops=1, label="x_plus_z")]),
        loop(
            i,
            n,
            [
                loop(
                    j,
                    n,
                    [
                        stmt(
                            reads=[w[i], a[i, j], x[j]],
                            writes=[w[i]],
                            flops=3,
                            label="a_x",
                        )
                    ],
                )
            ],
        ),
    ]
    return Program("gemver", body)
