"""Loop vectorization (Section V: "essentially loop vectorization").

Marks innermost loops for SIMD execution when every reference they touch
is either loop-invariant (stride 0, register-allocated by scalar
replacement) or unit-stride — the profile an ARM NEON compiler accepts
without gather/scatter support.  The interpreter then processes the loop
in ``width``-iteration chunks: one wide access per unit-stride reference,
one arithmetic charge per chunk, one back-edge per chunk — "one operation
on multiple pairs of operands at once".
"""

from __future__ import annotations

from ..errors import TransformError
from ..workloads.ir import Loop, Program
from .base import Transform


class Vectorize(Transform):
    """Vectorize eligible innermost loops.

    Args:
        width: SIMD lanes (4 matches 128-bit NEON over 32-bit floats).
        allow_gather: Also vectorize loops containing strided references,
            modelling an ISA with gather/scatter (off by default — the
            paper's ARM-like platform has none).
    """

    name = "vectorize"

    def __init__(self, width: int = 4, allow_gather: bool = False) -> None:
        if width < 2:
            raise TransformError(f"vector width must be at least 2, got {width}")
        self.width = width
        self.allow_gather = allow_gather

    def apply_to(self, program: Program) -> None:
        for lp in self.innermost_loops(program):
            if self._eligible(lp):
                lp.vector_width = self.width

    def _eligible(self, lp: Loop) -> bool:
        for statement in lp.statements():
            for ref in statement.refs:
                stride = ref.stride_elements(lp.var)
                if stride in (0, 1):
                    continue
                if not self.allow_gather:
                    return False
        return True

    def eligible_loops(self, program: Program) -> int:
        """Count the loops this pass would vectorize (reporting helper)."""
        return sum(1 for lp in self.innermost_loops(program) if self._eligible(lp))
