"""Workloads: an affine loop-nest IR and the PolyBench kernel subset.

The paper drives gem5 with compiled PolyBench C kernels.  Our substrate
replaces the compiler+ISA layer with a small affine intermediate
representation (:mod:`repro.workloads.ir`) whose interpreter
(:mod:`repro.workloads.interp`) emits the same *architectural event
stream* a compiled kernel would: loads/stores with exact addresses,
arithmetic operations, loop branches, and (after the transformation
passes of :mod:`repro.transforms`) vector accesses and software
prefetches.

Kernels live in :mod:`repro.workloads.polybench`; each module builds a
:class:`~repro.workloads.ir.Program` for a requested problem size.
"""

from .affine import Affine, Var
from .ir import Array, Loop, Program, Ref, Statement, loop, stmt
from .trace import Branch, Compute, Load, Prefetch, Store, TraceEvent, trace_summary
from .interp import TraceConfig, generate_trace, materialize_trace
from .encode import EncodedTrace, encode_events, encode_trace
from .datasets import DatasetSize, scale_for
from .bounds import assert_in_bounds, check_bounds
from .polybench import EXTRA_KERNELS, KERNELS, build_kernel, kernel_names
from .reuse import ReuseProfile, profile_reuse
from .tracefile import load_trace, save_trace

__all__ = [
    "Affine",
    "Var",
    "Array",
    "Loop",
    "Program",
    "Ref",
    "Statement",
    "loop",
    "stmt",
    "Branch",
    "Compute",
    "Load",
    "Prefetch",
    "Store",
    "TraceEvent",
    "trace_summary",
    "TraceConfig",
    "generate_trace",
    "materialize_trace",
    "EncodedTrace",
    "encode_events",
    "encode_trace",
    "DatasetSize",
    "scale_for",
    "KERNELS",
    "EXTRA_KERNELS",
    "build_kernel",
    "kernel_names",
    "load_trace",
    "save_trace",
    "assert_in_bounds",
    "check_bounds",
    "ReuseProfile",
    "profile_reuse",
]
