"""Guaranteed-hit run annotation: the event-elimination oracle.

The Mattson profiler in :mod:`repro.workloads.reuse` answers "would this
access hit?" for *fully associative* LRU caches.  This module extends
the idea to the set-associative LRU arrays the simulator actually
models, with one per-set truncated LRU stack per cache set, and uses it
to annotate an :class:`~repro.workloads.encode.EncodedTrace` with
**guaranteed-hit runs**: maximal event spans in which every load and
store *provably* hits a cache of the given shape — no fill, no
eviction, no clean-to-dirty transition — so the replay paths
(:meth:`repro.cpu.model.InOrderCPU.run_encoded` and the generated
stepper in :mod:`repro.cpu.batched`) can consume a whole run in one
step instead of N per-event passes.

Shape and oracle
----------------

A *shape* is ``(line_bytes, sets, ways, banks)`` — everything the hit
oracle and the per-event bank arithmetic depend on.  The oracle keeps,
per set, the ``ways`` most-recently-used line numbers (MRU first) plus
a dirty-line set, and classifies each access:

- **pure hit** — the line is in its set's stack and, for a store, is
  already dirty: eliminable;
- **dirty transition** — a store hit on a clean line: the real cache
  flips a dirty bit, so the event stays on the exact per-event path
  (and the oracle marks the line dirty);
- **miss** — fill + possible eviction + possible write-back: per-event;
- **spanning** — the access crosses a line boundary and takes the
  generic multi-line path: per-event.

Anything but a pure hit is a *boundary event* and ends the current run.
Traces containing software prefetches are never annotated (prefetch
fills and MSHR occupancy are not modelled by the oracle), and neither
are shapes whose line/set/bank counts are not powers of two.

Warm-start soundness
--------------------

The oracle profiles from a *cold* cache, but warm re-runs
(``reset=False``) replay over retained contents.  That is safe because
the oracle only ever **under-claims**: every line in an oracle stack is
resident in the real cache in matching relative recency order (real
fills insert at MRU exactly like the oracle; real evictions take the
set's LRU way, which is never above an oracle line), so an oracle hit
is always a real hit and an oracle-dirty line is always really dirty.
A really-resident line the oracle has not seen can only turn an
oracle "miss" into a real hit — a boundary event, replayed exactly by
the per-event path.  Pinned by the audit's warm leg and
``tests/test_elim.py``.

What a run record carries
-------------------------

Enough for both consumption tiers of
:func:`repro.cpu.fastpath.make_run_applier` without re-reading the
address columns: a packed per-event word array (opcode kind + bank or
operand) for the exact per-event *lite* tier, per-segment event counts
split at stores for the closed-form tier, per-bank entry-gate prefix
weights, last-access descriptors for the closed form's exit
``bank_busy`` reconstruction, and the per-set MRU tag order at run end
for the batch LRU-recency replay.

Annotations are memoized on the trace itself (keyed by shape), so a
trace replayed through N same-shaped configurations is profiled once.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from .encode import (
    OP_BRANCH,
    OP_COMPUTE,
    OP_LOAD,
    OP_MARK,
    OP_PREFETCH,
    OP_STORE,
    EncodedTrace,
)

#: Minimum events (marks excluded) for a hit span to be worth a run
#: record: below this, the per-run apply overhead (entry gates, LRU
#: replay, bookkeeping) eats the per-event savings.
MIN_RUN_EVENTS = 16

#: Packed-word kinds (low 3 bits of each ``HitRun.packed`` entry; the
#: payload — bank, ops count or taken flag — sits in the high bits).
PK_LOAD = 0
PK_COMPUTE = 1
PK_STORE = 2
PK_BRANCH = 3

#: Per-access oracle outcomes (see :func:`oracle_outcomes`).
MISS = 0
DIRTY_TRANSITION = 1
PURE_HIT = 2
SPANNING = 3

#: Process-wide elimination counters, snapshot by the execution engine
#: into :class:`~repro.exec.engine.ExecStats` (and from there into
#: telemetry manifests).  Per-process: pooled workers accumulate their
#: own counts, which the parent engine cannot see.
_COUNTERS = {"events_eliminated": 0, "runs_applied": 0}

#: Session override installed by :func:`forced` (``None`` = follow the
#: ``REPRO_ELIM`` environment variable).
_FORCED: Optional[bool] = None


def enabled() -> bool:
    """Whether the replay paths may consume hit-run annotations.

    Returns
    -------
    bool
        The :func:`forced` override when one is active, else ``True``
        unless the ``REPRO_ELIM`` environment variable is ``"0"``.
    """
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_ELIM", "1") != "0"


@contextmanager
def forced(on: bool) -> Iterator[None]:
    """Force elimination on or off for a scope, ignoring ``REPRO_ELIM``.

    Parameters
    ----------
    on : bool
        ``True`` forces elimination on; ``False`` forces the pure
        per-event paths.
    """
    global _FORCED
    previous = _FORCED
    _FORCED = bool(on)
    try:
        yield
    finally:
        _FORCED = previous


def counters() -> Dict[str, int]:
    """Snapshot of this process's elimination counters.

    Returns
    -------
    dict
        ``{"events_eliminated": ..., "runs_applied": ...}``.
    """
    return dict(_COUNTERS)


def book_run(events: int) -> None:
    """Record one applied run of ``events`` eliminated events."""
    _COUNTERS["events_eliminated"] += events
    _COUNTERS["runs_applied"] += 1


class HitRun:
    """One guaranteed-hit span of a trace for one cache shape.

    Attributes
    ----------
    start, end : int
        Trace event index range ``[start, end)`` the run covers (leading
        marks trimmed; interior marks included — they cost nothing).
    counts : tuple of int
        ``(n_loads, n_stores, n_computes, ops_total, n_taken, n_exit)``
        over the span, for cursor jumps and bulk stat/accumulator
        updates.
    packed : list of int
        One word per load/store/compute/branch event in order (marks
        omitted): low 3 bits the ``PK_*`` kind, high bits the bank
        (loads/stores), ops count (computes) or taken flag (branches).
        Drives the exact per-event *lite* apply tier — kept as a plain
        list because the lite loop iterates it on every replay and list
        iteration reuses the boxed ints (an ``array`` would re-box each
        word on every pass).
    segs : tuple of tuple
        ``(n_loads, ops, n_taken, n_exit)`` per segment, split at
        stores — ``len(segs) == n_stores + 1``.  Drives the closed-form
        tier's clock recurrence.
    gate : tuple of tuple
        ``(bank, n_loads, ops, n_stores, n_branches)`` for the first
        access to each touched bank: the event-count prefix before it,
        a lower bound on the clock advance, used by the closed form's
        zero-bank-wait entry gate.
    last_banks : tuple of tuple
        Per touched bank, how to reconstruct its final busy time:
        ``(bank, 0, store_ordinal, 0, 0, 0, 0)`` when the last access
        is a store, ``(bank, 1, seg_index, n_loads, ops, n_taken,
        n_exit)`` (in-segment prefix before the load) when it is a
        load.
    lru_sets : tuple of tuple
        ``(set_index, (tag, ...))`` per touched set: the run-touched
        cache tags in MRU-first order at run end, for the batch
        LRU-recency replay.
    """

    __slots__ = ("start", "end", "counts", "packed", "segs", "gate",
                 "last_banks", "lru_sets")

    def __init__(self, start, end, counts, packed, segs, gate, last_banks, lru_sets):
        self.start = start
        self.end = end
        self.counts = counts
        self.packed = packed
        self.segs = segs
        self.gate = gate
        self.last_banks = last_banks
        self.lru_sets = lru_sets

    def __repr__(self) -> str:
        return f"HitRun([{self.start}, {self.end}), {len(self.packed)} events)"


def _shape_ok(trace: EncodedTrace, shape: Tuple[int, int, int, int]) -> bool:
    """Whether (trace, shape) is annotatable at all."""
    line_bytes, sets, ways, banks = shape
    if len(trace.pf_addrs):
        return False  # prefetch fills/MSHR state are outside the oracle
    for n in (line_bytes, sets, banks):
        if n <= 0 or n & (n - 1):
            return False
    return ways >= 1


def annotate_trace(
    trace: EncodedTrace, shape: Tuple[int, int, int, int]
) -> Tuple[HitRun, ...]:
    """Annotate ``trace`` with guaranteed-hit runs for ``shape``.

    One profiling pass over the opcode/operand columns with the per-set
    LRU stack oracle; memoized on the trace per shape, so replaying the
    same trace through every same-shaped configuration profiles once.

    Parameters
    ----------
    trace : EncodedTrace
        The columnar event stream.
    shape : tuple of int
        ``(line_bytes, sets, ways, banks)`` of the cache array whose
        hit path the runs will bypass.

    Returns
    -------
    tuple of HitRun
        Run records in trace order — empty for prefetch-bearing traces
        and non-power-of-two shapes.
    """
    memo = trace._analysis
    key = ("elim",) + tuple(shape)
    runs = memo.get(key)
    if runs is None:
        runs = _annotate(trace, shape) if _shape_ok(trace, shape) else ()
        memo[key] = runs
    return runs


def runs_for(trace: EncodedTrace, shape: Tuple[int, int, int, int]) -> Tuple[HitRun, ...]:
    """Runs for one replay pass, deferring first-pass annotation.

    The profiling pass behind :func:`annotate_trace` costs about as much
    as one per-event replay, so eliminating a trace that is only ever
    replayed once through a shape is a net loss.  The replay paths
    therefore call this instead of :func:`annotate_trace`: the first
    pass over a ``(trace, shape)`` in a process runs per-event (and only
    books the demand), annotation happens from the second pass on, when
    the one-time cost amortises.  A :func:`forced` ``True`` scope
    annotates immediately (benchmarks, the audit's eliminated leg and
    the bit-identity tests all measure the steady state).

    Parameters
    ----------
    trace : EncodedTrace
        The columnar event stream.
    shape : tuple of int
        ``(line_bytes, sets, ways, banks)`` of the target cache array.

    Returns
    -------
    tuple of HitRun
        The annotation — empty on the first (deferred) pass and for
        ineligible traces/shapes.
    """
    memo = trace._analysis
    key = ("elim-passes",) + tuple(shape)
    passes = memo.get(key, 0)
    memo[key] = passes + 1
    if passes or _FORCED:
        return annotate_trace(trace, shape)
    return ()


def _annotate(trace: EncodedTrace, shape) -> Tuple[HitRun, ...]:
    """The profiling pass behind :func:`annotate_trace`."""
    line_bytes, sets, ways, banks = shape
    off = line_bytes.bit_length() - 1
    set_mask = sets - 1
    index_bits = sets.bit_length() - 1
    bank_mask = banks - 1

    # Oracle state, persistent across runs.
    stacks: List[List[int]] = [[] for _ in range(sets)]
    dirty: set = set()

    opcodes = trace.opcodes
    la, ls = trace.load_addrs, trace.load_sizes
    sa, ss = trace.store_addrs, trace.store_sizes
    ops_col, tk_col = trace.ops, trace.taken
    li = si = ci = ti = 0

    runs: List[HitRun] = []

    # Current-run accumulators; ``reset_run`` restarts them after a
    # boundary event.
    packed: List[int] = []
    pk_append = packed.append
    run_start = 0
    n_loads = n_stores = n_computes = ops_total = n_taken = n_exit = 0
    segs: List[Tuple[int, int, int, int]] = []
    seg_nl = seg_ops = seg_tk = seg_ex = 0
    gate: Dict[int, Tuple[int, int, int, int]] = {}
    last_banks: Dict[int, Tuple] = {}
    touched_lines: Dict[int, bool] = {}
    # Running whole-run prefix counts (events before the current one).
    p_nl = p_ops = p_nst = p_nbr = 0

    def close_run(end: int) -> None:
        """Emit the current span as a run if it is long enough.

        Must be called *before* the oracle processes the boundary event:
        the LRU snapshot has to reflect cache state as of the run's last
        in-run hit (at replay time the run is applied first, then the
        boundary event runs per-event against that state).
        """
        if len(packed) >= MIN_RUN_EVENTS:
            segs.append((seg_nl, seg_ops, seg_tk, seg_ex))
            # The run's in-run hits reorder but never evict, so each
            # touched set's top-|touched lines| stack prefix is exactly
            # the run-touched lines in MRU order.
            per_set: Dict[int, int] = {}
            for ln in touched_lines:
                s = ln & set_mask
                per_set[s] = per_set.get(s, 0) + 1
            lru_sets = tuple(
                (s, tuple(ln >> index_bits for ln in stacks[s][:n]))
                for s, n in per_set.items()
            )
            runs.append(
                HitRun(
                    start=run_start,
                    end=end,
                    counts=(n_loads, n_stores, n_computes, ops_total,
                            n_taken, n_exit),
                    packed=packed,
                    segs=tuple(segs),
                    gate=tuple((b,) + p for b, p in gate.items()),
                    last_banks=tuple(
                        (b,) + d for b, d in last_banks.items()
                    ),
                    lru_sets=lru_sets,
                )
            )

    for i, op in enumerate(opcodes):
        if op == OP_LOAD or op == OP_STORE:
            if op == OP_LOAD:
                addr = la[li]
                size = ls[li]
                li += 1
            else:
                addr = sa[si]
                size = ss[si]
                si += 1
            line = addr >> off
            last_line = (addr + size - 1) >> off
            # Classify first, without touching oracle state: the run
            # snapshot must precede the boundary event's own update.
            if last_line != line:
                boundary = True  # spanning: generic multi-line path
            else:
                stack = stacks[line & set_mask]
                if line not in stack:
                    boundary = True  # miss: fill + possible eviction
                elif op == OP_STORE and line not in dirty:
                    boundary = True  # clean -> dirty transition
                else:
                    boundary = False
            if boundary:
                close_run(i)
                packed = []
                pk_append = packed.append
                run_start = i + 1
                n_loads = n_stores = n_computes = ops_total = 0
                n_taken = n_exit = 0
                segs = []
                seg_nl = seg_ops = seg_tk = seg_ex = 0
                gate = {}
                last_banks = {}
                touched_lines = {}
                p_nl = p_ops = p_nst = p_nbr = 0
                # Oracle update for the boundary event, mirroring the
                # generic per-line loop (touch hits, fill+evict misses).
                for ln in range(line, last_line + 1):
                    stack = stacks[ln & set_mask]
                    if ln in stack:
                        if stack[0] != ln:
                            stack.remove(ln)
                            stack.insert(0, ln)
                    else:
                        stack.insert(0, ln)
                        if len(stack) > ways:
                            dirty.discard(stack.pop())
                    if op == OP_STORE:
                        dirty.add(ln)
                continue
            # Pure hit: update recency and record the event.
            if stack[0] != line:
                stack.remove(line)
                stack.insert(0, line)
            bank = line & bank_mask
            touched_lines[line] = True
            if bank not in gate:
                gate[bank] = (p_nl, p_ops, p_nst, p_nbr)
            if op == OP_LOAD:
                pk_append(bank << 3)  # PK_LOAD == 0
                last_banks[bank] = (1, len(segs), seg_nl, seg_ops, seg_tk, seg_ex)
                n_loads += 1
                seg_nl += 1
                p_nl += 1
            else:
                pk_append(PK_STORE | (bank << 3))
                last_banks[bank] = (0, n_stores, 0, 0, 0, 0)
                segs.append((seg_nl, seg_ops, seg_tk, seg_ex))
                seg_nl = seg_ops = seg_tk = seg_ex = 0
                n_stores += 1
                p_nst += 1
        elif op == OP_COMPUTE:
            o = ops_col[ci]
            ci += 1
            pk_append(PK_COMPUTE | (o << 3))
            n_computes += 1
            ops_total += o
            seg_ops += o
            p_ops += o
        elif op == OP_BRANCH:
            t = tk_col[ti]
            ti += 1
            pk_append(PK_BRANCH | (t << 3))
            if t:
                n_taken += 1
                seg_tk += 1
            else:
                n_exit += 1
                seg_ex += 1
            p_nbr += 1
        elif op == OP_MARK:
            if not packed:
                run_start = i + 1  # a run must not start on a mark:
                # the steppers have no mark dispatch arm to trigger on
        # OP_PREFETCH is unreachable: prefetch traces are rejected above.

    close_run(len(opcodes))
    return tuple(runs)


def oracle_outcomes(trace: EncodedTrace, shape) -> bytes:
    """Classify every load/store event of ``trace`` under ``shape``.

    The reference form of the per-set stack oracle, exposed for the
    property tests that pin it against a brute-force set-associative
    LRU simulation (``tests/test_elim.py``); the annotation pass above
    embeds the same decisions inline.

    Parameters
    ----------
    trace : EncodedTrace
        The event stream (software prefetches are not supported here —
        callers gate on :func:`annotate_trace` returning runs at all).
    shape : tuple of int
        ``(line_bytes, sets, ways, banks)``.

    Returns
    -------
    bytes
        One code per load/store event in trace order: :data:`MISS`,
        :data:`DIRTY_TRANSITION`, :data:`PURE_HIT` or :data:`SPANNING`.
    """
    line_bytes, sets, ways, _banks = shape
    off = line_bytes.bit_length() - 1
    set_mask = sets - 1
    stacks: List[List[int]] = [[] for _ in range(sets)]
    dirty: set = set()
    out = bytearray()

    la, ls = trace.load_addrs, trace.load_sizes
    sa, ss = trace.store_addrs, trace.store_sizes
    li = si = 0
    for op in trace.opcodes:
        if op == OP_LOAD:
            addr, size, store = la[li], ls[li], False
            li += 1
        elif op == OP_STORE:
            addr, size, store = sa[si], ss[si], True
            si += 1
        else:
            continue
        first = addr >> off
        last = (addr + size - 1) >> off
        if first != last:
            code = SPANNING
        else:
            stack = stacks[first & set_mask]
            if first in stack:
                if store and first not in dirty:
                    code = DIRTY_TRANSITION
                else:
                    code = PURE_HIT
            else:
                code = MISS
        for ln in range(first, last + 1):
            stack = stacks[ln & set_mask]
            if ln in stack:
                if stack[0] != ln:
                    stack.remove(ln)
                    stack.insert(0, ln)
            else:
                stack.insert(0, ln)
                if len(stack) > ways:
                    dirty.discard(stack.pop())
            if store:
                dirty.add(ln)
        out.append(code)
    return bytes(out)


def eliminable_fraction(trace: EncodedTrace, shape) -> float:
    """Fraction of trace events covered by guaranteed-hit runs.

    Parameters
    ----------
    trace : EncodedTrace
        The event stream.
    shape : tuple of int
        ``(line_bytes, sets, ways, banks)``.

    Returns
    -------
    float
        Covered events over total events (0.0 for an empty trace or an
        unannotatable shape).
    """
    total = len(trace)
    if not total:
        return 0.0
    runs = annotate_trace(trace, shape)
    return sum(run.end - run.start for run in runs) / total
