"""Figure 6: contribution of each transformation to the penalty reduction.

Paper: "pre-fetching and vectorization have the largest positive impacts.
Other intrinsic functions for alignment, branch prediction and avoiding
jumps etc become more significant as the kernel becomes larger and more
complex.  Predictably, pre-fetching is most impactful for the smallest
kernels."

Method: for each transformation in isolation, the contribution is the
penalty-reduction it achieves on the NVM+VWB system relative to the
untransformed penalty (each configuration measured against the SRAM
baseline running the same code).  Contributions are normalised to 100%
per kernel.
"""

from __future__ import annotations

from typing import Optional

from ..transforms.pipeline import OptLevel
from .report import FigureResult
from .runner import ExperimentRunner

#: Figure legend order, matching the paper's stacked bars.
COMPONENTS = (
    ("prefetching", OptLevel.PREFETCH),
    ("vectorization", OptLevel.VECTORIZE),
    ("others", OptLevel.OTHERS),
)


def run(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Per-kernel share of the penalty reduction by transformation."""
    runner = runner or ExperimentRunner()
    shares = {name: [] for name, _ in COMPONENTS}
    for kernel in runner.kernels:
        base_penalty = runner.penalty("vwb", kernel, OptLevel.NONE)
        reductions = {}
        for name, level in COMPONENTS:
            penalty = runner.penalty("vwb", kernel, level)
            reductions[name] = max(0.0, base_penalty - penalty)
        total = sum(reductions.values())
        for name, _ in COMPONENTS:
            shares[name].append(reductions[name] / total * 100.0 if total > 0 else 0.0)
    avg = {name: sum(vals) / len(vals) for name, vals in shares.items()}
    ranked = sorted(avg, key=avg.get, reverse=True)
    return FigureResult(
        name="fig6",
        title="Contribution of transformations to penalty reduction (NVM DL1 + VWB)",
        labels=list(runner.kernels),
        series=shares,
        notes=[
            "paper: prefetching and vectorization dominate; 'others' grows "
            "with kernel size/complexity",
            "measured ranking: " + " > ".join(f"{n} ({avg[n]:.0f}%)" for n in ranked),
        ],
    )
