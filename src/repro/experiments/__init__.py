"""Experiment harness: one module per table/figure of the paper.

Every experiment exposes ``run(runner=None, **options) -> FigureResult``
and is registered in :data:`EXPERIMENTS` for the CLI
(``python -m repro <name>``) and the benchmark suite.

The shared :class:`~repro.experiments.runner.ExperimentRunner` caches
kernel traces across experiments so regenerating the full evaluation
costs one trace generation per (kernel, optimization level).
Constructed with a :class:`~repro.exec.engine.ExecutionEngine`, the
runner additionally fans each figure's independent points across
worker processes and replays unchanged points from the engine's
content-addressed run cache (``python -m repro all --jobs 4``) —
results are bit-identical to the serial path either way.
"""

from .runner import ExperimentRunner, CONFIGURATIONS, make_system
from .report import FigureResult, render_figure
from . import table1, fig1, fig3, fig4, fig5, fig6, fig7, fig8, fig9
from . import ablations, energy, penalties, reliability, summary, validate

#: Registry: experiment name -> callable(runner=None) -> FigureResult.
EXPERIMENTS = {
    "table1": table1.run,
    "fig1": fig1.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "penalties": penalties.run,
    "ablation-banks": ablations.run_bank_sweep,
    "ablation-promotion": ablations.run_promotion_width_sweep,
    "ablation-prefetch": ablations.run_prefetch_distance_sweep,
    "ablation-replacement": ablations.run_replacement_sweep,
    "ablation-datasets": ablations.run_dataset_sweep,
    "ablation-linesize": ablations.run_line_size_study,
    "ablation-hybrid": ablations.run_hybrid_comparison,
    "ablation-icache": ablations.run_nvm_icache,
    "ablation-latency": ablations.run_latency_sensitivity,
    "ablation-hwprefetch": ablations.run_hw_prefetch_comparison,
    "ablation-interchange": ablations.run_interchange_study,
    "ablation-aware": ablations.run_aware_writes,
    "ablation-dram": ablations.run_dram_model_study,
    "energy": energy.run,
    "endurance": energy.run_endurance,
    "reliability": reliability.run,
    "validate": validate.run,
    "summary": summary.run,
}

__all__ = [
    "ExperimentRunner",
    "CONFIGURATIONS",
    "make_system",
    "FigureResult",
    "render_figure",
    "EXPERIMENTS",
]
