"""Sweep timeline export: the engine's schedule as a Perfetto trace.

Where ``repro profile`` exports the *inside* of one simulation, the
sweep timeline exports the *outside* of a whole batch: one Perfetto
track per worker process, one slice per simulation point, cache hits as
zero-length markers — so stragglers, idle workers and lumpy batches are
visible at a glance.  The serialization is shared with the profile
exporter through :class:`repro.obs.perfetto.TraceBuilder`.

Timestamps are wall-clock microseconds since the telemetry recorder
opened (the same clock as ``events.jsonl``); a slice's extent is the
point's execution wall time on its worker.
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, List, Union

from ..obs.perfetto import TraceBuilder, write_trace

#: File name of the sweep timeline inside a telemetry directory.
TIMELINE_FILENAME = "sweep_timeline.json"

#: pid of the single "sweep" track group in the exported trace.
SWEEP_PID = 1


def sweep_timeline(manifest: Dict[str, Any]) -> Dict[str, Any]:
    """Build the Chrome-trace document of one sweep manifest.

    Parameters
    ----------
    manifest : dict
        A manifest from :func:`repro.telemetry.manifest.build_manifest`
        (its ``points`` carry ``start_s``/``wall_s``/``worker_pid``).

    Returns
    -------
    dict
        Trace document: workers as tracks, points as slices, hits as
        zero-duration markers on the track of the process that served
        them.
    """
    builder = TraceBuilder()
    builder.process(SWEEP_PID, f"repro {manifest['command']}")
    tids: Dict[int, int] = {}
    for point in manifest["points"]:
        worker = int(point["worker_pid"])
        tid = tids.get(worker)
        if tid is None:
            tid = tids[worker] = len(tids) + 1
            builder.thread(SWEEP_PID, tid, f"worker {worker}")
        start_us = float(point.get("start_s", 0.0)) * 1e6
        builder.complete(
            name=point["label"],
            cat=point["status"],
            ts=start_us,
            dur=float(point["wall_s"]) * 1e6,
            pid=SWEEP_PID,
            tid=tid,
            args={
                "kernel": point["kernel"],
                "status": point["status"],
                "cache_key": point["cache_key"],
                "worker_pid": worker,
            },
        )
    stats = manifest["engine"]["stats"]
    return builder.build(
        other_data={
            "command": manifest["command"],
            "created": manifest["created"],
            "points": stats["points"],
            "hits": stats["hits"],
            "executed": stats["executed"],
            "jobs": manifest["engine"]["jobs"],
        }
    )


def write_timeline(
    manifest: Dict[str, Any], directory: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write ``<directory>/sweep_timeline.json``; returns the path.

    Parameters
    ----------
    manifest : dict
        The sweep manifest.
    directory : str or pathlib.Path
        Telemetry directory.

    Returns
    -------
    pathlib.Path
        The written file.
    """
    return write_trace(sweep_timeline(manifest), pathlib.Path(directory) / TIMELINE_FILENAME)
