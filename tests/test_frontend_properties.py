"""Property-based checks of the D-cache front-ends.

All four organisations must satisfy the same black-box contract on any
access stream: non-negative latencies, monotonic time, and (for the VWB)
the paper's structural invariants — at most ``n_lines`` resident windows
and dirty data never silently dropped.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dropin import PlainFrontend
from repro.core.emshr import EMSHRFrontend
from repro.core.l0 import L0Frontend
from repro.core.vwb import VWBConfig
from repro.core.vwb_frontend import VWBFrontend
from repro.mem.cache import Cache, CacheConfig
from repro.mem.mainmem import MainMemory

_ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "prefetch"]),
        st.integers(min_value=0, max_value=2047),
        st.sampled_from([1, 4, 8, 16]),
    ),
    min_size=1,
    max_size=150,
)


def _backing():
    return Cache(
        CacheConfig(
            name="dl1",
            capacity_bytes=2048,
            associativity=2,
            line_bytes=64,
            read_hit_cycles=4,
            write_hit_cycles=2,
            banks=4,
        ),
        MainMemory(latency_cycles=50.0, transfer_cycles=0.0),
    )


def _frontends():
    yield PlainFrontend(_backing())
    yield VWBFrontend(_backing(), VWBConfig())
    yield L0Frontend(_backing())
    yield EMSHRFrontend(_backing())


def _drive(frontend, stream):
    t = 0.0
    for op, addr, size in stream:
        if op == "read":
            latency = frontend.read(addr, size, t)
        elif op == "write":
            latency = frontend.write(addr, size, t)
        else:
            latency = frontend.prefetch(addr, t)
        assert latency >= 0.0
        t += latency + 1.0
    return t


class TestFrontendContract:
    @given(_ops)
    @settings(max_examples=30, deadline=None)
    def test_all_frontends_accept_any_stream(self, stream):
        for frontend in _frontends():
            _drive(frontend, stream)

    @given(_ops)
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, stream):
        for make in (lambda: VWBFrontend(_backing()), lambda: L0Frontend(_backing())):
            a, b = make(), make()
            assert _drive(a, stream) == _drive(b, stream)
            assert a.stats.as_dict() == b.stats.as_dict()

    @given(_ops)
    @settings(max_examples=30, deadline=None)
    def test_vwb_capacity_invariant(self, stream):
        frontend = VWBFrontend(_backing(), VWBConfig(), fill_buffers=3)
        _drive(frontend, stream)
        assert len(frontend.vwb.resident_windows) <= 2
        assert frontend.pending_windows <= 3

    @given(_ops)
    @settings(max_examples=30, deadline=None)
    def test_vwb_windows_aligned(self, stream):
        frontend = VWBFrontend(_backing(), VWBConfig())
        _drive(frontend, stream)
        window = frontend.vwb.config.window_bytes
        assert all(w % window == 0 for w in frontend.vwb.resident_windows)

    @given(_ops)
    @settings(max_examples=30, deadline=None)
    def test_demand_counters_match_stream(self, stream):
        frontend = VWBFrontend(_backing(), VWBConfig())
        window = frontend.vwb.config.window_bytes
        expected_reads = expected_writes = 0
        for op, addr, size in stream:
            first = addr // window
            last = (addr + size - 1) // window
            if op == "read":
                expected_reads += last - first + 1
            elif op == "write":
                expected_writes += last - first + 1
        _drive(frontend, stream)
        stats = frontend.stats
        assert stats.buffer_read_hits + stats.buffer_read_misses == expected_reads
        assert stats.buffer_write_hits + stats.buffer_write_misses == expected_writes


class TestWriteDurability:
    @given(_ops)
    @settings(max_examples=30, deadline=None)
    def test_written_data_reachable_or_dirty_somewhere(self, stream):
        """Every written line must end up dirty in the VWB, a fill
        buffer, the DL1, or have been written back to the next level —
        dirty data is never silently dropped."""
        frontend = VWBFrontend(_backing(), VWBConfig())
        written_lines = set()
        t = 0.0
        for op, addr, size in stream:
            if op == "read":
                t += frontend.read(addr, size, t) + 1.0
            elif op == "write":
                t += frontend.write(addr, size, t) + 1.0
                for line in range((addr // 64) * 64, addr + size, 64):
                    written_lines.add(line)
            else:
                t += frontend.prefetch(addr, t) + 1.0
        memory_writes = frontend.backing.next_level.writes
        wb_pushes = frontend.backing.write_buffer.total_pushes
        for line in written_lines:
            window = frontend.vwb.window_addr(line)
            staged = frontend._pending.get(window)
            held = (
                frontend.vwb.is_dirty(line)
                or frontend.backing.is_dirty(line)
                or (staged is not None and staged.dirty)
                or memory_writes + wb_pushes > 0
            )
            assert held, hex(line)
