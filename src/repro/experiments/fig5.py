"""Figure 5: NVM+VWB penalty with and without code transformations.

Paper: the transformations cut the penalty "to extremely tolerable
levels (8%) even in the worst cases".  Penalties are measured against
the SRAM baseline running the *same* code (the paper applies its
optimizations to the baseline too — Figure 9 — and reports the residual
NVM penalty of ~8%).
"""

from __future__ import annotations

from typing import Optional

from ..transforms.pipeline import OptLevel
from .report import FigureResult
from .runner import ExperimentRunner

#: The paper's headline residual penalty.
PAPER_FINAL_PENALTY = 8.0


def run(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Drop-in vs VWB-unoptimized vs VWB-optimized penalties."""
    runner = runner or ExperimentRunner()
    dropin = runner.penalties("dropin", OptLevel.NONE)
    no_opt = runner.penalties("vwb", OptLevel.NONE)
    with_opt = runner.penalties("vwb", OptLevel.FULL)
    return FigureResult(
        name="fig5",
        title="NVM DL1 with VWB, with and without transformations",
        labels=list(runner.kernels),
        series={
            "dropin": dropin,
            "vwb_no_opt": no_opt,
            "vwb_with_opt": with_opt,
        },
        notes=[
            f"paper: final penalty ~{PAPER_FINAL_PENALTY:.0f}% even in the worst cases",
            f"measured: optimized average {sum(with_opt)/len(with_opt):.1f}%, "
            f"worst {max(with_opt):.1f}%",
        ],
    )
