#!/usr/bin/env python3
"""Quickstart: measure the STT-MRAM L1 D-cache penalty on one kernel.

Reproduces the paper's core experiment in ~30 lines:

1. build the SRAM baseline, the drop-in STT-MRAM platform, and the
   proposed STT-MRAM + Very Wide Buffer platform;
2. run the PolyBench ``gemm`` kernel on each (with the L2 warmed by the
   initialisation pass, as in the paper's gem5 setup);
3. apply the paper's code transformations and run again.

Run with::

    python examples/quickstart.py
"""

from repro import OptLevel, System, SystemConfig, build_kernel, materialize_trace, optimize
from repro.cpu.system import warm_regions_of


def main() -> None:
    program = build_kernel("gemm")
    trace = materialize_trace(program)
    optimized_program = optimize(program, OptLevel.FULL)
    optimized_trace = materialize_trace(optimized_program)

    baseline = System(SystemConfig(technology="sram"))
    dropin = System(SystemConfig(technology="stt-mram"))
    proposal = System(SystemConfig(technology="stt-mram", frontend="vwb"))

    warm = warm_regions_of(program)
    base = baseline.run(trace, warm_regions=warm)
    print(f"SRAM baseline:              {base.cycles:12.0f} cycles (= 100%)")

    drop = dropin.run(trace, warm_regions=warm)
    print(f"drop-in STT-MRAM:           {drop.cycles:12.0f} cycles "
          f"(penalty {drop.penalty_vs(base):+5.1f}%)")

    vwb = proposal.run(trace, warm_regions=warm)
    print(f"STT-MRAM + VWB:             {vwb.cycles:12.0f} cycles "
          f"(penalty {vwb.penalty_vs(base):+5.1f}%)")

    warm_opt = warm_regions_of(optimized_program)
    base_opt = baseline.run(optimized_trace, warm_regions=warm_opt)
    vwb_opt = proposal.run(optimized_trace, warm_regions=warm_opt)
    print(f"STT-MRAM + VWB, optimized:  {vwb_opt.cycles:12.0f} cycles "
          f"(penalty {vwb_opt.penalty_vs(base_opt):+5.1f}% vs optimized SRAM)")

    stats = proposal.frontend.stats
    print(
        f"\nVWB behaviour in the last run: {stats.buffer_hit_rate:.1%} buffer hit "
        f"rate, {stats.promotions} promotions, "
        f"{stats.prefetches_issued} software prefetches"
    )


if __name__ == "__main__":
    main()
