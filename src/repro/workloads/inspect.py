"""Static analysis of workload programs: footprints, streams, strides.

Answers, before any simulation, the questions that predict how a kernel
behaves on the NVM+VWB platform:

- How big is each array, and does the working set fit the 64 KB DL1?
- How many distinct *streams* (loop-varying references) does each
  innermost loop carry — more streams than VWB lines + fill buffers
  means promotion thrash;
- What are their strides — unit-stride streams amortise one wide
  promotion over a whole window, window-or-larger strides promote every
  iteration;
- Is the loop vectorizable under the NEON-like model?

The ``python -m repro inspect`` command renders this per kernel, and
tests use it to pin each kernel's documented character (e.g. ``mvt``'s
column-walking second phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..transforms.vectorize import Vectorize
from .encode import encode_trace
from .ir import Loop, Program, Ref
from .trace import trace_summary


@dataclass(frozen=True)
class StreamInfo:
    """One loop-varying reference stream in an innermost loop.

    Attributes:
        array: Array name.
        subscripts: Rendered subscript expressions.
        stride_bytes: Byte stride per loop iteration.
        is_read: Appears as a read.
        is_write: Appears as a write.
    """

    array: str
    subscripts: str
    stride_bytes: int
    is_read: bool
    is_write: bool

    @property
    def unit_stride(self) -> bool:
        """True for 4-byte (one-element) forward strides."""
        return 0 < self.stride_bytes <= 8


@dataclass(frozen=True)
class LoopInfo:
    """Analysis of one innermost loop.

    Attributes:
        variable: Loop variable name.
        depth: Nesting depth (1 = top level).
        streams: Loop-varying reference streams.
        invariant_refs: References hoisted by scalar replacement.
        vectorizable: Accepted by the NEON-like vectorizer.
    """

    variable: str
    depth: int
    streams: Tuple[StreamInfo, ...]
    invariant_refs: int
    vectorizable: bool

    @property
    def stream_count(self) -> int:
        """Number of distinct varying streams."""
        return len(self.streams)


@dataclass
class ProgramReport:
    """Static report over a whole program."""

    name: str
    footprint_bytes: int
    array_bytes: Dict[str, int]
    loops: List[LoopInfo] = field(default_factory=list)

    @property
    def max_streams(self) -> int:
        """Largest stream count of any innermost loop."""
        return max((lp.stream_count for lp in self.loops), default=0)

    @property
    def fully_vectorizable(self) -> bool:
        """True when every innermost loop vectorizes."""
        return all(lp.vectorizable for lp in self.loops)

    def fits_in(self, capacity_bytes: int) -> bool:
        """Does the whole working set fit a cache of this capacity?"""
        return self.footprint_bytes <= capacity_bytes


def _stream_key(ref: Ref) -> Tuple[int, Tuple]:
    return (id(ref.array), ref.indices)


def analyze(program: Program) -> ProgramReport:
    """Build a :class:`ProgramReport` for ``program`` (no simulation)."""
    report = ProgramReport(
        name=program.name,
        footprint_bytes=program.footprint_bytes,
        array_bytes={a.name: a.size_bytes for a in program.arrays},
    )
    vectorizer = Vectorize()

    def visit(node, depth: int) -> None:
        if not isinstance(node, Loop):
            return
        if node.is_innermost:
            streams: Dict[Tuple, Dict] = {}
            invariant = 0
            for statement in node.statements():
                for ref, is_write in [(r, False) for r in statement.reads] + [
                    (r, True) for r in statement.writes
                ]:
                    stride = ref.stride_bytes(node.var)
                    if stride == 0:
                        invariant += 1
                        continue
                    key = _stream_key(ref)
                    entry = streams.setdefault(
                        key,
                        {
                            "array": ref.array.name,
                            "subscripts": ", ".join(repr(ix) for ix in ref.indices),
                            "stride": stride,
                            "read": False,
                            "write": False,
                        },
                    )
                    entry["read"] = entry["read"] or not is_write
                    entry["write"] = entry["write"] or is_write
            report.loops.append(
                LoopInfo(
                    variable=node.var.name,
                    depth=depth,
                    streams=tuple(
                        StreamInfo(
                            array=e["array"],
                            subscripts=e["subscripts"],
                            stride_bytes=e["stride"],
                            is_read=e["read"],
                            is_write=e["write"],
                        )
                        for e in streams.values()
                    ),
                    invariant_refs=invariant,
                    vectorizable=vectorizer._eligible(node),
                )
            )
        for child in node.body:
            visit(child, depth + 1)

    for node in program.body:
        visit(node, 1)
    return report


def event_counts(program: Program) -> Dict[str, int]:
    """Dynamic event counts of ``program``, via the columnar trace.

    Encodes the trace once (:func:`~repro.workloads.encode.encode_trace`
    builds the columns straight from the generator, so no per-event
    objects are ever materialised) and summarises it column-wise with
    :func:`~repro.workloads.trace.trace_summary`.

    Returns:
        The :func:`trace_summary` dict (loads, stores, prefetches,
        branches, compute ops, byte volumes).
    """
    return trace_summary(encode_trace(program))


def render_locality(trace) -> str:
    """Reuse-distance and elimination prospects of one encoded trace.

    Three dynamic-locality views, rendered per named platform
    configuration:

    - a reuse-distance histogram summary at each distinct line
      granularity the configurations use (one Mattson profile per line
      size, memoized on the trace — see
      :func:`~repro.workloads.reuse.profile_trace`);
    - the Mattson-predicted miss rate at each configuration's capacity
      (the DL1 for single-array front-ends, the SRAM partition for the
      hybrid) — a fully associative prediction, so an optimistic bound
      for the set-associative arrays;
    - the fraction of trace events hit-run elimination
      (:mod:`repro.workloads.elim`) can consume for the configuration's
      exact array shape, or why the front-end is ineligible.

    Args:
        trace: The :class:`~repro.workloads.encode.EncodedTrace`.

    Returns:
        The rendered block (no trailing newline).
    """
    from ..cpu.fastpath import make_run_applier
    from ..cpu.system import System
    from ..experiments.runner import CONFIGURATIONS
    from .elim import eliminable_fraction
    from .reuse import COLD, profile_trace

    rows = []
    line_sizes: List[int] = []
    for name, sys_config in CONFIGURATIONS.items():
        system = System(sys_config)
        frontend = system.frontend
        cache = getattr(frontend, "sram", None) or frontend.backing
        cfg = cache.config
        if cfg.line_bytes not in line_sizes:
            line_sizes.append(cfg.line_bytes)
        capacity_lines = cfg.sets * cfg.associativity
        profile = profile_trace(trace, cfg.line_bytes)
        miss = profile.miss_rate_for(capacity_lines) * 100.0
        applier = make_run_applier(frontend, system.config.cpu)
        if applier is None:
            elim = "eliminable n/a (front-end hooks the hit path)"
        else:
            frac = eliminable_fraction(trace, applier.shape) * 100.0
            elim = f"eliminable {frac:.1f}%"
        rows.append(
            f"    {name:<7} {cfg.line_bytes}B x {capacity_lines} lines: "
            f"predicted miss {miss:.1f}%, {elim}"
        )

    lines = []
    for line_bytes in line_sizes:
        profile = profile_trace(trace, line_bytes)
        reused = profile.total_accesses - profile.cold_accesses
        dists = sorted(
            (d, n) for d, n in profile.histogram.items() if d != COLD
        )

        def _quantile(q: float) -> int:
            target = q * reused
            running = 0
            for distance, count in dists:
                running += count
                if running >= target:
                    return distance
            return dists[-1][0] if dists else 0

        lines.append(
            f"reuse:     {profile.total_accesses} line accesses @ "
            f"{line_bytes}B, {profile.unique_lines} distinct lines, "
            f"{profile.cold_accesses} cold; distance p50 {_quantile(0.5)}, "
            f"p90 {_quantile(0.9)}"
        )
    return "\n".join(lines + ["locality:"] + rows)


def render_report(
    report: ProgramReport,
    dl1_bytes: int = 65536,
    counts: Optional[Dict[str, int]] = None,
) -> str:
    """Human-readable rendering of a :class:`ProgramReport`.

    Args:
        report: The static analysis to render.
        dl1_bytes: DL1 capacity the footprint is judged against.
        counts: Optional :func:`event_counts` dict; when given, a
            dynamic-trace line (loads/stores/branches and byte volumes)
            is appended to the static summary.
    """
    lines = [
        f"== {report.name} ==",
        f"footprint: {report.footprint_bytes / 1024:.1f} KB "
        f"({'fits' if report.fits_in(dl1_bytes) else 'exceeds'} the "
        f"{dl1_bytes // 1024} KB DL1)",
        "arrays:    "
        + ", ".join(f"{n} {b / 1024:.1f}KB" for n, b in report.array_bytes.items()),
    ]
    for lp in report.loops:
        vec = "vectorizable" if lp.vectorizable else "NOT vectorizable"
        lines.append(
            f"loop {lp.variable} (depth {lp.depth}): {lp.stream_count} streams, "
            f"{lp.invariant_refs} register-allocated refs, {vec}"
        )
        for stream in lp.streams:
            mode = "rw" if stream.is_read and stream.is_write else ("r" if stream.is_read else "w")
            lines.append(
                f"    {stream.array}[{stream.subscripts}] stride "
                f"{stream.stride_bytes:+d}B ({mode})"
            )
    if counts is not None:
        lines.append(
            f"trace:     {counts['loads']} loads ({counts['load_bytes'] / 1024:.1f}KB), "
            f"{counts['stores']} stores ({counts['store_bytes'] / 1024:.1f}KB), "
            f"{counts['branches']} branches, {counts['compute_ops']} ops, "
            f"{counts['prefetches']} prefetches"
        )
    return "\n".join(lines)
