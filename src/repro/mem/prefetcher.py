"""Hardware stride prefetcher (extension).

The paper relies on *software* prefetch intrinsics steered by the
programmer.  The obvious hardware alternative — a region-based stride
prefetcher at the DL1 — is implemented here so the harness can compare
the two (``ablation-hwprefetch``): the hardware engine hides L2/DRAM
miss latency like the software hints do for the plain cache, but it
cannot stage data *into the VWB*, so it cannot remove the NVM read-hit
latency that dominates the paper's penalty.

Design (classic reference-prediction-table shape, PC-less because traces
carry no program counters):

- demand accesses are grouped into aligned 4 KB regions;
- per region the engine remembers the last line index and the last
  observed stride (in lines);
- when the same stride is seen twice in a row the engine goes *steady*
  and issues ``degree`` prefetches ``distance`` strides ahead through
  the cache's ordinary software-prefetch port (MSHR-bounded, so a
  saturated array drops hints instead of queueing them);
- the table is direct-mapped with ``entries`` slots and LRU-free
  replacement by region hash — small and cheap, like hardware.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError


class _RegionState:
    """Tracking state for one 4 KB region."""

    __slots__ = ("region", "last_line", "stride", "confirmed")

    def __init__(self, region: int, line: int) -> None:
        self.region = region
        self.last_line = line
        self.stride = 0
        self.confirmed = False


class StridePrefetcher:
    """Region-based stride prefetcher in front of a cache's demand port.

    Args:
        cache: The cache to observe and prefetch into (its
            :meth:`~repro.mem.cache.Cache.prefetch` port is used, so the
            MSHR file bounds outstanding hardware fills too).
        entries: Reference-table slots.
        degree: Prefetches issued per steady-state trigger.
        distance: Look-ahead, in strides.
        region_bytes: Region granularity for stride tracking.
    """

    def __init__(
        self,
        cache,
        entries: int = 16,
        degree: int = 2,
        distance: int = 2,
        region_bytes: int = 4096,
    ) -> None:
        if entries <= 0 or degree <= 0 or distance <= 0:
            raise ConfigurationError("prefetcher parameters must be positive")
        if region_bytes <= 0 or region_bytes % cache.config.line_bytes != 0:
            raise ConfigurationError(
                f"region size {region_bytes} must be a positive multiple of the line size"
            )
        self._cache = cache
        self._entries = entries
        self.degree = degree
        self.distance = distance
        self._region_bytes = region_bytes
        self._table: Dict[int, _RegionState] = {}
        self.issued = 0
        self.triggers = 0

    def observe(self, addr: int, now: float) -> None:
        """Feed one demand access; may issue prefetches into the cache."""
        line_bytes = self._cache.config.line_bytes
        line = addr // line_bytes
        region = addr // self._region_bytes
        slot = region % self._entries
        state = self._table.get(slot)

        if state is None or state.region != region:
            self._table[slot] = _RegionState(region, line)
            return

        stride = line - state.last_line
        if stride == 0:
            return  # same line: no new information
        if stride == state.stride:
            state.confirmed = True
        else:
            state.stride = stride
            state.confirmed = False
        state.last_line = line

        if state.confirmed:
            self.triggers += 1
            for k in range(1, self.degree + 1):
                target_line = line + (self.distance + k - 1) * state.stride
                if target_line < 0:
                    continue
                self._cache.prefetch(target_line * line_bytes, now)
                self.issued += 1

    def state_of(self, addr: int) -> Optional[Tuple[int, bool]]:
        """(stride, confirmed) of the region holding ``addr`` (tests)."""
        region = addr // self._region_bytes
        state = self._table.get(region % self._entries)
        if state is None or state.region != region:
            return None
        return state.stride, state.confirmed

    def reset(self) -> None:
        """Clear the reference table and counters."""
        self._table.clear()
        self.issued = 0
        self.triggers = 0
