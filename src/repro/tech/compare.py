"""Generator for the paper's Table I comparison.

Builds the SRAM-vs-STT-MRAM comparison rows for a 64 KB L1 D-cache at
32 nm HP, including the derived quantities the paper's prose relies on
(the ~4x read ratio, ~2x write ratio, and the ~3.5x cell-area advantage
that funds the VWB and larger caches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..units import f2_to_mm2, kib, ns_to_cycles
from .params import SRAM_32NM_HP, STT_MRAM_32NM, MemoryTechnology


@dataclass(frozen=True)
class TableOneRow:
    """One parameter row of Table I.

    Attributes:
        parameter: Parameter name as printed in the paper.
        sram: Formatted SRAM value.
        stt_mram: Formatted STT-MRAM value.
    """

    parameter: str
    sram: str
    stt_mram: str


def build_table_one(
    sram: MemoryTechnology = SRAM_32NM_HP,
    stt: MemoryTechnology = STT_MRAM_32NM,
    capacity_bytes: int = kib(64),
) -> List[TableOneRow]:
    """Build the rows of Table I plus derived ratio rows.

    Args:
        sram: SRAM technology preset (left column).
        stt: STT-MRAM technology preset (right column).
        capacity_bytes: Cache capacity; the paper compares 64 KB arrays.

    Returns:
        Rows in the paper's order, followed by derived rows (cycle counts
        at 1 GHz, read/write ratios, absolute array area) that the paper
        quotes in prose rather than in the table.
    """
    bits = capacity_bytes * 8
    rows = [
        TableOneRow("Read Latency", f"{sram.read_latency_ns:.3f}ns", f"{stt.read_latency_ns:.2f}ns"),
        TableOneRow(
            "Write Latency", f"{sram.write_latency_ns:.3f}ns", f"{stt.write_latency_ns:.2f}ns"
        ),
        TableOneRow("Leakage", f"{sram.leakage_mw:.2f}mW", f"{stt.leakage_mw:.2f}mW"),
        TableOneRow("Area", f"{sram.cell_area_f2:.0f}F^2", f"{stt.cell_area_f2:.0f}F^2"),
        TableOneRow("Associativity", "2way", "2way"),
        TableOneRow("Cache Line size", "256 Bits", "512 Bits"),
        TableOneRow(
            "Read Latency (cycles @1GHz)",
            str(ns_to_cycles(sram.read_latency_ns)),
            str(ns_to_cycles(stt.read_latency_ns)),
        ),
        TableOneRow(
            "Write Latency (cycles @1GHz)",
            str(ns_to_cycles(sram.write_latency_ns)),
            str(ns_to_cycles(stt.write_latency_ns)),
        ),
        TableOneRow(
            "Read ratio vs SRAM",
            "1.0x",
            f"{stt.read_latency_ns / sram.read_latency_ns:.2f}x",
        ),
        TableOneRow(
            "Write ratio vs SRAM",
            "1.0x",
            f"{stt.write_latency_ns / sram.write_latency_ns:.2f}x",
        ),
        TableOneRow(
            "Cell array area (64KB)",
            f"{f2_to_mm2(sram.cell_area_f2, bits, sram.feature_nm):.4f}mm^2",
            f"{f2_to_mm2(stt.cell_area_f2, bits, stt.feature_nm):.4f}mm^2",
        ),
        TableOneRow(
            "Area ratio vs SRAM",
            "1.0x",
            f"{stt.cell_area_f2 / sram.cell_area_f2:.2f}x",
        ),
    ]
    return rows


def render_table_one(rows: Sequence[TableOneRow]) -> str:
    """Render Table I rows as an aligned text table."""
    headers = ("Parameters", "SRAM", "STT-MRAM")
    widths = [
        max(len(headers[0]), *(len(r.parameter) for r in rows)),
        max(len(headers[1]), *(len(r.sram) for r in rows)),
        max(len(headers[2]), *(len(r.stt_mram) for r in rows)),
    ]
    lines = [
        f"{headers[0]:<{widths[0]}}  {headers[1]:>{widths[1]}}  {headers[2]:>{widths[2]}}",
        "-" * (sum(widths) + 4),
    ]
    for r in rows:
        lines.append(f"{r.parameter:<{widths[0]}}  {r.sram:>{widths[1]}}  {r.stt_mram:>{widths[2]}}")
    return "\n".join(lines)
