"""Bench: columnar traces — encode cost, replay throughput, e2e speedup.

Three guards around :mod:`repro.workloads.encode` and the opcode-dispatch
replay loop in :meth:`repro.cpu.model.InOrderCPU.run_encoded`:

- building an :class:`~repro.workloads.encode.EncodedTrace` straight from
  the generator must not cost meaningfully more than materialising the
  event-object list it replaces;
- replaying the encoded form through every named configuration must be
  at least :data:`MIN_REPLAY_SPEEDUP` times faster than object replay
  (the margin the ``trace-fastpath`` CI job enforces — locally the
  pooled ratio lands well above it), with bit-identical cycle counts;
- the end-to-end ``penalties`` shape (trace construction plus one replay
  per system, all twelve kernels against all six configurations, null
  probe) must beat the pre-PR object path by the same enforced margin;
  the measured ratio is printed against the 3x design target;
- the batched multi-lane pass (:func:`repro.cpu.batched.run_batch`,
  one trace walk driving all six configurations) must be bit-exact
  with the serial encoded pass and at least
  :data:`MIN_BATCHED_SPEEDUP` times its throughput on the same grid.
  The measured ratio (~1.1-1.3x here — trace-side dispatch is a small
  share of a replay; ``docs/INTERNALS.md`` §3 has the composition) is
  recorded in the bench trajectory; the floor only guards against the
  batched path ever becoming a pessimization;
- hit-run elimination (:mod:`repro.workloads.elim`) on the batched
  penalties grid must be bit-exact with the per-event pass and never a
  pessimization (:data:`MIN_ELIM_SPEEDUP`); the whole-grid and
  high-locality ratios are recorded as ``elim_speedup`` and
  ``elim_speedup_high_locality``.  On the *serial* replay path (one
  lane per pass — the engine's per-point and pooled-worker shape,
  where cursor jumps skip whole runs instead of guarding a shared
  walk), elimination of the eligible configurations on the
  high-locality kernels must reach :data:`MIN_ELIM_SERIAL_SPEEDUP`,
  recorded as ``elim_speedup_serial``.

Timings are best-of-N wall clock after a warm-up pass, matching
``bench_profile.py``.
"""

from __future__ import annotations

import time

from repro.cpu.batched import run_batch
from repro.cpu.system import warm_regions_of
from repro.experiments.penalties import NVM_CONFIGS
from repro.experiments.runner import make_system
from repro.telemetry import metric
from repro.workloads import build_kernel, kernel_names, materialize_trace
from repro.workloads.encode import encode_trace

#: Every system of the penalties grid: the SRAM baseline plus the NVM organisations.
ALL_CONFIGS = ("sram",) + NVM_CONFIGS
#: Kernel subset for the replay-throughput guard (full list for the e2e pass).
THROUGHPUT_KERNELS = ("gemm", "atax", "bicg", "mvt")
REPEATS = 5
E2E_REPEATS = 2
#: Hard floor enforced in CI; see E2E_TARGET for the design goal.
MIN_REPLAY_SPEEDUP = 2.0
#: Headline end-to-end goal of the columnar-trace work (reported, not asserted).
E2E_TARGET = 3.0
MAX_ENCODE_OVERHEAD = 1.5
#: Floor for batched vs serial-encoded throughput on the full grid.
#: Set below the measured ~1.1-1.3x so noisy CI boxes never flake; it
#: exists to catch the batched path regressing into a pessimization.
MIN_BATCHED_SPEEDUP = 0.95
#: Floor for hit-run elimination on the batched penalties grid: never a
#: pessimization.  The design goal is >=1.5x on the high-locality
#: kernels (reported separately as ``elim_speedup_high_locality``).
MIN_ELIM_SPEEDUP = 1.0
#: Kernels whose working sets live in the arrays' LRU stacks almost
#: entirely — where elimination covers >95% of the trace.
HIGH_LOCALITY = ("gemm", "doitgen")
#: The elimination-eligible configurations (plain set-associative LRU
#: hit paths: the SRAM baseline, the NVM drop-in, and the hybrid
#: partition; VWB/L0/EMSHR intercept hits and stay per-event).
ELIM_CONFIGS = ("sram", "dropin", "hybrid")
#: Floor for serial-lane elimination on the high-locality kernels: the
#: >=1.5x design goal of the elimination work, enforced.  Measured
#: ~2.2x, so the floor has headroom against noisy CI boxes.
MIN_ELIM_SERIAL_SPEEDUP = 1.5


def _programs(kernels):
    return {name: build_kernel(name) for name in kernels}


def test_encode_cost_within_budget(bench_metrics):
    programs = _programs(THROUGHPUT_KERNELS)
    for program in programs.values():  # warm generators/imports
        materialize_trace(program)
        encode_trace(program)

    obj_times, enc_times = [], []
    for _ in range(REPEATS):
        start = time.perf_counter()
        for program in programs.values():
            materialize_trace(program)
        obj_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        for program in programs.values():
            encode_trace(program)
        enc_times.append(time.perf_counter() - start)

    ratio = min(enc_times) / min(obj_times)
    bench_metrics.setdefault("trace", {})["encode_cost_ratio"] = metric(
        ratio, unit="x", higher_is_better=False
    )
    print(
        f"\nencode cost: best materialize {min(obj_times):.3f}s, "
        f"best encode {min(enc_times):.3f}s, ratio {ratio:.3f}"
    )
    assert ratio <= MAX_ENCODE_OVERHEAD, (
        f"encode_trace is {ratio:.3f}x materialize_trace "
        f"(budget {MAX_ENCODE_OVERHEAD}x)"
    )


def _replay_pass(material, encoded):
    start = time.perf_counter()
    cycles = []
    for config, events, trace, regions in material:
        system = make_system(config)
        result = system.run(trace if encoded else events, warm_regions=regions)
        cycles.append(result.cycles)
    return time.perf_counter() - start, cycles


def test_encoded_replay_throughput(bench_metrics):
    programs = _programs(THROUGHPUT_KERNELS)
    material = [
        (config, materialize_trace(program), encode_trace(program), warm_regions_of(program))
        for config in ALL_CONFIGS
        for program in programs.values()
    ]
    _replay_pass(material, encoded=True)  # warm caches, imports, allocator

    obj_times, enc_times = [], []
    obj_cycles = enc_cycles = None
    for _ in range(REPEATS):
        elapsed, obj_cycles = _replay_pass(material, encoded=False)
        obj_times.append(elapsed)
        elapsed, enc_cycles = _replay_pass(material, encoded=True)
        enc_times.append(elapsed)

    # The fast path is only admissible because it is bit-exact.
    assert enc_cycles == obj_cycles

    ratio = min(obj_times) / min(enc_times)
    bench_metrics.setdefault("trace", {})["replay_speedup"] = metric(ratio, unit="x")
    print(
        f"\nreplay throughput: best object {min(obj_times):.3f}s, "
        f"best encoded {min(enc_times):.3f}s, speedup x{ratio:.2f}"
    )
    assert ratio >= MIN_REPLAY_SPEEDUP, (
        f"encoded replay is only x{ratio:.2f} the object path "
        f"(CI floor x{MIN_REPLAY_SPEEDUP})"
    )


def _penalties_pass(programs, regions, encoded):
    """One full penalties-shaped pass: trace construction + 6 replays each."""
    start = time.perf_counter()
    cycles = []
    for name, program in programs.items():
        trace = encode_trace(program) if encoded else materialize_trace(program)
        for config in ALL_CONFIGS:
            system = make_system(config)
            result = system.run(trace, warm_regions=regions[name])
            cycles.append(result.cycles)
    return time.perf_counter() - start, cycles


def test_penalties_end_to_end_speedup(bench_metrics):
    programs = _programs(kernel_names())
    regions = {name: warm_regions_of(p) for name, p in programs.items()}
    _penalties_pass(programs, regions, encoded=True)  # warm-up

    obj_times, enc_times = [], []
    obj_cycles = enc_cycles = None
    for _ in range(E2E_REPEATS):
        elapsed, obj_cycles = _penalties_pass(programs, regions, encoded=False)
        obj_times.append(elapsed)
        elapsed, enc_cycles = _penalties_pass(programs, regions, encoded=True)
        enc_times.append(elapsed)

    assert enc_cycles == obj_cycles

    ratio = min(obj_times) / min(enc_times)
    bench_metrics.setdefault("trace", {})["e2e_speedup"] = metric(ratio, unit="x")
    met = "meets" if ratio >= E2E_TARGET else "below"
    print(
        f"\npenalties end-to-end: best object {min(obj_times):.3f}s, "
        f"best encoded {min(enc_times):.3f}s, speedup x{ratio:.2f} "
        f"({met} the x{E2E_TARGET:.0f} design target)"
    )
    assert ratio >= MIN_REPLAY_SPEEDUP, (
        f"end-to-end penalties speedup is only x{ratio:.2f} "
        f"(CI floor x{MIN_REPLAY_SPEEDUP})"
    )


def _batched_pass(material):
    """One batched penalties pass: per kernel, one 6-lane run_batch."""
    start = time.perf_counter()
    cycles = []
    for trace, regions in material:
        systems = [make_system(config) for config in ALL_CONFIGS]
        for result in run_batch(trace, systems, warm_regions=regions):
            cycles.append(result.cycles)
    return time.perf_counter() - start, cycles


def test_batched_penalties_speedup(bench_metrics):
    programs = _programs(kernel_names())
    material = [
        (encode_trace(program), warm_regions_of(program))
        for program in programs.values()
    ]
    _batched_pass(material)  # warm-up: compiles the 6-lane stepper

    serial_times, batched_times = [], []
    serial_cycles = batched_cycles = None
    for _ in range(E2E_REPEATS):
        start = time.perf_counter()
        serial_cycles = []
        for trace, regions in material:
            for config in ALL_CONFIGS:
                system = make_system(config)
                result = system.run(trace, warm_regions=regions)
                serial_cycles.append(result.cycles)
        serial_times.append(time.perf_counter() - start)
        elapsed, batched_cycles = _batched_pass(material)
        batched_times.append(elapsed)

    # The batched path is only admissible because it is bit-exact.
    assert batched_cycles == serial_cycles

    ratio = min(serial_times) / min(batched_times)
    bench_metrics.setdefault("trace", {})["batched_speedup"] = metric(ratio, unit="x")
    print(
        f"\nbatched penalties: best serial-encoded {min(serial_times):.3f}s, "
        f"best batched {min(batched_times):.3f}s, speedup x{ratio:.2f} "
        f"(floor x{MIN_BATCHED_SPEEDUP})"
    )
    assert ratio >= MIN_BATCHED_SPEEDUP, (
        f"batched replay is only x{ratio:.2f} the serial encoded pass "
        f"(floor x{MIN_BATCHED_SPEEDUP})"
    )


def _timed_elim(material, on, repeats):
    """Best-of-N batched pass with elimination forced on or off."""
    from repro.workloads.elim import forced

    times, cycles = [], None
    for _ in range(repeats):
        with forced(on):
            elapsed, cycles = _batched_pass(material)
        times.append(elapsed)
    return min(times), cycles


def test_elim_penalties_speedup(bench_metrics):
    """Hit-run elimination on the batched penalties grid: exact + faster.

    Times the full 12-kernel x 6-config batched pass with elimination
    forced on against forced off (the PR-8 baseline path), asserts the
    cycle outputs are bit-identical, and records both the whole-grid
    ratio and the high-locality-kernel ratio (the >=1.5x design goal of
    the elimination work) in the bench trajectory.
    """
    programs = _programs(kernel_names())
    material = {
        name: (encode_trace(program), warm_regions_of(program))
        for name, program in programs.items()
    }
    full = list(material.values())
    # Warm-up: compiles both stepper variants and profiles every trace
    # (annotations are memoized on the traces, as in a real sweep).
    _timed_elim(full, True, 1)
    _timed_elim(full, False, 1)

    on_time, on_cycles = _timed_elim(full, True, E2E_REPEATS)
    off_time, off_cycles = _timed_elim(full, False, E2E_REPEATS)

    # Elimination is only admissible because it is bit-exact.
    assert on_cycles == off_cycles

    ratio = off_time / on_time
    bench_metrics.setdefault("trace", {})["elim_speedup"] = metric(ratio, unit="x")

    high = [material[name] for name in HIGH_LOCALITY]
    high_on, _ = _timed_elim(high, True, E2E_REPEATS)
    high_off, _ = _timed_elim(high, False, E2E_REPEATS)
    high_ratio = high_off / high_on
    bench_metrics.setdefault("trace", {})["elim_speedup_high_locality"] = metric(
        high_ratio, unit="x"
    )
    print(
        f"\nelimination penalties: best off {off_time:.3f}s, best on "
        f"{on_time:.3f}s, speedup x{ratio:.2f} (floor x{MIN_ELIM_SPEEDUP}); "
        f"high-locality ({', '.join(HIGH_LOCALITY)}) x{high_ratio:.2f}"
    )
    assert ratio >= MIN_ELIM_SPEEDUP, (
        f"eliminated replay is only x{ratio:.2f} the per-event batched "
        f"pass (floor x{MIN_ELIM_SPEEDUP})"
    )


def test_elim_serial_speedup(bench_metrics):
    """Serial-lane elimination hits the >=1.5x goal where it applies.

    The batched grid dilutes elimination behind the non-eliminating
    VWB/L0/EMSHR lanes and the shared trace walk; the serial encoded
    path (the engine's per-point and pooled-worker shape) instead jumps
    its cursors over whole runs.  Times the eligible configurations
    (:data:`ELIM_CONFIGS`) on the high-locality kernels, forced on vs
    forced off, asserts bit-identical cycles and the
    :data:`MIN_ELIM_SERIAL_SPEEDUP` floor.
    """
    from repro.workloads.elim import forced

    programs = _programs(HIGH_LOCALITY)
    material = [
        (encode_trace(program), warm_regions_of(program))
        for program in programs.values()
    ]

    def serial_pass(on):
        cycles = []
        with forced(on):
            start = time.perf_counter()
            for trace, regions in material:
                for config in ELIM_CONFIGS:
                    system = make_system(config)
                    result = system.run(trace, warm_regions=regions)
                    cycles.append(result.cycles)
            elapsed = time.perf_counter() - start
        return elapsed, cycles

    serial_pass(True)  # warm-up: profiles the traces, warms the arrays
    serial_pass(False)
    on_time = min(serial_pass(True)[0] for _ in range(REPEATS))
    off_time = min(serial_pass(False)[0] for _ in range(REPEATS))
    assert serial_pass(True)[1] == serial_pass(False)[1]

    ratio = off_time / on_time
    bench_metrics.setdefault("trace", {})["elim_speedup_serial"] = metric(
        ratio, unit="x"
    )
    print(
        f"\nelimination serial lanes ({', '.join(ELIM_CONFIGS)} on "
        f"{', '.join(HIGH_LOCALITY)}): best off {off_time:.3f}s, best on "
        f"{on_time:.3f}s, speedup x{ratio:.2f} "
        f"(floor x{MIN_ELIM_SERIAL_SPEEDUP})"
    )
    assert ratio >= MIN_ELIM_SERIAL_SPEEDUP, (
        f"serial eliminated replay is only x{ratio:.2f} the per-event "
        f"path (floor x{MIN_ELIM_SERIAL_SPEEDUP})"
    )
