"""Write buffer drain/stall model."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.writebuffer import WriteBuffer


class TestWriteBuffer:
    def test_accepts_when_empty(self):
        wb = WriteBuffer(entries=2, drain_cycles=10.0)
        assert wb.push(now=0.0) == 0.0

    def test_fills_up_then_stalls(self):
        wb = WriteBuffer(entries=2, drain_cycles=10.0)
        assert wb.push(0.0) == 0.0  # drains at 10
        assert wb.push(0.0) == 0.0  # drains at 20 (serialised)
        stall = wb.push(0.0)  # must wait for the first drain
        assert stall == 10.0

    def test_drains_serialise(self):
        wb = WriteBuffer(entries=4, drain_cycles=10.0)
        wb.push(0.0)
        wb.push(0.0)
        assert wb.drain_time(0.0) == 20.0

    def test_retires_over_time(self):
        wb = WriteBuffer(entries=1, drain_cycles=5.0)
        wb.push(0.0)
        assert wb.occupancy(now=4.0) == 1
        assert wb.occupancy(now=5.0) == 0

    def test_no_stall_after_drain(self):
        wb = WriteBuffer(entries=1, drain_cycles=5.0)
        wb.push(0.0)
        assert wb.push(100.0) == 0.0

    def test_stall_statistics(self):
        wb = WriteBuffer(entries=1, drain_cycles=10.0)
        wb.push(0.0)
        wb.push(0.0)
        assert wb.total_pushes == 2
        assert wb.total_stall_cycles == 10.0

    def test_drain_time_empty(self):
        wb = WriteBuffer(entries=1, drain_cycles=5.0)
        assert wb.drain_time(0.0) == 0.0

    def test_reset(self):
        wb = WriteBuffer(entries=1, drain_cycles=5.0)
        wb.push(0.0)
        wb.reset()
        assert wb.occupancy(0.0) == 0
        assert wb.total_pushes == 0

    def test_capacity(self):
        assert WriteBuffer(entries=3, drain_cycles=1.0).capacity == 3

    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigurationError):
            WriteBuffer(entries=0, drain_cycles=1.0)

    def test_rejects_negative_drain(self):
        with pytest.raises(ConfigurationError):
            WriteBuffer(entries=1, drain_cycles=-1.0)


class TestMainMemory:
    def test_read_latency(self):
        from repro.mem.mainmem import MainMemory

        mem = MainMemory(latency_cycles=100.0, transfer_cycles=8.0)
        assert mem.access(0, False, 0.0) == 100.0

    def test_channel_serialises(self):
        from repro.mem.mainmem import MainMemory

        mem = MainMemory(latency_cycles=100.0, transfer_cycles=8.0)
        mem.access(0, False, 0.0)
        # Second request waits for the first transfer slot (8 cycles).
        assert mem.access(64, False, 0.0) == 108.0

    def test_posted_write_cost(self):
        from repro.mem.mainmem import MainMemory

        mem = MainMemory(latency_cycles=100.0, transfer_cycles=8.0)
        assert mem.access(0, True, 0.0) == 8.0

    def test_counters(self):
        from repro.mem.mainmem import MainMemory

        mem = MainMemory()
        mem.access(0, False, 0.0)
        mem.access(0, True, 0.0)
        assert mem.reads == 1
        assert mem.writes == 1
        assert mem.accesses == 2

    def test_reset(self):
        from repro.mem.mainmem import MainMemory

        mem = MainMemory()
        mem.access(0, False, 0.0)
        mem.reset()
        assert mem.accesses == 0
        assert mem.access(0, False, 0.0) == mem.latency_cycles
