"""The affine loop-nest IR."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.affine import Var
from repro.workloads.ir import Array, Loop, Program, Ref, Statement, loop, stmt

i, j = Var("i"), Var("j")


class TestArray:
    def test_shape_and_sizes(self):
        a = Array("A", (4, 8))
        assert a.elements == 32
        assert a.size_bytes == 128
        assert a.row_strides == (8, 1)

    def test_3d_strides(self):
        a = Array("A", (2, 3, 4))
        assert a.row_strides == (12, 4, 1)

    def test_elem_bytes(self):
        a = Array("A", (4,), elem_bytes=8)
        assert a.size_bytes == 32

    def test_rejects_bad_shape(self):
        with pytest.raises(WorkloadError):
            Array("A", ())
        with pytest.raises(WorkloadError):
            Array("A", (0, 4))

    def test_getitem_builds_ref(self):
        a = Array("A", (4, 8))
        ref = a[i, j]
        assert isinstance(ref, Ref)
        assert ref.array is a

    def test_getitem_single_index(self):
        a = Array("x", (16,))
        assert isinstance(a[i], Ref)


class TestRef:
    def test_arity_checked(self):
        a = Array("A", (4, 8))
        with pytest.raises(WorkloadError):
            a[i]

    def test_flat_index_row_major(self):
        a = Array("A", (4, 8))
        ref = a[i, j]
        assert ref.flat_index({"i": 2, "j": 3}) == 19

    def test_addr_requires_layout(self):
        a = Array("A", (4, 8))
        with pytest.raises(WorkloadError):
            a[i, j].addr({"i": 0, "j": 0})

    def test_addr_after_layout(self):
        a = Array("A", (4, 8))
        prog = Program("p", [loop(i, 4, [loop(j, 8, [stmt(reads=[a[i, j]])])])])
        prog.layout(base_addr=0x1000)
        assert a[i, j].addr({"i": 1, "j": 2}) == 0x1000 + 10 * 4

    def test_stride_elements(self):
        a = Array("A", (4, 8))
        assert a[i, j].stride_elements(j) == 1
        assert a[i, j].stride_elements(i) == 8
        assert a[j, i].stride_elements(i) == 1
        assert a[i, j].stride_elements(Var("k")) == 0

    def test_stride_bytes(self):
        a = Array("A", (4, 8))
        assert a[i, j].stride_bytes(i) == 32

    def test_depends_on(self):
        a = Array("A", (4, 8))
        assert a[i, j].depends_on(i)
        assert not a[i, 0].depends_on(j)


class TestLoopAndStatement:
    def test_innermost_detection(self):
        a = Array("A", (8,))
        inner = loop(j, 8, [stmt(reads=[a[j]])])
        outer = loop(i, 4, [inner])
        assert inner.is_innermost
        assert not outer.is_innermost

    def test_trip_count(self):
        lp = loop(i, 10, [stmt()])
        assert lp.trip_count({}) == 10

    def test_triangular_trip_count(self):
        lp = Loop(j, i + 1, 10, [stmt()])
        assert lp.trip_count({"i": 3}) == 6
        assert lp.trip_count({"i": 20}) == 0

    def test_empty_body_rejected(self):
        with pytest.raises(WorkloadError):
            loop(i, 4, [])

    def test_statement_negative_flops_rejected(self):
        with pytest.raises(WorkloadError):
            Statement((), (), flops=-1)

    def test_clone_copies_annotations_independently(self):
        a = Array("A", (8,))
        lp = loop(i, 8, [stmt(reads=[a[i]])])
        lp.vector_width = 4
        copy = lp.clone()
        copy.vector_width = 1
        copy.unroll = 8
        assert lp.vector_width == 4
        assert lp.unroll == 1


class TestProgram:
    def _prog(self):
        a = Array("A", (4, 8))
        b = Array("B", (8,))
        body = loop(i, 4, [loop(j, 8, [stmt(reads=[a[i, j], b[j]], writes=[b[j]])])])
        return Program("p", [body]), a, b

    def test_collects_arrays_in_order(self):
        prog, a, b = self._prog()
        assert prog.arrays == [a, b]

    def test_footprint(self):
        prog, a, b = self._prog()
        assert prog.footprint_bytes == a.size_bytes + b.size_bytes

    def test_layout_aligns_and_packs(self):
        prog, a, b = self._prog()
        prog.layout(base_addr=0x1000, align=64)
        assert a.base_addr == 0x1000
        assert b.base_addr == 0x1000 + 128  # A is 128 B, already aligned
        assert b.base_addr % 64 == 0

    def test_loops_preorder(self):
        prog, _, _ = self._prog()
        loops = prog.loops()
        assert [lp.var.name for lp in loops] == ["i", "j"]

    def test_clone_is_deep_for_loops(self):
        prog, _, _ = self._prog()
        copy = prog.clone()
        copy.loops()[1].vector_width = 4
        assert prog.loops()[1].vector_width == 1

    def test_duplicate_array_names_rejected(self):
        a1 = Array("A", (4,))
        a2 = Array("A", (8,))
        with pytest.raises(WorkloadError):
            Program("p", [loop(i, 4, [stmt(reads=[a1[i], a2[i]])])])

    def test_empty_program_rejected(self):
        with pytest.raises(WorkloadError):
            Program("p", [])
