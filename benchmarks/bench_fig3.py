"""Bench: Figure 3 — VWB vs simple drop-in (no code transformations).

Paper shape: a significant penalty reduction from the micro-architecture
alone, "but not enough".
"""

from repro.experiments import fig3

from conftest import run_once


def test_fig3(benchmark, runner, save):
    result = run_once(benchmark, fig3.run, runner=runner)
    save(result)
    avg = result.averages()
    # The VWB must cut the average penalty substantially...
    assert avg["vwb"] < 0.7 * avg["dropin"]
    # ... while leaving a clearly non-tolerable residue (the reason the
    # paper's Section V exists).
    assert avg["vwb"] > 10.0
