"""Loop tiling (strip-mine + nest) — future-work extension.

The paper closes Section V noting that "a systematic approach is being
looked into to facilitate and best exploit the above mentioned code
transformations".  Cache blocking is the canonical next transformation
for the dense kernels it evaluates: tiling a reduction dimension keeps
a working-set tile resident in the DL1 across outer iterations, cutting
the L2 traffic that grows with dataset size.

:class:`StripMine` splits one counted loop::

    for i in [0, N)            for it in [0, N/T)
        body          ->           for i in [it*T, it*T + T)
                                       body

Only loops with *constant* bounds whose trip count is divisible by the
tile size are transformed (the IR's affine bounds cannot express the
``min()`` a remainder tile needs); others are skipped, which is safe.
:class:`TileNest` strip-mines several loop variables of a perfect nest
in one pass.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..errors import TransformError
from ..workloads.affine import Var
from ..workloads.ir import Loop, Node, Program
from .base import Transform


class StripMine(Transform):
    """Strip-mine every eligible loop over ``var_name`` by ``tile``.

    Args:
        var_name: Name of the loop variable to split.
        tile: Tile size (iterations per strip).
    """

    name = "strip-mine"

    def __init__(self, var_name: str, tile: int) -> None:
        if tile < 2:
            raise TransformError(f"tile size must be at least 2, got {tile}")
        if not var_name:
            raise TransformError("strip-mine needs a loop variable name")
        self.var_name = var_name
        self.tile = tile

    def apply_to(self, program: Program) -> None:
        program.body[:] = [self._rewrite(node) for node in program.body]

    def _rewrite(self, node: Node) -> Node:
        if not isinstance(node, Loop):
            return node
        node.body[:] = [self._rewrite(child) for child in node.body]
        if node.var.name != self.var_name or not self._eligible(node):
            return node
        trip = node.upper.const - node.lower.const
        outer_var = Var(f"{node.var.name}__tile")
        inner = Loop(
            node.var,
            outer_var * self.tile + node.lower.const,
            outer_var * self.tile + node.lower.const + self.tile,
            node.body,
            permutable=node.permutable,
        )
        inner.vector_width = node.vector_width
        inner.unroll = node.unroll
        inner.prefetch = list(node.prefetch)
        return Loop(outer_var, 0, trip // self.tile, [inner])

    def _eligible(self, node: Loop) -> bool:
        if not node.lower.is_constant or not node.upper.is_constant:
            return False
        trip = node.upper.const - node.lower.const
        return trip > self.tile and trip % self.tile == 0


class TileNest(Transform):
    """Strip-mine several variables of a nest in one pass.

    Args:
        tiles: Map of loop-variable name -> tile size.
    """

    name = "tile"

    def __init__(self, tiles: Dict[str, int]) -> None:
        if not tiles:
            raise TransformError("tiling needs at least one (variable, tile) pair")
        self._passes = [StripMine(name, tile) for name, tile in tiles.items()]

    def apply_to(self, program: Program) -> None:
        for strip in self._passes:
            strip.apply_to(program)


def tiled_variables(program: Program) -> Sequence[str]:
    """Names of tile-controller loops present in a program (reporting)."""
    return [lp.var.name for lp in program.loops() if lp.var.name.endswith("__tile")]
