"""Public-API quality gates: docstrings everywhere, exports resolve."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
]


class TestDocstrings:
    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_items_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name, item in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(item) or inspect.isfunction(item)):
                continue
            if getattr(item, "__module__", None) != module_name:
                continue  # re-export: documented at its home
            assert inspect.getdoc(item), f"{module_name}.{name}"
            if inspect.isclass(item):
                for meth_name in vars(item):
                    if meth_name.startswith("_"):
                        continue
                    meth = getattr(item, meth_name, None)
                    if not callable(meth):
                        continue
                    # getdoc falls back to the base class: an override
                    # without its own docstring inherits the contract.
                    assert inspect.getdoc(meth), f"{module_name}.{name}.{meth_name}"


class TestTopLevelExports:
    def test_all_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_one_import_workflow(self):
        """The README's one-liner workflow works from the root package."""
        from repro import (  # noqa: F401
            OptLevel,
            System,
            SystemConfig,
            build_kernel,
            materialize_trace,
            metrics_of,
            optimize,
            warm_regions_of,
        )

        program = build_kernel("syrk")
        trace = materialize_trace(program)
        system = System(SystemConfig(technology="stt-mram", frontend="vwb"))
        result = system.run(trace, warm_regions=warm_regions_of(program))
        assert metrics_of(result).ipc > 0

    def test_version_string(self):
        assert repro.__version__.count(".") == 2
