"""Probes must never perturb the simulation they observe.

Two invariants: the default :class:`NullProbe` path is bit-identical to
a run with no probe attached at all, and a full :class:`RecordingProbe`
(which exercises every hook) still yields the same cycle count — the
instrumentation is read-only by construction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.system import System, SystemConfig
from repro.experiments.runner import CONFIGURATIONS, make_system
from repro.obs import NULL_PROBE, NullProbe, RecordingProbe
from repro.workloads.trace import Branch, Compute, Load, Prefetch, Store

_EVENTS = st.one_of(
    st.builds(Load, addr=st.integers(0, 0x4000).map(lambda a: 0x10_0000 + a * 4), size=st.just(4)),
    st.builds(Store, addr=st.integers(0, 0x4000).map(lambda a: 0x10_0000 + a * 4), size=st.just(4)),
    st.builds(Compute, ops=st.integers(1, 4)),
    st.builds(Branch, taken=st.booleans()),
    st.builds(Prefetch, addr=st.integers(0, 0x4000).map(lambda a: 0x10_0000 + a * 64)),
)


def _run(config_name, trace, probe=None):
    system = make_system(config_name)
    return system.run(trace, probe=probe)


class TestProbeNeutrality:
    @settings(max_examples=25, deadline=None)
    @given(
        trace=st.lists(_EVENTS, min_size=1, max_size=120),
        config=st.sampled_from(sorted(CONFIGURATIONS)),
    )
    def test_null_probe_runs_are_bit_identical(self, trace, config):
        bare = _run(config, trace)
        nulled = _run(config, trace, probe=NullProbe())
        assert nulled.cycles == bare.cycles
        assert nulled.instructions == bare.instructions
        assert nulled.breakdown == bare.breakdown
        assert nulled.load_latency_histogram == bare.load_latency_histogram

    @settings(max_examples=25, deadline=None)
    @given(
        trace=st.lists(_EVENTS, min_size=1, max_size=120),
        config=st.sampled_from(sorted(CONFIGURATIONS)),
    )
    def test_recording_probe_does_not_perturb_timing(self, trace, config):
        bare = _run(config, trace)
        probe = RecordingProbe()
        recorded = _run(config, trace, probe=probe)
        assert recorded.cycles == bare.cycles
        assert recorded.instructions == bare.instructions
        # finish() ran and the ledger balanced to the bit.
        assert probe.verified
        assert probe.ledger.total == recorded.cycles


class TestProbeLifecycle:
    def test_probe_detached_after_run(self):
        system = make_system("vwb")
        trace = [Load(0x10_0000, 4), Compute(1)]
        probe = RecordingProbe()
        system.run(trace, probe=probe)
        assert system.cpu.probe is NULL_PROBE
        assert system.frontend.probe is NULL_PROBE

    def test_probe_detached_even_when_run_raises(self):
        system = make_system("vwb")
        probe = RecordingProbe()
        try:
            system.run([object()], probe=probe)  # not a TraceEvent
        except Exception:
            pass
        assert system.cpu.probe is NULL_PROBE

    def test_warmup_not_recorded(self):
        # The probe attaches after warm-up, so warm fills never appear
        # in the ledger (which must balance against measured cycles only).
        system = System(SystemConfig(technology="stt-mram", frontend="plain"))
        probe = RecordingProbe()
        result = system.run(
            [Load(0x10_0000, 4)],
            warm_regions=[(0x10_0000, 4096)],
            probe=probe,
        )
        assert probe.ledger.total == result.cycles

    def test_event_cap_counts_drops(self):
        probe = RecordingProbe(record_events=True, max_events=4)
        trace = [Load(0x10_0000 + i * 4, 4) for i in range(64)]
        _run("sram", trace, probe=probe)
        assert len(probe.events) == 4
        assert probe.dropped_events > 0
        # The ledger is unaffected by the event cap.
        assert probe.ledger.total > 0.0
