"""Technology-node scaling rules."""

import pytest

from repro.errors import ConfigurationError
from repro.tech.params import SRAM_32NM_HP, STT_MRAM_32NM
from repro.tech.scaling import scale_technology


class TestShrink:
    def test_latency_improves(self):
        scaled = scale_technology(STT_MRAM_32NM, 22.0)
        assert scaled.read_latency_ns < STT_MRAM_32NM.read_latency_ns
        assert scaled.write_latency_ns < STT_MRAM_32NM.write_latency_ns

    def test_dynamic_energy_improves(self):
        scaled = scale_technology(STT_MRAM_32NM, 22.0)
        assert scaled.read_energy_pj_per_bit < STT_MRAM_32NM.read_energy_pj_per_bit

    def test_sram_leakage_worsens_when_shrinking(self):
        # The paper's motivation: "rapid increase of leakage currents in
        # CMOS transistors with technology scaling".
        scaled = scale_technology(SRAM_32NM_HP, 22.0)
        assert scaled.leakage_mw > SRAM_32NM_HP.leakage_mw

    def test_nvm_leakage_grows_slower_than_sram(self):
        sram = scale_technology(SRAM_32NM_HP, 22.0)
        stt = scale_technology(STT_MRAM_32NM, 22.0)
        sram_growth = sram.leakage_mw / SRAM_32NM_HP.leakage_mw
        stt_growth = stt.leakage_mw / STT_MRAM_32NM.leakage_mw
        assert stt_growth < sram_growth

    def test_leakage_gap_widens_with_scaling(self):
        """The SRAM/NVM leakage ratio grows as nodes shrink — the paper's
        core argument for NVM at advanced nodes."""
        ratio_32 = SRAM_32NM_HP.leakage_mw / STT_MRAM_32NM.leakage_mw
        sram22 = scale_technology(SRAM_32NM_HP, 22.0)
        stt22 = scale_technology(STT_MRAM_32NM, 22.0)
        assert sram22.leakage_mw / stt22.leakage_mw > ratio_32


class TestGrowAndEdges:
    def test_grow_to_45nm_slows_down(self):
        scaled = scale_technology(STT_MRAM_32NM, 45.0)
        assert scaled.read_latency_ns > STT_MRAM_32NM.read_latency_ns

    def test_same_node_is_identity(self):
        assert scale_technology(STT_MRAM_32NM, 32.0) is STT_MRAM_32NM

    def test_cell_area_f2_is_preserved(self):
        scaled = scale_technology(STT_MRAM_32NM, 22.0)
        assert scaled.cell_area_f2 == STT_MRAM_32NM.cell_area_f2

    def test_endurance_preserved(self):
        scaled = scale_technology(STT_MRAM_32NM, 22.0)
        assert scaled.endurance_writes == STT_MRAM_32NM.endurance_writes

    def test_name_mentions_target_node(self):
        scaled = scale_technology(STT_MRAM_32NM, 22.0)
        assert "22" in scaled.name

    def test_rejects_nonpositive_node(self):
        with pytest.raises(ConfigurationError):
            scale_technology(STT_MRAM_32NM, 0.0)
