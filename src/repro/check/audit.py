"""Differential replay audit: one point, every replay path, zero drift.

The simulator maintains several redundant ways of executing the same
:class:`~repro.exec.point.RunPoint`, all promised bit-identical:

- **generic replay** — ``InOrderCPU.run`` over decoded event objects;
- **encoded replay** — ``run_encoded`` over the columnar opcode stream,
  with the front-end's inlined fast-path hit kernels;
- **batched replay** — :func:`repro.cpu.batched.run_batch` driving the
  point as one lane of a generated multi-lane stepper, whose per-lane
  state mutations and result must match a solo run exactly;
- **probed replay** — generic replay under a
  :class:`~repro.obs.probe.RecordingProbe`, whose cycle ledger must
  balance to the run's cycle count exactly;
- **eliminated replay** — encoded replay with hit-run elimination
  (:mod:`repro.workloads.elim`) forced on, so annotated guaranteed-hit
  runs are consumed in closed form instead of per event;
- **warm re-runs** — ``reset=False`` replays over retained contents,
  which must agree across replay paths just like cold runs.

:func:`audit_point` executes all of them for one (kernel, config,
level) point, with the live sanitizer attached to the generic legs, and
diffs everything that can diverge: the full :class:`RunResult` (cycles,
breakdown, counts, every stats dict, the load-latency histogram), the
probe's independently-collected load histogram and verified ledger, and
the complete shadow end state of the machine
(:func:`repro.check.shadow.capture_system`).

When the generic and encoded paths disagree, :func:`bisect_divergence`
re-runs both paths over growing prefixes of the event stream (prefixes
are re-encoded with :func:`~repro.workloads.encode.encode_events`) and
binary-searches for the first event after which the machine states
differ — turning "the cycle counts differ by 14" into "event 80421, a
store to 0x1f440, updates the LRU stack differently".
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, List, Optional, Sequence, Tuple, Union

from ..cpu.model import RunResult
from ..cpu.system import System, SystemConfig, warm_regions_of
from ..errors import InvariantViolation, SimulationError
from ..obs import RecordingProbe
from ..transforms.pipeline import OptLevel
from ..workloads.datasets import DatasetSize
from ..workloads.encode import EncodedTrace, encode_events
from .sanitizer import Sanitizer
from .shadow import ShadowState, capture_system, diff_states

#: Default invariant-check stride for audits: a prime, so the checked
#: event indices do not phase-lock with loop bodies whose event period
#: divides a round number.
DEFAULT_AUDIT_STRIDE = 997


@dataclass
class AuditReport:
    """Outcome of one differential audit.

    Attributes:
        kernel: Kernel name.
        config: Canonical configuration name.
        level: Optimization level name.
        events: Events in the audited trace.
        checks: Invariant sweeps the sanitizer ran across all legs.
        divergences: ``(leg, path, expected, actual)`` records; ``leg``
            names the comparison (``encoded.state``, ``probe.result``,
            ``warm.result``, ...), ``path`` the diverging structure.
        first_divergence_event: Trace index of the first event after
            which generic and encoded replay disagree (from bisection;
            ``None`` when they agree or bisection was skipped).
        violation: Message of the invariant violation that aborted a
            leg, if any.
        violation_event: Event index carried by that violation.
    """

    kernel: str
    config: str
    level: str
    events: int = 0
    checks: int = 0
    divergences: List[Tuple[str, str, Any, Any]] = field(default_factory=list)
    first_divergence_event: Optional[int] = None
    violation: Optional[str] = None
    violation_event: Optional[int] = None

    @property
    def ok(self) -> bool:
        """True when every leg agreed and no invariant fired."""
        return not self.divergences and self.violation is None

    def summary(self) -> str:
        """One line per finding (or a single PASS line)."""
        head = f"{self.kernel}/{self.config}/{self.level}"
        if self.ok:
            return (
                f"PASS  {head}: {self.events} events, "
                f"{self.checks} invariant sweeps, 6 replay legs agree"
            )
        lines = [f"FAIL  {head}:"]
        if self.violation is not None:
            lines.append(f"      invariant: {self.violation}")
        for leg, path, expected, actual in self.divergences[:20]:
            lines.append(f"      {leg} diverges at {path}: {expected!r} != {actual!r}")
        if len(self.divergences) > 20:
            lines.append(f"      ... and {len(self.divergences) - 20} more")
        if self.first_divergence_event is not None:
            lines.append(
                f"      first divergence introduced by event "
                f"{self.first_divergence_event}"
            )
        return "\n".join(lines)


def _result_state(result: RunResult) -> dict:
    """A ``RunResult`` as plain nested data for :func:`diff_states`."""
    return asdict(result)


def _diff_into(
    report: AuditReport, leg: str, expected: Any, actual: Any
) -> None:
    for path, a, b in diff_states(expected, actual):
        report.divergences.append((leg, path, a, b))


def _point_material(
    kernel: str,
    config: SystemConfig,
    level: OptLevel,
    size: DatasetSize,
):
    """The (program, encoded trace, warm regions) for one audit point.

    Reuses the execution engine's per-process memos, so auditing a
    kernel across six configurations builds and encodes its trace once.
    """
    from ..exec.point import RunPoint, _point_trace, build_point_program

    point = RunPoint(kernel=kernel, config=config, level=level, size=size)
    program = build_point_program(point)
    trace = _point_trace(point)
    return program, trace, warm_regions_of(program)


def audit_point(
    kernel: str,
    config: Union[str, SystemConfig] = "vwb",
    level: OptLevel = OptLevel.NONE,
    size: DatasetSize = DatasetSize.MINI,
    stride: int = DEFAULT_AUDIT_STRIDE,
    bisect: bool = True,
) -> AuditReport:
    """Differentially audit one (kernel, config, level) point.

    Runs the six replay legs (sanitized generic, encoded fast path,
    batched multi-lane, forced hit-run elimination, probed with ledger
    verification, warm re-runs of the first two), diffs results,
    histograms and shadow end states,
    and — when the generic and encoded paths disagree — bisects to the
    first diverging event.

    Args:
        kernel: Kernel name from the PolyBench registry.
        config: Configuration name/alias or a :class:`SystemConfig`.
        level: Optimization level of the traced code.
        size: Dataset size class.
        stride: Sanitizer check stride for the generic legs.
        bisect: Run the prefix bisection on a generic-vs-encoded
            divergence (the expensive step; only triggered on failure).

    Returns:
        An :class:`AuditReport`; ``report.ok`` is the verdict.
    """
    from ..experiments.runner import resolve_config, resolve_config_name

    if isinstance(config, str):
        name = resolve_config_name(config)
        sys_config = resolve_config(name)
    else:
        name = config.frontend
        sys_config = config
    report = AuditReport(kernel=kernel, config=name, level=level.name)
    program, trace, regions = _point_material(kernel, sys_config, level, size)
    report.events = len(trace)

    # Leg A: generic object replay under the live sanitizer.
    system_a = System(sys_config)
    sanitizer = Sanitizer(system_a, stride=stride)
    try:
        result_a = sanitizer.run(trace, warm_regions=regions)
    except InvariantViolation as exc:
        report.checks = sanitizer.checks_run
        report.violation = str(exc)
        report.violation_event = exc.event_index
        return report
    report.checks = sanitizer.checks_run
    shadow_a = capture_system(system_a)

    # Leg B: encoded fast-path replay, no instrumentation.
    system_b = System(sys_config)
    result_b = system_b.run(trace, warm_regions=regions)
    shadow_b = capture_system(system_b)
    _diff_into(report, "encoded.result", _result_state(result_a), _result_state(result_b))
    _diff_into(report, "encoded.state", shadow_a, shadow_b)
    encoded_diverged = bool(report.divergences)

    # Leg E: batched replay — the point runs as one lane of a two-lane
    # generated stepper (both lanes this configuration), so the batched
    # engine's inlined hit tiers, divergence fallbacks and deferred stat
    # flushes are all exercised and diffed against the sanitized run.
    from ..cpu.batched import run_batch

    system_e = System(sys_config)
    result_e = run_batch(trace, [system_e, System(sys_config)], warm_regions=regions)[0]
    _diff_into(report, "batched.result", _result_state(result_a), _result_state(result_e))
    _diff_into(report, "batched.state", shadow_a, capture_system(system_e))

    # Leg F: eliminated replay — the encoded fast path with hit-run
    # elimination *forced on* (independent of ``REPRO_ELIM``), so
    # guaranteed-hit runs are consumed through the closed-form /
    # packed-word appliers of :func:`repro.cpu.fastpath.make_run_applier`
    # instead of per-event simulation.  Result and full shadow end state
    # (tags, dirty bits, LRU orders, bank clocks) are diffed against the
    # sanitized generic leg.  Lanes whose shape is ineligible simply
    # replay per-event here, which keeps the leg a valid no-op check.
    from ..workloads.elim import forced as _elim_forced

    system_f = System(sys_config)
    with _elim_forced(True):
        result_f = system_f.run(trace, warm_regions=regions)
    _diff_into(report, "elim.result", _result_state(result_a), _result_state(result_f))
    _diff_into(report, "elim.state", shadow_a, capture_system(system_f))

    # Leg C: probed generic replay; the RecordingProbe's finish hook
    # verifies the cycle ledger balances to the run's cycles exactly.
    system_c = System(sys_config)
    probe = RecordingProbe(record_events=False)
    try:
        result_c = system_c.run(trace, warm_regions=regions, probe=probe)
    except SimulationError as exc:
        report.divergences.append(("probe.ledger", "verify", "balanced", str(exc)))
        result_c = None
    if result_c is not None:
        _diff_into(
            report, "probe.result", _result_state(result_a), _result_state(result_c)
        )
        # The probe's load histogram is collected independently (from
        # end_op costs) under the same bucketing convention; it must
        # reproduce the CPU-side histogram exactly.
        _diff_into(
            report,
            "probe.load_histogram",
            dict(result_a.load_latency_histogram),
            dict(probe.histograms.data.get("cpu.load_exposed", {})),
        )

    # Leg D: warm re-runs over the retained contents — sanitized generic
    # on system A against encoded fast path on system B.  Catches state
    # that cold runs cannot distinguish (clear_stats bleed).
    try:
        result_a2 = sanitizer.run(trace, reset=False)
    except InvariantViolation as exc:
        report.checks = sanitizer.checks_run
        report.violation = str(exc)
        report.violation_event = exc.event_index
        return report
    report.checks = sanitizer.checks_run
    result_b2 = system_b.run(trace, reset=False)
    _diff_into(
        report, "warm.result", _result_state(result_a2), _result_state(result_b2)
    )
    _diff_into(report, "warm.state", capture_system(system_a), capture_system(system_b))

    if encoded_diverged and bisect:
        report.first_divergence_event = bisect_divergence(
            sys_config, trace, regions
        )
    return report


def _prefix_shadow(
    sys_config: SystemConfig, events, regions
) -> Tuple[ShadowState, dict]:
    """Run ``events`` on a fresh system; return (shadow, result) state."""
    system = System(sys_config)
    result = system.run(events, warm_regions=regions)
    return capture_system(system), _result_state(result)


def bisect_divergence(
    sys_config: SystemConfig,
    trace: EncodedTrace,
    regions,
) -> Optional[int]:
    """Find the first event after which generic and encoded replay differ.

    Replays growing prefixes of the trace — the prefix re-encoded with
    :func:`~repro.workloads.encode.encode_events` for the fast-path leg —
    and binary-searches the smallest prefix length whose machine states
    (shadow capture plus run result) disagree.  Assumes divergence is
    persistent once introduced, which holds for deterministic replay.

    Returns:
        The 0-based index of the offending trace event, or ``None`` if
        the full-length replays agree (no divergence to localise).
    """
    events = trace.decode()

    def differs(k: int) -> bool:
        generic = _prefix_shadow(sys_config, iter(events[:k]), regions)
        encoded = _prefix_shadow(sys_config, encode_events(events[:k]), regions)
        return generic != encoded

    n = len(events)
    if n == 0 or not differs(n):
        return None
    lo, hi = 1, n
    while lo < hi:
        mid = (lo + hi) // 2
        if differs(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo - 1


def audit_grid(
    kernels: Optional[Sequence[str]] = None,
    configs: Optional[Sequence[str]] = None,
    levels: Sequence[OptLevel] = (OptLevel.NONE,),
    size: DatasetSize = DatasetSize.MINI,
    stride: int = DEFAULT_AUDIT_STRIDE,
    bisect: bool = True,
) -> List[AuditReport]:
    """Audit a kernel x configuration x level grid.

    Args:
        kernels: Kernel subset (default: the full registry).
        configs: Configuration names (default: all six named configs).
        levels: Optimization levels to audit at.
        size: Dataset size class.
        stride: Sanitizer check stride.
        bisect: Bisect generic-vs-encoded divergences when found.

    Returns:
        One :class:`AuditReport` per grid point, in grid order.
    """
    from ..experiments.runner import CONFIGURATIONS
    from ..workloads import kernel_names

    kernels = list(kernels) if kernels is not None else kernel_names()
    configs = list(configs) if configs is not None else list(CONFIGURATIONS)
    reports = []
    for kernel in kernels:
        for config in configs:
            for level in levels:
                reports.append(
                    audit_point(
                        kernel,
                        config,
                        level=level,
                        size=size,
                        stride=stride,
                        bisect=bisect,
                    )
                )
    return reports
