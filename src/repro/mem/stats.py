"""Hit/miss/traffic counters for caches and buffers."""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class CacheStats:
    """Counters accumulated by one cache (or cache-like structure).

    All counters are in events except ``bank_wait_cycles``, which
    accumulates cycles lost to bank conflicts, and ``writeback_stall_cycles``,
    which accumulates cycles stalled on a full write buffer.
    """

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    fills: int = 0
    evictions: int = 0
    writebacks: int = 0
    bank_wait_cycles: int = 0
    writeback_stall_cycles: int = 0

    @property
    def reads(self) -> int:
        """Demand read accesses (hits plus misses)."""
        return self.read_hits + self.read_misses

    @property
    def writes(self) -> int:
        """Demand write accesses (hits plus misses)."""
        return self.write_hits + self.write_misses

    @property
    def hits(self) -> int:
        """Demand hits (reads plus writes; prefetches excluded)."""
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        """Demand misses (reads plus writes; prefetches excluded)."""
        return self.read_misses + self.write_misses

    @property
    def accesses(self) -> int:
        """Demand accesses (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Demand hit rate in [0, 1]; 0.0 when there were no accesses."""
        total = self.accesses
        return self.hits / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        """Demand miss rate in [0, 1]; 0.0 when there were no accesses."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        """Return a new :class:`CacheStats` with both operands' counts."""
        merged = CacheStats()
        for f in fields(CacheStats):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def as_dict(self) -> dict:
        """Plain-dict view (counters only), for reports and JSON dumps."""
        return {f.name: getattr(self, f.name) for f in fields(CacheStats)}
