"""PolyBench ``durbin`` (simplified): Levinson-Durbin recursion.

Extra kernel: the suite's only *reverse-indexed* inner loop — the dot
product reads ``r[k-j-1]`` backwards while ``y[j]`` runs forward, so one
stream has stride −1 and defeats the forward-only prefetch heuristics.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Loop, Program, loop, stmt

#: MINI dimensions.
BASE_DIMS = {"n": 120}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the durbin program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    n = dims["n"]
    k, j = Var("k"), Var("j")
    r = Array("r", (n,))
    y = Array("y", (n,))
    z = Array("z", (n,))
    acc = Array("acc", (1,))
    body = [
        Loop(
            k,
            1,
            n,
            [
                stmt(writes=[acc[0]], flops=0, label="zero"),
                # Backward dot product: r walks with stride -1.
                loop(
                    j,
                    k,
                    [
                        stmt(
                            reads=[acc[0], r[k - j - 1], y[j]],
                            writes=[acc[0]],
                            flops=2,
                            label="dot",
                        )
                    ],
                ),
                stmt(reads=[acc[0], r[k]], writes=[acc[0]], flops=3, label="alpha"),
                # In-place update via the scratch vector.
                loop(
                    j,
                    k,
                    [
                        stmt(
                            reads=[y[j], acc[0], y[k - j - 1]],
                            writes=[z[j]],
                            flops=2,
                            label="reflect",
                        )
                    ],
                ),
                loop(j, k, [stmt(reads=[z[j]], writes=[y[j]], flops=0, label="copy")]),
                stmt(reads=[acc[0]], writes=[y[k]], flops=1, label="store_alpha"),
            ],
        )
    ]
    return Program("durbin", body)
