"""Parallel experiment execution with a content-addressed run cache.

The paper's evaluation — and every sweep this repository adds on top —
is hundreds of independent ``(kernel, configuration, optimization
level, seed)`` simulations.  ``repro.exec`` turns that from a serial
loop into a scheduled batch:

- :mod:`repro.exec.point` defines :class:`RunPoint` (one simulation)
  and the pure worker function :func:`execute_point`;
- :mod:`repro.exec.cache` keys every point by a SHA-256 over its kernel
  IR, full system configuration, technology parameters, optimization
  level, seed and the simulator's own code fingerprint, and stores
  results as atomic JSON entries (:class:`RunCache`);
- :mod:`repro.exec.engine` fans cache-missing points out over a
  supervised worker pool (:class:`ExecutionEngine`, CLI ``--jobs N``)
  with deterministic, input-ordered results, replaying hits instantly
  and persisting each completion so interrupted sweeps resume;
- :mod:`repro.exec.resilience` supplies the failure machinery under it:
  crash-surviving worker supervision, per-point timeouts, retry with
  exponential backoff (:class:`RetryPolicy`), poison-point quarantine,
  structured :class:`PointFailure` records, the :class:`SweepJournal`
  checkpoint that makes ``SIGINT``/``SIGTERM`` resumable, and the
  :class:`FaultPlan` chaos injection the resilience tests drive.

The engine plugs into
:class:`~repro.experiments.runner.ExperimentRunner` (``engine=`` or the
CLI's ``--jobs``/``--cache-dir``/``--no-cache`` flags); cached, parallel
and inline executions of the same point are bit-identical.  See
``docs/EXPERIMENTS_GUIDE.md`` for the cookbook, ``docs/ARCHITECTURE.md``
§2.8 for the cache design and §2.12 for the failure model.
"""

from .cache import (
    CACHE_FORMAT_VERSION,
    DEFAULT_CACHE_DIR,
    QUARANTINE_DIR,
    CacheLookup,
    RunCache,
    cache_key_of,
    code_fingerprint,
    ir_fingerprint,
    key_material_of,
)
from .engine import BatchOutcome, ExecStats, ExecutionEngine, make_engine
from .point import RunPoint, execute_point, execute_point_timed
from .resilience import (
    DEFAULT_JOURNAL_DIR,
    FaultPlan,
    PointFailure,
    RetryPolicy,
    Supervisor,
    SweepJournal,
    estimate_point_cost,
)

__all__ = [
    "BatchOutcome",
    "CACHE_FORMAT_VERSION",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_JOURNAL_DIR",
    "CacheLookup",
    "ExecStats",
    "ExecutionEngine",
    "FaultPlan",
    "PointFailure",
    "QUARANTINE_DIR",
    "RetryPolicy",
    "RunCache",
    "RunPoint",
    "Supervisor",
    "SweepJournal",
    "cache_key_of",
    "code_fingerprint",
    "estimate_point_cost",
    "execute_point",
    "execute_point_timed",
    "ir_fingerprint",
    "key_material_of",
    "make_engine",
]
