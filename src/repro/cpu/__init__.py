"""The in-order CPU timing model and the full-system runner."""

from .model import CPUConfig, InOrderCPU, RunResult
from .system import System, SystemConfig

__all__ = ["CPUConfig", "InOrderCPU", "RunResult", "System", "SystemConfig"]
