"""Machine-readable export of experiment results (JSON / CSV / traces).

``python -m repro fig5 --json out/`` writes ``out/fig5.json`` alongside
the text rendering; downstream plotting (matplotlib, gnuplot, a
spreadsheet) consumes these instead of scraping the text tables.

The profile exporters turn a :class:`~repro.obs.profile.ProfileResult`
into a Chrome trace-event JSON file (loadable in Perfetto / ``chrome://
tracing``), a per-region ledger CSV, and a collapsed-stack flamegraph
summary.  One simulated cycle maps to one microsecond of trace time so
the Perfetto timeline reads directly in cycles.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Dict, List, Union

from ..obs import ProfileResult
from ..obs.perfetto import TraceBuilder, write_trace
from .report import FigureResult

#: pid of the CPU-side track and the memory-substrate tracks in the
#: exported Chrome trace (one tid per reporting component).
CPU_PID = 1
MEM_PID = 2


def figure_to_dict(result: FigureResult) -> dict:
    """A JSON-ready dict of one figure: labels, series, averages, notes."""
    return {
        "name": result.name,
        "title": result.title,
        "unit": result.unit,
        "labels": list(result.labels),
        "series": {key: list(values) for key, values in result.series.items()},
        "averages": result.averages(),
        "notes": list(result.notes),
    }


def write_json(result: FigureResult, directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write ``<directory>/<name>.json``; returns the path."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{result.name}.json"
    path.write_text(json.dumps(figure_to_dict(result), indent=2, sort_keys=True) + "\n")
    return path


def write_csv(result: FigureResult, directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write ``<directory>/<name>.csv`` (one row per label); returns the path."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{result.name}.csv"
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["benchmark"] + list(result.series))
        for i, label in enumerate(result.labels):
            writer.writerow([label] + [result.series[key][i] for key in result.series])
        if result.labels:
            avg = result.averages()
            writer.writerow(["AVERAGE"] + [avg[key] for key in result.series])
    return path


# ----------------------------------------------------------------------
# Profile export (Chrome trace events / CSV / flamegraph)
# ----------------------------------------------------------------------


def profile_to_chrome_trace(profile: ProfileResult) -> dict:
    """Chrome trace-event JSON object for one profiling run.

    CPU op brackets land on ``pid 1``; each memory-substrate component
    (front-end buffer, cache level, DRAM) gets its own thread on
    ``pid 2`` so Perfetto renders one swim-lane per component.  Events
    are ``"X"`` (complete) records with ``ts``/``dur`` in simulated
    cycles (1 cycle == 1 us of trace time), sorted by timestamp.  The
    serialization itself is shared with the sweep-timeline exporter via
    :class:`repro.obs.perfetto.TraceBuilder`.
    """
    builder = TraceBuilder()
    builder.process(CPU_PID, "cpu")
    builder.process(MEM_PID, "mem")
    builder.thread(CPU_PID, 1, "ops")
    mem_tids: Dict[str, int] = {}
    for ev in profile.events:
        if ev.source == "cpu":
            pid, tid = CPU_PID, 1
        else:
            tid = mem_tids.get(ev.source)
            if tid is None:
                tid = mem_tids[ev.source] = len(mem_tids) + 1
                builder.thread(MEM_PID, tid, ev.source)
            pid = MEM_PID
        args: Dict[str, object] = {}
        if ev.addr is not None:
            args["addr"] = f"0x{ev.addr:x}"
        if ev.region:
            args["region"] = ev.region
        if ev.args:
            args.update(ev.args)
        builder.complete(ev.kind, ev.source, ev.ts, ev.dur, pid, tid, args)
    return builder.build(
        other_data={
            "kernel": profile.kernel,
            "config": profile.config,
            "level": profile.level,
            "cycles": profile.result.cycles,
            "dropped_events": profile.dropped_events,
        }
    )


def write_perfetto(profile: ProfileResult, directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write ``<directory>/profile_<kernel>_<config>.json``; returns the path."""
    path = pathlib.Path(directory) / f"profile_{profile.kernel}_{profile.config}.json"
    return write_trace(profile_to_chrome_trace(profile), path)


def write_profile_csv(profile: ProfileResult, directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write the per-region cycle ledger as CSV; returns the path.

    One row per (IR region, category) with non-zero cycles, followed by
    overall ``TOTAL`` rows per category — ready for pivoting in a
    spreadsheet.
    """
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"profile_{profile.kernel}_{profile.config}.csv"
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["region", "category", "cycles"])
        for region in sorted(profile.ledger.loop_totals):
            sub = profile.ledger.loop_totals[region]
            for category, cycles in sorted(sub.items(), key=lambda kv: -kv[1]):
                if cycles > 0.0:
                    writer.writerow([region or "(top)", category, cycles])
        for category, cycles in profile.ledger.nonzero():
            writer.writerow(["TOTAL", category, cycles])
    return path


def render_flame(profile: ProfileResult) -> str:
    """Collapsed-stack flamegraph summary of the cycle ledger.

    One ``kernel;region;category cycles`` line per non-zero bucket (the
    input format of the classic ``flamegraph.pl`` tooling), ordered by
    descending weight.
    """
    root = f"{profile.kernel}[{profile.config}]"
    lines: List[str] = []
    for region, sub in profile.ledger.loop_totals.items():
        stack = f"{root};{region}" if region else root
        for category, cycles in sub.items():
            if cycles > 0.0:
                lines.append((cycles, f"{stack};{category} {cycles:.10g}"))
    lines.sort(key=lambda pair: -pair[0])
    return "\n".join(text for _, text in lines)


def render_profile(profile: ProfileResult) -> str:
    """Full text report of one profiling run (ledger, histograms, flame)."""
    result = profile.result
    header = (
        f"profile: {profile.kernel} on {profile.config} (level={profile.level})\n"
        f"cycles: {result.cycles:.10g}  instructions: {result.instructions}  "
        f"IPC: {result.ipc:.3f}"
    )
    if profile.dropped_events:
        header += f"\n(timeline truncated: {profile.dropped_events} events dropped)"
    parts = [
        header,
        profile.ledger.render(),
        profile.histograms.render(),
        "flamegraph (collapsed stacks):",
        render_flame(profile),
    ]
    return "\n\n".join(part for part in parts if part)
