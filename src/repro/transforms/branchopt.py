"""Branch and alignment optimizations — the paper's "others" bucket.

Section V: "Alignments of loops, jumps, pointers etc also help in
reduction of penalty.  We also attempt to transform conditional jumps in
the innermost loops to branch-less equivalents, guess branch flow
probabilities and try to reduce number of branches taken thus improving
code locality."

Architecturally these all shrink per-iteration control overhead, which
the trace model charges as back-edge :class:`~repro.workloads.trace.Branch`
events and per-statement ``overhead_ops``.  The pass therefore:

- unrolls innermost loops by ``unroll`` (one back-edge per ``unroll``
  iterations — fewer taken branches, straighter code);
- optionally extends the unroll to *all* loops (``deep=True``), modelling
  whole-nest alignment work on larger kernels, where the paper notes the
  "others" share grows.
"""

from __future__ import annotations

from ..errors import TransformError
from ..workloads.ir import Program
from .base import Transform


class BranchOptimize(Transform):
    """Reduce taken-branch overhead via unrolling/branchless rewrites.

    Args:
        unroll: Iterations covered by one back-edge after the pass.
        deep: Apply to every loop, not just innermost ones.
    """

    name = "others"

    def __init__(self, unroll: int = 4, deep: bool = False) -> None:
        if unroll < 2:
            raise TransformError(f"unroll factor must be at least 2, got {unroll}")
        self.unroll = unroll
        self.deep = deep

    def apply_to(self, program: Program) -> None:
        loops = program.loops() if self.deep else self.innermost_loops(program)
        for lp in loops:
            lp.unroll = max(lp.unroll, self.unroll)
