"""End-to-end validation of every headline claim of the paper.

``python -m repro validate`` runs the full 12-kernel evaluation and
checks each quantitative statement the paper makes, printing one
PASS/FAIL line per claim.  This is the single command that answers "does
this repository still reproduce the paper?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..transforms.pipeline import OptLevel
from .report import FigureResult
from .runner import ExperimentRunner


@dataclass(frozen=True)
class Claim:
    """One validated statement.

    Attributes
    ----------
    name : str
        Short identifier.
    statement : str
        The paper's claim, quoted or paraphrased.
    passed : bool
        Whether the measured data satisfies it.
    detail : str
        Measured numbers backing the verdict.
    """

    name: str
    statement: str
    passed: bool
    detail: str


def _avg(values: List[float]) -> float:
    return sum(values) / len(values)


def validate(runner: Optional[ExperimentRunner] = None) -> List[Claim]:
    """Run the evaluation grid and check every headline claim."""
    runner = runner or ExperimentRunner()
    claims: List[Claim] = []

    dropin = runner.penalties("dropin", OptLevel.NONE)
    vwb = runner.penalties("vwb", OptLevel.NONE)
    vwb_opt = runner.penalties("vwb", OptLevel.FULL)
    dropin_opt = runner.penalties("dropin", OptLevel.FULL)
    l0_opt = runner.penalties("l0", OptLevel.FULL)
    emshr_opt = runner.penalties("emshr", OptLevel.FULL)

    claims.append(
        Claim(
            "fig1-dropin-average",
            "drop-in penalty averages ~54% (figure 1)",
            45.0 <= _avg(dropin) <= 65.0,
            f"measured average {_avg(dropin):.1f}%",
        )
    )
    claims.append(
        Claim(
            "fig3-vwb-reduction",
            "the VWB alone reduces the penalty significantly (figure 3)",
            _avg(vwb) < 0.7 * _avg(dropin),
            f"{_avg(dropin):.1f}% -> {_avg(vwb):.1f}%",
        )
    )
    claims.append(
        Claim(
            "fig3-not-enough",
            "...but not enough on its own (figure 3 / section IV)",
            _avg(vwb) > 10.0,
            f"residual {_avg(vwb):.1f}%",
        )
    )
    claims.append(
        Claim(
            "fig5-final-penalty",
            "transformations cut the penalty to ~8% even in the worst cases (figure 5)",
            max(vwb_opt) < 12.0 and _avg(vwb_opt) < 10.0,
            f"average {_avg(vwb_opt):.1f}%, worst {max(vwb_opt):.1f}%",
        )
    )
    vwb_red = _avg(dropin_opt) - _avg(vwb_opt)
    rivals_red = _avg(dropin_opt) - (_avg(l0_opt) + _avg(emshr_opt)) / 2.0
    claims.append(
        Claim(
            "fig8-twice-reduction",
            "almost twice the penalty reduction of L0/EMSHR (figure 8)",
            vwb_red > 1.4 * max(1e-9, rivals_red),
            f"{vwb_red:.1f} vs rivals' {rivals_red:.1f} points "
            f"({vwb_red / max(1e-9, rivals_red):.2f}x)",
        )
    )

    gains_sram, gains_vwb, edges = [], [], []
    for kernel in runner.kernels:
        sram_n = runner.run("sram", kernel, OptLevel.NONE).cycles
        sram_f = runner.run("sram", kernel, OptLevel.FULL).cycles
        vwb_n = runner.run("vwb", kernel, OptLevel.NONE).cycles
        vwb_f = runner.run("vwb", kernel, OptLevel.FULL).cycles
        gains_sram.append((sram_n - sram_f) / sram_n * 100.0)
        gains_vwb.append((vwb_n - vwb_f) / vwb_n * 100.0)
        edges.append((vwb_f - sram_f) / sram_f * 100.0)
    claims.append(
        Claim(
            "fig9-gains",
            "transformations help both systems, the NVM proposal more (figure 9)",
            _avg(gains_vwb) > _avg(gains_sram) > 0.0,
            f"gains {_avg(gains_sram):.1f}% (SRAM) vs {_avg(gains_vwb):.1f}% (proposal)",
        )
    )
    claims.append(
        Claim(
            "fig9-sram-edge",
            "optimized SRAM ends ~8% ahead of the optimized proposal (figure 9)",
            0.0 < _avg(edges) < 15.0,
            f"measured edge {_avg(edges):.1f}%",
        )
    )

    from . import fig4, fig7

    f4 = fig4.run(runner)
    claims.append(
        Claim(
            "fig4-read-dominates",
            "read latency dominates the penalty (figure 4)",
            f4.averages()["read_share"] > 80.0,
            f"read share {f4.averages()['read_share']:.1f}%",
        )
    )
    f7 = fig7.run(runner)
    a7 = f7.averages()
    claims.append(
        Claim(
            "fig7-size-trend",
            "bigger VWBs reduce the penalty more, with diminishing returns (figure 7)",
            a7["vwb_1kbit"] >= a7["vwb_2kbit"] >= a7["vwb_4kbit"] - 0.5,
            f"1K {a7['vwb_1kbit']:.1f}%, 2K {a7['vwb_2kbit']:.1f}%, "
            f"4K {a7['vwb_4kbit']:.1f}%",
        )
    )
    return claims


def render_claims(claims: List[Claim]) -> str:
    """One PASS/FAIL line per claim plus a verdict footer."""
    lines = []
    for claim in claims:
        status = "PASS" if claim.passed else "FAIL"
        lines.append(f"[{status}] {claim.name}: {claim.statement}")
        lines.append(f"       {claim.detail}")
    passed = sum(1 for c in claims if c.passed)
    lines.append(f"\n{passed}/{len(claims)} claims reproduced")
    return "\n".join(lines)


def run(runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Experiment-registry adapter: validation as a figure-like result."""
    claims = validate(runner)
    return FigureResult(
        name="validate",
        title="Headline-claim validation",
        labels=[c.name for c in claims],
        series={"passed": [1.0 if c.passed else 0.0 for c in claims]},
        unit="bool",
        notes=render_claims(claims).splitlines(),
        average_row=False,
    )
