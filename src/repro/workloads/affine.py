"""Affine index expressions over loop variables.

PolyBench kernels are affine programs: every array subscript and loop
bound is a linear combination of enclosing loop variables plus a
constant.  :class:`Affine` represents such expressions symbolically so
the interpreter can evaluate addresses and the transformation passes can
compute strides exactly.

:class:`Var` is a named loop variable; arithmetic on it builds
:class:`Affine` values with natural syntax::

    i, j = Var("i"), Var("j")
    expr = 2 * i + j + 3        # Affine({i: 2, j: 1}, 3)
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

from ..errors import WorkloadError

Number = int
AffineLike = Union["Affine", "Var", int]


class Var:
    """A named integer loop variable."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise WorkloadError("loop variable needs a non-empty name")
        self.name = name

    def __repr__(self) -> str:
        return f"Var({self.name!r})"

    # Vars are identified by name so kernels can re-create them freely.
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))

    # Arithmetic promotes to Affine.
    def _affine(self) -> "Affine":
        return Affine({self: 1}, 0)

    def __add__(self, other: AffineLike) -> "Affine":
        return self._affine() + other

    __radd__ = __add__

    def __sub__(self, other: AffineLike) -> "Affine":
        return self._affine() - other

    def __rsub__(self, other: AffineLike) -> "Affine":
        return (-1 * self._affine()) + other

    def __mul__(self, factor: int) -> "Affine":
        return self._affine() * factor

    __rmul__ = __mul__

    def __neg__(self) -> "Affine":
        return self._affine() * -1


class Affine:
    """An affine expression ``sum(coeff_v * v) + const`` over :class:`Var`.

    Immutable; all arithmetic returns new instances.  Coefficients with
    value zero are dropped so equal expressions compare equal.
    """

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Mapping[Var, int], const: int) -> None:
        self.coeffs: Dict[Var, int] = {v: c for v, c in coeffs.items() if c != 0}
        self.const = const

    @staticmethod
    def of(value: AffineLike) -> "Affine":
        """Coerce an int, :class:`Var` or :class:`Affine` to :class:`Affine`."""
        if isinstance(value, Affine):
            return value
        if isinstance(value, Var):
            return Affine({value: 1}, 0)
        if isinstance(value, int):
            return Affine({}, value)
        raise WorkloadError(f"cannot build an affine expression from {value!r}")

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under ``env`` mapping variable *names* to values.

        Raises:
            WorkloadError: If a variable is unbound.
        """
        total = self.const
        for var, coeff in self.coeffs.items():
            if var.name not in env:
                raise WorkloadError(f"unbound loop variable {var.name!r}")
            total += coeff * env[var.name]
        return total

    def coefficient(self, var: Var) -> int:
        """Coefficient of ``var`` (0 when absent) — the stride in index space."""
        return self.coeffs.get(var, 0)

    @property
    def is_constant(self) -> bool:
        """True when the expression mentions no variables."""
        return not self.coeffs

    def variables(self) -> frozenset:
        """The set of variables with nonzero coefficients."""
        return frozenset(self.coeffs)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: AffineLike) -> "Affine":
        o = Affine.of(other)
        coeffs = dict(self.coeffs)
        for v, c in o.coeffs.items():
            coeffs[v] = coeffs.get(v, 0) + c
        return Affine(coeffs, self.const + o.const)

    __radd__ = __add__

    def __sub__(self, other: AffineLike) -> "Affine":
        return self + (Affine.of(other) * -1)

    def __rsub__(self, other: AffineLike) -> "Affine":
        return (self * -1) + other

    def __mul__(self, factor: int) -> "Affine":
        if not isinstance(factor, int):
            raise WorkloadError(f"affine expressions scale by integers only, got {factor!r}")
        return Affine({v: c * factor for v, c in self.coeffs.items()}, self.const * factor)

    __rmul__ = __mul__

    def __neg__(self) -> "Affine":
        return self * -1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Affine):
            return NotImplemented
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self) -> int:
        return hash((frozenset(self.coeffs.items()), self.const))

    def __repr__(self) -> str:
        parts = [f"{c}*{v.name}" for v, c in sorted(self.coeffs.items(), key=lambda x: x[0].name)]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)
