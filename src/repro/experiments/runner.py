"""Shared machinery for running kernels across platform configurations.

The paper's evaluation grid is (kernel) x (D-cache organisation) x
(optimization level).  :class:`ExperimentRunner` materialises each
kernel/level trace once, warms the L2 with the kernel's arrays (the
paper's gem5 runs execute PolyBench's initialisation before the measured
kernel), and caches results keyed by configuration so the figures share
baseline runs.

When constructed with an :class:`~repro.exec.engine.ExecutionEngine`,
the runner fans independent points of a figure or sweep out across
worker processes and replays unchanged points from the engine's
content-addressed run cache; results are bit-identical to the serial
path (see :mod:`repro.exec`).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cpu.model import RunResult
from ..cpu.system import System, SystemConfig, warm_regions_of
from ..errors import ConfigurationError
from ..obs import ProfileResult, RecordingProbe
from ..reliability.faults import ReliabilityConfig
from ..transforms.pipeline import OptLevel, optimize
from ..workloads import build_kernel, kernel_names
from ..workloads.datasets import DatasetSize
from ..workloads.encode import EncodedTrace, encode_trace
from ..workloads.interp import TraceConfig

#: The named platform configurations of the evaluation (Section VI).
CONFIGURATIONS: Dict[str, SystemConfig] = {
    "sram": SystemConfig(technology="sram", frontend="plain"),
    "dropin": SystemConfig(technology="stt-mram", frontend="plain"),
    "vwb": SystemConfig(technology="stt-mram", frontend="vwb"),
    "l0": SystemConfig(technology="stt-mram", frontend="l0"),
    "emshr": SystemConfig(technology="stt-mram", frontend="emshr"),
    "hybrid": SystemConfig(technology="stt-mram", frontend="hybrid"),
}

#: Spelled-out aliases accepted anywhere a configuration name is
#: (``repro profile gemm --config nvm-vwb`` reads naturally).
CONFIG_ALIASES: Dict[str, str] = {
    "baseline": "sram",
    "nvm": "dropin",
    "nvm-dropin": "dropin",
    "nvm-vwb": "vwb",
    "nvm-l0": "l0",
    "nvm-emshr": "emshr",
    "nvm-hybrid": "hybrid",
}


def resolve_config_name(name: str) -> str:
    """Canonical configuration name for ``name`` (aliases resolved).

    Parameters
    ----------
    name : str
        A configuration name from :data:`CONFIGURATIONS` or an alias
        from :data:`CONFIG_ALIASES`, case-insensitively.

    Returns
    -------
    str
        The canonical :data:`CONFIGURATIONS` key.

    Raises
    ------
    ConfigurationError
        For unknown names — never a bare ``KeyError`` — listing every
        valid name and alias; the CLI maps it to the documented usage
        exit code 2.
    """
    if not isinstance(name, str):
        valid = ", ".join(list(CONFIGURATIONS) + sorted(CONFIG_ALIASES))
        raise ConfigurationError(
            f"configuration name must be a string, got {name!r}; expected one of: {valid}"
        )
    name = name.strip().lower()
    name = CONFIG_ALIASES.get(name, name)
    if name not in CONFIGURATIONS:
        valid = ", ".join(list(CONFIGURATIONS) + sorted(CONFIG_ALIASES))
        raise ConfigurationError(
            f"unknown configuration {name!r}; expected one of: {valid}"
        )
    return name


def resolve_config(config: Union[str, SystemConfig]) -> SystemConfig:
    """The :class:`SystemConfig` for a name, alias or config object.

    Parameters
    ----------
    config : str or SystemConfig
        A named configuration/alias, or an already-built config.

    Returns
    -------
    SystemConfig
        The configuration object (named configs are shared instances).

    Raises
    ------
    ConfigurationError
        For unknown configuration names (see :func:`resolve_config_name`).
    """
    if isinstance(config, SystemConfig):
        return config
    return CONFIGURATIONS[resolve_config_name(config)]


def make_system(name_or_config: Union[str, SystemConfig]) -> System:
    """Build a :class:`System` from a configuration name or object.

    Parameters
    ----------
    name_or_config : str or SystemConfig
        A named configuration/alias, or a config object.

    Returns
    -------
    System
        A freshly assembled platform.
    """
    return System(resolve_config(name_or_config))


class ExperimentRunner:
    """Caches traces and run results across the experiment suite.

    Parameters
    ----------
    size : DatasetSize
        Dataset size class for every kernel (MINI reproduces the paper;
        larger sizes feed the dataset-scaling ablation).
    kernels : list of str, optional
        Kernel subset to evaluate (default: the full 12-kernel
        registry, in figure order).
    engine : repro.exec.ExecutionEngine, optional
        Parallel/cached execution engine.  ``None`` (the default) keeps
        the classic in-process serial path; with an engine, whole-figure
        batches run with up to ``engine.jobs``-way parallelism and
        unchanged points replay from the engine's run cache.  Results
        are bit-identical either way.
    check : bool
        Run every point under the invariant sanitizer
        (:class:`repro.check.Sanitizer`).  Forces the in-process serial
        path — a sanitized run must observe the live structures, so the
        engine's worker processes and run cache are bypassed — and
        raises :class:`~repro.errors.InvariantViolation` at the first
        corrupted event.  Results are bit-identical to unchecked runs.
    check_stride : int
        Invariant-check stride for sanitized runs (check after every
        N-th event; the end-of-run check always happens).
    """

    def __init__(
        self,
        size: DatasetSize = DatasetSize.MINI,
        kernels: Optional[List[str]] = None,
        engine: Optional["ExecutionEngine"] = None,
        check: bool = False,
        check_stride: int = 997,
    ) -> None:
        self.size = size
        self.kernels = list(kernels) if kernels is not None else kernel_names()
        self.engine = engine
        self.check = bool(check)
        self.check_stride = check_stride
        self._programs: Dict[Tuple[str, OptLevel], object] = {}
        self._traces: Dict[Tuple[str, OptLevel], EncodedTrace] = {}
        self._annotated_traces: Dict[Tuple[str, OptLevel], EncodedTrace] = {}
        self._results: Dict[Tuple, RunResult] = {}

    # ------------------------------------------------------------------
    # Workload material
    # ------------------------------------------------------------------

    def program(self, kernel: str, level: OptLevel = OptLevel.NONE):
        """The (possibly transformed) program for a kernel, cached.

        Parameters
        ----------
        kernel : str
            Kernel name.
        level : OptLevel
            Optimization level to apply.

        Returns
        -------
        repro.workloads.ir.Program
            The kernel IR after the level's transformation passes.
        """
        key = (kernel, level)
        if key not in self._programs:
            base = build_kernel(kernel, self.size)
            self._programs[key] = optimize(base, level) if level is not OptLevel.NONE else base
        return self._programs[key]

    def trace(self, kernel: str, level: OptLevel = OptLevel.NONE) -> EncodedTrace:
        """The encoded event trace for a kernel/level, cached.

        Stored in the columnar :class:`~repro.workloads.encode.EncodedTrace`
        form, which ``System.run`` replays through the opcode fast path —
        bit-identical to the object stream, at a fraction of the memory.

        Parameters
        ----------
        kernel : str
            Kernel name.
        level : OptLevel
            Optimization level of the traced code.

        Returns
        -------
        EncodedTrace
            The architectural event stream in columnar form.
        """
        key = (kernel, level)
        if key not in self._traces:
            self._traces[key] = encode_trace(self.program(kernel, level))
        return self._traces[key]

    def annotated_trace(self, kernel: str, level: OptLevel = OptLevel.NONE) -> EncodedTrace:
        """Trace with zero-cost IR loop marks, for profiling runs.

        Cached separately from :meth:`trace` so figure runs keep using
        the mark-free traces.

        Parameters
        ----------
        kernel : str
            Kernel name.
        level : OptLevel
            Optimization level of the traced code.

        Returns
        -------
        EncodedTrace
            The event stream with ``IRMark`` region annotations.
        """
        key = (kernel, level)
        if key not in self._annotated_traces:
            self._annotated_traces[key] = encode_trace(
                self.program(kernel, level), TraceConfig(annotate_ir=True)
            )
        return self._annotated_traces[key]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _memo_key(
        self,
        config: Union[str, SystemConfig],
        kernel: str,
        level: OptLevel,
        cache_key: Optional[str],
    ) -> Optional[Tuple]:
        """In-memory result key for a run request (``None``: don't memoise)."""
        if isinstance(config, str):
            return (resolve_config_name(config), kernel, level, self.size)
        if cache_key is not None:
            return (cache_key, kernel, level, self.size)
        return None

    def _point(
        self,
        config: Union[str, SystemConfig],
        kernel: str,
        level: OptLevel,
        cache_key: Optional[str] = None,
    ) -> "RunPoint":
        """Build the :class:`~repro.exec.point.RunPoint` for a run request."""
        from ..exec.point import RunPoint

        if isinstance(config, str):
            label = resolve_config_name(config)
        else:
            label = cache_key or config.frontend
        return RunPoint(
            kernel=kernel,
            config=resolve_config(config),
            level=level,
            size=self.size,
            label=f"{kernel}/{label}/{level.name}",
        )

    def run(
        self,
        config: Union[str, SystemConfig],
        kernel: str,
        level: OptLevel = OptLevel.NONE,
        cache_key: Optional[str] = None,
    ) -> RunResult:
        """Run one kernel/level on one configuration (L2 pre-warmed).

        Parameters
        ----------
        config : str or SystemConfig
            A configuration name/alias from :data:`CONFIGURATIONS` or a
            :class:`SystemConfig`.
        kernel : str
            Kernel name.
        level : OptLevel
            Optimization level of the code.
        cache_key : str, optional
            Override for the result-memo key when passing ad hoc
            :class:`SystemConfig` objects (named configs memoise
            automatically; unnamed ones by this key, by content when an
            engine is attached, or not at all).

        Returns
        -------
        RunResult
            The timing result (shared across repeat requests).
        """
        key = self._memo_key(config, kernel, level, cache_key)
        if key is not None and key in self._results:
            return self._results[key]
        if self.check:
            # Sanitized runs execute in-process: the checker hooks the
            # live CPU event loop, which worker processes and the run
            # cache cannot observe.  Imported lazily to keep the
            # check package optional on the hot import path.
            from ..check.sanitizer import Sanitizer

            system = make_system(config)
            trace = self.trace(kernel, level)
            regions = warm_regions_of(self.program(kernel, level))
            sanitizer = Sanitizer(system, stride=self.check_stride)
            result = sanitizer.run(trace, warm_regions=regions)
        elif self.engine is not None:
            from ..exec.cache import cache_key_of

            point = self._point(config, kernel, level, cache_key)
            if key is None:
                key = ("exec", cache_key_of(point))
                if key in self._results:
                    return self._results[key]
            result = self.engine.run_points([point])[0]
        else:
            system = make_system(config)
            trace = self.trace(kernel, level)
            regions = warm_regions_of(self.program(kernel, level))
            result = system.run(trace, warm_regions=regions)
        if key is not None:
            self._results[key] = result
        return result

    def prefetch(
        self,
        specs: Sequence[Tuple],
    ) -> None:
        """Batch-execute run requests (engine fan-out or serial lanes).

        With an engine attached the whole batch is handed over at once,
        so independent points run with up to ``engine.jobs``-way
        parallelism and cache hits replay immediately.  Without an
        engine, requests sharing a trace (same kernel and level) run as
        lanes of one batched multi-lane replay
        (:func:`repro.cpu.batched.run_batch`) — one pass over the
        opcode columns per kernel instead of one per configuration.
        Either way results land in the runner's in-memory memo, making
        the subsequent :meth:`run` calls instant, and are bit-identical
        to on-demand serial runs.

        Parameters
        ----------
        specs : sequence of tuple
            ``(config, kernel, level)`` or ``(config, kernel, level,
            cache_key)`` tuples, exactly as :meth:`run` would receive
            them.  Already-memoised and duplicate requests are skipped.
        """
        if self.check:
            # Sanitized runs never fan out (see :meth:`run`); letting
            # a prefetch path compute unchecked results would defeat
            # --check.
            return
        if self.engine is None:
            self._prefetch_serial(specs)
            return
        from ..exec.cache import cache_key_of

        points, keys = [], []
        seen = set()
        for spec in specs:
            config, kernel, level = spec[0], spec[1], spec[2]
            cache_key = spec[3] if len(spec) > 3 else None
            key = self._memo_key(config, kernel, level, cache_key)
            if key is None:
                point = self._point(config, kernel, level, cache_key)
                key = ("exec", cache_key_of(point))
            else:
                point = None
            if key in self._results or key in seen:
                continue
            seen.add(key)
            if point is None:
                point = self._point(config, kernel, level, cache_key)
            points.append(point)
            keys.append(key)
        if not points:
            return
        for key, result in zip(keys, self.engine.run_points(points)):
            self._results[key] = result

    def _prefetch_serial(self, specs: Sequence[Tuple]) -> None:
        """Serial prefetch: run same-trace requests as batched lanes.

        Groups the not-yet-memoised requests by ``(kernel, level)`` and
        replays each group's configurations as lanes of one
        :func:`repro.cpu.batched.run_batch` pass.  Requests without a
        memo key are skipped (their results could not be retained), as
        are single-lane groups — :meth:`run` computes those on demand
        at identical cost.

        Parameters
        ----------
        specs : sequence of tuple
            Run requests, as :meth:`prefetch` receives them.
        """
        from ..cpu.batched import run_batch

        grouped: Dict[Tuple, List[Tuple]] = {}
        seen = set()
        for spec in specs:
            config, kernel, level = spec[0], spec[1], spec[2]
            cache_key = spec[3] if len(spec) > 3 else None
            key = self._memo_key(config, kernel, level, cache_key)
            if key is None or key in self._results or key in seen:
                continue
            seen.add(key)
            grouped.setdefault((kernel, level), []).append((config, key))
        for (kernel, level), lanes in grouped.items():
            if len(lanes) < 2:
                continue
            trace = self.trace(kernel, level)
            regions = warm_regions_of(self.program(kernel, level))
            systems = [make_system(config) for config, _ in lanes]
            for (_, key), result in zip(
                lanes, run_batch(trace, systems, warm_regions=regions)
            ):
                self._results[key] = result

    def profile(
        self,
        kernel: str,
        config: str = "vwb",
        level: OptLevel = OptLevel.NONE,
        record_events: bool = True,
        max_events: int = 200_000,
    ) -> ProfileResult:
        """Run one kernel under a :class:`RecordingProbe` and package it.

        The run uses an IR-annotated trace (same cycle count as the plain
        trace — marks are zero-cost) so the ledger carries per-IR-loop
        subtotals, and verifies ledger exactness against the run's cycle
        count before returning.  Profiling always executes inline — a
        probe observes one live run, so there is nothing to parallelise
        or replay.

        Parameters
        ----------
        kernel : str
            Kernel name.
        config : str
            Configuration name or alias (e.g. ``"nvm-vwb"``).
        level : OptLevel
            Optimization level of the code.
        record_events : bool
            Keep the per-event timeline for trace export
            (ledger/histograms are always collected).
        max_events : int
            Cap on retained timeline events; overflow is counted in
            :attr:`ProfileResult.dropped_events`.

        Returns
        -------
        ProfileResult
            The instrumented run, with a verified cycle ledger.
        """
        name = resolve_config_name(config)
        system = make_system(name)
        probe = RecordingProbe(record_events=record_events, max_events=max_events)
        trace = self.annotated_trace(kernel, level)
        regions = warm_regions_of(self.program(kernel, level))
        if self.check:
            from ..check.sanitizer import Sanitizer

            sanitizer = Sanitizer(system, stride=self.check_stride)
            result = sanitizer.run(trace, warm_regions=regions, probe=probe)
        else:
            result = system.run(trace, warm_regions=regions, probe=probe)
        return ProfileResult(
            kernel=kernel,
            config=name,
            level=level.name,
            result=result,
            ledger=probe.ledger,
            histograms=probe.histograms,
            events=probe.events,
            dropped_events=probe.dropped_events,
        )

    def penalty(
        self,
        config: Union[str, SystemConfig],
        kernel: str,
        level: OptLevel = OptLevel.NONE,
        baseline_level: Optional[OptLevel] = None,
        cache_key: Optional[str] = None,
    ) -> float:
        """Penalty (%) of a configuration against the SRAM baseline.

        The baseline runs the same code by default (``baseline_level``
        overrides this for gain-style comparisons).

        Parameters
        ----------
        config : str or SystemConfig
            Configuration under test.
        kernel : str
            Kernel name.
        level : OptLevel
            Optimization level of the tested configuration's code.
        baseline_level : OptLevel, optional
            Optimization level of the SRAM baseline (defaults to
            ``level``).
        cache_key : str, optional
            Memo key for ad hoc configs (see :meth:`run`).

        Returns
        -------
        float
            ``penalty_vs`` the SRAM baseline, in percent.
        """
        base_level = level if baseline_level is None else baseline_level
        baseline = self.run("sram", kernel, base_level)
        return self.run(config, kernel, level, cache_key=cache_key).penalty_vs(baseline)

    def penalties(
        self,
        config: Union[str, SystemConfig],
        level: OptLevel = OptLevel.NONE,
        baseline_level: Optional[OptLevel] = None,
        cache_key: Optional[str] = None,
    ) -> List[float]:
        """Per-kernel penalties over the runner's kernel list.

        With an engine attached, every (kernel, config) point of the
        figure — baselines included — is first fanned out as one batch
        (see :meth:`prefetch`); the per-kernel ratios are then computed
        from the memoised results in kernel order, so the output is
        independent of scheduling.

        Parameters
        ----------
        config : str or SystemConfig
            Configuration under test.
        level : OptLevel
            Optimization level of the tested configuration's code.
        baseline_level : OptLevel, optional
            Optimization level of the SRAM baseline (defaults to
            ``level``).
        cache_key : str, optional
            Memo key for ad hoc configs (see :meth:`run`).

        Returns
        -------
        list of float
            One penalty per kernel, in ``self.kernels`` order.
        """
        base_level = level if baseline_level is None else baseline_level
        self.prefetch(
            [(config, k, level, cache_key) for k in self.kernels]
            + [("sram", k, base_level) for k in self.kernels]
        )
        return [
            self.penalty(config, k, level, baseline_level, cache_key=cache_key)
            for k in self.kernels
        ]

    def reliability_sweep(
        self,
        kernel: str,
        rates: Sequence[float],
        configs: Sequence[str] = ("dropin", "vwb"),
        seed: int = 0,
        level: OptLevel = OptLevel.NONE,
    ) -> Dict[str, List[float]]:
        """Penalty curves over a raw-bit-error-rate sweep.

        For each configuration, each point enables stochastic write
        faults at the given rber (with write-verify-retry, SECDED and
        line retirement at their defaults) and reports the penalty
        against the fault-free SRAM baseline — the Figure 5 metric, with
        reliability overhead added on top of the technology penalty.
        With an engine attached, all ``configs`` x ``rates`` points (and
        the baseline) run as one parallel batch.

        Parameters
        ----------
        kernel : str
            Kernel name.
        rates : sequence of float
            Raw per-bit write error rates to sweep.
        configs : sequence of str
            Configuration names/aliases to compare.
        seed : int
            Fault-injection seed shared by every point.
        level : OptLevel
            Optimization level of the code.

        Returns
        -------
        dict
            Mapping of canonical configuration name to per-rate
            penalties (%), in ``rates`` order.
        """
        grid = []
        for config in configs:
            name = resolve_config_name(config)
            base = CONFIGURATIONS[name]
            for rate in rates:
                faulty = replace(
                    base,
                    reliability=ReliabilityConfig(seed=seed, write_error_rate=rate),
                )
                grid.append((name, rate, faulty))
        self.prefetch(
            [
                (faulty, kernel, level, f"{name}+rber={rate:g}+seed={seed}")
                for name, rate, faulty in grid
            ]
            + [("sram", kernel, level)]
        )
        curves: Dict[str, List[float]] = {}
        for name, rate, faulty in grid:
            curves.setdefault(name, []).append(
                self.penalty(
                    faulty,
                    kernel,
                    level,
                    cache_key=f"{name}+rber={rate:g}+seed={seed}",
                )
            )
        return curves
