"""PolyBench ``gemm``: C = alpha*A*B + beta*C.

Loop structure follows PolyBench 4.2 (j innermost in both phases), which
makes ``C`` and ``B`` unit-stride in the hot loop and leaves ``A[i][k]``
loop-invariant (register-allocated by scalar replacement) — the friendly
case for both vectorization and the VWB's wide windows.
"""

from __future__ import annotations

from ..affine import Var
from ..datasets import DatasetSize, scale_for
from ..ir import Array, Program, loop, stmt

#: MINI dimensions; SMALL/LARGE scale each linearly.
BASE_DIMS = {"ni": 24, "nj": 24, "nk": 24}


def build(size: DatasetSize = DatasetSize.MINI) -> Program:
    """Build the gemm program for the given dataset size."""
    dims = scale_for(BASE_DIMS, size)
    ni, nj, nk = dims["ni"], dims["nj"], dims["nk"]
    i, j, k = Var("i"), Var("j"), Var("k")
    a = Array("A", (ni, nk))
    b = Array("B", (nk, nj))
    c = Array("C", (ni, nj))
    body = loop(
        i,
        ni,
        [
            loop(j, nj, [stmt(reads=[c[i, j]], writes=[c[i, j]], flops=1, label="beta_scale")]),
            loop(
                k,
                nk,
                [
                    loop(
                        j,
                        nj,
                        [
                            stmt(
                                reads=[c[i, j], a[i, k], b[k, j]],
                                writes=[c[i, j]],
                                flops=2,
                                label="mac",
                            )
                        ],
                    )
                ],
                permutable=True,
            ),
        ],
    )
    return Program("gemm", [body])
