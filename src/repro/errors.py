"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so downstream users can catch library failures with a
single ``except`` clause while letting genuine programming errors
(``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A simulator, cache, or experiment was configured inconsistently.

    Examples: a cache whose size is not divisible by its line size, a VWB
    narrower than one cache line, or a bank count that is not a power of
    two.
    """


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state.

    This indicates a bug in a model (for example, a cache fill for a line
    that is already resident) rather than bad user input.
    """


class InvariantViolation(SimulationError):
    """A sanitizer check found simulator state violating an invariant.

    Raised by :mod:`repro.check` when the shadow model or a structural
    invariant (dirty bit on an invalid line, duplicate tags in a set, an
    unsorted write buffer, ...) disagrees with the live structures.

    Attributes:
        event_index: Index of the last fully-processed trace event when
            the violation was detected (``-1`` when the check ran outside
            event replay, e.g. on a freshly-built or final state).  The
            index is replayable: re-running the same trace prefix
            reproduces the state that failed the check.
    """

    def __init__(self, message: str, event_index: int = -1) -> None:
        super().__init__(message)
        self.event_index = event_index


class SweepFailure(SimulationError):
    """One or more points of a sweep failed terminally.

    Raised by :meth:`repro.exec.engine.ExecutionEngine.run_points` after
    the resilience layer exhausted its retry/timeout/quarantine budget
    for at least one point.  The completed points *were* executed (and
    cached/journaled), so re-running the same command only retries the
    failed ones.

    Attributes:
        failures: The structured
            :class:`~repro.exec.resilience.PointFailure` records, one
            per terminally-failed point.
    """

    def __init__(self, failures) -> None:
        lines = "\n".join(f"  - {f.describe()}" for f in failures)
        super().__init__(
            f"{len(failures)} point(s) failed after retries:\n{lines}\n"
            "completed points are checkpointed — re-run the same command to retry"
        )
        self.failures = list(failures)


class WorkloadError(ReproError):
    """A workload/IR program is malformed.

    Examples: an array reference with the wrong number of subscripts, a
    loop bound that is negative, or a reference to an undeclared array.
    """


class TransformError(ReproError):
    """A code transformation cannot be applied to the given program.

    Transformations are expected to *skip* constructs they cannot handle;
    this error signals misuse of the transformation API itself (for
    example, a vector width of zero).
    """
