"""Static array-bounds checking of IR programs.

An affine program's subscripts are linear in its loop variables, so the
extreme value of every subscript over a loop nest occurs at a corner of
the iteration space.  This checker walks the nest tracking a
conservative interval for each variable and verifies every reference
stays inside its array — the workload-level analogue of a compiler's
``-fsanitize=bounds``, catching kernel-authoring mistakes (an off-by-one
stencil bound, a transposed subscript) before they silently skew a
figure's address stream.

The first pass is interval analysis: a loop's bound interval is
evaluated over the enclosing variables' intervals.  Intervals lose the
*coupling* between variables (``j < k`` makes ``r[k-j-1]`` safe even
though the uncoupled intervals overlap zero), so flagged references are
re-checked by exact enumeration of the iteration space, up to a point
budget; only confirmed violations survive.  Beyond the budget a flagged
reference is reported unconfirmed (``confirmed=False``).
Empty iteration spaces produce no accesses and therefore no violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .affine import Affine
from .ir import Loop, Node, Program, Ref, Statement

Interval = Tuple[int, int]  # inclusive


def _affine_interval(expr: Affine, env: Dict[str, Interval]) -> Interval:
    """Interval of an affine expression over variable intervals."""
    lo = hi = expr.const
    for var, coeff in expr.coeffs.items():
        v_lo, v_hi = env[var.name]
        if coeff >= 0:
            lo += coeff * v_lo
            hi += coeff * v_hi
        else:
            lo += coeff * v_hi
            hi += coeff * v_lo
    return lo, hi


@dataclass(frozen=True)
class BoundsViolation:
    """One (possibly) out-of-bounds reference.

    Attributes:
        array: Array name.
        dimension: Offending subscript position.
        subscript_range: Possible subscript values (inclusive interval).
        extent: The dimension's valid extent.
        context: Rendered reference for the report.
        confirmed: True when exact enumeration reproduced the violation;
            False when only the conservative interval pass flagged it
            (iteration space too large to enumerate).
    """

    array: str
    dimension: int
    subscript_range: Interval
    extent: int
    context: str
    confirmed: bool = True

    def __str__(self) -> str:
        lo, hi = self.subscript_range
        kind = "spans" if self.confirmed else "may span"
        return (
            f"{self.context}: dimension {self.dimension} {kind} [{lo}, {hi}] "
            f"but {self.array} extends [0, {self.extent - 1}]"
        )


#: Default iteration-point budget for the exact confirmation pass.
EXACT_CHECK_BUDGET = 2_000_000


def _exact_subscript_range(
    program: Program, target: Ref, dim: int, budget: int
) -> "Tuple[Interval, bool] | Tuple[None, bool]":
    """Exact min/max of one subscript by walking the iteration space.

    Returns:
        ``((lo, hi), True)`` on success; ``(None, False)`` when the
        budget is exhausted or the reference never executes.
    """
    expr = target.indices[dim]
    state = {"points": 0, "lo": None, "hi": None}

    def visit(node: Node, env: Dict[str, int]) -> bool:
        if isinstance(node, Statement):
            if target in node.refs:
                value = expr.evaluate(env)
                state["lo"] = value if state["lo"] is None else min(state["lo"], value)
                state["hi"] = value if state["hi"] is None else max(state["hi"], value)
            return True
        assert isinstance(node, Loop)
        lo = node.lower.evaluate(env)
        hi = node.upper.evaluate(env)
        for v in range(lo, hi):
            state["points"] += 1
            if state["points"] > budget:
                return False
            env[node.var.name] = v
            for child in node.body:
                if not visit(child, env):
                    return False
        env.pop(node.var.name, None)
        return True

    env: Dict[str, int] = {}
    for node in program.body:
        if not visit(node, env):
            return None, False
    if state["lo"] is None:
        return None, True  # never executed: vacuously in bounds
    return (state["lo"], state["hi"]), True


def check_bounds(
    program: Program, exact_budget: int = EXACT_CHECK_BUDGET
) -> List[BoundsViolation]:
    """Statically verify every reference of ``program`` is in bounds.

    Args:
        program: The program to check.
        exact_budget: Iteration-point budget for confirming flagged
            references by enumeration (0 disables confirmation and
            reports every interval-pass flag, unconfirmed).

    Returns:
        All confirmed violations, plus unconfirmed ones where the budget
        prevented enumeration (empty for a provably correct program).
    """
    flagged: List[tuple] = []
    seen: set = set()

    def check_ref(ref: Ref, env: Dict[str, Interval]) -> None:
        for dim, (expr, extent) in enumerate(zip(ref.indices, ref.array.shape)):
            lo, hi = _affine_interval(expr, env)
            if lo < 0 or hi >= extent:
                key = (ref.array.name, dim, lo, hi)
                if key in seen:
                    continue
                seen.add(key)
                flagged.append((ref, dim, (lo, hi), extent))

    def visit(node: Node, env: Dict[str, Interval]) -> None:
        if isinstance(node, Statement):
            for ref in node.refs:
                check_ref(ref, env)
            return
        assert isinstance(node, Loop)
        lo_lo, _ = _affine_interval(node.lower, env)
        _, up_hi = _affine_interval(node.upper, env)
        if up_hi <= lo_lo:
            return  # provably empty: no iterations, no accesses
        # Variable interval over all non-empty instances.
        child_env = dict(env)
        child_env[node.var.name] = (lo_lo, up_hi - 1)
        for child in node.body:
            visit(child, child_env)

    for node in program.body:
        visit(node, {})

    violations: List[BoundsViolation] = []
    for ref, dim, interval, extent in flagged:
        confirmed = True
        final_interval = interval
        if exact_budget > 0:
            exact, ok = _exact_subscript_range(program, ref, dim, exact_budget)
            if ok and exact is None:
                continue  # reference never executes
            if ok:
                if exact[0] >= 0 and exact[1] < extent:
                    continue  # interval pass was conservative: in bounds
                final_interval = exact
            else:
                confirmed = False
        else:
            confirmed = False
        violations.append(
            BoundsViolation(
                array=ref.array.name,
                dimension=dim,
                subscript_range=final_interval,
                extent=extent,
                context=repr(ref),
                confirmed=confirmed,
            )
        )
    return violations


def assert_in_bounds(program: Program) -> None:
    """Raise :class:`~repro.errors.WorkloadError` on any violation."""
    from ..errors import WorkloadError

    violations = check_bounds(program)
    if violations:
        details = "; ".join(str(v) for v in violations[:5])
        raise WorkloadError(
            f"program {program.name!r} has {len(violations)} out-of-bounds "
            f"reference(s): {details}"
        )
