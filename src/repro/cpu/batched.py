"""Batched multi-configuration replay: one trace pass, N system lanes.

Every figure in the paper replays the *same* kernel trace through many
D-cache configurations (the penalties grid alone is 6 configurations per
kernel), yet the encoded fast path still walks the opcode and operand
columns once per configuration.  This module removes that redundancy:
:func:`run_batch` drives N independent :class:`~repro.cpu.system.System`
*lanes* through a single pass over one
:class:`~repro.workloads.encode.EncodedTrace`, so the per-event stream
decode (opcode dispatch, operand iterator hops, loop bookkeeping) is
paid once and amortised across every lane — and each lane's hit path is
specialised far beyond what the per-run closures of
:mod:`repro.cpu.fastpath` can do, because the stepper is *generated*
with the lane's geometry baked in as literal constants.

Lane state layout (struct of arrays)
------------------------------------

Per-lane cache state is flattened out of its object graph into a
*binding table*: for each lane the planner (:func:`_plan_lane`)
collects flat references to the mutable columns of that lane's D-cache
— tag lists, dirty bits, the bank busy-time array, LRU order lists,
front-end buffer structures, stat counters — plus the lane's store
queue and latency histogram, and a generated stepper function binds
each column to a lane-suffixed local (``tg0``/``tg1``/...,
``bz0``/``bz1``/...).  The stepper's frame is therefore a
struct-of-arrays view of the whole batch: one opcode dispatch per
event, then straight-line per-lane blocks touching only flat locals.
The columns themselves stay the *live* containers of each lane's
caches — never copies — because the generic fallback path and the
post-run statistics read the same objects; see ``docs/ARCHITECTURE.md``
section 2.13 for why full columnar copies would break the
bit-exactness contract.

Specialisation tiers
--------------------

Each lane compiles into the stepper at the most specialised tier its
front-end admits:

- **plain / hybrid** (``t0``) — the single-line array hit (tag probe,
  bank reservation, inline LRU touch, stat counters) is emitted
  directly with the lane's geometry as literals; two-way
  set-associative lanes (the paper's DL1) further replace the tag
  ``list.index`` probe with two direct comparisons and the exact-LRU
  touch with two subscript stores.
- **emshr** (``t1e``) — fully inlined: the entry-dict probe plus the
  same inlined array hit body against the backing NVM array.
- **vwb** (``t1v``) / **l0** (``t1l``) — the buffer hit scan (wide-line
  window match, filter-line match with fill-in-flight bookkeeping) is
  inlined and unrolled; staged windows, demand promotions and narrow
  fills fall back to the per-run closures of
  :func:`~repro.cpu.fastpath.make_fast_ops`.
- **generic** (``t2``) — lanes with hit-path hooks (fault injection,
  AWARE writes, line-write tracking, hardware prefetchers, subclassed
  front-ends) call ``frontend.read``/``write`` per event.

On top of its tier, a ``t0`` lane whose array shape admits hit-run
elimination (:mod:`repro.workloads.elim`) compiles with a per-event
guard: at each annotated run's start index the lane consumes the whole
run through one :class:`~repro.cpu.fastpath.RunApplier` call and skips
the run's events, rejoining the per-event blocks at the boundary event.
The shared operand iterators still advance once per event, so skipping
lanes stay in sync with simulating ones.  ``REPRO_ELIM=0`` disables the
guarded variants batch-wide.

Divergence is all-or-nothing per lane *per event*: an inlined kernel
either completes the event with bit-identical state mutations or backs
out having touched nothing, and that one event falls through to the
fastpath closure or the generic ``frontend.read``/``write`` call — the
identical contract the serial encoded loop pins in
``tests/test_encode.py``.  Whole lanes that cannot join a batched pass
at all (attached probe, sanitizer checker, i-fetch modelling) are
executed through ``System.run`` unchanged; see :func:`batch_eligible`.

Bit-exactness contract
----------------------

For every lane, the returned :class:`~repro.cpu.model.RunResult` is
equal — whole-object ``==``, every float bit-identical — to what
``System.run(trace, warm_regions=...)`` returns for that lane alone.
The generated per-lane blocks replicate the serial encoded loop's
float-addition order exactly (exposed-latency clamp, store-queue
back-pressure arithmetic, truncated bank waits), which is why the
stepper is *generated* rather than vectorised: every event's latency
feeds the lane clock that the next event's bank and store-buffer
arithmetic depends on, so there is no event-axis parallelism to
exploit without reordering float additions.  Pinned by
``tests/test_batched.py`` across the full kernel/configuration/opt
grid, by the sanitizer's batched audit leg, and by the byte-identical
``benchmarks/golden_penalties.txt`` CI gate.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.dropin import PlainFrontend
from ..core.emshr import EMSHRFrontend
from ..core.hybrid import HybridFrontend
from ..core.l0 import L0Frontend
from ..core.vwb_frontend import VWBFrontend
from ..workloads.elim import runs_for
from ..workloads.elim import enabled as _elim_enabled
from ..workloads.encode import EncodedTrace
from .fastpath import make_fast_ops, make_run_applier
from .model import LOAD_HISTOGRAM_CAP, RunResult
from .system import System

#: Compiled stepper cache, keyed by the batch shape (every per-lane
#: spec in order).  Shapes recur across kernels — the penalties grid
#: compiles exactly one stepper for its 6-lane batch and reuses it for
#: all 12 kernels.
_STEPPER_CACHE: Dict[Tuple, object] = {}


def batch_eligible(system: System) -> bool:
    """Whether ``system`` can run as one lane of a batched pass.

    A lane joins the batch only when nothing hooks the event loop
    itself: probed runs and sanitized runs observe per-event callbacks
    in the serial loops, and i-fetch modelling threads an instruction
    counter through the event stream.  Everything below the event loop
    (fault injection, AWARE writes, prefetchers) batches fine — those
    lanes simply run at the generic tier.

    Parameters
    ----------
    system : System
        The assembled platform for one lane.

    Returns
    -------
    bool
        ``True`` when the lane can be driven by the generated stepper.
    """
    return (
        not system.cpu.probe.enabled
        and system.cpu.checker is None
        and not system.config.cpu.model_ifetch
    )


def _array_spec(cache) -> Tuple:
    """The hashable geometry of one cache array's inlined hit path."""
    cfg = cache.config
    return (
        cache._offset_bits,
        cfg.sets - 1,
        cache._offset_bits + cache._index_bits,
        len(cache._banks._busy_until) - 1,
        repr(float(cfg.read_hit_cycles)),
        repr(float(cfg.write_hit_cycles)),
        cfg.replacement == "lru",
        cfg.associativity,
    )


def _bind_array(bindings: Dict[str, object], cache) -> None:
    """Add one cache array's live state columns to a lane's bindings."""
    bindings.update(
        tags=cache._tags,
        dirty=cache._dirty,
        busy=cache._banks._busy_until,
        cs=cache.stats,
    )
    if cache.config.replacement == "lru":
        bindings["lru"] = [s._order for s in cache._repl]
    else:
        bindings["repl"] = cache._repl


def _plan_lane(system: System) -> Tuple[Tuple, Dict[str, object]]:
    """Build one lane's specialisation spec and binding table.

    The *spec* is a hashable description of everything the generated
    code depends on — the tier, the core timing constants, and the
    cache geometry baked in as literals.  The *bindings* map names to
    the live mutable state the stepper binds as locals.  Must be called
    after the lane's reset/warm-up: ``reset()`` and ``clear_stats()``
    replace the captured containers.

    Parameters
    ----------
    system : System
        The lane's platform, already reset and warmed.

    Returns
    -------
    tuple
        ``(spec, bindings)`` — the hashable code shape and the name ->
        object table consumed by the generated prologue.
    """
    frontend = system.frontend
    cpu_cfg = system.config.cpu
    bindings: Dict[str, object] = {
        "gr": frontend.read,
        "gw": frontend.write,
        "gp": frontend.prefetch,
        "fs": frontend.stats,
        "sq": deque(),
        "hist": [0] * (LOAD_HISTOGRAM_CAP + 1),
    }
    core = (
        repr(cpu_cfg.load_use_overlap),
        repr(cpu_cfg.store_issue_cycles),
        cpu_cfg.store_buffer_entries,
        repr(cpu_cfg.prefetch_issue_cycles),
        repr(cpu_cfg.branch_cycles),
        repr(cpu_cfg.branch_cycles + cpu_cfg.branch_mispredict_cycles),
    )
    fast = make_fast_ops(frontend)
    kind = type(frontend)
    if fast is None:
        return ("t2", core), bindings
    if kind is PlainFrontend or kind is HybridFrontend:
        # The hybrid's fast array is its SRAM partition and its hits
        # book as buffer hits; the plain front-end's array is the DL1
        # itself and every access books as a buffer miss (no buffer).
        cache = frontend.backing if kind is PlainFrontend else frontend.sram
        _bind_array(bindings, cache)
        return ("t0", core, _array_spec(cache), kind is HybridFrontend), bindings
    if kind is EMSHRFrontend:
        _bind_array(bindings, frontend.backing)
        bindings["en"] = frontend._entries
        spec = (
            "t1e",
            core,
            _array_spec(frontend.backing),
            repr(frontend._hit_cycles),
        )
        return spec, bindings
    if kind is VWBFrontend:
        bindings["fr"], bindings["fw"] = fast
        bindings["vb"] = frontend.vwb
        for i, line in enumerate(frontend.vwb._lines):
            bindings[f"wl_{i}"] = line
        spec = (
            "t1v",
            core,
            frontend.vwb._window_bytes,
            repr(frontend._hit_cycles),
            len(frontend.vwb._lines),
        )
        return spec, bindings
    if kind is L0Frontend:
        bindings["fr"], bindings["fw"] = fast
        bindings["st"] = frontend._store
        bindings["flr"] = frontend._fill_ready
        for i, line in enumerate(frontend._store._lines):
            bindings[f"sl_{i}"] = line
        spec = (
            "t1l",
            core,
            frontend.backing._offset_bits,
            repr(float(frontend._store.config.hit_cycles)),
            len(frontend._store._lines),
        )
        return spec, bindings
    # Unknown fast-capable type (future front-ends): closure tier.
    bindings["fr"], bindings["fw"] = fast
    return ("t1", core), bindings


def _make_lane_applier(apply, runs, sq, hist):
    """Stateful per-lane run cursor for the generated stepper.

    The stepper cannot hold the run list or cursor itself (generated
    locals cannot be rebound from a closure), so each eliminating lane
    binds this wrapper: called with the lane's five accumulators when
    the event index reaches the next run's start, it applies that run
    through the lane's :class:`~repro.cpu.fastpath.RunApplier` and
    returns the advanced accumulators plus ``(run.end, next_start)`` —
    ``-1`` for ``next_start`` once the runs are exhausted, an index no
    event position ever equals.

    Parameters
    ----------
    apply : callable
        The lane's ``RunApplier.apply`` closure.
    runs : sequence of HitRun
        The trace's annotated runs for the lane's array shape.
    sq : collections.deque
        The lane's live store queue (the stepper's ``sq{k}``).
    hist : list of int
        The lane's live load-latency histogram (the stepper's ``h{k}``).

    Returns
    -------
    callable
        ``step(c, bc, bb, bl, bs) -> (c, bc, bb, bl, bs, end, next)``.
    """
    cursor = [0]
    n_runs = len(runs)

    def step(c, bc, bb, bl, bs):
        idx = cursor[0]
        run = runs[idx]
        c, bc, bb, bl, bs = apply(run, c, bc, bb, bl, bs, sq, hist)
        idx += 1
        cursor[0] = idx
        return (
            c, bc, bb, bl, bs, run.end,
            runs[idx].start if idx < n_runs else -1,
        )

    return step


# ----------------------------------------------------------------------
# Code emission.  Each helper returns indented source lines; the per-
# lane hit bodies leave the event latency in ``v`` and never touch the
# shared scratch names of other lanes (``ln``/``ix``/... are reused
# sequentially between lanes within one opcode block).
# ----------------------------------------------------------------------


def _elim_spec(spec: Tuple) -> bool:
    """Whether a lane spec carries the elimination marker."""
    return spec[0] == "t0" and len(spec) > 4


def _guard_elim(k: int, body: List[str]) -> List[str]:
    """Wrap one lane's per-event block in the run-elimination guard.

    At the next run's start index the lane applies the whole run in one
    call; while inside a run (``i < se{k}``) the lane skips the event
    entirely — the shared operand iterators still advance once per
    event at the block top, so skipping is free and desync-proof.
    """
    pad = " " * 12
    return [
        f"{pad}if i == ns{k}:",
        f"{pad}    c{k}, bc{k}, bb{k}, bl{k}, bs{k}, se{k}, ns{k} = "
        f"ap{k}(c{k}, bc{k}, bb{k}, bl{k}, bs{k})",
        f"{pad}elif i >= se{k}:",
    ] + ["    " + line for line in body]


def _emit_array_hit(
    k: int, aspec: Tuple, write: bool, pad: str, booked: str, fallback: str,
    addr: str = "addr", size: str = "size", skip_span: bool = False,
    f_args: Optional[str] = None,
) -> List[str]:
    """Inlined single-line array hit (mirrors ``_passthrough_ops``).

    Emits the tag probe, bank reservation, LRU touch and stat counters
    of one cache array with the geometry of ``aspec`` baked in;
    ``fallback`` is the callable named for spanning accesses and
    misses, invoked with ``f_args`` (default: the access operands).
    Two-way exact-LRU arrays get the comparison probe and the
    subscript-store LRU swap.
    """
    off, set_mask, idx_shift, bank_mask, rc, wc, lru, assoc = aspec
    hc = wc if write else rc
    hits = f"wh{k}" if write else f"rh{k}"
    two_way = lru and assoc == 2
    if f_args is None:
        f_args = f"{addr}, {size}, c{k}"

    def body(p: str, way_expr: str) -> List[str]:
        inner = [
            f"{p}{booked} += 1",
            f"{p}bk = ln & {bank_mask}",
            f"{p}bu = bz{k}[bk]",
            f"{p}if bu > c{k}:",
            f"{p}    wt = bu - c{k}",
            f"{p}    bz{k}[bk] = bu + {hc}",
            f"{p}    bw{k} += int(wt)",
            f"{p}    v = wt + {hc}",
            f"{p}else:",
            f"{p}    bz{k}[bk] = c{k} + {hc}",
            f"{p}    v = {hc}",
        ]
        if two_way:
            # A two-element exact-LRU order holds exactly {0, 1}, so a
            # front touch is a pair of subscript stores.
            other = "0" if way_expr == "1" else "1"
            inner += [
                f"{p}od = lo{k}[ix]",
                f"{p}if od[0] != {way_expr}:",
                f"{p}    od[0] = {way_expr}",
                f"{p}    od[1] = {other}",
            ]
        elif lru:
            inner += [
                f"{p}od = lo{k}[ix]",
                f"{p}if od[0] != wy:",
                f"{p}    od.remove(wy)",
                f"{p}    od.insert(0, wy)",
            ]
        else:
            inner.append(f"{p}rp{k}[ix].touch(wy)")
        if write:
            inner.append(f"{p}dt{k}[ix][{way_expr if two_way else 'wy'}] = True")
        inner.append(f"{p}{hits} += 1")
        return inner

    lines: List[str] = []
    if skip_span:
        # Caller already established the single-line invariant and set
        # ``ln`` to the access's line number.
        p = pad
    else:
        lines += [
            f"{pad}ln = {addr} >> {off}",
            f"{pad}if ({addr} + {size} - 1) >> {off} != ln:",
            f"{pad}    v = {fallback}({f_args})",
            f"{pad}else:",
        ]
        p = pad + "    "
    lines.append(f"{p}ix = ln & {set_mask}")
    if two_way:
        lines += [
            f"{p}tgv = tg{k}[ix]",
            f"{p}tag = {addr} >> {idx_shift}",
            f"{p}if tgv[0] == tag:",
        ]
        lines += body(p + "    ", "0")
        lines.append(f"{p}elif tgv[1] == tag:")
        lines += body(p + "    ", "1")
        lines += [
            f"{p}else:",
            f"{p}    v = {fallback}({f_args})",
        ]
    else:
        lines += [
            f"{p}try:",
            f"{p}    wy = tg{k}[ix].index({addr} >> {idx_shift})",
            f"{p}except ValueError:",
            f"{p}    v = {fallback}({f_args})",
            f"{p}else:",
        ]
        lines += body(p + "    ", "wy")
    return lines


def _emit_lane_prologue(k: int, spec: Tuple) -> List[str]:
    """Source lines binding lane ``k``'s state and accumulators."""
    tier = spec[0]
    lines = [
        f"    _b = lanes[{k}]",
        f"    gr{k} = _b['gr']; gw{k} = _b['gw']; gp{k} = _b['gp']",
        f"    sq{k} = _b['sq']; sp{k} = sq{k}.popleft; sa{k} = sq{k}.append",
        f"    h{k} = _b['hist']",
        f"    c{k} = 0.0",
        f"    bc{k} = bb{k} = bl{k} = bs{k} = bp{k} = 0.0",
    ]
    if tier in ("t0", "t1e"):
        aspec = spec[2]
        lines += [
            f"    tg{k} = _b['tags']; dt{k} = _b['dirty']; bz{k} = _b['busy']",
            f"    {'lo' if aspec[6] else 'rp'}{k} = _b['{'lru' if aspec[6] else 'repl'}']",
            f"    fs{k} = _b['fs']; cs{k} = _b['cs']",
            f"    fbr{k} = fbw{k} = rh{k} = wh{k} = bw{k} = 0",
        ]
        if tier == "t1e":
            lines += [
                f"    eg{k} = _b['en'].get",
                f"    fbrh{k} = fbwh{k} = 0",
            ]
        elif _elim_spec(spec):
            lines.append(f"    ap{k} = _b['ap']; ns{k} = _b['ns0']; se{k} = 0")
    elif tier == "t1v":
        lines += [
            f"    fr{k} = _b['fr']; fw{k} = _b['fw']",
            f"    vb{k} = _b['vb']; fs{k} = _b['fs']",
            f"    fbrh{k} = fbwh{k} = 0",
        ]
        for i in range(spec[4]):
            lines.append(f"    wl{k}_{i} = _b['wl_{i}']")
    elif tier == "t1l":
        lines += [
            f"    fr{k} = _b['fr']; fw{k} = _b['fw']",
            f"    st{k} = _b['st']; fs{k} = _b['fs']",
            f"    flr{k} = _b['flr']; flg{k} = flr{k}.get",
            f"    fbrh{k} = fbrm{k} = fbwh{k} = 0",
        ]
        for i in range(spec[4]):
            lines.append(f"    sl{k}_{i} = _b['sl_{i}']")
    elif tier == "t1":
        lines.append(f"    fr{k} = _b['fr']; fw{k} = _b['fw']")
    return lines


def _emit_lane_access(k: int, spec: Tuple, write: bool, pad: str) -> List[str]:
    """Per-lane access body leaving the event latency in ``v``."""
    tier = spec[0]
    generic = f"gw{k}" if write else f"gr{k}"
    closure = f"fw{k}" if write else f"fr{k}"
    if tier == "t0":
        booked = f"fbw{k}" if write else f"fbr{k}"
        return _emit_array_hit(k, spec[2], write, pad, booked, generic)
    if tier == "t1e":
        off = spec[2][0]
        hit = spec[3]
        lines = [
            f"{pad}ln = addr >> {off}",
            f"{pad}if (addr + size - 1) >> {off} != ln:",
            f"{pad}    v = {generic}(addr, size, c{k})",
            f"{pad}else:",
            f"{pad}    ey = eg{k}(ln << {off})",
            f"{pad}    if ey is None:",
        ]
        p = pad + "        "
        if write:
            # Entry miss: the fast path writes the whole aligned line
            # into the array; an array miss falls back to the generic
            # write with the *original* access operands.
            lines.append(f"{p}ea = ln << {off}")
            lines += _emit_array_hit(
                k, spec[2], True, p, f"fbw{k}", generic,
                addr="ea", size="1", skip_span=True,
                f_args=f"addr, size, c{k}",
            )
        else:
            lines += _emit_array_hit(
                k, spec[2], False, p, f"fbr{k}", generic, skip_span=True,
            )
        lines.append(f"{pad}    else:")
        p = pad + "        "
        if write:
            lines += [
                f"{p}rd = ey.ready_at",
                f"{p}ey.dirty = True",
                f"{p}fbwh{k} += 1",
                f"{p}if rd > c{k}:",
                f"{p}    v = (rd - c{k}) + {hit}",
                f"{p}else:",
                f"{p}    v = {hit}",
            ]
        else:
            lines += [
                f"{p}rd = ey.ready_at",
                f"{p}if rd > c{k}:",
                f"{p}    fbr{k} += 1",
                f"{p}    v = (rd - c{k}) + {hit}",
                f"{p}else:",
                f"{p}    fbrh{k} += 1",
                f"{p}    v = {hit}",
            ]
        return lines
    if tier == "t1v":
        wb, hit, n_lines = spec[2], spec[3], spec[4]
        lines = [
            f"{pad}wn = addr // {wb}",
            f"{pad}if (addr + size - 1) // {wb} != wn:",
            f"{pad}    v = {closure}(addr, size, c{k})",
            f"{pad}    if v is None:",
            f"{pad}        v = {generic}(addr, size, c{k})",
            f"{pad}else:",
            f"{pad}    wn = wn * {wb}",
        ]
        p = pad + "    "
        first = True
        for i in range(n_lines):
            kw = "if" if first else "elif"
            first = False
            lines.append(f"{p}{kw} wl{k}_{i}.window_addr == wn:")
            body = [
                f"{p}    vb{k}._clock += 1",
                f"{p}    wl{k}_{i}.last_touch = vb{k}._clock",
            ]
            if write:
                body += [
                    f"{p}    wl{k}_{i}.dirty = True",
                    f"{p}    fbwh{k} += 1",
                ]
            else:
                body.append(f"{p}    fbrh{k} += 1")
            body.append(f"{p}    v = {hit}")
            lines += body
        lines += [
            f"{p}else:",
            f"{p}    v = {closure}(addr, size, c{k})",
            f"{p}    if v is None:",
            f"{p}        v = {generic}(addr, size, c{k})",
        ]
        return lines
    if tier == "t1l":
        off, hit, n_lines = spec[2], spec[3], spec[4]
        lines = [
            f"{pad}ln = addr >> {off}",
            f"{pad}if (addr + size - 1) >> {off} != ln:",
            f"{pad}    v = {closure}(addr, size, c{k})",
            f"{pad}    if v is None:",
            f"{pad}        v = {generic}(addr, size, c{k})",
            f"{pad}else:",
            f"{pad}    la = ln << {off}",
        ]
        p = pad + "    "
        first = True
        for i in range(n_lines):
            kw = "if" if first else "elif"
            first = False
            lines.append(f"{p}{kw} sl{k}_{i}.window_addr == la:")
            q = p + "    "
            body = [
                f"{q}rd = flg{k}(la)",
                f"{q}if rd is None:",
                f"{q}    fl = 0.0",
                f"{q}elif rd <= c{k}:",
                f"{q}    del flr{k}[la]",
                f"{q}    fl = 0.0",
                f"{q}else:",
                f"{q}    fl = rd - c{k}",
                f"{q}st{k}._clock += 1",
                f"{q}sl{k}_{i}.last_touch = st{k}._clock",
            ]
            if write:
                body += [
                    f"{q}sl{k}_{i}.dirty = True",
                    f"{q}fbwh{k} += 1",
                ]
            else:
                body += [
                    f"{q}if fl > 0:",
                    f"{q}    fbrm{k} += 1",
                    f"{q}else:",
                    f"{q}    fbrh{k} += 1",
                ]
            body.append(f"{q}v = fl + {hit}")
            lines += body
        lines += [
            f"{p}else:",
            f"{p}    v = {closure}(addr, size, c{k})",
            f"{p}    if v is None:",
            f"{p}        v = {generic}(addr, size, c{k})",
        ]
        return lines
    if tier == "t1":
        return [
            f"{pad}v = {closure}(addr, size, c{k})",
            f"{pad}if v is None:",
            f"{pad}    v = {generic}(addr, size, c{k})",
        ]
    return [f"{pad}v = {generic}(addr, size, c{k})"]


def _emit_lane_load(k: int, spec: Tuple) -> List[str]:
    """Per-lane load block: latency, exposed-stall clamp, histogram."""
    overlap = spec[1][0]
    pad = " " * 12
    lines = _emit_lane_access(k, spec, write=False, pad=pad)
    lines += [
        f"{pad}ex = v - {overlap}",
        f"{pad}if ex < 1.0:",
        f"{pad}    ex = 1.0",
        f"{pad}c{k} += ex",
        f"{pad}bl{k} += ex",
        f"{pad}bi = int(ex)",
        f"{pad}h{k}[bi if bi < {LOAD_HISTOGRAM_CAP} else {LOAD_HISTOGRAM_CAP}] += 1",
    ]
    return lines


def _emit_lane_store(k: int, spec: Tuple) -> List[str]:
    """Per-lane store block: buffer drain, back-pressure, retire queue."""
    store_issue, sb_entries = spec[1][1], spec[1][2]
    pad = " " * 12
    lines = [
        f"{pad}ss = c{k}",
        f"{pad}while sq{k} and sq{k}[0] <= c{k}:",
        f"{pad}    sp{k}()",
        f"{pad}if len(sq{k}) >= {sb_entries}:",
        f"{pad}    c{k} = sp{k}()",
    ]
    lines += _emit_lane_access(k, spec, write=True, pad=pad)
    lines += [
        f"{pad}tl = sq{k}[-1] if sq{k} else c{k}",
        f"{pad}if tl < c{k}:",
        f"{pad}    tl = c{k}",
        f"{pad}sa{k}(tl + v)",
        f"{pad}c{k} += {store_issue}",
        f"{pad}bs{k} += c{k} - ss",
    ]
    return lines


def _emit_lane_flush(k: int, spec: Tuple) -> List[str]:
    """Final-drain and deferred stat-counter flush for lane ``k``."""
    tier = spec[0]
    lines = [
        f"    if sq{k} and sq{k}[-1] > c{k}:",
        f"        bs{k} += sq{k}[-1] - c{k}",
        f"        c{k} = sq{k}[-1]",
    ]
    if tier == "t0":
        hit_attr = "hits" if spec[3] else "misses"
        lines += [
            f"    fs{k}.buffer_read_{hit_attr} += fbr{k}",
            f"    fs{k}.buffer_write_{hit_attr} += fbw{k}",
        ]
    elif tier == "t1e":
        lines += [
            f"    fs{k}.buffer_read_hits += fbrh{k}",
            f"    fs{k}.buffer_read_misses += fbr{k}",
            f"    fs{k}.buffer_write_hits += fbwh{k}",
            f"    fs{k}.buffer_write_misses += fbw{k}",
        ]
    elif tier == "t1v":
        lines += [
            f"    fs{k}.buffer_read_hits += fbrh{k}",
            f"    fs{k}.buffer_write_hits += fbwh{k}",
        ]
    elif tier == "t1l":
        lines += [
            f"    fs{k}.buffer_read_hits += fbrh{k}",
            f"    fs{k}.buffer_read_misses += fbrm{k}",
            f"    fs{k}.buffer_write_hits += fbwh{k}",
        ]
    if tier in ("t0", "t1e"):
        lines += [
            f"    cs{k}.read_hits += rh{k}",
            f"    cs{k}.write_hits += wh{k}",
            f"    cs{k}.bank_wait_cycles += bw{k}",
        ]
    lines.append(
        f"    out.append((c{k}, bc{k}, bb{k}, bl{k}, bs{k}, bp{k}, h{k}))"
    )
    return lines


def _emit_stepper(specs: Sequence[Tuple]) -> str:
    """Generate the batched stepper source for one batch shape.

    Parameters
    ----------
    specs : sequence of tuple
        Per-lane specs from :func:`_plan_lane`, in lane order.

    Returns
    -------
    str
        Source of ``_batched_replay(trace, lanes)``, which returns one
        ``(cycles, b_compute, b_branch, b_load, b_store, b_prefetch,
        hist)`` tuple per lane.
    """
    lanes = range(len(specs))
    elim = [_elim_spec(specs[k]) for k in lanes]
    lines = [
        "def _batched_replay(trace, lanes):",
        "    nla = iter(trace.load_addrs).__next__",
        "    nls = iter(trace.load_sizes).__next__",
        "    nsa = iter(trace.store_addrs).__next__",
        "    nss = iter(trace.store_sizes).__next__",
        "    npf = iter(trace.pf_addrs).__next__",
        "    nop = iter(trace.ops).__next__",
        "    ntk = iter(trace.taken).__next__",
    ]
    for k in lanes:
        lines += _emit_lane_prologue(k, specs[k])
    lines += [
        # Eliminating lanes key their run cursors off the event index;
        # a batch with none skips the enumerate overhead entirely.
        "    for i, op in enumerate(trace.opcodes):"
        if any(elim) else "    for op in trace.opcodes:",
        "        if op == 0:",  # OP_LOAD
        "            addr = nla()",
        "            size = nls()",
    ]
    for k in lanes:
        body = _emit_lane_load(k, specs[k])
        lines += _guard_elim(k, body) if elim[k] else body
    lines += [
        "        elif op == 1:",  # OP_COMPUTE
        "            o2 = nop()",
    ]
    for k in lanes:
        body = [f"            c{k} += o2; bc{k} += o2"]
        lines += _guard_elim(k, body) if elim[k] else body
    lines += [
        "        elif op == 2:",  # OP_STORE
        "            addr = nsa()",
        "            size = nss()",
    ]
    for k in lanes:
        body = _emit_lane_store(k, specs[k])
        lines += _guard_elim(k, body) if elim[k] else body
    # Branch costs are core constants; when every lane shares them the
    # cost resolves once per event.
    branch_consts = {(specs[k][1][4], specs[k][1][5]) for k in lanes}
    lines.append("        elif op == 3:")  # OP_BRANCH
    if len(branch_consts) == 1:
        (tc, ec) = next(iter(branch_consts))
        lines.append(f"            cst = {tc} if ntk() else {ec}")
        for k in lanes:
            body = [f"            c{k} += cst; bb{k} += cst"]
            lines += _guard_elim(k, body) if elim[k] else body
    else:
        lines.append("            tkn = ntk()")
        for k in lanes:
            tc, ec = specs[k][1][4], specs[k][1][5]
            body = [
                f"            cst = {tc} if tkn else {ec}",
                f"            c{k} += cst; bb{k} += cst",
            ]
            lines += _guard_elim(k, body) if elim[k] else body
    lines += [
        "        elif op == 4:",  # OP_PREFETCH
        "            addr = npf()",
    ]
    for k in lanes:
        pf_issue = specs[k][1][3]
        lines += [
            f"            cst = {pf_issue} + gp{k}(addr, c{k})",
            f"            c{k} += cst; bp{k} += cst",
        ]
    # else OP_MARK: zero-cost annotation, nothing to do unprobed.
    lines.append("    out = []")
    for k in lanes:
        lines += _emit_lane_flush(k, specs[k])
    lines.append("    return out")
    return "\n".join(lines) + "\n"


def _stepper_for(specs: Sequence[Tuple]):
    """The compiled stepper for a batch shape (cached)."""
    key = tuple(specs)
    fn = _STEPPER_CACHE.get(key)
    if fn is None:
        namespace: Dict[str, object] = {}
        exec(compile(_emit_stepper(specs), "<batched stepper>", "exec"), namespace)
        fn = namespace["_batched_replay"]
        _STEPPER_CACHE[key] = fn
    return fn


def _assemble_result(trace: EncodedTrace, system: System, out: Tuple) -> RunResult:
    """Package one lane's raw accumulators as a full ``RunResult``.

    Mirrors ``InOrderCPU.run_encoded``'s result assembly and
    ``System.run``'s post-run statistics capture exactly.
    """
    cycles, b_compute, b_branch, b_load, b_store, b_prefetch, hist = out
    frontend = system.frontend
    n_loads, n_stores = len(trace.load_addrs), len(trace.store_addrs)
    n_branches, n_prefetches = len(trace.taken), len(trace.pf_addrs)
    total_ops = sum(trace.ops)
    result = RunResult(
        cycles=cycles,
        instructions=n_loads + n_stores + n_branches + n_prefetches + total_ops,
        breakdown={
            "compute": b_compute,
            "branch": b_branch,
            "load": b_load,
            "store": b_store,
            "prefetch": b_prefetch,
            "ifetch": 0.0,
        },
        counts={
            "loads": n_loads,
            "stores": n_stores,
            "branches": n_branches,
            "prefetches": n_prefetches,
            "compute_ops": total_ops,
        },
        frontend_stats=frontend.stats.as_dict(),
        dl1_stats=frontend.backing.stats.as_dict(),
        load_latency_histogram={b: n for b, n in enumerate(hist) if n},
    )
    result.l2_stats = system.hierarchy.l2.stats.as_dict()
    result.il1_stats = system.hierarchy.il1.stats.as_dict()
    result.mainmem_stats = system.hierarchy.memory.stats_dict()
    result.memory_accesses = system.hierarchy.memory.accesses
    if system.dl1.reliability is not None:
        result.reliability_stats = system.dl1.reliability.stats.as_dict()
        result.retired_lines = int(system.dl1.reliability.stats.retired_lines)
    return result


def run_batch(
    trace: EncodedTrace,
    systems: Sequence[System],
    warm_regions: Optional[Iterable] = None,
    reset: bool = True,
) -> List[RunResult]:
    """Replay one encoded trace through N systems in a single pass.

    Each system is one *lane*: it is reset (or stat-cleared) and warmed
    exactly as ``System.run`` would do, then all eligible lanes step
    through the trace together under the generated stepper.  Lanes that
    cannot batch (probe attached, sanitizer checker, i-fetch
    modelling) and single-lane batches fall back to ``System.run`` —
    the results are bit-identical either way.

    Parameters
    ----------
    trace : EncodedTrace
        The columnar event stream every lane replays.
    systems : sequence of System
        The platform lanes; mutated in place (caches warm up, stats
        accumulate) exactly as a serial run would.
    warm_regions : iterable of (int, int), optional
        ``(base_addr, size_bytes)`` regions streamed into each lane's
        L2 before the measured pass (see ``System.run``).
    reset : bool
        Reset each lane first; ``False`` keeps cache contents and only
        clears timing state and statistics (warm-cache re-runs).

    Returns
    -------
    list of RunResult
        One result per lane, in ``systems`` order, each whole-object
        equal to the lane's serial ``System.run`` result.
    """
    regions = list(warm_regions) if warm_regions is not None else None
    results: List[Optional[RunResult]] = [None] * len(systems)
    lane_systems: List[System] = []
    lane_slots: List[int] = []
    for i, system in enumerate(systems):
        if batch_eligible(system) and len(systems) > 1:
            lane_systems.append(system)
            lane_slots.append(i)
        else:
            results[i] = system.run(trace, reset=reset, warm_regions=regions)
    if len(lane_systems) == 1:
        # A lone eligible lane gains nothing from the stepper; the
        # serial encoded loop is the fastest single-lane path.
        system = lane_systems[0]
        results[lane_slots[0]] = system.run(trace, reset=reset, warm_regions=regions)
        return results  # type: ignore[return-value]
    if lane_systems:
        specs, bindings = [], []
        elim_on = _elim_enabled()
        # One batched pass is ONE replay of the trace, however many
        # lanes share a cache shape: query the annotation once per
        # shape so the first-pass deferral of `runs_for` counts passes,
        # not lanes (a same-shaped second lane must not trigger the
        # profiling pass mid-one-shot).
        shape_runs: Dict[Tuple[int, int, int, int], tuple] = {}
        for system in lane_systems:
            if reset:
                system.reset()
            else:
                system.hierarchy.clear_stats()
                system.frontend.clear_stats()
            if regions is not None:
                system.warm_l2(regions)
            spec, binding = _plan_lane(system)
            if elim_on and spec[0] == "t0":
                # Eliminating lanes carry a marker in the spec (their
                # stepper variant guards every per-event block) and a
                # stateful run cursor in the bindings.  Planning runs
                # after reset/warm-up, so the applier binds the live
                # post-reset containers — same requirement as the spec.
                applier = make_run_applier(system.frontend, system.config.cpu)
                if applier is not None:
                    if applier.shape in shape_runs:
                        runs = shape_runs[applier.shape]
                    else:
                        runs = runs_for(trace, applier.shape)
                        shape_runs[applier.shape] = runs
                    if runs:
                        spec = spec + (True,)
                        binding["ap"] = _make_lane_applier(
                            applier.apply, runs, binding["sq"], binding["hist"]
                        )
                        binding["ns0"] = runs[0].start
            specs.append(spec)
            bindings.append(binding)
        stepper = _stepper_for(specs)
        outs = stepper(trace, bindings)
        for slot, system, binding, out in zip(lane_slots, lane_systems, bindings, outs):
            system.cpu.store_queue = binding["sq"]
            results[slot] = _assemble_result(trace, system, out)
    return results  # type: ignore[return-value]
