"""Batched multi-config replay: bit-identity and fallback contract.

The contract pinned here is what lets every multi-configuration sweep
site hand a group of systems to :func:`repro.cpu.batched.run_batch`
instead of looping over ``System.run``:

- every lane's ``RunResult`` is **equal as a whole object** to a serial
  replay of the same trace on the same configuration — across every
  PolyBench kernel, every front-end of the evaluation, and every
  optimization level;
- lanes the stepper cannot specialise (fault injection, prefetchers)
  still batch, at the generic tier, and stay bit-identical;
- lanes that cannot batch at all (probes, sanitizer checkers, i-fetch
  modelling) fall back to solo ``System.run`` inside the same call;
- the engine's serial path groups same-trace points through
  :func:`repro.exec.point.execute_point_batch` without changing a
  single result bit, and the sanitizer's audit drives the batched leg
  to a clean verdict.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.check.audit import audit_point
from repro.cpu.batched import batch_eligible, run_batch
from repro.cpu.model import CPUConfig
from repro.cpu.system import System, SystemConfig, warm_regions_of
from repro.exec import ExecutionEngine, RunPoint, execute_point
from repro.exec.point import execute_point_batch
from repro.obs import RecordingProbe
from repro.reliability.faults import ReliabilityConfig
from repro.transforms.pipeline import OptLevel, optimize
from repro.workloads import build_kernel, kernel_names
from repro.workloads.encode import encode_trace

CONFIG_NAMES = ("sram", "dropin", "vwb", "l0", "emshr", "hybrid")

SYSTEMS = {
    "sram": lambda: SystemConfig(technology="sram", frontend="plain"),
    "dropin": lambda: SystemConfig(technology="stt-mram", frontend="plain"),
    "vwb": lambda: SystemConfig(technology="stt-mram", frontend="vwb"),
    "l0": lambda: SystemConfig(technology="stt-mram", frontend="l0"),
    "emshr": lambda: SystemConfig(technology="stt-mram", frontend="emshr"),
    "hybrid": lambda: SystemConfig(technology="stt-mram", frontend="hybrid"),
}

#: Per-module memo so the 12-kernel sweep encodes each trace once.
_MATERIAL = {}


def _material(kernel: str, level: OptLevel = OptLevel.NONE):
    key = (kernel, level)
    if key not in _MATERIAL:
        program = build_kernel(kernel)
        if level is not OptLevel.NONE:
            program = optimize(program, level)
        _MATERIAL[key] = (encode_trace(program), warm_regions_of(program))
    return _MATERIAL[key]


def _serial(trace, config, regions, reset=True):
    return System(config).run(trace, reset=reset, warm_regions=regions)


class TestBitIdentity:
    """Batched replay equals serial replay, whole ``RunResult``."""

    @pytest.mark.parametrize("kernel", kernel_names())
    def test_every_kernel_all_frontends(self, kernel):
        trace, regions = _material(kernel)
        configs = [SYSTEMS[name]() for name in CONFIG_NAMES]
        batched = run_batch(trace, [System(c) for c in configs], warm_regions=regions)
        for name, config, got in zip(CONFIG_NAMES, configs, batched):
            assert got == _serial(trace, config, regions), f"{kernel}/{name}"

    @pytest.mark.parametrize(
        "level", [l for l in OptLevel if l is not OptLevel.NONE], ids=lambda l: l.name
    )
    def test_optimized_code_all_frontends(self, level):
        trace, regions = _material("atax", level)
        configs = [SYSTEMS[name]() for name in CONFIG_NAMES]
        batched = run_batch(trace, [System(c) for c in configs], warm_regions=regions)
        for name, config, got in zip(CONFIG_NAMES, configs, batched):
            assert got == _serial(trace, config, regions), f"atax/{name}/{level.name}"

    def test_warm_rerun_stays_exact(self):
        trace, regions = _material("mvt")
        configs = [SYSTEMS[name]() for name in ("vwb", "emshr", "hybrid")]
        systems = [System(c) for c in configs]
        run_batch(trace, systems, warm_regions=regions)
        warm = run_batch(trace, systems, reset=False)
        refs = []
        for config in configs:
            ref = System(config)
            ref.run(trace, warm_regions=regions)
            refs.append(ref.run(trace, reset=False))
        assert warm == refs


class TestDivergenceAndFallback:
    """Diverging lanes batch at the generic tier or drop to serial."""

    def test_fault_injected_lane_batches_bit_exact(self):
        trace, regions = _material("atax")
        base = SYSTEMS["vwb"]()
        faulty = replace(
            base, reliability=ReliabilityConfig(seed=7, write_error_rate=1e-4)
        )
        configs = [SYSTEMS["sram"](), faulty, SYSTEMS["emshr"]()]
        systems = [System(c) for c in configs]
        assert all(batch_eligible(s) for s in systems)
        batched = run_batch(trace, systems, warm_regions=regions)
        for config, got in zip(configs, batched):
            assert got == _serial(trace, config, regions)
        assert batched[1].reliability_stats is not None

    def test_ifetch_lane_falls_back_to_serial(self):
        trace, regions = _material("bicg")
        base = SYSTEMS["dropin"]()
        ifetch = replace(base, cpu=CPUConfig(model_ifetch=True))
        configs = [SYSTEMS["sram"](), ifetch, SYSTEMS["vwb"]()]
        systems = [System(c) for c in configs]
        assert not batch_eligible(systems[1])
        batched = run_batch(trace, systems, warm_regions=regions)
        for config, got in zip(configs, batched):
            assert got == _serial(trace, config, regions)

    def test_probed_lane_is_not_eligible(self):
        system = System(SYSTEMS["vwb"]())
        assert batch_eligible(system)
        system.cpu.probe = RecordingProbe()
        assert not batch_eligible(system)

    def test_single_lane_uses_serial_path(self):
        trace, regions = _material("atax")
        config = SYSTEMS["l0"]()
        (got,) = run_batch(trace, [System(config)], warm_regions=regions)
        assert got == _serial(trace, config, regions)

    def test_empty_batch(self):
        trace, _ = _material("atax")
        assert run_batch(trace, []) == []


class TestExecutePointBatch:
    """The engine-facing group entry point."""

    def _points(self, kernel="atax"):
        return [
            RunPoint(kernel=kernel, config=SYSTEMS[name]()) for name in CONFIG_NAMES
        ]

    def test_group_matches_execute_point(self):
        points = self._points()
        batched = execute_point_batch(points)
        assert batched == [execute_point(p) for p in points]

    def test_mixed_traces_rejected(self):
        points = self._points("atax") + self._points("bicg")
        with pytest.raises(ValueError, match="mixes traces"):
            execute_point_batch(points)

    def test_empty_group(self):
        assert execute_point_batch([]) == []

    def test_engine_serial_path_batches_groups(self, tmp_path):
        points = self._points("mvt")
        engine = ExecutionEngine(jobs=1, cache_dir=str(tmp_path / "c"), progress=None)
        results = engine.run_points(points)
        assert results == [execute_point(p) for p in points]
        assert engine.stats.executed == len(points)
        assert engine.metrics.counters.get("exec.batched_groups", 0) >= 1


class TestAuditLeg:
    """The sanitizer's differential audit covers the batched path."""

    def test_audit_batched_leg_clean(self):
        report = audit_point("atax", "vwb")
        assert report.ok, report.summary() if hasattr(report, "summary") else report
        assert not any(leg.startswith("batched") for leg, *_ in report.divergences)
